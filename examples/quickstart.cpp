// Quickstart: the whole Granula pipeline in ~60 lines.
//
//  1. generate a synthetic social graph,
//  2. run BFS on the simulated Giraph platform (monitoring included),
//  3. archive the monitoring output under the Giraph performance model,
//  4. query and visualize the archive.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "granula/visual/text.h"
#include "graph/generators.h"
#include "platforms/giraph.h"

int main() {
  using namespace granula;

  // 1. A small LDBC-Datagen-like graph: 20k vertices, power-law degrees.
  graph::DatagenConfig graph_config;
  graph_config.num_vertices = 20000;
  graph_config.avg_degree = 12.0;
  graph_config.seed = 42;
  auto graph = graph::GenerateDatagen(graph_config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // 2. BFS on a simulated 8-node Giraph deployment.
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  platform::GiraphPlatform giraph;
  auto result = giraph.Run(*graph, spec, cluster::ClusterConfig{},
                           platform::JobConfig{});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("job finished: %llu supersteps, %.2fs virtual time, %zu log "
              "records, %zu environment samples\n\n",
              static_cast<unsigned long long>(result->supersteps),
              result->total_seconds, result->records.size(),
              result->environment.size());

  // 3. Archive the run under the 4-level Giraph model.
  auto archive = core::Archiver().Build(
      core::MakeGiraphModel(), result->records,
      std::move(result->environment),
      {{"platform", "Giraph"}, {"algorithm", "BFS"}});
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }

  // 4a. Query: where did the time go?
  std::printf("%s\n", core::RenderBreakdownBar(*archive).c_str());

  // 4b. Query: one specific operation, with derived metrics.
  if (const core::ArchivedOperation* process =
          archive->FindByPath("GiraphJob/ProcessGraph")) {
    std::printf("ProcessGraph: %.2fs over %.0f supersteps\n",
                process->Duration().seconds(),
                process->InfoNumber("SuperstepCount"));
  }

  // 4c. The archive is a shareable JSON artifact.
  std::printf("\narchive: %llu operations, %zu bytes of JSON\n",
              static_cast<unsigned long long>(archive->OperationCount()),
              archive->ToJsonString(0).size());
  return 0;
}
