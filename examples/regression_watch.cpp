// Performance regression testing with archives — the paper's vision of
// performance analysis "as part of standard software engineering
// practices". A CI pipeline would:
//
//   1. keep a committed baseline archive (JSON) produced from a known-good
//      build,
//   2. run the same job on every change,
//   3. compare the candidate archive against the baseline and fail the
//      gate on regressions.
//
// Here the "code change" is simulated as a platform misconfiguration: the
// candidate Giraph run uses a pathologically small compute-thread count,
// the kind of silent config slip Section 1 of the paper warns about.

#include <cstdio>

#include "granula/analysis/regression.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"

using namespace granula;

namespace {

core::PerformanceArchive RunJob(int compute_threads) {
  graph::DatagenConfig config;
  config.num_vertices = 25000;
  config.avg_degree = 12.0;
  config.seed = 9;
  auto graph = graph::GenerateDatagen(config);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  platform::JobConfig job;
  job.compute_threads = compute_threads;
  platform::GiraphPlatform giraph;
  auto result = giraph.Run(*graph, spec, cluster::ClusterConfig{}, job);
  auto archive = core::Archiver().Build(core::MakeGiraphModel(),
                                        result->records, {}, {});
  return std::move(archive).value();
}

}  // namespace

int main() {
  // 1. Baseline from the known-good configuration (8 compute threads)...
  core::PerformanceArchive baseline = RunJob(8);
  // ...which would normally be committed as JSON and re-loaded:
  std::string stored = baseline.ToJsonString();
  auto reloaded = core::PerformanceArchive::FromJsonString(stored);
  if (!reloaded.ok()) return 1;
  std::printf("baseline archive: %llu operations, %zu bytes of JSON\n\n",
              static_cast<unsigned long long>(reloaded->OperationCount()),
              stored.size());

  // 2. Candidate run with the misconfiguration (1 compute thread).
  core::PerformanceArchive candidate = RunJob(1);

  // 3. Gate: compare at domain level first (stable), then drill.
  core::RegressionOptions domain_gate;
  domain_gate.max_depth = 2;
  core::RegressionReport report =
      core::CompareArchives(*reloaded, candidate, domain_gate);
  std::printf("--- domain-level gate ---\n%s\n",
              core::RenderRegressionReport(report).c_str());

  if (report.HasRegressions()) {
    // Drill down for the commit comment: which operations regressed most?
    core::RegressionOptions full;
    full.min_seconds = 0.2;
    core::RegressionReport detail =
        core::CompareArchives(*reloaded, candidate, full);
    std::printf("--- detail (operations > 0.2s) ---\n%s",
                core::RenderRegressionReport(detail).c_str());
    std::printf("\nverdict: FAIL — the gate would block this change.\n");
    return 2;
  }
  std::printf("verdict: PASS\n");
  return 0;
}
