// Authoring a custom performance model — the analyst-facing API (P1).
// Instead of the built-in Giraph model, we define our own view of the
// platform with custom derived metrics:
//
//   * per-superstep message throughput,
//   * a "straggler index" per superstep,
//   * the fraction of processing time lost to synchronization.
//
// The platform and its instrumentation are untouched: models are pure
// analyst artifacts applied at archive time (the reusability point, R2).

#include <cstdio>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"

using namespace granula;

int main() {
  // A custom, deliberately narrow model: only the job, ProcessGraph, the
  // supersteps and each worker's Compute — everything else (YARN, HDFS,
  // ZooKeeper operations) is filtered at archive time.
  core::PerformanceModel model("MySuperstepStudy");
  (void)model.AddRoot(core::ops::kJobActor, core::ops::kJobMission);
  (void)model.AddOperation(core::ops::kJobActor, core::ops::kProcessGraph,
                           core::ops::kJobActor, core::ops::kJobMission);
  (void)model.AddOperation("Master", "Superstep", core::ops::kJobActor,
                           core::ops::kProcessGraph);
  (void)model.AddOperation("Worker", "LocalSuperstep", "Master",
                           "Superstep");
  (void)model.AddOperation("Worker", "Compute", "Worker", "LocalSuperstep");

  // Custom info rules.
  (void)model.AddRule(
      "Worker", "LocalSuperstep",
      core::MakeChildAggregateRule("MessagesSent", core::Aggregate::kSum,
                                   "MessagesSent", "Compute"));
  (void)model.AddRule(
      "Master", "Superstep",
      core::MakeChildAggregateRule("MessagesSent", core::Aggregate::kSum,
                                   "MessagesSent", "LocalSuperstep"));
  (void)model.AddRule("Master", "Superstep",
                      core::MakeRateRule("MessagesPerSecond",
                                         "MessagesSent"));
  (void)model.AddRule(
      "Master", "Superstep",
      core::MakeCustomRule(
          "StragglerIndex",
          "slowest worker / mean worker (1.0 = perfectly balanced)",
          [](const core::ArchivedOperation& op) -> Result<Json> {
            // Workers all end a superstep together at the barrier, so the
            // straggler signal lives in their Compute stages, not in the
            // LocalSuperstep spans.
            double max = 0, sum = 0;
            int count = 0;
            op.Visit([&](const core::ArchivedOperation& node) {
              if (node.mission_type != "Compute") return;
              double d = node.Duration().seconds();
              max = std::max(max, d);
              sum += d;
              ++count;
            });
            if (count == 0 || sum == 0) {
              return Status::NotFound("no workers");
            }
            return Json(max / (sum / count));
          }));
  (void)model.AddRule(
      core::ops::kJobActor, core::ops::kProcessGraph,
      core::MakeCustomRule(
          "SyncLossFraction",
          "1 - sum(worker compute) / sum(worker superstep time)",
          [](const core::ArchivedOperation& op) -> Result<Json> {
            double compute = 0, local = 0;
            op.Visit([&](const core::ArchivedOperation& node) {
              if (node.mission_type == "Compute") {
                compute += node.Duration().seconds();
              }
              if (node.mission_type == "LocalSuperstep") {
                local += node.Duration().seconds();
              }
            });
            if (local <= 0) return Status::NotFound("no workers");
            return Json(1.0 - compute / local);
          }));
  if (Status s = model.Validate(); !s.ok()) {
    std::fprintf(stderr, "model invalid: %s\n", s.ToString().c_str());
    return 1;
  }

  // Run a job and archive it under the custom model.
  graph::DatagenConfig config;
  config.num_vertices = 25000;
  config.avg_degree = 12.0;
  config.seed = 11;
  auto graph = graph::GenerateDatagen(config);
  if (!graph.ok()) return 1;
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  platform::GiraphPlatform giraph;
  auto result = giraph.Run(*graph, spec, cluster::ClusterConfig{},
                           platform::JobConfig{});
  if (!result.ok()) return 1;

  auto archive = core::Archiver().Build(model, result->records, {}, {});
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }

  std::printf("custom model '%s': %llu operations survive filtering\n\n",
              model.name().c_str(),
              static_cast<unsigned long long>(archive->OperationCount()));
  std::printf("%-14s %10s %14s %16s %12s\n", "superstep", "duration",
              "messages", "msgs/second", "straggler");
  for (const core::ArchivedOperation* step :
       archive->FindOperations("Master", "Superstep")) {
    std::printf("%-14s %9.3fs %14.0f %16.0f %11.2fx\n",
                step->mission_id.c_str(), step->Duration().seconds(),
                step->InfoNumber("MessagesSent"),
                step->InfoNumber("MessagesPerSecond"),
                step->InfoNumber("StragglerIndex"));
  }
  const core::ArchivedOperation* process =
      archive->FindByPath("GiraphJob/ProcessGraph");
  std::printf("\nsynchronization loss: %.1f%% of worker superstep time\n",
              100.0 * process->InfoNumber("SyncLossFraction"));
  std::printf(
      "\nprovenance of StragglerIndex: \"%s\"\n",
      archive->FindOperations("Master", "Superstep")[0]
          ->FindInfo("StragglerIndex")
          ->source.c_str());
  return 0;
}
