// Incremental bottleneck hunting — Granula's R3 story end-to-end. One job
// is monitored ONCE; the analyst then drills down purely by re-archiving
// the same logs under progressively deeper model views:
//
//   iteration 1 (domain view):   which phase dominates?
//   iteration 2 (system view):   which system operation inside it?
//   iteration 3 (implementation view): which worker / superstep / stage?
//
// No re-running, no extra monitoring cost — the trade-off the paper's
// Issues 3-4 are about.

#include <algorithm>
#include <cstdio>
#include <string>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "granula/visual/text.h"
#include "graph/generators.h"
#include "platforms/giraph.h"

using namespace granula;

namespace {

const core::ArchivedOperation* LongestChild(
    const core::ArchivedOperation& op) {
  const core::ArchivedOperation* longest = nullptr;
  for (const auto& child : op.children) {
    if (longest == nullptr || child->Duration() > longest->Duration()) {
      longest = child.get();
    }
  }
  return longest;
}

}  // namespace

int main() {
  graph::DatagenConfig config;
  config.num_vertices = 30000;
  config.avg_degree = 12.0;
  config.seed = 5;
  auto graph = graph::GenerateDatagen(config);
  if (!graph.ok()) return 1;

  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;

  // Monitor once.
  platform::GiraphPlatform giraph;
  auto result = giraph.Run(*graph, spec, cluster::ClusterConfig{},
                           platform::JobConfig{});
  if (!result.ok()) return 1;
  core::PerformanceModel model = core::MakeGiraphModel();

  // --- Iteration 1: coarse (domain) view.
  core::Archiver::Options coarse;
  coarse.max_level = 2;
  auto domain_view =
      core::Archiver(coarse).Build(model, result->records, {}, {});
  if (!domain_view.ok()) return 1;
  std::printf("iteration 1 — domain view (%llu operations):\n%s\n",
              static_cast<unsigned long long>(domain_view->OperationCount()),
              core::RenderBreakdownBar(*domain_view).c_str());
  const core::ArchivedOperation* hot = LongestChild(*domain_view->root);
  std::printf("=> dominant phase: %s (%.2fs)\n\n", hot->mission_id.c_str(),
              hot->Duration().seconds());

  // --- Iteration 2: refine only where it hurts (system view).
  core::Archiver::Options system_opts;
  system_opts.max_level = 3;
  auto system_view =
      core::Archiver(system_opts).Build(model, result->records, {}, {});
  if (!system_view.ok()) return 1;
  const core::ArchivedOperation* hot_sys = system_view->FindByPath(
      std::string("GiraphJob/") + hot->mission_id);
  std::printf("iteration 2 — system view of %s (%llu operations total):\n",
              hot->mission_id.c_str(),
              static_cast<unsigned long long>(system_view->OperationCount()));
  for (const auto& child : hot_sys->children) {
    std::printf("  %-28s %8.2fs\n", child->DisplayName().c_str(),
                child->Duration().seconds());
  }
  const core::ArchivedOperation* hot2 = LongestChild(*hot_sys);
  std::printf("=> dominant system operation: %s\n\n",
              hot2->DisplayName().c_str());

  // --- Iteration 3: full implementation view, just for the hot path.
  auto full_view = core::Archiver().Build(model, result->records, {}, {});
  if (!full_view.ok()) return 1;
  std::printf("iteration 3 — implementation view (%llu operations):\n",
              static_cast<unsigned long long>(full_view->OperationCount()));
  if (hot2->mission_type == "Superstep") {
    // Drill into the slowest superstep's workers.
    const core::ArchivedOperation* superstep = full_view->FindByPath(
        "GiraphJob/ProcessGraph/" + hot2->mission_id);
    std::printf("%s\n",
                core::RenderActorTimeline(*full_view, "Worker",
                                          "LocalSuperstep", 72)
                    .c_str());
    if (superstep != nullptr) {
      std::printf("worker imbalance in %s: %.2fx (slowest/fastest)\n",
                  hot2->mission_id.c_str(),
                  superstep->InfoNumber("WorkerImbalance"));
    }
  } else {
    // Per-worker breakdown of the hot operation type.
    for (const core::ArchivedOperation* op : full_view->FindOperations(
             hot2->actor_type, hot2->mission_type)) {
      std::printf("  %-28s %8.2fs\n", op->DisplayName().c_str(),
                  op->Duration().seconds());
    }
  }
  std::printf(
      "\nall three iterations reused ONE monitored run — refinement cost "
      "was archiving only.\n");
  return 0;
}
