// Cross-platform comparison (the paper's Section 4.2 workflow): run the
// same workload on two very different platforms, archive both under the
// *shared domain-level model*, and compare the common metrics Ts / Td / Tp
// — the comparison the identical domain vocabulary exists for.
//
// Sweeps all four Pregel+GAS algorithms so the comparison is not
// BFS-specific.

#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/powergraph.h"

namespace {

using namespace granula;

struct Row {
  std::string platform;
  std::string algorithm;
  double total, ts, td, tp;
};

Row MakeRow(const std::string& platform_name, const std::string& algorithm,
            const core::PerformanceArchive& archive) {
  const core::ArchivedOperation& root = *archive.root;
  return Row{platform_name, algorithm, root.Duration().seconds(),
             root.InfoNumber("SetupTime") * 1e-9,
             root.InfoNumber("IoTime") * 1e-9,
             root.InfoNumber("ProcessingTime") * 1e-9};
}

}  // namespace

int main() {
  graph::DatagenConfig config;
  config.num_vertices = 20000;
  config.avg_degree = 10.0;
  config.seed = 7;
  auto graph = graph::GenerateDatagen(config);
  if (!graph.ok()) return 1;

  core::PerformanceModel domain = core::MakeGraphProcessingDomainModel();
  platform::GiraphPlatform giraph;
  platform::PowerGraphPlatform powergraph;

  std::vector<Row> rows;
  for (algo::AlgorithmId id :
       {algo::AlgorithmId::kBfs, algo::AlgorithmId::kSssp,
        algo::AlgorithmId::kWcc, algo::AlgorithmId::kPageRank}) {
    algo::AlgorithmSpec spec;
    spec.id = id;
    spec.source = 1;
    spec.max_iterations = 5;

    auto giraph_run = giraph.Run(*graph, spec, cluster::ClusterConfig{},
                                 platform::JobConfig{});
    auto powergraph_run = powergraph.Run(
        *graph, spec, cluster::ClusterConfig{}, platform::JobConfig{});
    if (!giraph_run.ok() || !powergraph_run.ok()) return 1;

    // Same domain model for both platforms: directly comparable numbers.
    auto ga = core::Archiver().Build(domain, giraph_run->records, {}, {});
    auto pa =
        core::Archiver().Build(domain, powergraph_run->records, {}, {});
    if (!ga.ok() || !pa.ok()) return 1;
    rows.push_back(MakeRow("Giraph", std::string(algo::AlgorithmName(id)),
                           *ga));
    rows.push_back(MakeRow("PowerGraph",
                           std::string(algo::AlgorithmName(id)), *pa));
  }

  std::printf("domain-level comparison, 20k-vertex Datagen graph, 8 nodes\n");
  std::printf("%-12s %-10s %9s %9s %9s %9s %8s\n", "platform", "algorithm",
              "total", "Ts", "Td", "Tp", "Tp/total");
  for (const Row& row : rows) {
    std::printf("%-12s %-10s %8.2fs %8.2fs %8.2fs %8.2fs %7.1f%%\n",
                row.platform.c_str(), row.algorithm.c_str(), row.total,
                row.ts, row.td, row.tp, 100.0 * row.tp / row.total);
  }
  std::printf(
      "\nreading the table (as the paper does): PowerGraph's engine "
      "processes faster (smaller Tp),\nbut its sequential loader makes Td "
      "dominate; Giraph pays heavy Ts to YARN on every job.\n");
  return 0;
}
