#ifndef GRANULA_PLATFORMS_SHARDED_ACCUMULATOR_H_
#define GRANULA_PLATFORMS_SHARDED_ACCUMULATOR_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"

namespace granula::platform {

// Deterministic scatter-add for push-style traversals: parallel chunks emit
// (target, value) contributions into their own shards, and MergeInto folds
// them into a dense accumulator with a caller-supplied Sum.
//
// Like MessageStore, shard indices are handed out in deterministic order
// via AddShards() and the merge folds shards in index order, so for any
// target the fold order equals the order a sequential loop would have
// produced (chunks are contiguous subranges of the iteration) — results are
// identical for every host-thread count. Emissions are bucketed by target
// range so the merge parallelizes over disjoint vertex ranges.
class ShardedAccumulator {
 public:
  explicit ShardedAccumulator(uint64_t num_vertices)
      : num_vertices_(num_vertices) {
    uint64_t width = 1;
    if (num_vertices_ > 64) {
      width = std::bit_ceil((num_vertices_ + 63) / 64);
    }
    bucket_shift_ = static_cast<uint64_t>(std::countr_zero(width));
    num_buckets_ = num_vertices_ == 0
                       ? 0
                       : ((num_vertices_ + width - 1) >> bucket_shift_);
  }

  // Reserves `n` shards for one parallel region and returns the index of
  // the first. Call outside parallel regions; the call order defines the
  // merge order. Shard storage is recycled across MergeInto calls.
  uint64_t AddShards(uint64_t n) {
    uint64_t first = live_shards_;
    live_shards_ += n;
    if (shards_.size() < live_shards_) {
      uint64_t old_size = shards_.size();
      shards_.resize(live_shards_);
      for (uint64_t i = old_size; i < live_shards_; ++i) {
        shards_[i].resize(num_buckets_);
      }
    }
    return first;
  }

  // Concurrent-safe across *distinct* shards.
  void Emit(uint64_t shard, graph::VertexId target, double value) {
    shards_[shard][target >> bucket_shift_].push_back(
        Contribution{target, value});
  }

  // Folds every emitted contribution into acc/has (has[t] == 0 means acc[t]
  // holds no value yet) with `sum(current, value)`, shards in index order,
  // then recycles the shards. Call outside parallel regions.
  template <typename SumFn>
  void MergeInto(std::vector<double>* acc, std::vector<uint8_t>* has,
                 SumFn&& sum) {
    std::vector<uint64_t> touched;
    for (uint64_t b = 0; b < num_buckets_; ++b) {
      for (const Shard& s : shards_) {
        if (!s[b].empty()) {
          touched.push_back(b);
          break;
        }
      }
    }
    ParallelFor(0, touched.size(), /*grain=*/1,
                [&](uint64_t, uint64_t lo, uint64_t hi) {
                  for (uint64_t i = lo; i < hi; ++i) {
                    const uint64_t b = touched[i];
                    for (const Shard& s : shards_) {
                      for (const Contribution& c : s[b]) {
                        if ((*has)[c.target] != 0) {
                          (*acc)[c.target] = sum((*acc)[c.target], c.value);
                        } else {
                          (*acc)[c.target] = c.value;
                          (*has)[c.target] = 1;
                        }
                      }
                    }
                  }
                });
    for (Shard& s : shards_) {
      for (std::vector<Contribution>& bucket : s) {
        if (bucket.capacity() * sizeof(Contribution) > kRetainBytes) {
          std::vector<Contribution>().swap(bucket);
        } else {
          bucket.clear();
        }
      }
    }
    live_shards_ = 0;
  }

 private:
  struct Contribution {
    graph::VertexId target;
    double value;
  };
  using Shard = std::vector<std::vector<Contribution>>;

  static constexpr uint64_t kRetainBytes = 64 * 1024;

  uint64_t num_vertices_;
  uint64_t bucket_shift_ = 0;
  uint64_t num_buckets_ = 0;
  std::vector<Shard> shards_;
  uint64_t live_shards_ = 0;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_SHARDED_ACCUMULATOR_H_
