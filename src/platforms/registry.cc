#include "platforms/registry.h"

#include "common/strings.h"

namespace granula::platform {

const std::vector<PlatformInfo>& PlatformRegistry() {
  static const std::vector<PlatformInfo>& registry =
      *new std::vector<PlatformInfo>{
          {"Giraph", "Apache", "1.2.0", "Java", true, "Yarn", "Pregel",
           "VertexStore", "HDFS", true},
          {"PowerGraph", "CMU", "2.2", "C++", true, "OpenMPI", "GAS",
           "Edge-based", "local/shared", true},
          {"GraphMat", "Intel", "-", "C++", true, "Intel-MPI", "SpMV",
           "SpMV", "local/shared", true},
          {"PGX.D", "Oracle", "-", "C++", true, "Native, Slurm",
           "Push-pull", "CSR", "local/shared", true},
          {"OpenG", "Georgia Tech", "-", "C++/CUDA", false, "Native",
           "CPU/GPU", "CSR", "local", false},
          {"TOTEM", "UBC", "-", "C++/CUDA", false, "Native", "CPU+GPU",
           "CSR", "local", false},
          {"Hadoop", "Apache", "-", "Java", true, "Yarn", "MapRed",
           "Out-of-core", "HDFS", true},
      };
  return registry;
}

std::string RenderPlatformTable() {
  std::string out;
  out += StrFormat("%-12s %-13s %-6s %-9s %-6s %-14s %-12s %-12s %-12s\n",
                   "Name", "Vendor", "Vers.", "Lang.", "Distr.",
                   "Provisioning", "Prog.Model", "DataFormat", "FileSys.");
  out += std::string(100, '-') + "\n";
  for (const PlatformInfo& p : PlatformRegistry()) {
    out += StrFormat("%-12s %-13s %-6s %-9s %-6s %-14s %-12s %-12s %-12s\n",
                     p.name.c_str(), p.vendor.c_str(), p.version.c_str(),
                     p.language.c_str(), p.distributed ? "yes" : "no",
                     p.provisioning.c_str(), p.programming_model.c_str(),
                     p.data_format.c_str(), p.file_system.c_str());
  }
  return out;
}

}  // namespace granula::platform
