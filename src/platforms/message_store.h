#ifndef GRANULA_PLATFORMS_MESSAGE_STORE_H_
#define GRANULA_PLATFORMS_MESSAGE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/pregel.h"
#include "graph/graph.h"

namespace granula::platform {

// Double-buffered Pregel message store, sharded for host-parallel delivery.
//
// Deliveries during superstep k go into per-shard outboxes ("next");
// Swap() at the superstep barrier merges the shards into the flat "current"
// representation the vertex programs read. A shard is owned by exactly one
// ParallelFor chunk of one worker, and shard indices are handed out in
// deterministic (simulation) order via AddShards(), so the merge — which
// folds shards in index order — produces bit-identical results for every
// host-thread count (see DESIGN.md "Host parallelism vs. simulated
// parallelism").
//
// With a combiner, messages to the same vertex collapse to one value at
// merge time (as Giraph's combiners do), but the pre-combine delivery count
// is kept for compute-cost accounting. Without a combiner, messages land in
// flat per-bucket value arrays grouped stably by (target, shard, seq), which
// reproduces the sequential engine's per-vertex delivery order.
//
// Shard outboxes are bucketed by target range so the merge parallelizes
// over disjoint vertex ranges. Outbox capacity above a fixed retention cap
// is released at every Swap, bounding resident memory across supersteps
// (ResidentBytes() exposes the accounting for tests).
class MessageStore {
 public:
  MessageStore(uint64_t num_vertices, algo::Combiner combiner);

  // Frontier bookkeeping: with an owner map installed, pending-message
  // counts are maintained per partition at Deliver() time, so engines can
  // skip whole partitions (and the O(V) "any candidate?" scan) at the
  // barrier. `owner` must outlive the store.
  void SetOwners(const std::vector<uint32_t>* owner, uint32_t num_partitions);

  // Reserves `n` outbox shards for a parallel region and returns the index
  // of the first. Must be called outside parallel regions; the call order
  // (simulation order) defines the merge order.
  uint64_t AddShards(uint64_t n);

  // Concurrent-safe across *distinct* shards.
  void Deliver(uint64_t shard, graph::VertexId target, double value) {
    Shard& s = shards_[shard];
    s.buckets[BucketOf(target)].push_back(Msg{target, value});
    ++s.total;
    if (owner_ != nullptr) ++s.partition_counts[(*owner_)[target]];
  }
  // Sequential convenience: delivers to shard 0 (always present).
  void Deliver(graph::VertexId target, double value) {
    Deliver(0, target, value);
  }

  bool HasCurrent(graph::VertexId v) const { return count_[v] > 0; }

  // Messages visible to the vertex program this superstep, in the same
  // order the sequential engine would have delivered them.
  std::span<const double> CurrentMessages(graph::VertexId v) const {
    if (count_[v] == 0) return {};
    if (combiner_ != algo::Combiner::kNone) {
      return std::span<const double>(&value_[v], 1);
    }
    const std::vector<double>& bucket = bucket_values_[BucketOf(v)];
    return std::span<const double>(bucket.data() + offset_[v], count_[v]);
  }

  // Pre-combine deliveries into the current buffer (cost accounting).
  uint64_t CurrentDeliveryCount(graph::VertexId v) const { return count_[v]; }

  // Deliveries buffered for the next superstep (sums over shards; call
  // outside parallel regions).
  uint64_t pending_total() const;

  // Deliveries merged into the current superstep.
  uint64_t current_total() const { return current_total_; }

  // Current-superstep deliveries addressed to partition p (requires
  // SetOwners).
  uint64_t CurrentPartitionCount(uint32_t p) const {
    return current_partition_counts_[p];
  }

  // Barrier action: merge shards (next becomes current), release slack
  // capacity above the retention cap, and recycle shard slots.
  void Swap();

  // Bytes held by dynamic message storage (shard outboxes + current value
  // buckets), by capacity. Excludes the fixed O(V) index arrays. Used by
  // tests to assert bounded residency across supersteps.
  uint64_t ResidentBytes() const;

 private:
  struct Msg {
    graph::VertexId target;
    double value;
  };
  struct Shard {
    std::vector<std::vector<Msg>> buckets;
    std::vector<uint64_t> partition_counts;
    uint64_t total = 0;
  };

  uint64_t BucketOf(graph::VertexId v) const { return v >> bucket_shift_; }
  uint64_t BucketBegin(uint64_t b) const { return b << bucket_shift_; }
  uint64_t BucketEnd(uint64_t b) const {
    uint64_t e = (b + 1) << bucket_shift_;
    return e < num_vertices_ ? e : num_vertices_;
  }
  void InitShard(Shard& shard) const;
  void MergeBucket(uint64_t b);

  // Per-Swap capacity retention cap for one outbox/value vector.
  static constexpr uint64_t kRetainBytes = 64 * 1024;

  uint64_t num_vertices_;
  algo::Combiner combiner_;
  uint64_t bucket_shift_ = 0;
  uint64_t num_buckets_ = 0;

  std::vector<Shard> shards_;
  uint64_t live_shards_ = 1;

  // "Current" superstep state, rebuilt at Swap.
  std::vector<uint64_t> count_;           // pre-combine deliveries per vertex
  std::vector<double> value_;             // combiner path: combined value
  std::vector<uint64_t> offset_;          // no-combiner: index into bucket
  std::vector<std::vector<double>> bucket_values_;  // no-combiner payloads
  std::vector<uint64_t> touched_;         // buckets with current messages
  uint64_t current_total_ = 0;

  const std::vector<uint32_t>* owner_ = nullptr;
  uint32_t num_partitions_ = 0;
  std::vector<uint64_t> current_partition_counts_;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_MESSAGE_STORE_H_
