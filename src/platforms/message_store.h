#ifndef GRANULA_PLATFORMS_MESSAGE_STORE_H_
#define GRANULA_PLATFORMS_MESSAGE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/pregel.h"
#include "graph/graph.h"

namespace granula::platform {

// Double-buffered Pregel message store. Deliveries during superstep k go to
// the "next" buffer; the engine swaps buffers at the superstep barrier.
// With a combiner, messages to the same vertex collapse to one value (as
// Giraph's combiners do), but the pre-combine delivery count is kept for
// compute-cost accounting.
class MessageStore {
 public:
  MessageStore(uint64_t num_vertices, algo::Combiner combiner)
      : combiner_(combiner) {
    if (combiner_ == algo::Combiner::kNone) {
      current_multi_.resize(num_vertices);
      next_multi_.resize(num_vertices);
    } else {
      current_value_.resize(num_vertices, 0.0);
      next_value_.resize(num_vertices, 0.0);
      current_has_.resize(num_vertices, 0);
      next_has_.resize(num_vertices, 0);
    }
    current_count_.resize(num_vertices, 0);
    next_count_.resize(num_vertices, 0);
  }

  void Deliver(graph::VertexId target, double value) {
    ++next_count_[target];
    ++next_total_;
    if (combiner_ == algo::Combiner::kNone) {
      next_multi_[target].push_back(value);
      return;
    }
    if (next_has_[target] == 0) {
      next_value_[target] = value;
      next_has_[target] = 1;
      return;
    }
    switch (combiner_) {
      case algo::Combiner::kMin:
        next_value_[target] = std::min(next_value_[target], value);
        break;
      case algo::Combiner::kMax:
        next_value_[target] = std::max(next_value_[target], value);
        break;
      case algo::Combiner::kSum:
        next_value_[target] += value;
        break;
      case algo::Combiner::kNone:
        break;
    }
  }

  bool HasCurrent(graph::VertexId v) const {
    return current_count_[v] > 0;
  }

  // Messages visible to the vertex program this superstep.
  std::span<const double> CurrentMessages(graph::VertexId v) const {
    if (combiner_ == algo::Combiner::kNone) {
      return current_multi_[v];
    }
    if (current_has_[v] == 0) return {};
    return std::span<const double>(&current_value_[v], 1);
  }

  // Pre-combine deliveries into the current buffer (cost accounting).
  uint64_t CurrentDeliveryCount(graph::VertexId v) const {
    return current_count_[v];
  }

  uint64_t pending_total() const { return next_total_; }

  // Barrier action: next becomes current; next is cleared.
  void Swap() {
    if (combiner_ == algo::Combiner::kNone) {
      current_multi_.swap(next_multi_);
      for (auto& messages : next_multi_) messages.clear();
    } else {
      current_value_.swap(next_value_);
      current_has_.swap(next_has_);
      std::fill(next_has_.begin(), next_has_.end(), 0);
    }
    current_count_.swap(next_count_);
    std::fill(next_count_.begin(), next_count_.end(), 0);
    next_total_ = 0;
  }

 private:
  algo::Combiner combiner_;
  std::vector<std::vector<double>> current_multi_, next_multi_;
  std::vector<double> current_value_, next_value_;
  std::vector<uint8_t> current_has_, next_has_;
  std::vector<uint64_t> current_count_, next_count_;
  uint64_t next_total_ = 0;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_MESSAGE_STORE_H_
