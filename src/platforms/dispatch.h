#ifndef GRANULA_PLATFORMS_DISPATCH_H_
#define GRANULA_PLATFORMS_DISPATCH_H_

#include <string>
#include <vector>

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "granula/model/performance_model.h"
#include "graph/graph.h"
#include "platforms/platform.h"

namespace granula::platform {

// Name-driven dispatch onto the simulated engines, shared by `granula run`
// and `granula bench` so the platform list, the engine/model pairing, and
// the unknown-platform error exist exactly once. The set of valid names is
// derived from the `implemented_here` rows of PlatformRegistry(), not from
// a hand-maintained if/else chain.

// Canonical CLI spelling of a registry display name: lowercase with
// non-alphanumerics dropped ("PGX.D" -> "pgxd").
std::string CanonicalPlatformName(const std::string& name);

// Canonical names of every platform with a simulated engine, in registry
// (paper Table 1) order: giraph, powergraph, graphmat, pgxd, hadoop.
const std::vector<std::string>& ImplementedPlatformNames();

// Resolves `name` (any spelling) against the implemented engines; returns
// the canonical name or InvalidArgument listing every valid choice.
Result<std::string> ResolvePlatformName(const std::string& name);

// The performance model paired with the named engine, or InvalidArgument
// listing the valid names.
Result<core::PerformanceModel> ModelForPlatform(const std::string& name);

// Runs one job on the named engine, or InvalidArgument listing the valid
// names. `name` is matched canonically, so "PGX.D" and "pgxd" both work.
Result<JobResult> RunForPlatform(const std::string& name,
                                 const graph::Graph& graph,
                                 const algo::AlgorithmSpec& spec,
                                 const cluster::ClusterConfig& cluster_config,
                                 const JobConfig& job_config);

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_DISPATCH_H_
