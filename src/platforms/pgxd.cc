#include "platforms/pgxd.h"

#include <algorithm>
#include <map>
#include <memory>

#include "algorithms/gas.h"
#include "cluster/monitor.h"
#include "cluster/storage.h"
#include "common/strings.h"
#include "granula/models/models.h"
#include "graph/partition.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace granula::platform {

namespace {

using core::JobLogger;
using core::OpId;
using graph::VertexId;

class PgxdJob {
 public:
  PgxdJob(const PgxdCostModel& cost, PgxdDirection direction,
          const graph::Graph& graph, const algo::GasProgram& program,
          const cluster::ClusterConfig& cluster_config,
          const JobConfig& job_config)
      : cost_(cost),
        direction_(direction),
        graph_(graph),
        program_(program),
        job_config_(job_config),
        cluster_(&sim_, cluster_config),
        localfs_(&cluster_),
        monitor_(&cluster_, job_config.monitor_interval),
        logger_([this] { return sim_.Now(); }),
        start_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        end_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        stage_barrier_(&sim_,
                       std::max(1, static_cast<int>(job_config.num_workers))) {
    // A zero worker count is rejected in Execute(); the max(1, ...) only
    // keeps the never-used barrier constructible until then.
  }

  Status Execute(JobResult* out) {
    const uint32_t nodes = job_config_.num_workers;
    if (nodes == 0 || nodes > cluster_.num_nodes()) {
      return Status::InvalidArgument("num_workers must be in [1, num_nodes]");
    }
    input_bytes_ = graph::EdgeListFileBytes(graph_);
    // Every node holds a pre-split local slice of the input.
    for (uint32_t node = 0; node < nodes; ++node) {
      GRANULA_RETURN_IF_ERROR(localfs_.CreateFile(
          node, StrFormat("/local/graph-%u.e", node),
          input_bytes_ / nodes));
    }
    GRANULA_ASSIGN_OR_RETURN(partition_,
                             graph::PartitionEdgeCut(graph_, nodes));

    const uint64_t n = graph_.num_vertices();
    values_.resize(n);
    active_.assign(n, 0);
    next_active_.assign(n, 0);
    acc_.assign(n, 0.0);
    acc_has_.assign(n, 0);
    degree_.assign(n, 0);
    neighbors_.resize(n);
    for (const graph::Edge& e : graph_.edges()) {
      ++degree_[e.src];
      ++degree_[e.dst];
      neighbors_[e.src].push_back(e.dst);
      neighbors_[e.dst].push_back(e.src);
    }
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = program_.InitialValue(v, n);
      active_[v] = program_.InitiallyActive(v) ? 1 : 0;
    }

    sim_.Spawn(Main());
    sim_.Run();

    out->vertex_values = values_;
    out->records = logger_.TakeRecords();
    out->environment = ToEnvironmentRecords(monitor_.samples());
    out->supersteps = iteration_;
    out->total_seconds = sim_.Now().seconds();
    out->network_bytes = cluster_.network_bytes_sent();
    return Status::OK();
  }

 private:
  sim::Cpu& NodeCpu(uint32_t node) { return cluster_.node(node).cpu(); }
  std::string NodeActor(uint32_t node) const {
    return StrFormat("Node-%u", node);
  }

  sim::Task<> Main() {
    monitor_.Start();
    OpId root = logger_.StartOperation(
        core::kNoOp, core::ops::kJobActor, job_config_.job_id,
        core::ops::kJobMission, "PgxdJob");
    co_await RunStartup(root);
    co_await RunLoadGraph(root);
    co_await RunProcessGraph(root);
    if (job_config_.offload_results) co_await RunOffloadGraph(root);
    co_await RunCleanup(root);
    logger_.AddInfo(root, "NetworkBytes",
                    Json(cluster_.network_bytes_sent()));
    logger_.EndOperation(root);
    monitor_.Stop();
  }

  sim::Task<> RunStartup(OpId root) {
    OpId startup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kStartup,
        core::ops::kStartup);
    OpId spawn = logger_.StartOperation(startup, "Native", "launcher",
                                        "SpawnProcesses", "SpawnProcesses");
    spawn_op_ = spawn;
    std::vector<sim::ProcessHandle> spawns;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      spawns.push_back(sim_.Spawn(
          [](PgxdJob* job, uint32_t n) -> sim::Task<> {
            OpId op = job->logger_.StartOperation(
                job->spawn_op_, "Process", job->NodeActor(n),
                "LocalStartup", StrFormat("LocalStartup-%u", n));
            co_await job->sim_.Delay(job->cost_.process_spawn);
            co_await job->NodeCpu(n).Run(job->cost_.process_spawn * 0.3);
            job->logger_.EndOperation(op);
          }(this, node)));
    }
    co_await sim::JoinAll(std::move(spawns));
    logger_.EndOperation(spawn);
    logger_.EndOperation(startup);
  }

  sim::Task<> RunLoadGraph(OpId root) {
    OpId load = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kLoadGraph, core::ops::kLoadGraph);
    std::vector<sim::ProcessHandle> loaders;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      loaders.push_back(sim_.Spawn(NodeLoad(load, node)));
    }
    co_await sim::JoinAll(std::move(loaders));
    logger_.EndOperation(load);
  }

  sim::Task<> NodeLoad(OpId parent, uint32_t node) {
    OpId op = logger_.StartOperation(
        parent, "Node", NodeActor(node), "LoadLocalData",
        StrFormat("LoadLocalData-%u", node));
    co_await localfs_.Read(node, StrFormat("/local/graph-%u.e", node));
    uint64_t my_bytes = input_bytes_ / job_config_.num_workers;
    co_await RunOnThreads(
        &sim_, &NodeCpu(node),
        cost_.parse_cpu_per_byte * static_cast<double>(my_bytes),
        job_config_.compute_threads * 2);
    OpId csr = logger_.StartOperation(op, "Node", NodeActor(node),
                                      "BuildCsr",
                                      StrFormat("BuildCsr-%u", node));
    uint64_t local_edges = partition_.partitions[node].edges.size();
    co_await RunOnThreads(
        &sim_, &NodeCpu(node),
        cost_.csr_build_per_edge * static_cast<double>(local_edges),
        job_config_.compute_threads);
    logger_.EndOperation(csr);
    logger_.AddInfo(op, "BytesRead", Json(my_bytes));
    logger_.EndOperation(op);
  }

  bool AnyActive() const {
    for (uint8_t a : active_) {
      if (a != 0) return true;
    }
    return false;
  }

  // Frontier incident edges, the direction heuristic's input.
  uint64_t FrontierEdges() const {
    uint64_t edges = 0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (active_[v] != 0) edges += degree_[v];
    }
    return edges;
  }

  bool ChoosePush(uint64_t frontier_edges) const {
    switch (direction_) {
      case PgxdDirection::kPushOnly:
        return true;
      case PgxdDirection::kPullOnly:
        return false;
      case PgxdDirection::kAuto:
        break;
    }
    // Direction-optimizing heuristic: push costs frontier_edges * push;
    // pull scans the full edge set at the cheaper pull rate.
    double push_cost = static_cast<double>(frontier_edges) *
                       cost_.push_per_edge.seconds();
    double pull_cost = static_cast<double>(2 * graph_.num_edges()) *
                       cost_.pull_per_edge.seconds();
    return push_cost <= pull_cost;
  }

  sim::Task<> RunProcessGraph(OpId root) {
    process_op_ = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kProcessGraph, core::ops::kProcessGraph);
    std::vector<sim::ProcessHandle> loops;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      loops.push_back(sim_.Spawn(NodeProcessLoop(node)));
    }
    while (true) {
      uint64_t max_iters = program_.max_iterations();
      bool capped = max_iters > 0 && iteration_ >= max_iters;
      if (!AnyActive() || capped) {
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      uint64_t frontier_edges = FrontierEdges();
      push_mode_ = ChoosePush(frontier_edges);
      iteration_op_ = logger_.StartOperation(
          process_op_, "Engine", "Engine-0", "Iteration",
          StrFormat("Iteration-%llu",
                    static_cast<unsigned long long>(iteration_)));
      logger_.AddInfo(iteration_op_, "Direction",
                      Json(push_mode_ ? "push" : "pull"));
      logger_.AddInfo(iteration_op_, "FrontierEdges", Json(frontier_edges));
      co_await start_barrier_.Arrive();
      co_await end_barrier_.Arrive();
      logger_.EndOperation(iteration_op_);

      ++iteration_;
      std::fill(acc_.begin(), acc_.end(), 0.0);
      std::fill(acc_has_.begin(), acc_has_.end(), 0);
      if (program_.always_active()) {
        bool more = max_iters == 0 || iteration_ < max_iters;
        std::fill(active_.begin(), active_.end(), more ? 1 : 0);
      } else {
        active_.swap(next_active_);
      }
      std::fill(next_active_.begin(), next_active_.end(), 0);
    }
    co_await sim::JoinAll(std::move(loops));
    logger_.AddInfo(process_op_, "Iterations", Json(iteration_));
    logger_.EndOperation(process_op_);
  }

  sim::Task<> NodeProcessLoop(uint32_t node) {
    while (true) {
      co_await start_barrier_.Arrive();
      if (process_done_) co_return;
      co_await NodeIteration(node);
    }
  }

  void Contribute(VertexId target, VertexId source) {
    double contribution = program_.Gather(target, source, values_[source],
                                          degree_[source]);
    if (acc_has_[target] != 0) {
      acc_[target] = program_.Sum(acc_[target], contribution);
    } else {
      acc_[target] = contribution;
      acc_has_[target] = 1;
    }
  }

  sim::Task<> NodeIteration(uint32_t node) {
    const auto& owned = partition_.partitions[node].vertices;

    // --- Traverse (push or pull). Both directions compute the same
    // accumulators — contributions flow from active vertices to their
    // neighbors — but touch different amounts of memory.
    uint64_t edge_ops = 0;
    uint64_t remote_updates = 0;
    OpId traverse_op;
    if (push_mode_) {
      traverse_op = logger_.StartOperation(
          iteration_op_, "Node", NodeActor(node), "Push",
          StrFormat("Push-%llu",
                    static_cast<unsigned long long>(iteration_)));
      for (VertexId v : owned) {
        if (active_[v] == 0) continue;
        for (VertexId u : neighbors_[v]) {
          Contribute(u, v);
          ++edge_ops;
          if (partition_.owner[u] != node) ++remote_updates;
        }
      }
      co_await RunOnThreads(
          &sim_, &NodeCpu(node),
          cost_.push_per_edge * static_cast<double>(edge_ops),
          job_config_.compute_threads);
    } else {
      traverse_op = logger_.StartOperation(
          iteration_op_, "Node", NodeActor(node), "Pull",
          StrFormat("Pull-%llu",
                    static_cast<unsigned long long>(iteration_)));
      for (VertexId v : owned) {
        for (VertexId u : neighbors_[v]) {
          ++edge_ops;  // the pull scan reads every incident edge
          if (active_[u] == 0) continue;
          Contribute(v, u);
          if (partition_.owner[u] != node) ++remote_updates;
        }
      }
      co_await RunOnThreads(
          &sim_, &NodeCpu(node),
          cost_.pull_per_edge * static_cast<double>(edge_ops),
          job_config_.compute_threads);
    }
    // Cross-partition updates/reads cost network bytes.
    uint64_t bytes = remote_updates * cost_.bytes_per_update;
    if (bytes > 0) {
      co_await cluster_.Send(node,
                             (node + 1) % job_config_.num_workers, bytes);
    }
    logger_.AddInfo(traverse_op, "EdgeOps", Json(edge_ops));
    logger_.EndOperation(traverse_op);
    co_await stage_barrier_.Arrive();

    // --- Apply on owned vertices; activation = value changed.
    OpId apply_op = logger_.StartOperation(
        iteration_op_, "Node", NodeActor(node), "Apply",
        StrFormat("Apply-%llu",
                  static_cast<unsigned long long>(iteration_)));
    uint64_t applies = 0;
    for (VertexId v : owned) {
      if (acc_has_[v] == 0 && active_[v] == 0) continue;
      double acc = acc_has_[v] != 0 ? acc_[v] : program_.GatherInit();
      algo::GasProgram::ApplyResult r =
          program_.Apply(v, values_[v], acc, graph_.num_vertices());
      if (r.new_value != values_[v]) {
        values_[v] = r.new_value;
        if (r.scatter) next_active_[v] = 1;
      }
      ++applies;
    }
    co_await RunOnThreads(
        &sim_, &NodeCpu(node),
        cost_.apply_per_vertex * static_cast<double>(applies),
        job_config_.compute_threads);
    co_await sim_.Delay(cost_.iteration_overhead);
    logger_.AddInfo(apply_op, "Applies", Json(applies));
    logger_.EndOperation(apply_op);

    co_await end_barrier_.Arrive();
  }

  sim::Task<> RunOffloadGraph(OpId root) {
    OpId offload = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kOffloadGraph, core::ops::kOffloadGraph);
    std::vector<sim::ProcessHandle> writers;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      writers.push_back(sim_.Spawn(
          [](PgxdJob* job, OpId parent, uint32_t n) -> sim::Task<> {
            OpId op = job->logger_.StartOperation(
                parent, "Node", job->NodeActor(n), "WriteLocal",
                StrFormat("WriteLocal-%u", n));
            uint64_t bytes =
                job->cost_.result_bytes_per_vertex *
                job->partition_.partitions[n].vertices.size();
            co_await RunOnThreads(
                &job->sim_, &job->NodeCpu(n),
                job->cost_.serialize_cpu_per_byte *
                    static_cast<double>(bytes),
                job->job_config_.compute_threads);
            co_await job->localfs_.Write(
                n, StrFormat("/local/out-%u", n), bytes);
            job->logger_.EndOperation(op);
          }(this, offload, node)));
    }
    co_await sim::JoinAll(std::move(writers));
    logger_.EndOperation(offload);
  }

  sim::Task<> RunCleanup(OpId root) {
    OpId cleanup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kCleanup,
        core::ops::kCleanup);
    OpId op = logger_.StartOperation(cleanup, "Native", "launcher",
                                     "Teardown", "Teardown");
    co_await sim_.Delay(SimTime::Millis(300));
    logger_.EndOperation(op);
    logger_.EndOperation(cleanup);
  }

  const PgxdCostModel& cost_;
  PgxdDirection direction_;
  const graph::Graph& graph_;
  const algo::GasProgram& program_;
  JobConfig job_config_;

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::LocalFs localfs_;
  cluster::EnvironmentMonitor monitor_;
  JobLogger logger_;

  sim::Barrier start_barrier_;
  sim::Barrier end_barrier_;
  sim::Barrier stage_barrier_;

  graph::EdgeCutResult partition_;
  std::vector<std::vector<VertexId>> neighbors_;
  std::vector<double> values_;
  std::vector<uint8_t> active_, next_active_;
  std::vector<double> acc_;
  std::vector<uint8_t> acc_has_;
  std::vector<uint64_t> degree_;

  uint64_t input_bytes_ = 0;
  uint64_t iteration_ = 0;
  bool process_done_ = false;
  bool push_mode_ = true;
  OpId process_op_ = core::kNoOp;
  OpId iteration_op_ = core::kNoOp;
  OpId spawn_op_ = core::kNoOp;
};

}  // namespace

Result<JobResult> PgxdPlatform::Run(
    const graph::Graph& graph, const algo::AlgorithmSpec& spec,
    const cluster::ClusterConfig& cluster_config,
    const JobConfig& job_config) const {
  GRANULA_ASSIGN_OR_RETURN(auto program, algo::MakeGasProgram(spec));
  PgxdJob job(cost_, direction_, graph, *program, cluster_config,
              job_config);
  JobResult result;
  GRANULA_RETURN_IF_ERROR(job.Execute(&result));
  return result;
}

}  // namespace granula::platform
