#include "platforms/pgxd.h"

#include <algorithm>
#include <memory>

#include "algorithms/gas.h"
#include "cluster/monitor.h"
#include "cluster/storage.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "granula/models/models.h"
#include "graph/partition.h"
#include "platforms/sharded_accumulator.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace granula::platform {

namespace {

using core::JobLogger;
using core::OpId;
using graph::VertexId;

class PgxdJob {
 public:
  PgxdJob(const PgxdCostModel& cost, PgxdDirection direction,
          const graph::Graph& graph, const algo::GasProgram& program,
          const cluster::ClusterConfig& cluster_config,
          const JobConfig& job_config)
      : cost_(cost),
        direction_(direction),
        graph_(graph),
        program_(program),
        job_config_(job_config),
        cluster_(&sim_, cluster_config),
        localfs_(&cluster_),
        monitor_(&cluster_, job_config.monitor_interval),
        logger_([this] { return sim_.Now(); }),
        accumulator_(graph.num_vertices()),
        start_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        end_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        stage_barrier_(&sim_,
                       std::max(1, static_cast<int>(job_config.num_workers))),
        injector_(job_config_.faults) {
    // A zero worker count is rejected in Execute(); the max(1, ...) only
    // keeps the never-used barrier constructible until then.
  }

  Status Execute(JobResult* out) {
    const uint32_t nodes = job_config_.num_workers;
    if (nodes == 0 || nodes > cluster_.num_nodes()) {
      return Status::InvalidArgument("num_workers must be in [1, num_nodes]");
    }
    InstallLogWriteFaults(&logger_, job_config_.faults);
    if (!job_config_.live_log_path.empty()) {
      GRANULA_RETURN_IF_ERROR(logger_.StreamTo(
          job_config_.live_log_path, job_config_.live_log_delay_us));
    }
    input_bytes_ = graph::EdgeListFileBytes(graph_);
    // Every node holds a pre-split local slice of the input.
    for (uint32_t node = 0; node < nodes; ++node) {
      GRANULA_RETURN_IF_ERROR(localfs_.CreateFile(
          node, StrFormat("/local/graph-%u.e", node),
          input_bytes_ / nodes));
    }
    GRANULA_ASSIGN_OR_RETURN(partition_,
                             graph::PartitionEdgeCut(graph_, nodes));

    // Undirected adjacency in CSR form, built on the host pool; vertex
    // degree comes from the CSR.
    adjacency_ = graph::Csr::BuildUndirected(graph_.num_vertices(),
                                             graph_.edges());
    total_degree_ = adjacency_.num_arcs();
    InitAlgorithmState();

    sim_.Spawn(Main());
    sim_.Run();
    logger_.StopStreaming();

    out->vertex_values = values_;
    out->records = logger_.TakeRecords();
    out->environment = ToEnvironmentRecords(monitor_.samples());
    out->supersteps = iteration_;
    out->total_seconds = sim_.Now().seconds();
    out->network_bytes = cluster_.network_bytes_sent();
    out->completed = !job_failed_;
    out->failed_attempts = failed_attempts_;
    out->restarts = restarts_;
    out->lost_seconds = lost_time_.seconds();
    return Status::OK();
  }

 private:
  sim::Cpu& NodeCpu(uint32_t node) { return cluster_.node(node).cpu(); }
  std::string NodeActor(uint32_t node) const {
    return StrFormat("Node-%u", node);
  }

  sim::Task<> Main() {
    monitor_.Start();
    OpId root = logger_.StartOperation(
        core::kNoOp, core::ops::kJobActor, job_config_.job_id,
        core::ops::kJobMission, "PgxdJob");
    // PGX.D aborts and resubmits on failure: each doomed attempt replays
    // the real startup/load/process phases inside a FailedAttempt
    // operation up to the crash point.
    const sim::RetryPolicy& policy = injector_.policy();
    uint32_t attempt = 0;
    while (injector_.enabled()) {
      const sim::FaultSpec* fault = injector_.JobFault(attempt);
      if (fault == nullptr) break;
      co_await RunFailedAttempt(root, *fault, attempt);
      ++attempt;
      if (job_failed_ || attempt >= policy.max_attempts) {
        job_failed_ = true;
        monitor_.Stop();
        co_return;  // root never closes: the archive is kIncomplete
      }
      co_await RunRestart(root, attempt);
      ResetAlgorithmState();
    }
    co_await RunStartup(root);
    co_await RunLoadGraph(root);
    if (!job_failed_) co_await RunProcessGraph(root);
    if (job_failed_) {
      monitor_.Stop();
      co_return;
    }
    if (job_config_.offload_results) co_await RunOffloadGraph(root);
    co_await RunCleanup(root);
    if (attempt > 0) {
      logger_.AddInfo(root, "Attempts",
                      Json(static_cast<int64_t>(attempt) + 1));
    }
    logger_.AddInfo(root, "NetworkBytes",
                    Json(cluster_.network_bytes_sent()));
    logger_.EndOperation(root);
    monitor_.Stop();
  }

  sim::Task<> RunFailedAttempt(OpId root, const sim::FaultSpec& fault,
                               uint32_t attempt) {
    SimTime began = sim_.Now();
    OpId op = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kFailedAttempt,
        StrFormat("FailedAttempt-%u", attempt + 1));
    crash_pending_ = true;
    crash_at_iteration_ =
        fault.kind == sim::FaultKind::kWorkerCrash ? fault.step : 0;
    crash_worker_ = std::min(fault.worker, job_config_.num_workers - 1);
    crash_work_ = fault.work_before_crash;
    co_await RunStartup(op);
    co_await RunLoadGraph(op);
    if (!job_failed_) co_await RunProcessGraph(op);
    crash_pending_ = false;
    if (job_failed_) co_return;  // storage retries exhausted during load
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(op, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(op, "CrashedWorker", Json(NodeActor(crash_worker_)));
    logger_.AddInfo(op, "CrashIteration", Json(crash_at_iteration_));
    logger_.AddInfo(op, "LostTime",
                    Json(static_cast<uint64_t>(lost.nanos())));
    logger_.EndOperation(op);
    ++failed_attempts_;
    lost_time_ += lost;
  }

  sim::Task<> RunRestart(OpId root, uint32_t attempt) {
    SimTime began = sim_.Now();
    OpId op = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kRestart,
        StrFormat("Restart-%u", attempt));
    co_await sim_.Delay(injector_.Backoff(attempt - 1));
    co_await sim_.Delay(injector_.policy().resubmit_delay);
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(op, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(op, "LostTime",
                    Json(static_cast<uint64_t>(lost.nanos())));
    logger_.EndOperation(op);
    ++restarts_;
    lost_time_ += lost;
  }

  // Attempt-scoped algorithm state. The CSR adjacency, partition, and
  // total degree are inputs, not state: they survive restarts.
  void InitAlgorithmState() {
    const uint64_t n = graph_.num_vertices();
    values_.resize(n);
    active_.assign(n, 0);
    next_active_.assign(n, 0);
    acc_.assign(n, 0.0);
    acc_has_.assign(n, 0);
    active_count_ = 0;
    frontier_edges_ = 0;
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = program_.InitialValue(v, n);
      bool is_active = program_.InitiallyActive(v);
      active_[v] = is_active ? 1 : 0;
      if (is_active) {
        ++active_count_;
        frontier_edges_ += adjacency_.degree(v);
      }
    }
    next_active_count_ = 0;
    next_frontier_edges_ = 0;
    iteration_ = 0;
    process_done_ = false;
    push_mode_ = true;
  }
  void ResetAlgorithmState() { InitAlgorithmState(); }

  sim::Task<> RunStartup(OpId root) {
    OpId startup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kStartup,
        core::ops::kStartup);
    OpId spawn = logger_.StartOperation(startup, "Native", "launcher",
                                        "SpawnProcesses", "SpawnProcesses");
    spawn_op_ = spawn;
    std::vector<sim::ProcessHandle> spawns;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      spawns.push_back(sim_.Spawn(
          [](PgxdJob* job, uint32_t n) -> sim::Task<> {
            OpId op = job->logger_.StartOperation(
                job->spawn_op_, "Process", job->NodeActor(n),
                "LocalStartup", StrFormat("LocalStartup-%u", n));
            co_await job->sim_.Delay(job->cost_.process_spawn);
            co_await job->NodeCpu(n).Run(job->cost_.process_spawn * 0.3);
            job->logger_.EndOperation(op);
          }(this, node)));
    }
    co_await sim::JoinAll(std::move(spawns));
    logger_.EndOperation(spawn);
    logger_.EndOperation(startup);
  }

  sim::Task<> RunLoadGraph(OpId root) {
    OpId load = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kLoadGraph, core::ops::kLoadGraph);
    std::vector<sim::ProcessHandle> loaders;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      loaders.push_back(sim_.Spawn(NodeLoad(load, node)));
    }
    co_await sim::JoinAll(std::move(loaders));
    logger_.EndOperation(load);
  }

  sim::Task<> NodeLoad(OpId parent, uint32_t node) {
    OpId op = logger_.StartOperation(
        parent, "Node", NodeActor(node), "LoadLocalData",
        StrFormat("LoadLocalData-%u", node));
    if (injector_.enabled()) {
      // Transient storage errors: the node retries its local read in
      // place; each dead read is a FailedAttempt child of LoadLocalData.
      uint32_t retry = 0;
      while (const sim::FaultSpec* fault =
                 injector_.StorageFault(node, retry)) {
        SimTime began = sim_.Now();
        OpId failed = logger_.StartOperation(
            op, "Node", NodeActor(node), core::ops::kFailedAttempt,
            StrFormat("FailedAttempt-load-%u-%u", node, retry + 1));
        co_await sim_.Delay(fault->work_before_crash);
        co_await sim_.Delay(injector_.Backoff(retry));
        SimTime lost = sim_.Now() - began;
        logger_.AddInfo(failed, "Attempt",
                        Json(static_cast<int64_t>(retry) + 1));
        logger_.AddInfo(failed, "LostTime",
                        Json(static_cast<uint64_t>(lost.nanos())));
        logger_.EndOperation(failed);
        ++failed_attempts_;
        lost_time_ += lost;
        ++retry;
        if (retry >= injector_.policy().max_attempts) {
          job_failed_ = true;
          logger_.EndOperation(op);
          co_return;
        }
      }
    }
    co_await localfs_.Read(node, StrFormat("/local/graph-%u.e", node));
    uint64_t my_bytes = input_bytes_ / job_config_.num_workers;
    co_await RunOnThreads(
        &sim_, &NodeCpu(node),
        cost_.parse_cpu_per_byte * static_cast<double>(my_bytes),
        job_config_.compute_threads * 2);
    OpId csr = logger_.StartOperation(op, "Node", NodeActor(node),
                                      "BuildCsr",
                                      StrFormat("BuildCsr-%u", node));
    uint64_t local_edges = partition_.partitions[node].edges.size();
    co_await RunOnThreads(
        &sim_, &NodeCpu(node),
        cost_.csr_build_per_edge * static_cast<double>(local_edges),
        job_config_.compute_threads);
    logger_.EndOperation(csr);
    logger_.AddInfo(op, "BytesRead", Json(my_bytes));
    logger_.EndOperation(op);
  }

  // O(1): both the active-set size and the frontier's incident-edge count
  // (the direction heuristic's input) are maintained incrementally at
  // Apply time instead of scanning all vertices each iteration.
  bool AnyActive() const { return active_count_ > 0; }
  uint64_t FrontierEdges() const { return frontier_edges_; }

  bool ChoosePush(uint64_t frontier_edges) const {
    switch (direction_) {
      case PgxdDirection::kPushOnly:
        return true;
      case PgxdDirection::kPullOnly:
        return false;
      case PgxdDirection::kAuto:
        break;
    }
    // Direction-optimizing heuristic: push costs frontier_edges * push;
    // pull scans the full edge set at the cheaper pull rate.
    double push_cost = static_cast<double>(frontier_edges) *
                       cost_.push_per_edge.seconds();
    double pull_cost = static_cast<double>(2 * graph_.num_edges()) *
                       cost_.pull_per_edge.seconds();
    return push_cost <= pull_cost;
  }

  sim::Task<> RunProcessGraph(OpId root) {
    process_op_ = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kProcessGraph, core::ops::kProcessGraph);
    std::vector<sim::ProcessHandle> loops;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      loops.push_back(sim_.Spawn(NodeProcessLoop(node)));
    }
    while (true) {
      uint64_t max_iters = program_.max_iterations();
      bool capped = max_iters > 0 && iteration_ >= max_iters;
      bool done = !AnyActive() || capped;
      if (crash_pending_ && (done || iteration_ >= crash_at_iteration_)) {
        // The victim dies partway into the iteration; the engine notices
        // after the liveness timeout and aborts the whole job.
        co_await sim_.Delay(crash_work_ + injector_.policy().detect_timeout);
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      if (done) {
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      uint64_t frontier_edges = FrontierEdges();
      push_mode_ = ChoosePush(frontier_edges);
      iteration_op_ = logger_.StartOperation(
          process_op_, "Engine", "Engine-0", "Iteration",
          StrFormat("Iteration-%llu",
                    static_cast<unsigned long long>(iteration_)));
      logger_.AddInfo(iteration_op_, "Direction",
                      Json(push_mode_ ? "push" : "pull"));
      logger_.AddInfo(iteration_op_, "FrontierEdges", Json(frontier_edges));
      co_await start_barrier_.Arrive();
      co_await end_barrier_.Arrive();
      logger_.EndOperation(iteration_op_);

      ++iteration_;
      const uint64_t n = graph_.num_vertices();
      const uint64_t fill_grain = ChunkedGrain(n);
      ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
        std::fill(acc_.begin() + b, acc_.begin() + e, 0.0);
        std::fill(acc_has_.begin() + b, acc_has_.begin() + e, 0);
      });
      if (program_.always_active()) {
        bool more = max_iters == 0 || iteration_ < max_iters;
        ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
          std::fill(active_.begin() + b, active_.begin() + e, more ? 1 : 0);
        });
        active_count_ = more ? n : 0;
        frontier_edges_ = more ? total_degree_ : 0;
      } else {
        active_.swap(next_active_);
        active_count_ = next_active_count_;
        frontier_edges_ = next_frontier_edges_;
      }
      ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
        std::fill(next_active_.begin() + b, next_active_.begin() + e, 0);
      });
      next_active_count_ = 0;
      next_frontier_edges_ = 0;
    }
    co_await sim::JoinAll(std::move(loops));
    logger_.AddInfo(process_op_, "Iterations", Json(iteration_));
    logger_.EndOperation(process_op_);
  }

  sim::Task<> NodeProcessLoop(uint32_t node) {
    while (true) {
      co_await start_barrier_.Arrive();
      if (process_done_) co_return;
      co_await NodeIteration(node);
    }
  }

  void Contribute(VertexId target, VertexId source) {
    double contribution = program_.Gather(target, source, values_[source],
                                          adjacency_.degree(source));
    if (acc_has_[target] != 0) {
      acc_[target] = program_.Sum(acc_[target], contribution);
    } else {
      acc_[target] = contribution;
      acc_has_[target] = 1;
    }
  }

  sim::Task<> NodeIteration(uint32_t node) {
    const auto& owned = partition_.partitions[node].vertices;
    const uint64_t grain = ChunkedGrain(owned.size());
    const uint64_t chunks = ThreadPool::NumChunks(owned.size(), grain);

    // --- Traverse (push or pull). Both directions compute the same
    // accumulators — contributions flow from active vertices to their
    // neighbors — but touch different amounts of memory.
    uint64_t edge_ops = 0;
    uint64_t remote_updates = 0;
    OpId traverse_op;
    if (push_mode_) {
      traverse_op = logger_.StartOperation(
          iteration_op_, "Node", NodeActor(node), "Push",
          StrFormat("Push-%llu",
                    static_cast<unsigned long long>(iteration_)));
      // Push writes accumulators of arbitrary targets, so chunks emit into
      // their own accumulator shards; the merge below folds them in chunk
      // order — the order the sequential loop would have used.
      const uint64_t first_shard = accumulator_.AddShards(chunks);
      {
        std::vector<uint64_t> chunk_ops(chunks, 0);
        std::vector<uint64_t> chunk_remote(chunks, 0);
        ParallelFor(0, owned.size(), grain,
                    [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                      uint64_t ops = 0;
                      uint64_t remote = 0;
                      const uint64_t shard = first_shard + chunk;
                      for (uint64_t i = cb; i < ce; ++i) {
                        VertexId v = owned[i];
                        if (active_[v] == 0) continue;
                        for (VertexId u : adjacency_.neighbors(v)) {
                          accumulator_.Emit(
                              shard, u,
                              program_.Gather(u, v, values_[v],
                                              adjacency_.degree(v)));
                          ++ops;
                          if (partition_.owner[u] != node) ++remote;
                        }
                      }
                      chunk_ops[chunk] = ops;
                      chunk_remote[chunk] = remote;
                    });
        for (uint64_t c = 0; c < chunks; ++c) {
          edge_ops += chunk_ops[c];
          remote_updates += chunk_remote[c];
        }
      }
      accumulator_.MergeInto(&acc_, &acc_has_, [this](double a, double b) {
        return program_.Sum(a, b);
      });
      co_await RunOnThreads(
          &sim_, &NodeCpu(node),
          cost_.push_per_edge * static_cast<double>(edge_ops),
          job_config_.compute_threads);
    } else {
      traverse_op = logger_.StartOperation(
          iteration_op_, "Node", NodeActor(node), "Pull",
          StrFormat("Pull-%llu",
                    static_cast<unsigned long long>(iteration_)));
      // Pull accumulates into the scanning vertex itself, so chunks write
      // disjoint accumulators and no sharding is needed.
      {
        std::vector<uint64_t> chunk_ops(chunks, 0);
        std::vector<uint64_t> chunk_remote(chunks, 0);
        ParallelFor(0, owned.size(), grain,
                    [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                      uint64_t ops = 0;
                      uint64_t remote = 0;
                      for (uint64_t i = cb; i < ce; ++i) {
                        VertexId v = owned[i];
                        for (VertexId u : adjacency_.neighbors(v)) {
                          ++ops;  // the pull scan reads every incident edge
                          if (active_[u] == 0) continue;
                          Contribute(v, u);
                          if (partition_.owner[u] != node) ++remote;
                        }
                      }
                      chunk_ops[chunk] = ops;
                      chunk_remote[chunk] = remote;
                    });
        for (uint64_t c = 0; c < chunks; ++c) {
          edge_ops += chunk_ops[c];
          remote_updates += chunk_remote[c];
        }
      }
      co_await RunOnThreads(
          &sim_, &NodeCpu(node),
          cost_.pull_per_edge * static_cast<double>(edge_ops),
          job_config_.compute_threads);
    }
    // Cross-partition updates/reads cost network bytes.
    uint64_t bytes = remote_updates * cost_.bytes_per_update;
    if (bytes > 0) {
      co_await cluster_.Send(node,
                             (node + 1) % job_config_.num_workers, bytes);
    }
    logger_.AddInfo(traverse_op, "EdgeOps", Json(edge_ops));
    logger_.EndOperation(traverse_op);
    co_await stage_barrier_.Arrive();

    // --- Apply on owned vertices; activation = value changed.
    OpId apply_op = logger_.StartOperation(
        iteration_op_, "Node", NodeActor(node), "Apply",
        StrFormat("Apply-%llu",
                  static_cast<unsigned long long>(iteration_)));
    uint64_t applies = 0;
    {
      std::vector<uint64_t> chunk_applies(chunks, 0);
      std::vector<uint64_t> chunk_newly_active(chunks, 0);
      std::vector<uint64_t> chunk_frontier(chunks, 0);
      ParallelFor(0, owned.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    uint64_t count = 0;
                    uint64_t newly_active = 0;
                    uint64_t frontier = 0;
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = owned[i];
                      if (acc_has_[v] == 0 && active_[v] == 0) continue;
                      double acc =
                          acc_has_[v] != 0 ? acc_[v] : program_.GatherInit();
                      algo::GasProgram::ApplyResult r = program_.Apply(
                          v, values_[v], acc, graph_.num_vertices());
                      if (r.new_value != values_[v]) {
                        values_[v] = r.new_value;
                        if (r.scatter && next_active_[v] == 0) {
                          next_active_[v] = 1;
                          ++newly_active;
                          frontier += adjacency_.degree(v);
                        }
                      }
                      ++count;
                    }
                    chunk_applies[chunk] = count;
                    chunk_newly_active[chunk] = newly_active;
                    chunk_frontier[chunk] = frontier;
                  });
      for (uint64_t c = 0; c < chunks; ++c) {
        applies += chunk_applies[c];
        next_active_count_ += chunk_newly_active[c];
        next_frontier_edges_ += chunk_frontier[c];
      }
    }
    co_await RunOnThreads(
        &sim_, &NodeCpu(node),
        cost_.apply_per_vertex * static_cast<double>(applies),
        job_config_.compute_threads);
    co_await sim_.Delay(cost_.iteration_overhead);
    logger_.AddInfo(apply_op, "Applies", Json(applies));
    logger_.EndOperation(apply_op);

    co_await end_barrier_.Arrive();
  }

  sim::Task<> RunOffloadGraph(OpId root) {
    OpId offload = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kOffloadGraph, core::ops::kOffloadGraph);
    std::vector<sim::ProcessHandle> writers;
    for (uint32_t node = 0; node < job_config_.num_workers; ++node) {
      writers.push_back(sim_.Spawn(
          [](PgxdJob* job, OpId parent, uint32_t n) -> sim::Task<> {
            OpId op = job->logger_.StartOperation(
                parent, "Node", job->NodeActor(n), "WriteLocal",
                StrFormat("WriteLocal-%u", n));
            uint64_t bytes =
                job->cost_.result_bytes_per_vertex *
                job->partition_.partitions[n].vertices.size();
            co_await RunOnThreads(
                &job->sim_, &job->NodeCpu(n),
                job->cost_.serialize_cpu_per_byte *
                    static_cast<double>(bytes),
                job->job_config_.compute_threads);
            co_await job->localfs_.Write(
                n, StrFormat("/local/out-%u", n), bytes);
            job->logger_.EndOperation(op);
          }(this, offload, node)));
    }
    co_await sim::JoinAll(std::move(writers));
    logger_.EndOperation(offload);
  }

  sim::Task<> RunCleanup(OpId root) {
    OpId cleanup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kCleanup,
        core::ops::kCleanup);
    OpId op = logger_.StartOperation(cleanup, "Native", "launcher",
                                     "Teardown", "Teardown");
    co_await sim_.Delay(SimTime::Millis(300));
    logger_.EndOperation(op);
    logger_.EndOperation(cleanup);
  }

  const PgxdCostModel& cost_;
  PgxdDirection direction_;
  const graph::Graph& graph_;
  const algo::GasProgram& program_;
  JobConfig job_config_;

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::LocalFs localfs_;
  cluster::EnvironmentMonitor monitor_;
  JobLogger logger_;
  ShardedAccumulator accumulator_;

  sim::Barrier start_barrier_;
  sim::Barrier end_barrier_;
  sim::Barrier stage_barrier_;

  graph::EdgeCutResult partition_;
  graph::Csr adjacency_;
  std::vector<double> values_;
  std::vector<uint8_t> active_, next_active_;
  std::vector<double> acc_;
  std::vector<uint8_t> acc_has_;
  // Frontier bookkeeping (replaces the O(V) AnyActive/FrontierEdges
  // scans).
  uint64_t active_count_ = 0;
  uint64_t next_active_count_ = 0;
  uint64_t frontier_edges_ = 0;
  uint64_t next_frontier_edges_ = 0;
  uint64_t total_degree_ = 0;

  uint64_t input_bytes_ = 0;
  uint64_t iteration_ = 0;
  bool process_done_ = false;
  bool push_mode_ = true;
  OpId process_op_ = core::kNoOp;
  OpId iteration_op_ = core::kNoOp;
  OpId spawn_op_ = core::kNoOp;

  // Fault injection (inert when the plan is empty).
  sim::FaultInjector injector_;
  bool crash_pending_ = false;
  uint64_t crash_at_iteration_ = 0;
  uint32_t crash_worker_ = 0;
  SimTime crash_work_;
  bool job_failed_ = false;
  uint64_t failed_attempts_ = 0;
  uint64_t restarts_ = 0;
  SimTime lost_time_;
};

}  // namespace

Result<JobResult> PgxdPlatform::Run(
    const graph::Graph& graph, const algo::AlgorithmSpec& spec,
    const cluster::ClusterConfig& cluster_config,
    const JobConfig& job_config) const {
  GRANULA_ASSIGN_OR_RETURN(auto program, algo::MakeGasProgram(spec));
  PgxdJob job(cost_, direction_, graph, *program, cluster_config,
              job_config);
  JobResult result;
  GRANULA_RETURN_IF_ERROR(job.Execute(&result));
  return result;
}

}  // namespace granula::platform
