#include "platforms/giraph.h"

#include <algorithm>
#include <memory>

#include "algorithms/pregel.h"
#include "cluster/monitor.h"
#include "cluster/provisioning.h"
#include "cluster/storage.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "granula/models/models.h"
#include "graph/partition.h"
#include "platforms/message_store.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace granula::platform {

namespace {

using core::JobLogger;
using core::OpId;
using graph::VertexId;

// HDFS defaults, with replication clamped to the cluster size so small
// test clusters still work.
cluster::Hdfs::Options HdfsOptionsFor(
    const cluster::ClusterConfig& cluster_config) {
  cluster::Hdfs::Options options;
  // Scaled-down block size so the scaled input still splits into enough
  // blocks for every worker to load in parallel (real Giraph: 128 MiB
  // blocks on a ~15 GB dg1000 edge file).
  options.block_size = 256 * 1024;
  options.replication = std::min<uint32_t>(options.replication,
                                           cluster_config.num_nodes);
  return options;
}

// One full Giraph job execution inside a private simulator. The class holds
// the cross-coroutine state (values, message store, barriers); Main() is
// the job driver and spawns per-worker coroutines per phase.
class GiraphJob {
 public:
  GiraphJob(const GiraphCostModel& cost, const graph::Graph& graph,
            const algo::PregelProgram& program,
            const cluster::ClusterConfig& cluster_config,
            const JobConfig& job_config)
      : cost_(cost),
        graph_(graph),
        program_(program),
        job_config_(job_config),
        cluster_(&sim_, cluster_config),
        hdfs_(&cluster_, HdfsOptionsFor(cluster_config)),
        yarn_(&cluster_, cluster::YarnManager::Options{}),
        zk_(&cluster_, /*server_node=*/0, cluster::ZooKeeper::Options{}),
        monitor_(&cluster_, job_config.monitor_interval),
        logger_([this] { return sim_.Now(); }),
        start_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        end_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        messages_(graph.num_vertices(), program.combiner()),
        injector_(job_config_.faults) {}

  Status Execute(JobResult* out) {
    const uint32_t workers = job_config_.num_workers;
    if (workers == 0 || workers > cluster_.num_nodes()) {
      return Status::InvalidArgument(
          "num_workers must be in [1, num_nodes]");
    }
    InstallLogWriteFaults(&logger_, job_config_.faults);
    if (!job_config_.live_log_path.empty()) {
      GRANULA_RETURN_IF_ERROR(logger_.StreamTo(
          job_config_.live_log_path, job_config_.live_log_delay_us));
    }

    // Input file on HDFS (what LoadGraph reads).
    input_bytes_ = graph::EdgeListFileBytes(graph_);
    GRANULA_RETURN_IF_ERROR(hdfs_.CreateFile("/input/graph.e", input_bytes_));

    // Partition (edge cut) and initialize algorithm state.
    GRANULA_ASSIGN_OR_RETURN(partition_,
                             graph::PartitionEdgeCut(graph_, workers));
    values_.resize(graph_.num_vertices());
    active_.resize(graph_.num_vertices());
    partition_active_.assign(workers, 0);
    active_total_ = 0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      values_[v] = program_.InitialValue(v, graph_.num_vertices());
      bool is_active = program_.InitiallyActive(v);
      active_[v] = is_active ? 1 : 0;
      if (is_active) {
        ++active_total_;
        ++partition_active_[partition_.owner[v]];
      }
    }
    // Per-partition pending-message counts, maintained at Deliver time, let
    // the master and idle workers skip O(V) frontier scans.
    messages_.SetOwners(&partition_.owner, workers);
    // Undirected adjacency, shared by all workers (each consults only its
    // owned vertices). Built on the host pool.
    adjacency_ = graph::Csr::BuildUndirected(graph_.num_vertices(),
                                             graph_.edges());

    sim_.Spawn(Main());
    sim_.Run();

    logger_.StopStreaming();
    if (!job_status_.ok()) return job_status_;
    out->vertex_values = values_;
    out->records = logger_.TakeRecords();
    out->environment = ToEnvironmentRecords(monitor_.samples());
    out->supersteps = superstep_;
    out->total_seconds = sim_.Now().seconds();
    out->network_bytes = cluster_.network_bytes_sent();
    out->completed = !job_failed_;
    out->failed_attempts = failed_attempts_;
    out->restarts = restarts_;
    out->lost_seconds = lost_time_.seconds();
    return Status::OK();
  }

 private:
  uint32_t WorkerNode(uint32_t w) const { return containers_[w].node; }
  sim::Cpu& WorkerCpu(uint32_t w) { return cluster_.node(WorkerNode(w)).cpu(); }

  // ------------------------------------------------------------- driver --
  sim::Task<> Main() {
    monitor_.Start();
    OpId root = logger_.StartOperation(core::kNoOp, core::ops::kJobActor,
                                       job_config_.job_id,
                                       core::ops::kJobMission, "GiraphJob");
    co_await RunStartup(root);
    co_await RunLoadGraph(root);
    if (!job_failed_) co_await RunProcessGraph(root);
    if (job_failed_) {
      // Retries exhausted: the job dies here. The root (and the failed
      // phase) stay open — lint repairs them and the archive is marked
      // kIncomplete, exactly like a truncated real-world capture.
      monitor_.Stop();
      co_return;
    }
    if (job_config_.offload_results) co_await RunOffloadGraph(root);
    co_await RunCleanup(root);
    logger_.AddInfo(root, "NetworkBytes",
                    Json(cluster_.network_bytes_sent()));
    logger_.EndOperation(root);
    monitor_.Stop();
  }

  // ------------------------------------------------------------ startup --
  sim::Task<> RunStartup(OpId root) {
    OpId startup =
        logger_.StartOperation(root, core::ops::kJobActor,
                               job_config_.job_id, core::ops::kStartup,
                               core::ops::kStartup);

    OpId job_startup = logger_.StartOperation(startup, "Master", "Master-0",
                                              "JobStartup", "JobStartup");
    co_await sim_.Delay(SimTime::Millis(700));  // client submission RPC
    co_await yarn_.LaunchApplicationMaster(/*am_node=*/0);
    logger_.EndOperation(job_startup);

    OpId launch = logger_.StartOperation(startup, "Master", "Master-0",
                                         "LaunchWorkers", "LaunchWorkers");
    co_await yarn_.AllocateContainers(0, job_config_.num_workers,
                                      &containers_);
    std::vector<sim::ProcessHandle> locals;
    for (uint32_t w = 0; w < job_config_.num_workers; ++w) {
      locals.push_back(sim_.Spawn(WorkerLocalStartup(launch, w)));
    }
    co_await sim::JoinAll(std::move(locals));
    logger_.EndOperation(launch);
    logger_.EndOperation(startup);
  }

  sim::Task<> WorkerLocalStartup(OpId parent, uint32_t w) {
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("Worker-%u", w + 1), "LocalStartup",
        StrFormat("LocalStartup-%u", w + 1));
    // Worker registration and partition assignment via ZooKeeper.
    co_await zk_.Op(WorkerNode(w));
    co_await zk_.Op(WorkerNode(w));
    co_await sim_.Delay(SimTime::Millis(350));  // service init
    logger_.EndOperation(op);
  }

  // --------------------------------------------------------- load graph --
  sim::Task<> RunLoadGraph(OpId root) {
    OpId load = logger_.StartOperation(root, core::ops::kJobActor,
                                       job_config_.job_id,
                                       core::ops::kLoadGraph,
                                       core::ops::kLoadGraph);
    std::vector<sim::ProcessHandle> loaders;
    for (uint32_t w = 0; w < job_config_.num_workers; ++w) {
      loaders.push_back(sim_.Spawn(WorkerLoad(load, w)));
    }
    co_await sim::JoinAll(std::move(loaders));
    logger_.EndOperation(load);
  }

  sim::Task<> WorkerLoad(OpId parent, uint32_t w) {
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("Worker-%u", w + 1), "LoadHdfsData",
        StrFormat("LoadHdfsData-%u", w + 1));
    // Injected load faults (failed split reads / transient storage
    // errors): each failed attempt is a real child operation — a partial
    // read, the failure, and the retry backoff — before the load below
    // runs clean.
    if (injector_.enabled()) {
      uint32_t attempt = 0;
      while (const sim::FaultSpec* fault = injector_.LoadFault(w, attempt)) {
        OpId failed = logger_.StartOperation(
            op, "Worker", StrFormat("Worker-%u", w + 1),
            core::ops::kFailedAttempt,
            StrFormat("FailedAttempt-load-%u-%u", w + 1, attempt + 1));
        SimTime began = sim_.Now();
        co_await sim_.Delay(fault->work_before_crash);
        co_await sim_.Delay(injector_.Backoff(attempt));
        SimTime lost = sim_.Now() - began;
        logger_.AddInfo(failed, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
        logger_.AddInfo(failed, "LostTime", Json(lost.nanos()));
        logger_.EndOperation(failed);
        ++failed_attempts_;
        lost_time_ += lost;
        ++attempt;
        if (attempt >= injector_.policy().max_attempts) {
          job_failed_ = true;
          logger_.EndOperation(op);
          co_return;
        }
      }
    }
    // Workers split the input by block index (Giraph input splits).
    auto blocks = hdfs_.GetBlocks("/input/graph.e");
    uint64_t my_bytes = 0;
    if (blocks.ok()) {
      for (const cluster::Hdfs::Block& block : *blocks) {
        if (block.index % job_config_.num_workers != w) continue;
        my_bytes += block.bytes;
        co_await hdfs_.ReadBlock(WorkerNode(w), block);
      }
    }
    logger_.AddInfo(op, "BytesRead", Json(my_bytes));

    // Parsing + vertex/edge object construction: the CPU-heavy part of
    // loading the paper observes in Fig. 6.
    OpId local = logger_.StartOperation(
        op, "Worker", StrFormat("Worker-%u", w + 1), "LocalLoad",
        StrFormat("LocalLoad-%u", w + 1));
    SimTime parse = cost_.parse_cpu_per_byte * static_cast<double>(my_bytes);
    // Input splits are parsed by every core of the node — loading is the
    // most CPU-intensive phase of the job (paper Fig. 6).
    co_await RunOnThreads(&sim_, &WorkerCpu(w), parse,
                          job_config_.compute_threads * 2);
    logger_.EndOperation(local);
    logger_.EndOperation(op);
  }

  // ------------------------------------------------------ process graph --
  // O(1): active vertices and merged deliveries are counted incrementally
  // (per-chunk deltas at compute time, per-partition counts at Deliver
  // time) instead of scanning all vertices each superstep.
  bool AnyComputeCandidate() const {
    return active_total_ > 0 || messages_.current_total() > 0;
  }

  sim::Task<> RunProcessGraph(OpId root) {
    process_op_ = logger_.StartOperation(root, core::ops::kJobActor,
                                         job_config_.job_id,
                                         core::ops::kProcessGraph,
                                         core::ops::kProcessGraph);
    std::vector<sim::ProcessHandle> loops;
    for (uint32_t w = 0; w < job_config_.num_workers; ++w) {
      loops.push_back(sim_.Spawn(WorkerProcessLoop(w)));
    }
    const sim::RetryPolicy& policy = injector_.policy();
    uint64_t next_checkpoint =
        injector_.enabled() && policy.checkpoint_interval > 0
            ? policy.checkpoint_interval
            : 0;
    uint32_t attempt = 0;  // failed attempts of the *current* superstep
    while (true) {
      uint64_t max_steps = program_.max_supersteps();
      if (!AnyComputeCandidate() ||
          (max_steps > 0 && superstep_ >= max_steps)) {
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      // Periodic checkpoint (real Giraph: superstep-granularity snapshots
      // to HDFS). Only under a non-empty fault plan, so fault-free runs
      // stay byte-identical.
      if (next_checkpoint != 0 && superstep_ == next_checkpoint) {
        co_await RunCheckpoint();
        next_checkpoint += policy.checkpoint_interval;
      }
      // A doomed attempt: the victim worker dies `work_before_crash`
      // into the superstep and the master notices after the heartbeat
      // timeout. Workers stay parked at the start barrier, and no
      // algorithm state moves — the retry recomputes from scratch.
      if (const sim::FaultSpec* crash =
              injector_.enabled() ? injector_.CrashAt(superstep_, attempt)
                                  : nullptr) {
        co_await RunFailedSuperstep(*crash, attempt);
        ++attempt;
        if (attempt >= policy.max_attempts) {
          job_failed_ = true;
          process_done_ = true;
          co_await start_barrier_.Arrive();  // release workers to exit
          break;
        }
        co_await RunRestart(*crash, attempt);
        continue;  // retry the same superstep
      }
      SimTime step_began = sim_.Now();
      superstep_op_ = logger_.StartOperation(
          process_op_, "Master", "Master-0", "Superstep",
          StrFormat("Superstep-%llu",
                    static_cast<unsigned long long>(superstep_)));
      co_await start_barrier_.Arrive();  // release workers into superstep
      co_await end_barrier_.Arrive();    // wait for all workers
      logger_.EndOperation(superstep_op_);

      // Master-side coordination between supersteps.
      OpId sync = logger_.StartOperation(
          process_op_, "Master", "Master-0", "SyncZookeeper",
          StrFormat("SyncZookeeper-%llu",
                    static_cast<unsigned long long>(superstep_)));
      for (uint32_t w = 0; w < job_config_.num_workers; ++w) {
        co_await zk_.Op(0);
      }
      messages_.Swap();
      ++superstep_;
      attempt = 0;
      // What a restart would have to recompute since the last checkpoint.
      replay_cost_ += sim_.Now() - step_began;
      logger_.EndOperation(sync);
    }
    co_await sim::JoinAll(std::move(loops));
    if (job_failed_) co_return;  // leave ProcessGraph (and the root) open
    logger_.AddInfo(process_op_, "Supersteps", Json(superstep_));
    logger_.EndOperation(process_op_);
  }

  // Master@Checkpoint with one parallel Worker@Checkpoint HDFS write per
  // worker; afterwards a restart only replays supersteps newer than this.
  sim::Task<> RunCheckpoint() {
    OpId checkpoint = logger_.StartOperation(
        process_op_, "Master", "Master-0", core::ops::kCheckpoint,
        StrFormat("Checkpoint-%llu",
                  static_cast<unsigned long long>(superstep_)));
    logger_.AddInfo(checkpoint, "Superstep", Json(superstep_));
    std::vector<sim::ProcessHandle> writers;
    for (uint32_t w = 0; w < job_config_.num_workers; ++w) {
      writers.push_back(sim_.Spawn(WorkerCheckpoint(checkpoint, w)));
    }
    co_await sim::JoinAll(std::move(writers));
    logger_.EndOperation(checkpoint);
    last_checkpoint_step_ = superstep_;
    replay_cost_ = SimTime();
  }

  sim::Task<> WorkerCheckpoint(OpId parent, uint32_t w) {
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("Worker-%u", w + 1),
        core::ops::kCheckpoint,
        StrFormat("Checkpoint-%llu-%u",
                  static_cast<unsigned long long>(superstep_), w + 1));
    uint64_t bytes = cost_.checkpoint_bytes_per_vertex *
                     partition_.partitions[w].vertices.size();
    co_await hdfs_.WriteFromNode(WorkerNode(w),
                                 StrFormat("/checkpoint/part-%u", w), bytes);
    logger_.AddInfo(op, "BytesWritten", Json(bytes));
    logger_.EndOperation(op);
  }

  // The doomed attempt itself: a real operation in the tree, so lost
  // work is visible to the archiver and the chokepoint analysis.
  sim::Task<> RunFailedSuperstep(const sim::FaultSpec& crash,
                                 uint32_t attempt) {
    OpId failed = logger_.StartOperation(
        process_op_, "Worker", StrFormat("Worker-%u", crash.worker + 1),
        core::ops::kFailedAttempt,
        StrFormat("FailedAttempt-%llu-%u",
                  static_cast<unsigned long long>(superstep_), attempt + 1));
    SimTime began = sim_.Now();
    co_await sim_.Delay(crash.work_before_crash);
    co_await sim_.Delay(injector_.policy().detect_timeout);
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(failed, "Superstep", Json(superstep_));
    logger_.AddInfo(failed, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(failed, "CrashedWorker",
                    Json(StrFormat("Worker-%u", crash.worker + 1)));
    logger_.AddInfo(failed, "LostTime", Json(lost.nanos()));
    logger_.EndOperation(failed);
    ++failed_attempts_;
    lost_time_ += lost;
  }

  // Recovery: backoff, a replacement container, checkpoint read-back, and
  // replay of the supersteps committed since the last checkpoint.
  sim::Task<> RunRestart(const sim::FaultSpec& crash, uint32_t attempt) {
    OpId restart = logger_.StartOperation(
        process_op_, "Master", "Master-0", core::ops::kRestart,
        StrFormat("Restart-%llu-%u",
                  static_cast<unsigned long long>(superstep_), attempt));
    SimTime began = sim_.Now();
    co_await sim_.Delay(injector_.Backoff(attempt - 1));
    std::vector<cluster::YarnManager::Container> replacement;
    co_await yarn_.AllocateContainers(0, 1, &replacement);
    if (last_checkpoint_step_ > 0) {
      // The replacement worker reloads the crashed worker's state.
      auto blocks =
          hdfs_.GetBlocks(StrFormat("/checkpoint/part-%u", crash.worker));
      if (blocks.ok()) {
        for (const cluster::Hdfs::Block& block : *blocks) {
          co_await hdfs_.ReadBlock(WorkerNode(crash.worker), block);
        }
      }
    }
    co_await sim_.Delay(replay_cost_);
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(restart, "Attempt", Json(static_cast<int64_t>(attempt)));
    logger_.AddInfo(restart, "ReplayedSupersteps",
                    Json(superstep_ - last_checkpoint_step_));
    logger_.AddInfo(restart, "LostTime", Json(lost.nanos()));
    logger_.EndOperation(restart);
    ++restarts_;
    lost_time_ += lost;
  }

  sim::Task<> WorkerProcessLoop(uint32_t w) {
    while (true) {
      co_await start_barrier_.Arrive();
      if (process_done_) co_return;
      co_await WorkerSuperstep(w);
    }
  }

  // The Pregel vertex view handed to algorithm programs. One instance per
  // ParallelFor chunk: deliveries go to the chunk's message-store shard and
  // all statistics accumulate chunk-locally, to be merged in chunk order
  // after the parallel region (the determinism contract of ThreadPool).
  class VertexContext : public algo::PregelVertexContext {
   public:
    VertexContext(GiraphJob* job, uint32_t worker, uint64_t shard)
        : job_(job),
          worker_(worker),
          shard_(shard),
          remote_bytes_(job->job_config_.num_workers, 0) {}

    void Reset(VertexId v) {
      vertex_ = v;
      voted_halt_ = false;
    }
    bool voted_halt() const { return voted_halt_; }
    void AddReceived(uint64_t n) { received_ += n; }
    void AddComputed() { ++computed_; }
    void AddActiveDelta(int64_t d) { active_delta_ += d; }
    uint64_t computed() const { return computed_; }
    uint64_t received() const { return received_; }
    uint64_t messages_sent() const { return messages_sent_; }
    int64_t active_delta() const { return active_delta_; }
    // Flat per-target-worker byte counts (indexed by worker id; zero for
    // local or unused workers) — replaces the former std::map.
    const std::vector<uint64_t>& remote_bytes() const {
      return remote_bytes_;
    }

    VertexId vertex_id() const override { return vertex_; }
    uint64_t superstep() const override { return job_->superstep_; }
    uint64_t num_vertices() const override {
      return job_->graph_.num_vertices();
    }
    double value() const override { return job_->values_[vertex_]; }
    void set_value(double v) override { job_->values_[vertex_] = v; }
    std::span<const VertexId> neighbors() const override {
      return job_->adjacency_.neighbors(vertex_);
    }
    void SendTo(VertexId target, double message) override {
      job_->messages_.Deliver(shard_, target, message);
      ++messages_sent_;
      uint32_t target_worker = job_->partition_.owner[target];
      if (target_worker != worker_) {
        remote_bytes_[target_worker] += job_->cost_.bytes_per_message;
      }
    }
    void SendToAllNeighbors(double message) override {
      for (VertexId nbr : job_->adjacency_.neighbors(vertex_)) {
        SendTo(nbr, message);
      }
    }
    void VoteToHalt() override { voted_halt_ = true; }

   private:
    GiraphJob* job_;
    uint32_t worker_;
    uint64_t shard_;
    VertexId vertex_ = 0;
    bool voted_halt_ = false;
    uint64_t computed_ = 0;
    uint64_t received_ = 0;
    uint64_t messages_sent_ = 0;
    int64_t active_delta_ = 0;
    std::vector<uint64_t> remote_bytes_;
  };

  sim::Task<> WorkerSuperstep(uint32_t w) {
    std::string actor_id = StrFormat("Worker-%u", w + 1);
    OpId local = logger_.StartOperation(
        superstep_op_, "Worker", actor_id, "LocalSuperstep",
        StrFormat("LocalSuperstep-%u", w + 1));

    // PreStep: barrier entry bookkeeping with ZooKeeper.
    OpId prestep = logger_.StartOperation(
        local, "Worker", actor_id, "PreStep",
        StrFormat("PreStep-%llu",
                  static_cast<unsigned long long>(superstep_)));
    co_await zk_.Op(WorkerNode(w));
    co_await sim_.Delay(cost_.prestep_overhead);
    logger_.EndOperation(prestep);

    // Compute: run the vertex program over this worker's partition.
    OpId compute = logger_.StartOperation(
        local, "Worker", actor_id, "Compute",
        StrFormat("Compute-%llu",
                  static_cast<unsigned long long>(superstep_)));
    uint64_t vertices_computed = 0;
    uint64_t messages_received = 0;
    uint64_t messages_sent = 0;
    std::vector<uint64_t> remote_bytes(job_config_.num_workers, 0);
    // Frontier fast path: a partition with no active vertices and no
    // delivered messages has nothing to compute — skip the vertex scan
    // entirely (the loop below would visit every vertex just to skip it).
    if (partition_active_[w] > 0 || messages_.CurrentPartitionCount(w) > 0) {
      const std::vector<VertexId>& verts = partition_.partitions[w].vertices;
      const uint64_t grain = ChunkedGrain(verts.size());
      const uint64_t chunks = ThreadPool::NumChunks(verts.size(), grain);
      const uint64_t first_shard = messages_.AddShards(chunks);
      std::vector<VertexContext> ctxs;
      ctxs.reserve(chunks);
      for (uint64_t c = 0; c < chunks; ++c) {
        ctxs.emplace_back(this, w, first_shard + c);
      }
      // Host-parallel vertex loop. Chunks touch disjoint vertices (values,
      // active flags) and deliver into their own shards; the simulator is
      // suspended, so no simulation state moves underneath us.
      ParallelFor(0, verts.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    VertexContext& ctx = ctxs[chunk];
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = verts[i];
                      if (active_[v] == 0 && !messages_.HasCurrent(v)) {
                        continue;
                      }
                      ctx.Reset(v);
                      ctx.AddReceived(messages_.CurrentDeliveryCount(v));
                      program_.Compute(ctx, messages_.CurrentMessages(v));
                      uint8_t now_active = ctx.voted_halt() ? 0 : 1;
                      ctx.AddActiveDelta(static_cast<int64_t>(now_active) -
                                         static_cast<int64_t>(active_[v]));
                      active_[v] = now_active;
                      ctx.AddComputed();
                    }
                  });
      // Deterministic reduction in chunk order.
      int64_t active_delta = 0;
      for (const VertexContext& ctx : ctxs) {
        vertices_computed += ctx.computed();
        messages_received += ctx.received();
        messages_sent += ctx.messages_sent();
        active_delta += ctx.active_delta();
        for (uint32_t t = 0; t < job_config_.num_workers; ++t) {
          remote_bytes[t] += ctx.remote_bytes()[t];
        }
      }
      partition_active_[w] = static_cast<uint64_t>(
          static_cast<int64_t>(partition_active_[w]) + active_delta);
      active_total_ = static_cast<uint64_t>(
          static_cast<int64_t>(active_total_) + active_delta);
    }
    SimTime compute_cost =
        cost_.compute_per_vertex * static_cast<double>(vertices_computed) +
        cost_.compute_per_message * static_cast<double>(messages_received);
    co_await RunOnThreads(&sim_, &WorkerCpu(w), compute_cost,
                          job_config_.compute_threads);
    logger_.AddInfo(compute, "VerticesComputed", Json(vertices_computed));
    logger_.AddInfo(compute, "MessagesReceived", Json(messages_received));
    logger_.AddInfo(compute, "MessagesSent", Json(messages_sent));
    logger_.EndOperation(compute);

    // Message: flush outgoing buffers over the network (ascending worker
    // id, as the former std::map iteration did).
    OpId message = logger_.StartOperation(
        local, "Worker", actor_id, "Message",
        StrFormat("Message-%llu",
                  static_cast<unsigned long long>(superstep_)));
    uint64_t bytes_sent = 0;
    for (uint32_t target = 0; target < job_config_.num_workers; ++target) {
      uint64_t bytes = remote_bytes[target];
      if (bytes == 0) continue;
      bytes_sent += bytes;
      co_await cluster_.Send(WorkerNode(w), WorkerNode(target), bytes);
    }
    logger_.AddInfo(message, "BytesSent", Json(bytes_sent));
    logger_.EndOperation(message);

    // PostStep: wait at the superstep barrier (the gray blocks of Fig. 8).
    OpId poststep = logger_.StartOperation(
        local, "Worker", actor_id, "PostStep",
        StrFormat("PostStep-%llu",
                  static_cast<unsigned long long>(superstep_)));
    co_await sim_.Delay(cost_.poststep_overhead);
    co_await end_barrier_.Arrive();
    logger_.EndOperation(poststep);
    logger_.EndOperation(local);
  }

  // ----------------------------------------------------- offload graph --
  sim::Task<> RunOffloadGraph(OpId root) {
    OpId offload = logger_.StartOperation(root, core::ops::kJobActor,
                                          job_config_.job_id,
                                          core::ops::kOffloadGraph,
                                          core::ops::kOffloadGraph);
    std::vector<sim::ProcessHandle> writers;
    for (uint32_t w = 0; w < job_config_.num_workers; ++w) {
      writers.push_back(sim_.Spawn(WorkerOffload(offload, w)));
    }
    co_await sim::JoinAll(std::move(writers));
    logger_.EndOperation(offload);
  }

  sim::Task<> WorkerOffload(OpId parent, uint32_t w) {
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("Worker-%u", w + 1), "OffloadHdfsData",
        StrFormat("OffloadHdfsData-%u", w + 1));
    uint64_t bytes = cost_.result_bytes_per_vertex *
                     partition_.partitions[w].vertices.size();
    OpId local = logger_.StartOperation(
        op, "Worker", StrFormat("Worker-%u", w + 1), "LocalOffload",
        StrFormat("LocalOffload-%u", w + 1));
    co_await RunOnThreads(
        &sim_, &WorkerCpu(w),
        cost_.serialize_cpu_per_byte * static_cast<double>(bytes),
        job_config_.compute_threads);
    logger_.EndOperation(local);
    co_await hdfs_.WriteFromNode(WorkerNode(w),
                                 StrFormat("/output/part-%u", w), bytes);
    logger_.AddInfo(op, "BytesWritten", Json(bytes));
    logger_.EndOperation(op);
  }

  // ------------------------------------------------------------ cleanup --
  sim::Task<> RunCleanup(OpId root) {
    OpId cleanup = logger_.StartOperation(root, core::ops::kJobActor,
                                          job_config_.job_id,
                                          core::ops::kCleanup,
                                          core::ops::kCleanup);
    OpId job_cleanup = logger_.StartOperation(cleanup, "Master", "Master-0",
                                              "JobCleanup", "JobCleanup");
    OpId op = logger_.StartOperation(job_cleanup, "Master", "Master-0",
                                     "AbortWorkers", "AbortWorkers");
    co_await sim_.Delay(cost_.abort_workers);
    logger_.EndOperation(op);
    op = logger_.StartOperation(job_cleanup, "Client", "Client-0",
                                "ClientCleanup", "ClientCleanup");
    co_await sim_.Delay(cost_.client_cleanup);
    logger_.EndOperation(op);
    op = logger_.StartOperation(job_cleanup, "Master", "Master-0",
                                "ServerCleanup", "ServerCleanup");
    co_await yarn_.Cleanup();
    co_await sim_.Delay(cost_.server_cleanup);
    logger_.EndOperation(op);
    op = logger_.StartOperation(job_cleanup, "ZooKeeper", "ZooKeeper-0",
                                "ZkCleanup", "ZkCleanup");
    co_await zk_.Op(0);
    co_await sim_.Delay(cost_.zk_cleanup);
    logger_.EndOperation(op);
    logger_.EndOperation(job_cleanup);
    logger_.EndOperation(cleanup);
  }

  // --------------------------------------------------------------- state --
  const GiraphCostModel& cost_;
  const graph::Graph& graph_;
  const algo::PregelProgram& program_;
  JobConfig job_config_;

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::Hdfs hdfs_;
  cluster::YarnManager yarn_;
  cluster::ZooKeeper zk_;
  cluster::EnvironmentMonitor monitor_;
  JobLogger logger_;

  sim::Barrier start_barrier_;
  sim::Barrier end_barrier_;

  graph::EdgeCutResult partition_;
  graph::Csr adjacency_;
  std::vector<double> values_;
  std::vector<uint8_t> active_;
  // Frontier bookkeeping (replaces O(V) scans): live counts of active
  // vertices, total and per partition, updated with per-chunk deltas.
  uint64_t active_total_ = 0;
  std::vector<uint64_t> partition_active_;
  MessageStore messages_;
  std::vector<cluster::YarnManager::Container> containers_;

  uint64_t input_bytes_ = 0;
  uint64_t superstep_ = 0;
  bool process_done_ = false;
  OpId process_op_ = core::kNoOp;
  OpId superstep_op_ = core::kNoOp;
  Status job_status_;

  // Fault injection (inert when the plan is empty).
  sim::FaultInjector injector_;
  uint64_t last_checkpoint_step_ = 0;
  SimTime replay_cost_;  // committed superstep time since last checkpoint
  bool job_failed_ = false;
  uint64_t failed_attempts_ = 0;
  uint64_t restarts_ = 0;
  SimTime lost_time_;
};

}  // namespace

Result<JobResult> GiraphPlatform::Run(
    const graph::Graph& graph, const algo::AlgorithmSpec& spec,
    const cluster::ClusterConfig& cluster_config,
    const JobConfig& job_config) const {
  GRANULA_ASSIGN_OR_RETURN(auto program, algo::MakePregelProgram(spec));
  GiraphJob job(cost_, graph, *program, cluster_config, job_config);
  JobResult result;
  GRANULA_RETURN_IF_ERROR(job.Execute(&result));
  return result;
}

}  // namespace granula::platform
