#ifndef GRANULA_PLATFORMS_PGXD_H_
#define GRANULA_PLATFORMS_PGXD_H_

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "graph/graph.h"
#include "platforms/platform.h"

namespace granula::platform {

struct PgxdCostModel {
  // LoadGraph: parallel CSR build from per-node local copies of the input
  // (Table 1: "local/shared"; PGX.D's design point is fast loading on
  // powerful nodes).
  SimTime parse_cpu_per_byte = SimTime::Micros(12);
  SimTime csr_build_per_edge = SimTime::Micros(3);
  // ProcessGraph: per-edge costs of the two directions. A push touches
  // only the frontier's out-edges but does scattered (atomic) writes; a
  // pull scans the destination side sequentially and is cheaper per edge.
  SimTime push_per_edge = SimTime::Micros(10);
  SimTime pull_per_edge = SimTime::Micros(6);
  SimTime apply_per_vertex = SimTime::Micros(8);
  SimTime iteration_overhead = SimTime::Millis(15);
  uint64_t bytes_per_update = 12;
  // Native process launch (no resource manager).
  SimTime process_spawn = SimTime::Millis(120);
  // OffloadGraph.
  SimTime serialize_cpu_per_byte = SimTime::Micros(2);
  uint64_t result_bytes_per_vertex = 12;
};

// When the engine may choose the pull direction (bench ablation hook).
enum class PgxdDirection { kAuto, kPushOnly, kPullOnly };

// A PGX.D-like platform (paper Table 1, row 4): a fast distributed engine
// with native provisioning, CSR storage built from per-node local input
// copies, and a *push-pull* processing model — per iteration the engine
// chooses to push updates along the frontier's out-edges or to pull from
// all vertices' in-edges, whichever is cheaper (direction-optimizing
// traversal). The choice is recorded as an info on each iteration
// operation, so Granula archives show when the engine switched.
//
// Algorithms are the same GasProgram objects PowerGraph runs: for a
// commutative/associative Sum, push and pull produce identical
// accumulators, so the direction is purely a performance decision —
// validated against the references in the test suite for every direction
// policy.
class PgxdPlatform {
 public:
  PgxdPlatform() = default;
  explicit PgxdPlatform(PgxdCostModel cost) : cost_(cost) {}
  PgxdPlatform(PgxdCostModel cost, PgxdDirection direction)
      : cost_(cost), direction_(direction) {}

  const PgxdCostModel& cost_model() const { return cost_; }

  Result<JobResult> Run(const graph::Graph& graph,
                        const algo::AlgorithmSpec& spec,
                        const cluster::ClusterConfig& cluster_config,
                        const JobConfig& job_config) const;

 private:
  PgxdCostModel cost_;
  PgxdDirection direction_ = PgxdDirection::kAuto;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_PGXD_H_
