#ifndef GRANULA_PLATFORMS_POWERGRAPH_H_
#define GRANULA_PLATFORMS_POWERGRAPH_H_

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "graph/graph.h"
#include "platforms/cost_model.h"
#include "platforms/platform.h"

namespace granula::platform {

// A from-scratch simulation of a PowerGraph-like platform: a synchronous
// Gather-Apply-Scatter engine over a greedy vertex-cut partitioning,
// launched MPI-style, loading from a single-server shared filesystem
// (paper Table 1, row 2).
//
// Faithful to the behaviors the paper dissects: graph loading is
// *sequential on rank 0* (the Fig. 7 single-busy-node pattern) followed by
// parallel finalization; GAS stages run per-rank per-iteration with
// master/mirror synchronization traffic. The engine really executes the
// GAS program; outputs are validated against the reference algorithms.
class PowerGraphPlatform {
 public:
  PowerGraphPlatform() = default;
  explicit PowerGraphPlatform(PowerGraphCostModel cost) : cost_(cost) {}

  const PowerGraphCostModel& cost_model() const { return cost_; }

  Result<JobResult> Run(const graph::Graph& graph,
                        const algo::AlgorithmSpec& spec,
                        const cluster::ClusterConfig& cluster_config,
                        const JobConfig& job_config) const;

 private:
  PowerGraphCostModel cost_;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_POWERGRAPH_H_
