#include "platforms/platform.h"

#include <algorithm>

#include "sim/resources.h"

namespace granula::platform {

std::vector<core::EnvironmentRecord> ToEnvironmentRecords(
    const std::vector<cluster::UtilizationSample>& samples) {
  std::vector<core::EnvironmentRecord> records;
  records.reserve(samples.size());
  for (const cluster::UtilizationSample& s : samples) {
    core::EnvironmentRecord r;
    r.node = s.node;
    r.hostname = s.hostname;
    r.time_seconds = s.time_seconds;
    r.cpu_seconds_per_second = s.cpu_seconds_per_second;
    r.net_bytes_per_second = s.net_bytes_per_second;
    r.disk_bytes_per_second = s.disk_bytes_per_second;
    records.push_back(std::move(r));
  }
  return records;
}

sim::Task<> RunOnThreads(sim::Simulator* sim, sim::Cpu* cpu, SimTime total,
                         int threads) {
  threads = std::max(1, std::min(threads, cpu->cores()));
  if (total <= SimTime()) co_return;
  SimTime slice = total * (1.0 / threads);
  std::vector<sim::ProcessHandle> handles;
  handles.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    handles.push_back(sim->Spawn(cpu->Run(slice)));
  }
  co_await sim::JoinAll(std::move(handles));
}

void InstallLogWriteFaults(core::JobLogger* logger,
                           const sim::FaultPlan& faults) {
  bool has_log_faults = false;
  for (const sim::FaultSpec& spec : faults.specs()) {
    if (spec.kind == sim::FaultKind::kLogWrite) has_log_faults = true;
  }
  if (!has_log_faults) return;
  sim::FaultInjector injector(faults);
  logger->SetWriteFaultHook(
      [injector](const core::LogRecord& record) {
        switch (injector.LogFaultFor(record.seq)) {
          case sim::LogWriteFault::kDrop:
            return core::JobLogger::WriteFault::kDrop;
          case sim::LogWriteFault::kTruncate:
            return core::JobLogger::WriteFault::kTruncate;
          default:
            return core::JobLogger::WriteFault::kNone;
        }
      });
}

}  // namespace granula::platform
