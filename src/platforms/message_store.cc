#include "platforms/message_store.h"

#include <algorithm>
#include <bit>

#include "common/thread_pool.h"

namespace granula::platform {

namespace {

// Releases a vector's memory when its capacity exceeds `retain_bytes`,
// otherwise keeps the allocation for reuse next superstep. This bounds
// resident memory after a high-water superstep instead of retaining the
// peak forever.
template <typename T>
void ReleaseOrClear(std::vector<T>& v, uint64_t retain_bytes) {
  if (v.capacity() * sizeof(T) > retain_bytes) {
    std::vector<T>().swap(v);
  } else {
    v.clear();
  }
}

}  // namespace

MessageStore::MessageStore(uint64_t num_vertices, algo::Combiner combiner)
    : num_vertices_(num_vertices), combiner_(combiner) {
  // Bucket width: next power of two of ceil(V / 64), giving at most 64
  // contiguous-range buckets — enough merge parallelism without per-shard
  // bucket arrays dominating memory.
  uint64_t width = 1;
  if (num_vertices_ > 64) {
    width = std::bit_ceil((num_vertices_ + 63) / 64);
  }
  bucket_shift_ = static_cast<uint64_t>(std::countr_zero(width));
  num_buckets_ =
      num_vertices_ == 0 ? 0 : ((num_vertices_ + width - 1) >> bucket_shift_);

  count_.assign(num_vertices_, 0);
  if (combiner_ == algo::Combiner::kNone) {
    offset_.assign(num_vertices_, 0);
    bucket_values_.resize(num_buckets_);
  } else {
    value_.assign(num_vertices_, 0.0);
  }
  shards_.resize(1);
  InitShard(shards_[0]);
}

void MessageStore::InitShard(Shard& shard) const {
  shard.buckets.resize(num_buckets_);
  shard.partition_counts.assign(num_partitions_, 0);
  shard.total = 0;
}

void MessageStore::SetOwners(const std::vector<uint32_t>* owner,
                             uint32_t num_partitions) {
  owner_ = owner;
  num_partitions_ = num_partitions;
  current_partition_counts_.assign(num_partitions_, 0);
  for (Shard& s : shards_) s.partition_counts.assign(num_partitions_, 0);
}

uint64_t MessageStore::AddShards(uint64_t n) {
  uint64_t first = live_shards_;
  live_shards_ += n;
  if (shards_.size() < live_shards_) {
    uint64_t old_size = shards_.size();
    shards_.resize(live_shards_);
    for (uint64_t i = old_size; i < live_shards_; ++i) InitShard(shards_[i]);
  }
  return first;
}

uint64_t MessageStore::pending_total() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.total;
  return total;
}

void MessageStore::MergeBucket(uint64_t b) {
  if (combiner_ != algo::Combiner::kNone) {
    // Fold shards in index order — the global sequential delivery order.
    // (kMin/kMax are exact in any order; kSum folds in the same order as
    // the sequential engine, so results are bit-identical regardless.)
    for (const Shard& s : shards_) {
      for (const Msg& m : s.buckets[b]) {
        if (count_[m.target]++ == 0) {
          value_[m.target] = m.value;
          continue;
        }
        switch (combiner_) {
          case algo::Combiner::kMin:
            value_[m.target] = std::min(value_[m.target], m.value);
            break;
          case algo::Combiner::kMax:
            value_[m.target] = std::max(value_[m.target], m.value);
            break;
          case algo::Combiner::kSum:
            value_[m.target] += m.value;
            break;
          case algo::Combiner::kNone:
            break;
        }
      }
    }
    return;
  }
  // No combiner: counting sort by target, stable in (shard, seq) order —
  // i.e. exactly the order a sequential engine would have appended.
  for (const Shard& s : shards_) {
    for (const Msg& m : s.buckets[b]) ++count_[m.target];
  }
  uint64_t run = 0;
  const uint64_t lo = BucketBegin(b);
  const uint64_t hi = BucketEnd(b);
  for (uint64_t v = lo; v < hi; ++v) {
    offset_[v] = run;
    run += count_[v];
    count_[v] = 0;  // reused as the placement cursor below
  }
  std::vector<double>& values = bucket_values_[b];
  values.resize(run);
  for (const Shard& s : shards_) {
    for (const Msg& m : s.buckets[b]) {
      values[offset_[m.target] + count_[m.target]++] = m.value;
    }
  }
}

void MessageStore::Swap() {
  // Drop the previous superstep's current state, touching only buckets
  // that actually held messages.
  for (uint64_t b : touched_) {
    const uint64_t hi = BucketEnd(b);
    for (uint64_t v = BucketBegin(b); v < hi; ++v) count_[v] = 0;
    if (combiner_ == algo::Combiner::kNone) {
      ReleaseOrClear(bucket_values_[b], kRetainBytes);
    }
  }
  touched_.clear();
  for (uint64_t b = 0; b < num_buckets_; ++b) {
    for (const Shard& s : shards_) {
      if (!s.buckets[b].empty()) {
        touched_.push_back(b);
        break;
      }
    }
  }
  // Buckets cover disjoint vertex ranges, so merging parallelizes cleanly;
  // within a bucket the shard fold order is fixed, so the result does not
  // depend on the host-thread count.
  ParallelFor(0, touched_.size(), /*grain=*/1,
              [&](uint64_t, uint64_t lo, uint64_t hi) {
                for (uint64_t i = lo; i < hi; ++i) MergeBucket(touched_[i]);
              });

  current_total_ = 0;
  std::fill(current_partition_counts_.begin(),
            current_partition_counts_.end(), 0);
  for (Shard& s : shards_) {
    current_total_ += s.total;
    s.total = 0;
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      current_partition_counts_[p] += s.partition_counts[p];
      s.partition_counts[p] = 0;
    }
    for (std::vector<Msg>& bucket : s.buckets) {
      ReleaseOrClear(bucket, kRetainBytes);
    }
  }
  live_shards_ = 1;
}

uint64_t MessageStore::ResidentBytes() const {
  uint64_t bytes = 0;
  for (const Shard& s : shards_) {
    for (const std::vector<Msg>& bucket : s.buckets) {
      bytes += bucket.capacity() * sizeof(Msg);
    }
  }
  for (const std::vector<double>& bucket : bucket_values_) {
    bytes += bucket.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace granula::platform
