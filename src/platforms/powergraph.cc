#include "platforms/powergraph.h"

#include <algorithm>
#include <memory>

#include "algorithms/gas.h"
#include "cluster/monitor.h"
#include "cluster/provisioning.h"
#include "cluster/storage.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "granula/models/models.h"
#include "graph/partition.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace granula::platform {

namespace {

using core::JobLogger;
using core::OpId;
using graph::VertexId;

class PowerGraphJob {
 public:
  PowerGraphJob(const PowerGraphCostModel& cost, const graph::Graph& graph,
                const algo::GasProgram& program,
                const cluster::ClusterConfig& cluster_config,
                const JobConfig& job_config)
      : cost_(cost),
        graph_(graph),
        program_(program),
        job_config_(job_config),
        cluster_(&sim_, cluster_config),
        sharedfs_(&cluster_, /*server_node=*/0),
        mpi_(&cluster_, cluster::MpiLauncher::Options{}),
        monitor_(&cluster_, job_config.monitor_interval),
        logger_([this] { return sim_.Now(); }),
        start_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        end_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        stage_barrier_(&sim_,
                       std::max(1, static_cast<int>(job_config.num_workers))),
        injector_(job_config_.faults) {
    // A zero worker count is rejected in Execute(); the max(1, ...) only
    // keeps the never-used barrier constructible until then.
  }

  Status Execute(JobResult* out) {
    const uint32_t ranks = job_config_.num_workers;
    if (ranks == 0 || ranks > cluster_.num_nodes()) {
      return Status::InvalidArgument("num_workers must be in [1, num_nodes]");
    }
    InstallLogWriteFaults(&logger_, job_config_.faults);
    if (!job_config_.live_log_path.empty()) {
      GRANULA_RETURN_IF_ERROR(logger_.StreamTo(
          job_config_.live_log_path, job_config_.live_log_delay_us));
    }

    input_bytes_ = graph::EdgeListFileBytes(graph_);
    GRANULA_RETURN_IF_ERROR(
        sharedfs_.CreateFile("/data/graph.e", input_bytes_));

    if (job_config_.use_random_vertex_cut) {
      GRANULA_ASSIGN_OR_RETURN(
          partition_, graph::PartitionVertexCutRandom(graph_, ranks,
                                                      /*seed=*/1));
    } else {
      GRANULA_ASSIGN_OR_RETURN(
          partition_, graph::PartitionVertexCutGreedy(graph_, ranks));
    }

    const uint64_t n = graph_.num_vertices();
    degree_.assign(n, 0);
    for (const graph::Edge& e : graph_.edges()) {
      ++degree_[e.src];
      ++degree_[e.dst];
    }
    InitAlgorithmState();
    // Per-rank local adjacency over the rank's edge share, in CSR form
    // (replaces the per-edge scans in Gather/Scatter with pull-style loops
    // over replica vertices). Built on the host pool.
    local_adjacency_.resize(ranks);
    for (uint32_t r = 0; r < ranks; ++r) {
      local_adjacency_[r] = graph::Csr::BuildUndirected(
          n, partition_.partitions[r].edges);
    }

    sim_.Spawn(Main());
    sim_.Run();
    logger_.StopStreaming();

    out->vertex_values = values_;
    out->records = logger_.TakeRecords();
    out->environment = ToEnvironmentRecords(monitor_.samples());
    out->supersteps = iteration_;
    out->total_seconds = sim_.Now().seconds();
    out->network_bytes = cluster_.network_bytes_sent();
    out->completed = !job_failed_;
    out->failed_attempts = failed_attempts_;
    out->restarts = restarts_;
    out->lost_seconds = lost_time_.seconds();
    return Status::OK();
  }

 private:
  uint32_t RankNode(uint32_t rank) const { return rank; }
  sim::Cpu& RankCpu(uint32_t rank) {
    return cluster_.node(RankNode(rank)).cpu();
  }
  std::string RankActor(uint32_t rank) const {
    return StrFormat("Rank-%u", rank);
  }

  sim::Task<> Main() {
    monitor_.Start();
    OpId root = logger_.StartOperation(
        core::kNoOp, core::ops::kJobActor, job_config_.job_id,
        core::ops::kJobMission, "PowerGraphJob");
    // PowerGraph has no checkpointing: a crashed or failed job is
    // resubmitted from scratch. Each doomed attempt replays the real
    // startup/load/process phases inside a FailedAttempt operation up to
    // the crash point, so the archive prices rework, not a placeholder.
    const sim::RetryPolicy& policy = injector_.policy();
    uint32_t attempt = 0;
    while (injector_.enabled()) {
      const sim::FaultSpec* fault = injector_.JobFault(attempt);
      if (fault == nullptr) break;
      co_await RunFailedAttempt(root, *fault, attempt);
      ++attempt;
      if (job_failed_ || attempt >= policy.max_attempts) {
        job_failed_ = true;
        monitor_.Stop();
        co_return;  // root never closes: the archive is kIncomplete
      }
      co_await RunRestart(root, attempt);
      ResetAlgorithmState();
    }
    co_await RunStartup(root);
    co_await RunLoadGraph(root);
    if (!job_failed_) co_await RunProcessGraph(root);
    if (job_failed_) {
      monitor_.Stop();
      co_return;
    }
    if (job_config_.offload_results) co_await RunOffloadGraph(root);
    co_await RunCleanup(root);
    if (attempt > 0) {
      logger_.AddInfo(root, "Attempts",
                      Json(static_cast<int64_t>(attempt) + 1));
    }
    logger_.AddInfo(root, "NetworkBytes",
                    Json(cluster_.network_bytes_sent()));
    logger_.EndOperation(root);
    monitor_.Stop();
  }

  // A whole job attempt that dies: the real phases run under a
  // FailedAttempt operation and the engine aborts at the scheduled
  // iteration (or at natural completion, whichever comes first — the
  // attempt always fails). kTaskFailure kills iteration 0; kWorkerCrash
  // its own step.
  sim::Task<> RunFailedAttempt(OpId root, const sim::FaultSpec& fault,
                               uint32_t attempt) {
    SimTime began = sim_.Now();
    OpId op = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kFailedAttempt,
        StrFormat("FailedAttempt-%u", attempt + 1));
    crash_pending_ = true;
    crash_at_iteration_ =
        fault.kind == sim::FaultKind::kWorkerCrash ? fault.step : 0;
    crash_worker_ = std::min(fault.worker, job_config_.num_workers - 1);
    crash_work_ = fault.work_before_crash;
    co_await RunStartup(op);
    co_await RunLoadGraph(op);
    if (!job_failed_) co_await RunProcessGraph(op);
    crash_pending_ = false;
    if (job_failed_) co_return;  // storage retries exhausted during load
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(op, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(op, "CrashedWorker", Json(RankActor(crash_worker_)));
    logger_.AddInfo(op, "CrashIteration", Json(crash_at_iteration_));
    logger_.AddInfo(op, "LostTime",
                    Json(static_cast<uint64_t>(lost.nanos())));
    logger_.EndOperation(op);
    ++failed_attempts_;
    lost_time_ += lost;
  }

  // Backoff + cluster resubmission between attempts, wrapped in a
  // Restart operation so recovery overhead is priced in the tree.
  sim::Task<> RunRestart(OpId root, uint32_t attempt) {
    SimTime began = sim_.Now();
    OpId op = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kRestart,
        StrFormat("Restart-%u", attempt));
    co_await sim_.Delay(injector_.Backoff(attempt - 1));
    co_await sim_.Delay(injector_.policy().resubmit_delay);
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(op, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(op, "LostTime",
                    Json(static_cast<uint64_t>(lost.nanos())));
    logger_.EndOperation(op);
    ++restarts_;
    lost_time_ += lost;
  }

  // ------------------------------------------------------------ startup --
  sim::Task<> RunStartup(OpId root) {
    OpId startup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kStartup,
        core::ops::kStartup);
    OpId launch = logger_.StartOperation(startup, "Mpi", "mpirun",
                                         "LaunchRanks", "LaunchRanks");
    co_await mpi_.LaunchRanks(job_config_.num_workers);
    std::vector<sim::ProcessHandle> locals;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      locals.push_back(sim_.Spawn(RankLocalStartup(launch, rank)));
    }
    co_await sim::JoinAll(std::move(locals));
    logger_.EndOperation(launch);
    logger_.EndOperation(startup);
  }

  sim::Task<> RankLocalStartup(OpId parent, uint32_t rank) {
    OpId op = logger_.StartOperation(
        parent, "Rank", RankActor(rank), "LocalStartup",
        StrFormat("LocalStartup-%u", rank));
    co_await sim_.Delay(SimTime::Millis(700));  // graphlab runtime init
    co_await RankCpu(rank).Run(SimTime::Millis(80));
    logger_.EndOperation(op);
  }

  // --------------------------------------------------------- load graph --
  sim::Task<> RunLoadGraph(OpId root) {
    OpId load = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kLoadGraph, core::ops::kLoadGraph);

    // Rank 0 reads and parses the entire input sequentially — the single
    // busy node of Fig. 7 while every other rank idles.
    OpId read = logger_.StartOperation(load, "Coordinator", RankActor(0),
                                       "ReadInput", "ReadInput");
    if (injector_.enabled()) {
      // Transient storage errors: the loader retries in place with
      // backoff; each dead read is a FailedAttempt child of ReadInput.
      uint32_t retry = 0;
      while (const sim::FaultSpec* fault =
                 injector_.StorageFault(0, retry)) {
        SimTime began = sim_.Now();
        OpId failed = logger_.StartOperation(
            read, "Coordinator", RankActor(0), core::ops::kFailedAttempt,
            StrFormat("FailedAttempt-read-%u", retry + 1));
        co_await sim_.Delay(fault->work_before_crash);
        co_await sim_.Delay(injector_.Backoff(retry));
        SimTime lost = sim_.Now() - began;
        logger_.AddInfo(failed, "Attempt",
                        Json(static_cast<int64_t>(retry) + 1));
        logger_.AddInfo(failed, "LostTime",
                        Json(static_cast<uint64_t>(lost.nanos())));
        logger_.EndOperation(failed);
        ++failed_attempts_;
        lost_time_ += lost;
        ++retry;
        if (retry >= injector_.policy().max_attempts) {
          job_failed_ = true;
          logger_.EndOperation(read);
          logger_.EndOperation(load);
          co_return;
        }
      }
    }
    co_await sharedfs_.ReadAll(RankNode(0), "/data/graph.e");
    SimTime parse =
        cost_.parse_cpu_per_byte * static_cast<double>(input_bytes_);
    // PowerGraph's loader parses with a few threads on the one machine.
    co_await RunOnThreads(&sim_, &RankCpu(0), parse, 4);
    logger_.AddInfo(read, "BytesRead", Json(input_bytes_));
    logger_.EndOperation(read);

    // Distribute edge shares, then all ranks finalize in parallel — the
    // point near the end of LoadGraph where the other nodes wake up.
    std::vector<sim::ProcessHandle> finalizers;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      finalizers.push_back(sim_.Spawn(RankFinalize(load, rank)));
    }
    co_await sim::JoinAll(std::move(finalizers));
    logger_.EndOperation(load);
  }

  sim::Task<> RankFinalize(OpId parent, uint32_t rank) {
    OpId op = logger_.StartOperation(
        parent, "Rank", RankActor(rank), "FinalizeGraph",
        StrFormat("FinalizeGraph-%u", rank));
    uint64_t local_edges = partition_.partitions[rank].edges.size();
    uint64_t share_bytes = graph_.num_edges() == 0
                               ? 0
                               : input_bytes_ * local_edges /
                                     graph_.num_edges();
    if (rank != 0) {
      co_await cluster_.Send(RankNode(0), RankNode(rank), share_bytes);
    }
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.finalize_cpu_per_edge * static_cast<double>(local_edges),
        job_config_.compute_threads);
    logger_.AddInfo(op, "LocalEdges", Json(local_edges));
    logger_.EndOperation(op);
  }

  // ------------------------------------------------------ process graph --
  // O(1): the active-set size is maintained incrementally (Scatter counts
  // 0->1 transitions of next_active_) instead of scanning all vertices.
  bool AnyActive() const { return active_count_ > 0; }

  sim::Task<> RunProcessGraph(OpId root) {
    process_op_ = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kProcessGraph, core::ops::kProcessGraph);
    std::vector<sim::ProcessHandle> loops;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      loops.push_back(sim_.Spawn(RankProcessLoop(rank)));
    }
    while (true) {
      uint64_t max_iters = program_.max_iterations();
      bool capped = max_iters > 0 && iteration_ >= max_iters;
      bool done = !AnyActive() || capped;
      if (crash_pending_ && (done || iteration_ >= crash_at_iteration_)) {
        // The victim dies partway into the iteration; the engine notices
        // after the liveness timeout and aborts the whole job.
        co_await sim_.Delay(crash_work_ + injector_.policy().detect_timeout);
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      if (done) {
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      iteration_op_ = logger_.StartOperation(
          process_op_, "Engine", "Engine-0", "Iteration",
          StrFormat("Iteration-%llu",
                    static_cast<unsigned long long>(iteration_)));
      co_await start_barrier_.Arrive();
      co_await end_barrier_.Arrive();
      logger_.EndOperation(iteration_op_);

      // Synchronous-engine bookkeeping between iterations.
      ++iteration_;
      const uint64_t n = graph_.num_vertices();
      const uint64_t fill_grain = ChunkedGrain(n);
      ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
        std::fill(scatter_flag_.begin() + b, scatter_flag_.begin() + e, 0);
        std::fill(acc_.begin() + b, acc_.begin() + e, 0.0);
        std::fill(acc_has_.begin() + b, acc_has_.begin() + e, 0);
      });
      if (program_.always_active()) {
        bool more = max_iters == 0 || iteration_ < max_iters;
        ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
          std::fill(active_.begin() + b, active_.begin() + e, more ? 1 : 0);
        });
        active_count_ = more ? n : 0;
      } else {
        active_.swap(next_active_);
        active_count_ = next_active_count_;
      }
      ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
        std::fill(next_active_.begin() + b, next_active_.begin() + e, 0);
      });
      next_active_count_ = 0;
    }
    co_await sim::JoinAll(std::move(loops));
    logger_.AddInfo(process_op_, "Iterations", Json(iteration_));
    logger_.EndOperation(process_op_);
  }

  sim::Task<> RankProcessLoop(uint32_t rank) {
    while (true) {
      co_await start_barrier_.Arrive();
      if (process_done_) co_return;
      co_await RankIteration(rank);
    }
  }

  sim::Task<> RankIteration(uint32_t rank) {
    const auto& part = partition_.partitions[rank];
    const graph::Csr& adj = local_adjacency_[rank];
    const std::vector<VertexId>& reps = part.replicas;
    const uint64_t grain = ChunkedGrain(reps.size());
    const uint64_t chunks = ThreadPool::NumChunks(reps.size(), grain);

    // --- Gather: fold contributions over local edges of active vertices.
    // Pull form over replica vertices — the same multiset of Gather calls
    // as the former per-edge loop, but each chunk writes only its own
    // vertices' accumulators, so the loop parallelizes race-free.
    OpId gather_op = logger_.StartOperation(
        iteration_op_, "Rank", RankActor(rank), "Gather",
        StrFormat("Gather-%llu",
                  static_cast<unsigned long long>(iteration_)));
    uint64_t gather_ops = 0;
    {
      std::vector<uint64_t> chunk_ops(chunks, 0);
      ParallelFor(0, reps.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    uint64_t ops = 0;
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = reps[i];
                      if (active_[v] == 0) continue;
                      for (VertexId other : adj.neighbors(v)) {
                        AccumulateGather(v, other);
                        ++ops;
                      }
                    }
                    chunk_ops[chunk] = ops;
                  });
      for (uint64_t ops : chunk_ops) gather_ops += ops;
    }
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.gather_per_edge * static_cast<double>(gather_ops),
        job_config_.compute_threads);
    logger_.AddInfo(gather_op, "GatherOps", Json(gather_ops));
    logger_.EndOperation(gather_op);

    // --- Exchange: mirrors push partial accumulators to masters.
    OpId exchange_op = logger_.StartOperation(
        iteration_op_, "Rank", RankActor(rank), "Exchange",
        StrFormat("Exchange-%llu",
                  static_cast<unsigned long long>(iteration_)));
    // Flat per-master-rank byte counts (replaces the former std::map);
    // sends below go in ascending rank order, as map iteration did.
    std::vector<uint64_t> sync_bytes(job_config_.num_workers, 0);
    {
      std::vector<std::vector<uint64_t>> chunk_sync(chunks);
      ParallelFor(0, reps.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    std::vector<uint64_t>& mine = chunk_sync[chunk];
                    mine.assign(job_config_.num_workers, 0);
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = reps[i];
                      if (active_[v] != 0 && partition_.master[v] != rank) {
                        mine[partition_.master[v]] += cost_.bytes_per_sync;
                      }
                    }
                  });
      for (const std::vector<uint64_t>& mine : chunk_sync) {
        if (mine.empty()) continue;
        for (uint32_t t = 0; t < job_config_.num_workers; ++t) {
          sync_bytes[t] += mine[t];
        }
      }
    }
    for (uint32_t target = 0; target < job_config_.num_workers; ++target) {
      if (sync_bytes[target] == 0) continue;
      co_await cluster_.Send(RankNode(rank), RankNode(target),
                             sync_bytes[target]);
    }
    co_await stage_barrier_.Arrive();  // all gathers complete
    logger_.EndOperation(exchange_op);

    // --- Apply: masters compute new values (then values sync to mirrors,
    // charged as the same per-replica sync volume).
    OpId apply_op = logger_.StartOperation(
        iteration_op_, "Rank", RankActor(rank), "Apply",
        StrFormat("Apply-%llu",
                  static_cast<unsigned long long>(iteration_)));
    uint64_t applies = 0;
    {
      std::vector<uint64_t> chunk_applies(chunks, 0);
      ParallelFor(0, reps.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    uint64_t count = 0;
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = reps[i];
                      if (partition_.master[v] != rank || active_[v] == 0) {
                        continue;
                      }
                      double acc =
                          acc_has_[v] != 0 ? acc_[v] : program_.GatherInit();
                      algo::GasProgram::ApplyResult r = program_.Apply(
                          v, values_[v], acc, graph_.num_vertices());
                      values_[v] = r.new_value;
                      scatter_flag_[v] = r.scatter ? 1 : 0;
                      ++count;
                    }
                    chunk_applies[chunk] = count;
                  });
      for (uint64_t count : chunk_applies) applies += count;
    }
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.apply_per_vertex * static_cast<double>(applies),
        job_config_.compute_threads);
    for (uint32_t target = 0; target < job_config_.num_workers; ++target) {
      if (sync_bytes[target] == 0) continue;
      co_await cluster_.Send(RankNode(target), RankNode(rank),
                             sync_bytes[target]);
    }
    co_await stage_barrier_.Arrive();  // all applies complete
    logger_.AddInfo(apply_op, "Applies", Json(applies));
    logger_.EndOperation(apply_op);

    // --- Scatter: activate neighbors along local edges. Pull form: each
    // vertex checks its incident arcs for flagged sources and activates
    // itself — the same activation set as the per-edge push loop, without
    // concurrent writes to next_active_.
    OpId scatter_op = logger_.StartOperation(
        iteration_op_, "Rank", RankActor(rank), "Scatter",
        StrFormat("Scatter-%llu",
                  static_cast<unsigned long long>(iteration_)));
    uint64_t scatter_ops = 0;
    {
      std::vector<uint64_t> chunk_ops(chunks, 0);
      std::vector<uint64_t> chunk_newly_active(chunks, 0);
      ParallelFor(0, reps.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    uint64_t ops = 0;
                    uint64_t newly_active = 0;
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = reps[i];
                      for (VertexId other : adj.neighbors(v)) {
                        if (scatter_flag_[other] == 0) continue;
                        ++ops;
                        if (next_active_[v] == 0 &&
                            program_.ScatterActivates(other, v,
                                                      values_[other],
                                                      values_[v])) {
                          next_active_[v] = 1;
                          ++newly_active;
                        }
                      }
                    }
                    chunk_ops[chunk] = ops;
                    chunk_newly_active[chunk] = newly_active;
                  });
      for (uint64_t c = 0; c < chunks; ++c) {
        scatter_ops += chunk_ops[c];
        next_active_count_ += chunk_newly_active[c];
      }
    }
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.scatter_per_edge * static_cast<double>(scatter_ops),
        job_config_.compute_threads);
    co_await sim_.Delay(cost_.iteration_overhead);
    logger_.AddInfo(scatter_op, "ScatterOps", Json(scatter_ops));
    logger_.EndOperation(scatter_op);

    co_await end_barrier_.Arrive();
  }

  // Attempt-scoped algorithm state. The partition, CSR adjacency, and
  // degree table are inputs, not state: they survive restarts.
  void InitAlgorithmState() {
    const uint64_t n = graph_.num_vertices();
    values_.resize(n);
    active_.assign(n, 0);
    next_active_.assign(n, 0);
    scatter_flag_.assign(n, 0);
    acc_.assign(n, 0.0);
    acc_has_.assign(n, 0);
    active_count_ = 0;
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = program_.InitialValue(v, n);
      bool is_active = program_.InitiallyActive(v);
      active_[v] = is_active ? 1 : 0;
      if (is_active) ++active_count_;
    }
    next_active_count_ = 0;
    iteration_ = 0;
    process_done_ = false;
  }
  void ResetAlgorithmState() { InitAlgorithmState(); }

  void AccumulateGather(VertexId self, VertexId other) {
    double contribution =
        program_.Gather(self, other, values_[other], degree_[other]);
    if (acc_has_[self] != 0) {
      acc_[self] = program_.Sum(acc_[self], contribution);
    } else {
      acc_[self] = contribution;
      acc_has_[self] = 1;
    }
  }

  // ----------------------------------------------------- offload graph --
  sim::Task<> RunOffloadGraph(OpId root) {
    OpId offload = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kOffloadGraph, core::ops::kOffloadGraph);
    std::vector<sim::ProcessHandle> writers;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      writers.push_back(sim_.Spawn(RankOffload(offload, rank)));
    }
    co_await sim::JoinAll(std::move(writers));
    logger_.EndOperation(offload);
  }

  sim::Task<> RankOffload(OpId parent, uint32_t rank) {
    OpId op = logger_.StartOperation(
        parent, "Rank", RankActor(rank), "WriteResults",
        StrFormat("WriteResults-%u", rank));
    uint64_t masters = 0;
    for (VertexId v : partition_.partitions[rank].replicas) {
      if (partition_.master[v] == rank) ++masters;
    }
    uint64_t bytes = cost_.result_bytes_per_vertex * masters;
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.serialize_cpu_per_byte * static_cast<double>(bytes),
        job_config_.compute_threads);
    co_await sharedfs_.Write(RankNode(rank),
                             StrFormat("/data/out-%u", rank), bytes);
    logger_.AddInfo(op, "BytesWritten", Json(bytes));
    logger_.EndOperation(op);
  }

  // ------------------------------------------------------------ cleanup --
  sim::Task<> RunCleanup(OpId root) {
    OpId cleanup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kCleanup,
        core::ops::kCleanup);
    OpId op = logger_.StartOperation(cleanup, "Mpi", "mpirun", "Finalize",
                                     "Finalize");
    co_await mpi_.Finalize();
    co_await sim_.Delay(SimTime::Seconds(2.8));  // teardown + log flush
    logger_.EndOperation(op);
    logger_.EndOperation(cleanup);
  }

  // --------------------------------------------------------------- state --
  const PowerGraphCostModel& cost_;
  const graph::Graph& graph_;
  const algo::GasProgram& program_;
  JobConfig job_config_;

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::SharedFs sharedfs_;
  cluster::MpiLauncher mpi_;
  cluster::EnvironmentMonitor monitor_;
  JobLogger logger_;

  sim::Barrier start_barrier_;
  sim::Barrier end_barrier_;
  sim::Barrier stage_barrier_;

  graph::VertexCutResult partition_;
  std::vector<graph::Csr> local_adjacency_;
  std::vector<double> values_;
  std::vector<uint8_t> active_, next_active_, scatter_flag_;
  std::vector<double> acc_;
  std::vector<uint8_t> acc_has_;
  std::vector<uint64_t> degree_;
  // Frontier bookkeeping (replaces the O(V) AnyActive scan).
  uint64_t active_count_ = 0;
  uint64_t next_active_count_ = 0;

  uint64_t input_bytes_ = 0;
  uint64_t iteration_ = 0;
  bool process_done_ = false;
  OpId process_op_ = core::kNoOp;
  OpId iteration_op_ = core::kNoOp;

  // Fault injection (inert when the plan is empty).
  sim::FaultInjector injector_;
  bool crash_pending_ = false;
  uint64_t crash_at_iteration_ = 0;
  uint32_t crash_worker_ = 0;
  SimTime crash_work_;
  bool job_failed_ = false;
  uint64_t failed_attempts_ = 0;
  uint64_t restarts_ = 0;
  SimTime lost_time_;
};

}  // namespace

Result<JobResult> PowerGraphPlatform::Run(
    const graph::Graph& graph, const algo::AlgorithmSpec& spec,
    const cluster::ClusterConfig& cluster_config,
    const JobConfig& job_config) const {
  GRANULA_ASSIGN_OR_RETURN(auto program, algo::MakeGasProgram(spec));
  PowerGraphJob job(cost_, graph, *program, cluster_config, job_config);
  JobResult result;
  GRANULA_RETURN_IF_ERROR(job.Execute(&result));
  return result;
}

}  // namespace granula::platform
