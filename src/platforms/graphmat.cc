#include "platforms/graphmat.h"

#include <algorithm>
#include <memory>

#include "algorithms/gas.h"
#include "cluster/monitor.h"
#include "cluster/provisioning.h"
#include "cluster/storage.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "granula/models/models.h"
#include "graph/partition.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace granula::platform {

namespace {

using core::JobLogger;
using core::OpId;
using graph::VertexId;

class GraphMatJob {
 public:
  GraphMatJob(const GraphMatCostModel& cost, const graph::Graph& graph,
              const algo::GasProgram& program,
              const cluster::ClusterConfig& cluster_config,
              const JobConfig& job_config)
      : cost_(cost),
        graph_(graph),
        program_(program),
        job_config_(job_config),
        cluster_(&sim_, cluster_config),
        sharedfs_(&cluster_, /*server_node=*/0),
        mpi_(&cluster_, cluster::MpiLauncher::Options{}),
        monitor_(&cluster_, job_config.monitor_interval),
        logger_([this] { return sim_.Now(); }),
        start_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        end_barrier_(&sim_, static_cast<int>(job_config.num_workers) + 1),
        stage_barrier_(&sim_,
                       std::max(1, static_cast<int>(job_config.num_workers))),
        injector_(job_config_.faults) {
    // A zero worker count is rejected in Execute(); the max(1, ...) only
    // keeps the never-used barrier constructible until then.
  }

  Status Execute(JobResult* out) {
    const uint32_t ranks = job_config_.num_workers;
    if (ranks == 0 || ranks > cluster_.num_nodes()) {
      return Status::InvalidArgument("num_workers must be in [1, num_nodes]");
    }
    InstallLogWriteFaults(&logger_, job_config_.faults);
    if (!job_config_.live_log_path.empty()) {
      GRANULA_RETURN_IF_ERROR(logger_.StreamTo(
          job_config_.live_log_path, job_config_.live_log_delay_us));
    }
    input_bytes_ = graph::EdgeListFileBytes(graph_);
    GRANULA_RETURN_IF_ERROR(
        sharedfs_.CreateFile("/data/graph.e", input_bytes_));
    // Row partitioning: the matrix row of vertex v lives on its owner.
    GRANULA_ASSIGN_OR_RETURN(partition_,
                             graph::PartitionEdgeCut(graph_, ranks));

    // Undirected adjacency in CSR form (the matrix slice rows), built on
    // the host pool; vertex degree comes from the CSR.
    adjacency_ = graph::Csr::BuildUndirected(graph_.num_vertices(),
                                             graph_.edges());
    InitAlgorithmState();

    sim_.Spawn(Main());
    sim_.Run();
    logger_.StopStreaming();

    out->vertex_values = values_;
    out->records = logger_.TakeRecords();
    out->environment = ToEnvironmentRecords(monitor_.samples());
    out->supersteps = iteration_;
    out->total_seconds = sim_.Now().seconds();
    out->network_bytes = cluster_.network_bytes_sent();
    out->completed = !job_failed_;
    out->failed_attempts = failed_attempts_;
    out->restarts = restarts_;
    out->lost_seconds = lost_time_.seconds();
    return Status::OK();
  }

 private:
  sim::Cpu& RankCpu(uint32_t rank) { return cluster_.node(rank).cpu(); }
  std::string RankActor(uint32_t rank) const {
    return StrFormat("Rank-%u", rank);
  }

  sim::Task<> Main() {
    monitor_.Start();
    OpId root = logger_.StartOperation(
        core::kNoOp, core::ops::kJobActor, job_config_.job_id,
        core::ops::kJobMission, "GraphMatJob");
    // GraphMat (an MPI batch job) aborts and resubmits on failure: each
    // doomed attempt replays the real startup/load/process phases inside
    // a FailedAttempt operation up to the crash point.
    const sim::RetryPolicy& policy = injector_.policy();
    uint32_t attempt = 0;
    while (injector_.enabled()) {
      const sim::FaultSpec* fault = injector_.JobFault(attempt);
      if (fault == nullptr) break;
      co_await RunFailedAttempt(root, *fault, attempt);
      ++attempt;
      if (job_failed_ || attempt >= policy.max_attempts) {
        job_failed_ = true;
        monitor_.Stop();
        co_return;  // root never closes: the archive is kIncomplete
      }
      co_await RunRestart(root, attempt);
      ResetAlgorithmState();
    }
    co_await RunStartup(root);
    co_await RunLoadGraph(root);
    if (!job_failed_) co_await RunProcessGraph(root);
    if (job_failed_) {
      monitor_.Stop();
      co_return;
    }
    if (job_config_.offload_results) co_await RunOffloadGraph(root);
    co_await RunCleanup(root);
    if (attempt > 0) {
      logger_.AddInfo(root, "Attempts",
                      Json(static_cast<int64_t>(attempt) + 1));
    }
    logger_.AddInfo(root, "NetworkBytes",
                    Json(cluster_.network_bytes_sent()));
    logger_.EndOperation(root);
    monitor_.Stop();
  }

  sim::Task<> RunFailedAttempt(OpId root, const sim::FaultSpec& fault,
                               uint32_t attempt) {
    SimTime began = sim_.Now();
    OpId op = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kFailedAttempt,
        StrFormat("FailedAttempt-%u", attempt + 1));
    crash_pending_ = true;
    crash_at_iteration_ =
        fault.kind == sim::FaultKind::kWorkerCrash ? fault.step : 0;
    crash_worker_ = std::min(fault.worker, job_config_.num_workers - 1);
    crash_work_ = fault.work_before_crash;
    co_await RunStartup(op);
    co_await RunLoadGraph(op);
    if (!job_failed_) co_await RunProcessGraph(op);
    crash_pending_ = false;
    if (job_failed_) co_return;  // storage retries exhausted during load
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(op, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(op, "CrashedWorker", Json(RankActor(crash_worker_)));
    logger_.AddInfo(op, "CrashIteration", Json(crash_at_iteration_));
    logger_.AddInfo(op, "LostTime",
                    Json(static_cast<uint64_t>(lost.nanos())));
    logger_.EndOperation(op);
    ++failed_attempts_;
    lost_time_ += lost;
  }

  sim::Task<> RunRestart(OpId root, uint32_t attempt) {
    SimTime began = sim_.Now();
    OpId op = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kRestart,
        StrFormat("Restart-%u", attempt));
    co_await sim_.Delay(injector_.Backoff(attempt - 1));
    co_await sim_.Delay(injector_.policy().resubmit_delay);
    SimTime lost = sim_.Now() - began;
    logger_.AddInfo(op, "Attempt", Json(static_cast<int64_t>(attempt) + 1));
    logger_.AddInfo(op, "LostTime",
                    Json(static_cast<uint64_t>(lost.nanos())));
    logger_.EndOperation(op);
    ++restarts_;
    lost_time_ += lost;
  }

  // Attempt-scoped algorithm state. The CSR adjacency and partition are
  // inputs, not state: they survive restarts.
  void InitAlgorithmState() {
    const uint64_t n = graph_.num_vertices();
    values_.resize(n);
    active_.assign(n, 0);
    next_active_.assign(n, 0);
    acc_.assign(n, 0.0);
    acc_has_.assign(n, 0);
    active_count_ = 0;
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = program_.InitialValue(v, n);
      bool is_active = program_.InitiallyActive(v);
      active_[v] = is_active ? 1 : 0;
      if (is_active) ++active_count_;
    }
    next_active_count_ = 0;
    iteration_ = 0;
    process_done_ = false;
  }
  void ResetAlgorithmState() { InitAlgorithmState(); }

  sim::Task<> RunStartup(OpId root) {
    OpId startup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kStartup,
        core::ops::kStartup);
    OpId launch = logger_.StartOperation(startup, "Mpi", "mpirun",
                                         "LaunchRanks", "LaunchRanks");
    co_await mpi_.LaunchRanks(job_config_.num_workers);
    logger_.EndOperation(launch);
    logger_.EndOperation(startup);
  }

  sim::Task<> RunLoadGraph(OpId root) {
    OpId load = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kLoadGraph, core::ops::kLoadGraph);
    std::vector<sim::ProcessHandle> loaders;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      loaders.push_back(sim_.Spawn(RankLoad(load, rank)));
    }
    co_await sim::JoinAll(std::move(loaders));
    logger_.EndOperation(load);
  }

  sim::Task<> RankLoad(OpId parent, uint32_t rank) {
    OpId op = logger_.StartOperation(
        parent, "Rank", RankActor(rank), "ReadSlice",
        StrFormat("ReadSlice-%u", rank));
    // Parallel slice reads: the shared server's disk still serializes the
    // transfers, but parsing proceeds concurrently on every rank — much
    // better than PowerGraph's one-reader design, though worse than
    // Giraph's data-local HDFS blocks.
    uint64_t my_bytes = input_bytes_ / job_config_.num_workers;
    if (injector_.enabled()) {
      // Transient storage errors: the rank retries its slice read in
      // place; each dead read is a FailedAttempt child of ReadSlice.
      uint32_t retry = 0;
      while (const sim::FaultSpec* fault =
                 injector_.StorageFault(rank, retry)) {
        SimTime began = sim_.Now();
        OpId failed = logger_.StartOperation(
            op, "Rank", RankActor(rank), core::ops::kFailedAttempt,
            StrFormat("FailedAttempt-load-%u-%u", rank, retry + 1));
        co_await sim_.Delay(fault->work_before_crash);
        co_await sim_.Delay(injector_.Backoff(retry));
        SimTime lost = sim_.Now() - began;
        logger_.AddInfo(failed, "Attempt",
                        Json(static_cast<int64_t>(retry) + 1));
        logger_.AddInfo(failed, "LostTime",
                        Json(static_cast<uint64_t>(lost.nanos())));
        logger_.EndOperation(failed);
        ++failed_attempts_;
        lost_time_ += lost;
        ++retry;
        if (retry >= injector_.policy().max_attempts) {
          job_failed_ = true;
          logger_.EndOperation(op);
          co_return;
        }
      }
    }
    co_await sharedfs_.Read(rank, "/data/graph.e", my_bytes);
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.parse_cpu_per_byte * static_cast<double>(my_bytes),
        job_config_.compute_threads);
    OpId build = logger_.StartOperation(
        op, "Rank", RankActor(rank), "BuildMatrix",
        StrFormat("BuildMatrix-%u", rank));
    uint64_t local_edges = partition_.partitions[rank].edges.size();
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.matrix_build_per_edge * static_cast<double>(local_edges),
        job_config_.compute_threads);
    logger_.EndOperation(build);
    logger_.AddInfo(op, "BytesRead", Json(my_bytes));
    logger_.EndOperation(op);
  }

  // O(1): the active-set size is maintained incrementally (Apply counts
  // 0->1 transitions of next_active_) instead of scanning all vertices.
  bool AnyActive() const { return active_count_ > 0; }

  sim::Task<> RunProcessGraph(OpId root) {
    process_op_ = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kProcessGraph, core::ops::kProcessGraph);
    std::vector<sim::ProcessHandle> loops;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      loops.push_back(sim_.Spawn(RankProcessLoop(rank)));
    }
    while (true) {
      uint64_t max_iters = program_.max_iterations();
      bool capped = max_iters > 0 && iteration_ >= max_iters;
      bool done = !AnyActive() || capped;
      if (crash_pending_ && (done || iteration_ >= crash_at_iteration_)) {
        // The victim dies partway into the iteration; the engine notices
        // after the liveness timeout and aborts the whole job.
        co_await sim_.Delay(crash_work_ + injector_.policy().detect_timeout);
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      if (done) {
        process_done_ = true;
        co_await start_barrier_.Arrive();
        break;
      }
      iteration_op_ = logger_.StartOperation(
          process_op_, "Engine", "Engine-0", "Iteration",
          StrFormat("Iteration-%llu",
                    static_cast<unsigned long long>(iteration_)));
      co_await start_barrier_.Arrive();
      co_await end_barrier_.Arrive();
      logger_.EndOperation(iteration_op_);

      ++iteration_;
      const uint64_t n = graph_.num_vertices();
      const uint64_t fill_grain = ChunkedGrain(n);
      ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
        std::fill(acc_.begin() + b, acc_.begin() + e, 0.0);
        std::fill(acc_has_.begin() + b, acc_has_.begin() + e, 0);
      });
      if (program_.always_active()) {
        bool more = max_iters == 0 || iteration_ < max_iters;
        ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
          std::fill(active_.begin() + b, active_.begin() + e, more ? 1 : 0);
        });
        active_count_ = more ? n : 0;
      } else {
        active_.swap(next_active_);
        active_count_ = next_active_count_;
      }
      ParallelFor(0, n, fill_grain, [&](uint64_t, uint64_t b, uint64_t e) {
        std::fill(next_active_.begin() + b, next_active_.begin() + e, 0);
      });
      next_active_count_ = 0;
    }
    co_await sim::JoinAll(std::move(loops));
    logger_.AddInfo(process_op_, "Iterations", Json(iteration_));
    logger_.EndOperation(process_op_);
  }

  sim::Task<> RankProcessLoop(uint32_t rank) {
    while (true) {
      co_await start_barrier_.Arrive();
      if (process_done_) co_return;
      co_await RankIteration(rank);
    }
  }

  sim::Task<> RankIteration(uint32_t rank) {
    const auto& owned = partition_.partitions[rank].vertices;

    // --- SpMV: y_rows(owned) = A_slice (Sum,Gather)-product x(active).
    // The slice streams in full regardless of how sparse x is.
    OpId spmv_op = logger_.StartOperation(
        iteration_op_, "Rank", RankActor(rank), "Spmv",
        StrFormat("Spmv-%llu",
                  static_cast<unsigned long long>(iteration_)));
    // Host-parallel pull-style SpMV: each chunk folds into its own rows'
    // accumulators only, so chunks never contend and the fold order per
    // row is the fixed CSR neighbor order.
    uint64_t streamed_edges = 0;
    uint64_t active_nonzeros = 0;
    uint64_t active_owned = 0;
    const uint64_t grain = ChunkedGrain(owned.size());
    const uint64_t chunks = ThreadPool::NumChunks(owned.size(), grain);
    {
      struct SpmvStats {
        uint64_t streamed = 0;
        uint64_t nonzeros = 0;
        uint64_t active_owned = 0;
      };
      std::vector<SpmvStats> stats(chunks);
      ParallelFor(0, owned.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    SpmvStats& mine = stats[chunk];
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = owned[i];
                      if (active_[v] != 0) ++mine.active_owned;
                      mine.streamed += adjacency_.degree(v);
                      for (VertexId u : adjacency_.neighbors(v)) {
                        if (active_[u] == 0) continue;
                        ++mine.nonzeros;
                        double contribution = program_.Gather(
                            v, u, values_[u], adjacency_.degree(u));
                        if (acc_has_[v] != 0) {
                          acc_[v] = program_.Sum(acc_[v], contribution);
                        } else {
                          acc_[v] = contribution;
                          acc_has_[v] = 1;
                        }
                      }
                    }
                  });
      for (const SpmvStats& mine : stats) {
        streamed_edges += mine.streamed;
        active_nonzeros += mine.nonzeros;
        active_owned += mine.active_owned;
      }
    }
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.spmv_per_edge * static_cast<double>(streamed_edges) +
            cost_.spmv_per_active_edge *
                static_cast<double>(active_nonzeros),
        job_config_.compute_threads);
    // Sparse-vector exchange: owned entries of x that other ranks' slices
    // reference (approximate: all active owned entries broadcast).
    uint64_t bytes = active_owned * cost_.bytes_per_nonzero;
    if (bytes > 0 && job_config_.num_workers > 1) {
      co_await cluster_.Send(rank, (rank + 1) % job_config_.num_workers,
                             bytes);
    }
    logger_.AddInfo(spmv_op, "StreamedEdges", Json(streamed_edges));
    logger_.AddInfo(spmv_op, "ActiveNonzeros", Json(active_nonzeros));
    logger_.EndOperation(spmv_op);
    co_await stage_barrier_.Arrive();

    // --- Apply.
    OpId apply_op = logger_.StartOperation(
        iteration_op_, "Rank", RankActor(rank), "Apply",
        StrFormat("Apply-%llu",
                  static_cast<unsigned long long>(iteration_)));
    uint64_t applies = 0;
    {
      std::vector<uint64_t> chunk_applies(chunks, 0);
      std::vector<uint64_t> chunk_newly_active(chunks, 0);
      ParallelFor(0, owned.size(), grain,
                  [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                    uint64_t count = 0;
                    uint64_t newly_active = 0;
                    for (uint64_t i = cb; i < ce; ++i) {
                      VertexId v = owned[i];
                      if (acc_has_[v] == 0 && active_[v] == 0) continue;
                      double acc =
                          acc_has_[v] != 0 ? acc_[v] : program_.GatherInit();
                      algo::GasProgram::ApplyResult r = program_.Apply(
                          v, values_[v], acc, graph_.num_vertices());
                      if (r.new_value != values_[v]) {
                        values_[v] = r.new_value;
                        if (r.scatter && next_active_[v] == 0) {
                          next_active_[v] = 1;
                          ++newly_active;
                        }
                      }
                      ++count;
                    }
                    chunk_applies[chunk] = count;
                    chunk_newly_active[chunk] = newly_active;
                  });
      for (uint64_t c = 0; c < chunks; ++c) {
        applies += chunk_applies[c];
        next_active_count_ += chunk_newly_active[c];
      }
    }
    co_await RunOnThreads(
        &sim_, &RankCpu(rank),
        cost_.apply_per_vertex * static_cast<double>(applies),
        job_config_.compute_threads);
    co_await sim_.Delay(cost_.iteration_overhead);
    logger_.AddInfo(apply_op, "Applies", Json(applies));
    logger_.EndOperation(apply_op);

    co_await end_barrier_.Arrive();
  }

  sim::Task<> RunOffloadGraph(OpId root) {
    OpId offload = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kOffloadGraph, core::ops::kOffloadGraph);
    std::vector<sim::ProcessHandle> writers;
    for (uint32_t rank = 0; rank < job_config_.num_workers; ++rank) {
      writers.push_back(sim_.Spawn(
          [](GraphMatJob* job, OpId parent, uint32_t r) -> sim::Task<> {
            OpId op = job->logger_.StartOperation(
                parent, "Rank", job->RankActor(r), "WriteResults",
                StrFormat("WriteResults-%u", r));
            uint64_t bytes =
                job->cost_.result_bytes_per_vertex *
                job->partition_.partitions[r].vertices.size();
            co_await RunOnThreads(
                &job->sim_, &job->RankCpu(r),
                job->cost_.serialize_cpu_per_byte *
                    static_cast<double>(bytes),
                job->job_config_.compute_threads);
            co_await job->sharedfs_.Write(
                r, StrFormat("/data/gm-out-%u", r), bytes);
            job->logger_.EndOperation(op);
          }(this, offload, rank)));
    }
    co_await sim::JoinAll(std::move(writers));
    logger_.EndOperation(offload);
  }

  sim::Task<> RunCleanup(OpId root) {
    OpId cleanup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kCleanup,
        core::ops::kCleanup);
    OpId op = logger_.StartOperation(cleanup, "Mpi", "mpirun", "Finalize",
                                     "Finalize");
    co_await mpi_.Finalize();
    logger_.EndOperation(op);
    logger_.EndOperation(cleanup);
  }

  const GraphMatCostModel& cost_;
  const graph::Graph& graph_;
  const algo::GasProgram& program_;
  JobConfig job_config_;

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::SharedFs sharedfs_;
  cluster::MpiLauncher mpi_;
  cluster::EnvironmentMonitor monitor_;
  JobLogger logger_;

  sim::Barrier start_barrier_;
  sim::Barrier end_barrier_;
  sim::Barrier stage_barrier_;

  graph::EdgeCutResult partition_;
  graph::Csr adjacency_;
  std::vector<double> values_;
  std::vector<uint8_t> active_, next_active_;
  std::vector<double> acc_;
  std::vector<uint8_t> acc_has_;
  // Frontier bookkeeping (replaces the O(V) AnyActive scan).
  uint64_t active_count_ = 0;
  uint64_t next_active_count_ = 0;

  uint64_t input_bytes_ = 0;
  uint64_t iteration_ = 0;
  bool process_done_ = false;
  OpId process_op_ = core::kNoOp;
  OpId iteration_op_ = core::kNoOp;

  // Fault injection (inert when the plan is empty).
  sim::FaultInjector injector_;
  bool crash_pending_ = false;
  uint64_t crash_at_iteration_ = 0;
  uint32_t crash_worker_ = 0;
  SimTime crash_work_;
  bool job_failed_ = false;
  uint64_t failed_attempts_ = 0;
  uint64_t restarts_ = 0;
  SimTime lost_time_;
};

}  // namespace

Result<JobResult> GraphMatPlatform::Run(
    const graph::Graph& graph, const algo::AlgorithmSpec& spec,
    const cluster::ClusterConfig& cluster_config,
    const JobConfig& job_config) const {
  GRANULA_ASSIGN_OR_RETURN(auto program, algo::MakeGasProgram(spec));
  GraphMatJob job(cost_, graph, *program, cluster_config, job_config);
  JobResult result;
  GRANULA_RETURN_IF_ERROR(job.Execute(&result));
  return result;
}

}  // namespace granula::platform
