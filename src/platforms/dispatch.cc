#include "platforms/dispatch.h"

#include <cctype>

#include "granula/models/models.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"
#include "platforms/registry.h"

namespace granula::platform {
namespace {

std::string UnknownPlatformMessage(const std::string& name) {
  std::string message = "unknown platform '" + name + "' (";
  const std::vector<std::string>& names = ImplementedPlatformNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) message += "|";
    message += names[i];
  }
  return message + ")";
}

}  // namespace

std::string CanonicalPlatformName(const std::string& name) {
  std::string canonical;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      canonical += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return canonical;
}

const std::vector<std::string>& ImplementedPlatformNames() {
  static const std::vector<std::string>& names = *[] {
    auto* result = new std::vector<std::string>;
    for (const PlatformInfo& info : PlatformRegistry()) {
      if (info.implemented_here) {
        result->push_back(CanonicalPlatformName(info.name));
      }
    }
    return result;
  }();
  return names;
}

Result<std::string> ResolvePlatformName(const std::string& name) {
  std::string canonical = CanonicalPlatformName(name);
  for (const std::string& candidate : ImplementedPlatformNames()) {
    if (candidate == canonical) return candidate;
  }
  return Status::InvalidArgument(UnknownPlatformMessage(name));
}

Result<core::PerformanceModel> ModelForPlatform(const std::string& name) {
  GRANULA_ASSIGN_OR_RETURN(std::string canonical, ResolvePlatformName(name));
  if (canonical == "giraph") return core::MakeGiraphModel();
  if (canonical == "powergraph") return core::MakePowerGraphModel();
  if (canonical == "graphmat") return core::MakeGraphMatModel();
  if (canonical == "pgxd") return core::MakePgxdModel();
  if (canonical == "hadoop") return core::MakeHadoopModel();
  return Status::Internal("registry lists '" + canonical +
                          "' as implemented but no model is wired up");
}

Result<JobResult> RunForPlatform(const std::string& name,
                                 const graph::Graph& graph,
                                 const algo::AlgorithmSpec& spec,
                                 const cluster::ClusterConfig& cluster_config,
                                 const JobConfig& job_config) {
  GRANULA_ASSIGN_OR_RETURN(std::string canonical, ResolvePlatformName(name));
  if (canonical == "giraph") {
    return GiraphPlatform().Run(graph, spec, cluster_config, job_config);
  }
  if (canonical == "powergraph") {
    return PowerGraphPlatform().Run(graph, spec, cluster_config, job_config);
  }
  if (canonical == "graphmat") {
    return GraphMatPlatform().Run(graph, spec, cluster_config, job_config);
  }
  if (canonical == "pgxd") {
    return PgxdPlatform().Run(graph, spec, cluster_config, job_config);
  }
  if (canonical == "hadoop") {
    return HadoopPlatform().Run(graph, spec, cluster_config, job_config);
  }
  return Status::Internal("registry lists '" + canonical +
                          "' as implemented but no engine is wired up");
}

}  // namespace granula::platform
