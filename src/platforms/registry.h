#ifndef GRANULA_PLATFORMS_REGISTRY_H_
#define GRANULA_PLATFORMS_REGISTRY_H_

#include <string>
#include <vector>

namespace granula::platform {

// One row of the paper's Table 1: the high-level characteristics of a
// graph-processing platform. The two platforms in bold in the paper
// (Giraph, PowerGraph) are the ones this library implements as simulated
// engines; the rest are registry entries for the diversity table.
struct PlatformInfo {
  std::string name;
  std::string vendor;
  std::string version;
  std::string language;
  bool distributed = false;
  std::string provisioning;       // Yarn, OpenMPI, Native, ...
  std::string programming_model;  // Pregel, GAS, SpMV, ...
  std::string data_format;        // VertexStore, Edge-based, CSR, ...
  std::string file_system;        // HDFS, local/shared, local
  bool implemented_here = false;  // has a simulated engine in platforms/
};

// The seven platforms of Table 1, in the paper's order.
const std::vector<PlatformInfo>& PlatformRegistry();

// Renders the registry as the paper's Table 1 (fixed-width text).
std::string RenderPlatformTable();

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_REGISTRY_H_
