#ifndef GRANULA_PLATFORMS_GRAPHMAT_H_
#define GRANULA_PLATFORMS_GRAPHMAT_H_

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "graph/graph.h"
#include "platforms/platform.h"

namespace granula::platform {

struct GraphMatCostModel {
  // LoadGraph: each rank reads its slice of the shared input and builds
  // its matrix partition (DCSC-like).
  SimTime parse_cpu_per_byte = SimTime::Micros(20);
  SimTime matrix_build_per_edge = SimTime::Micros(6);
  // ProcessGraph: the SpMV pass streams the entire local matrix slice
  // every iteration (the generalized-SpMV formulation has no frontier
  // data structure); a small extra cost applies per active nonzero.
  SimTime spmv_per_edge = SimTime::Micros(4);
  SimTime spmv_per_active_edge = SimTime::Micros(5);
  SimTime apply_per_vertex = SimTime::Micros(8);
  SimTime iteration_overhead = SimTime::Millis(25);
  uint64_t bytes_per_nonzero = 12;  // sparse-vector exchange
  // OffloadGraph.
  SimTime serialize_cpu_per_byte = SimTime::Micros(2);
  uint64_t result_bytes_per_vertex = 12;
};

// A GraphMat-like platform (paper Table 1, row 3): "the similarities
// between graph processing and linear algebra". Iterations are generalized
// sparse-matrix–vector products over a (Sum, Gather) semiring; ranks are
// launched Intel-MPI-style and hold row-partitioned matrix slices loaded
// from the shared filesystem in parallel.
//
// The engine reuses the GasProgram algorithm objects: Gather is the
// semiring multiply, Sum the semiring add, Apply the vector update —
// mathematically identical to the push formulation, so results equal the
// references exactly (tested). The characteristic behavior difference is
// in cost, not values: every iteration streams the *whole* matrix, so
// traversal workloads with small frontiers (BFS) pay for all edges every
// superstep, while all-active workloads (PageRank) are very efficient —
// the trade-off the GraphMat paper documents.
class GraphMatPlatform {
 public:
  GraphMatPlatform() = default;
  explicit GraphMatPlatform(GraphMatCostModel cost) : cost_(cost) {}

  const GraphMatCostModel& cost_model() const { return cost_; }

  Result<JobResult> Run(const graph::Graph& graph,
                        const algo::AlgorithmSpec& spec,
                        const cluster::ClusterConfig& cluster_config,
                        const JobConfig& job_config) const;

 private:
  GraphMatCostModel cost_;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_GRAPHMAT_H_
