#ifndef GRANULA_PLATFORMS_PLATFORM_H_
#define GRANULA_PLATFORMS_PLATFORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "cluster/monitor.h"
#include "common/result.h"
#include "granula/archive/archive.h"
#include "granula/monitor/job_logger.h"
#include "graph/graph.h"
#include "sim/faults.h"

namespace granula::platform {

// Execution parameters common to both simulated platforms.
struct JobConfig {
  std::string job_id = "job-0";
  // Workers (Giraph containers / PowerGraph ranks); one per node.
  uint32_t num_workers = 8;
  // Parallel compute threads per worker (bounded by cores per node).
  int compute_threads = 8;
  // Environment-monitor sampling interval (paper Figs. 6-7 use ~1s).
  SimTime monitor_interval = SimTime::Seconds(1.0);
  // Write result values back to storage (OffloadGraph phase).
  bool offload_results = true;
  // PowerGraph only: use random (hash) vertex-cut instead of the greedy
  // heuristic — the baseline the PowerGraph paper compares against; used
  // by the partitioning ablation bench.
  bool use_random_vertex_cut = false;
  // Live monitoring (granula watch): when non-empty, every log record is
  // also appended to this JSONL file the moment it is emitted, flushed
  // per record so a concurrent tailer sees the job as it runs.
  std::string live_log_path;
  // Wall-clock pause after each streamed record, in microseconds. Paces
  // the live log for tail-while-running tests and demos; virtual time
  // (and thus the archive) is unaffected.
  uint64_t live_log_delay_us = 0;
  // Deterministic fault plan (sim/faults.h). Empty ⇒ the fault machinery
  // is fully inert: no checkpoints, no retries, no extra operations, and
  // logs/archives are byte-identical to a pre-fault-subsystem run.
  sim::FaultPlan faults;
};

// Everything a run produces: the algorithm output (for validation against
// the reference implementations), the Granula monitoring output (platform
// log + environment log), and summary counters.
struct JobResult {
  std::vector<double> vertex_values;
  std::vector<core::LogRecord> records;
  std::vector<core::EnvironmentRecord> environment;
  uint64_t supersteps = 0;
  double total_seconds = 0;
  uint64_t network_bytes = 0;
  // Failure bookkeeping. `completed` is false when the fault plan
  // exhausted the retry policy: the job root never closes and the log
  // archives with status kIncomplete.
  bool completed = true;
  uint64_t failed_attempts = 0;
  uint64_t restarts = 0;
  double lost_seconds = 0;
};

// Converts monitor samples to archive environment records.
std::vector<core::EnvironmentRecord> ToEnvironmentRecords(
    const std::vector<cluster::UtilizationSample>& samples);

// Runs `threads` parallel slices of `total` CPU work on `cpu` and joins.
// Models a multi-threaded phase of a worker process.
sim::Task<> RunOnThreads(sim::Simulator* sim, sim::Cpu* cpu, SimTime total,
                         int threads);

// Installs the monitoring-side write-fault hook on `logger` when `faults`
// contains kLogWrite specs; no-op otherwise. `faults` must outlive the
// logger's use (platforms pass their own JobConfig copy).
void InstallLogWriteFaults(core::JobLogger* logger,
                           const sim::FaultPlan& faults);

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_PLATFORM_H_
