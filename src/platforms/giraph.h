#ifndef GRANULA_PLATFORMS_GIRAPH_H_
#define GRANULA_PLATFORMS_GIRAPH_H_

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "graph/graph.h"
#include "platforms/cost_model.h"
#include "platforms/platform.h"

namespace granula::platform {

// A from-scratch simulation of an Apache-Giraph-like platform: a Pregel
// (BSP, vertex-centric) engine provisioned through a YARN-like resource
// manager, loading from an HDFS-like block store, and coordinating
// supersteps through a ZooKeeper-like service (paper Table 1, row 1).
//
// The engine *really executes* the algorithm: the graph is hash-partitioned
// (edge cut) over workers, each worker runs the vertex program over its
// partition every superstep, and messages cross the simulated network.
// Returned vertex values are validated against algorithms/reference.h in
// the test suite. Simultaneously the run is instrumented with Granula
// StartOperation/EndOperation/AddInfo calls following the 4-level model of
// paper Fig. 4, and an environment monitor samples per-node utilization.
class GiraphPlatform {
 public:
  GiraphPlatform() = default;
  explicit GiraphPlatform(GiraphCostModel cost) : cost_(cost) {}

  const GiraphCostModel& cost_model() const { return cost_; }

  // Runs one job on a fresh simulated cluster. Fails if the algorithm has
  // no Pregel formulation or the config is inconsistent.
  Result<JobResult> Run(const graph::Graph& graph,
                        const algo::AlgorithmSpec& spec,
                        const cluster::ClusterConfig& cluster_config,
                        const JobConfig& job_config) const;

 private:
  GiraphCostModel cost_;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_GIRAPH_H_
