#ifndef GRANULA_PLATFORMS_COST_MODEL_H_
#define GRANULA_PLATFORMS_COST_MODEL_H_

#include "common/sim_time.h"

namespace granula::platform {

// Virtual-time cost constants for the simulated platforms.
//
// Calibration methodology (see DESIGN.md): the constants below are inputs,
// fixed once, chosen so that the *reference workload* (BFS on the Datagen-
// like graph of bench/workloads.h, 8 nodes) lands near the paper's Fig. 5
// proportions. Everything else — per-superstep imbalance, the PowerGraph
// single-loader idle pattern, barrier waits — is emergent from structure,
// not tuned. The same constants drive every experiment and test.
//
// The per-byte/per-vertex magnitudes are larger than physical hardware
// costs because the simulated graph is ~100x smaller than dg1000; scaling
// unit costs up by the same factor preserves phase ratios while keeping
// runs laptop-fast.

struct GiraphCostModel {
  // LoadGraph: text parsing + vertex/edge object creation per input byte
  // (Java deserialization is the CPU-heavy load the paper observes in
  // Fig. 6).
  SimTime parse_cpu_per_byte = SimTime::Micros(440);
  // ProcessGraph.
  SimTime compute_per_vertex = SimTime::Micros(900);
  SimTime compute_per_message = SimTime::Micros(500);
  uint64_t bytes_per_message = 16;
  SimTime prestep_overhead = SimTime::Millis(120);
  SimTime poststep_overhead = SimTime::Millis(80);
  // OffloadGraph: serialize a result line per vertex.
  SimTime serialize_cpu_per_byte = SimTime::Micros(40);
  uint64_t result_bytes_per_vertex = 40;
  // Checkpoint (fault injection only): serialized vertex value + active
  // flag + pending messages written to HDFS every k supersteps.
  uint64_t checkpoint_bytes_per_vertex = 24;
  // Cleanup stages (paper Fig. 4 level 2).
  SimTime abort_workers = SimTime::Seconds(3.2);
  SimTime client_cleanup = SimTime::Seconds(1.8);
  SimTime server_cleanup = SimTime::Seconds(2.2);
  SimTime zk_cleanup = SimTime::Seconds(2.0);
};

struct PowerGraphCostModel {
  // LoadGraph: rank 0 parses the whole file sequentially (the Fig. 7
  // bottleneck); finalization builds the distributed graph in parallel.
  SimTime parse_cpu_per_byte = SimTime::Micros(160);
  SimTime finalize_cpu_per_edge = SimTime::Micros(2000);
  // ProcessGraph (GAS engine, C++: cheaper per unit than Giraph).
  SimTime gather_per_edge = SimTime::Micros(110);
  SimTime apply_per_vertex = SimTime::Micros(130);
  SimTime scatter_per_edge = SimTime::Micros(70);
  uint64_t bytes_per_sync = 12;  // master<->mirror accumulator/value sync
  SimTime iteration_overhead = SimTime::Millis(120);
  // OffloadGraph.
  SimTime serialize_cpu_per_byte = SimTime::Micros(2);
  uint64_t result_bytes_per_vertex = 12;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_COST_MODEL_H_
