#include "platforms/hadoop.h"

#include <algorithm>
#include <memory>

#include "algorithms/pregel.h"
#include "cluster/monitor.h"
#include "cluster/provisioning.h"
#include "cluster/storage.h"
#include "common/strings.h"
#include "granula/models/models.h"
#include "graph/partition.h"
#include "platforms/message_store.h"
#include "sim/simulator.h"

namespace granula::platform {

namespace {

using core::JobLogger;
using core::OpId;
using graph::VertexId;

class HadoopJob {
 public:
  HadoopJob(const HadoopCostModel& cost, const graph::Graph& graph,
            const algo::PregelProgram& program,
            const cluster::ClusterConfig& cluster_config,
            const JobConfig& job_config)
      : cost_(cost),
        graph_(graph),
        program_(program),
        job_config_(job_config),
        cluster_(&sim_, cluster_config),
        hdfs_(&cluster_, HdfsOptions(cluster_config)),
        yarn_(&cluster_, cluster::YarnManager::Options{}),
        monitor_(&cluster_, job_config.monitor_interval),
        logger_([this] { return sim_.Now(); }),
        messages_(graph.num_vertices(), program.combiner()),
        injector_(job_config_.faults) {}

  Status Execute(JobResult* out) {
    const uint32_t workers = job_config_.num_workers;
    if (workers == 0 || workers > cluster_.num_nodes()) {
      return Status::InvalidArgument("num_workers must be in [1, num_nodes]");
    }
    InstallLogWriteFaults(&logger_, job_config_.faults);
    if (!job_config_.live_log_path.empty()) {
      GRANULA_RETURN_IF_ERROR(logger_.StreamTo(
          job_config_.live_log_path, job_config_.live_log_delay_us));
    }

    input_bytes_ = graph::EdgeListFileBytes(graph_);
    GRANULA_RETURN_IF_ERROR(hdfs_.CreateFile("/input/graph.e", input_bytes_));
    // The iterated state file holds every vertex's value, its adjacency
    // (both directions, as text), and pending messages.
    state_bytes_ = cost_.state_bytes_per_vertex * graph_.num_vertices() +
                   2 * input_bytes_;

    GRANULA_ASSIGN_OR_RETURN(partition_,
                             graph::PartitionEdgeCut(graph_, workers));
    values_.resize(graph_.num_vertices());
    active_.resize(graph_.num_vertices());
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      values_[v] = program_.InitialValue(v, graph_.num_vertices());
      active_[v] = program_.InitiallyActive(v) ? 1 : 0;
    }
    neighbors_.resize(graph_.num_vertices());
    for (const graph::Edge& e : graph_.edges()) {
      neighbors_[e.src].push_back(e.dst);
      neighbors_[e.dst].push_back(e.src);
    }
    for (auto& list : neighbors_) std::sort(list.begin(), list.end());

    sim_.Spawn(Main());
    sim_.Run();
    logger_.StopStreaming();

    out->vertex_values = values_;
    out->records = logger_.TakeRecords();
    out->environment = ToEnvironmentRecords(monitor_.samples());
    out->supersteps = iteration_;
    out->total_seconds = sim_.Now().seconds();
    out->network_bytes = cluster_.network_bytes_sent();
    out->completed = !job_failed_;
    out->failed_attempts = failed_attempts_;
    out->restarts = restarts_;
    out->lost_seconds = lost_time_.seconds();
    return Status::OK();
  }

 private:
  static cluster::Hdfs::Options HdfsOptions(
      const cluster::ClusterConfig& cluster_config) {
    cluster::Hdfs::Options options;
    options.block_size = 256 * 1024;
    options.replication = std::min<uint32_t>(options.replication,
                                             cluster_config.num_nodes);
    return options;
  }

  uint32_t TaskNode(uint32_t task) const { return containers_[task].node; }
  sim::Cpu& TaskCpu(uint32_t task) {
    return cluster_.node(TaskNode(task)).cpu();
  }

  sim::Task<> Main() {
    monitor_.Start();
    OpId root = logger_.StartOperation(core::kNoOp, core::ops::kJobActor,
                                       job_config_.job_id,
                                       core::ops::kJobMission, "HadoopJob");
    co_await RunStartup(root);
    co_await RunLoadGraph(root);
    co_await RunProcessGraph(root);
    if (job_failed_) {
      // Task re-attempts exhausted: the MR pipeline dies mid-job and the
      // open operations (map phase, MrJob, ProcessGraph, root) stay open
      // — the archive is marked kIncomplete.
      monitor_.Stop();
      co_return;
    }
    if (job_config_.offload_results) co_await RunOffloadGraph(root);
    co_await RunCleanup(root);
    logger_.AddInfo(root, "NetworkBytes",
                    Json(cluster_.network_bytes_sent()));
    logger_.EndOperation(root);
    monitor_.Stop();
  }

  // Startup: only the client and HDFS checks — each MR job pays its own
  // provisioning later (the structural difference from Giraph, which
  // allocates workers once).
  sim::Task<> RunStartup(OpId root) {
    OpId startup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kStartup,
        core::ops::kStartup);
    OpId op = logger_.StartOperation(startup, "Client", "Client-0",
                                     "JobStartup", "JobStartup");
    co_await sim_.Delay(SimTime::Millis(900));  // client + staging dir
    logger_.EndOperation(op);
    logger_.EndOperation(startup);
  }

  // LoadGraph: one conversion pass materializes the iterated state file
  // from the edge list.
  sim::Task<> RunLoadGraph(OpId root) {
    OpId load = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kLoadGraph, core::ops::kLoadGraph);
    OpId op = logger_.StartOperation(load, "Job", job_config_.job_id,
                                     "MaterializeState", "MaterializeState");
    co_await RunMrJob(op, /*is_materialize=*/true);
    logger_.AddInfo(op, "StateBytes", Json(state_bytes_));
    logger_.EndOperation(op);
    logger_.EndOperation(load);
  }

  bool AnyComputeCandidate() const {
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (active_[v] != 0 || messages_.HasCurrent(v)) return true;
    }
    return false;
  }

  sim::Task<> RunProcessGraph(OpId root) {
    OpId process = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kProcessGraph, core::ops::kProcessGraph);
    while (true) {
      uint64_t max_steps = program_.max_supersteps();
      if (!AnyComputeCandidate() ||
          (max_steps > 0 && iteration_ >= max_steps)) {
        break;
      }
      OpId job_op = logger_.StartOperation(
          process, "Master", "Master-0", "MrJob",
          StrFormat("Iteration-%llu",
                    static_cast<unsigned long long>(iteration_)));
      co_await RunMrJob(job_op, /*is_materialize=*/false);
      if (job_failed_) co_return;  // leave job_op and process open
      logger_.EndOperation(job_op);
      messages_.Swap();
      ++iteration_;
    }
    logger_.AddInfo(process, "Iterations", Json(iteration_));
    logger_.EndOperation(process);
  }

  // One MapReduce job. For the materialization pass the map side only
  // converts formats (no Compute, no shuffle of messages).
  sim::Task<> RunMrJob(OpId job_op, bool is_materialize) {
    // Fresh containers for every job: Hadoop's per-job provisioning.
    OpId setup = logger_.StartOperation(job_op, "Master", "Master-0",
                                        "JobSetup", "JobSetup");
    co_await sim_.Delay(cost_.job_submit);
    containers_.clear();
    co_await yarn_.AllocateContainers(0, job_config_.num_workers,
                                      &containers_);
    logger_.EndOperation(setup);

    // Map phase: all tasks in parallel.
    OpId map_phase = logger_.StartOperation(job_op, "Job",
                                            job_config_.job_id, "MapPhase",
                                            "MapPhase");
    map_output_bytes_.assign(job_config_.num_workers, 0);
    // One outbox shard per map task, reserved in task-index order before
    // any task runs. The merge at Swap() folds shards in index order, so
    // message delivery order — and the floating-point sums it feeds — is
    // independent of task completion times. A rescheduled (failed and
    // retried) map task computes late but still delivers into its own
    // slot: recovery cannot change the answer.
    const uint64_t shard_base =
        is_materialize ? 0 : messages_.AddShards(job_config_.num_workers);
    std::vector<sim::ProcessHandle> maps;
    for (uint32_t task = 0; task < job_config_.num_workers; ++task) {
      maps.push_back(sim_.Spawn(
          MapTask(map_phase, task, is_materialize, shard_base + task)));
    }
    co_await sim::JoinAll(std::move(maps));
    if (job_failed_) co_return;  // leave the map phase open
    logger_.EndOperation(map_phase);

    // Shuffle: map outputs cross the network to their reducers.
    OpId shuffle = logger_.StartOperation(job_op, "Job", job_config_.job_id,
                                          "ShufflePhase", "ShufflePhase");
    std::vector<sim::ProcessHandle> shuffles;
    for (uint32_t task = 0; task < job_config_.num_workers; ++task) {
      shuffles.push_back(sim_.Spawn(ShuffleTask(shuffle, task)));
    }
    co_await sim::JoinAll(std::move(shuffles));
    logger_.EndOperation(shuffle);

    // Reduce phase: merge, apply, and write the next state file.
    OpId reduce_phase = logger_.StartOperation(
        job_op, "Job", job_config_.job_id, "ReducePhase", "ReducePhase");
    std::vector<sim::ProcessHandle> reduces;
    for (uint32_t task = 0; task < job_config_.num_workers; ++task) {
      reduces.push_back(sim_.Spawn(ReduceTask(reduce_phase, task)));
    }
    co_await sim::JoinAll(std::move(reduces));
    logger_.EndOperation(reduce_phase);

    OpId commit = logger_.StartOperation(job_op, "Master", "Master-0",
                                         "JobCommit", "JobCommit");
    co_await sim_.Delay(cost_.job_commit);
    logger_.EndOperation(commit);
  }

  sim::Task<> MapTask(OpId parent, uint32_t task, bool is_materialize,
                      uint64_t shard) {
    // Injected task faults: YARN reschedules a failed map attempt on a
    // fresh container after a backoff. Each failed attempt is a real
    // operation — the partial read, the crash, detection, and the
    // backoff — and never mutates algorithm state (Compute runs only on
    // the attempt that succeeds). The materialization pass is exempt so
    // faults key on process-graph iterations.
    if (injector_.enabled() && !is_materialize) {
      uint32_t attempt = 0;
      while (const sim::FaultSpec* fault =
                 injector_.TaskFault(task, iteration_, attempt)) {
        OpId failed = logger_.StartOperation(
            parent, "Worker", StrFormat("MapTask-%u", task + 1),
            core::ops::kFailedAttempt,
            StrFormat("FailedAttempt-%llu-%u-%u",
                      static_cast<unsigned long long>(iteration_), task + 1,
                      attempt + 1));
        SimTime began = sim_.Now();
        uint64_t input = state_bytes_ / job_config_.num_workers;
        co_await cluster_.node(TaskNode(task)).disk().Transfer(input / 2);
        co_await sim_.Delay(fault->work_before_crash);
        co_await sim_.Delay(injector_.policy().detect_timeout);
        co_await sim_.Delay(injector_.Backoff(attempt));
        SimTime lost = sim_.Now() - began;
        logger_.AddInfo(failed, "Iteration", Json(iteration_));
        logger_.AddInfo(failed, "Attempt",
                        Json(static_cast<int64_t>(attempt) + 1));
        logger_.AddInfo(failed, "LostTime", Json(lost.nanos()));
        logger_.EndOperation(failed);
        ++failed_attempts_;
        lost_time_ += lost;
        ++attempt;
        if (attempt >= injector_.policy().max_attempts) {
          job_failed_ = true;
          co_return;
        }
      }
      restarts_ += attempt > 0 ? 1 : 0;
    }
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("MapTask-%u", task + 1), "MapTask",
        StrFormat("MapTask-%u", task + 1));
    // Read this task's share of the state file (edge file on the
    // materialization pass).
    uint64_t input = (is_materialize ? input_bytes_ : state_bytes_) /
                     job_config_.num_workers;
    co_await cluster_.node(TaskNode(task)).disk().Transfer(input);
    co_await RunOnThreads(
        &sim_, &TaskCpu(task),
        cost_.map_parse_per_byte * static_cast<double>(input),
        job_config_.compute_threads);

    uint64_t message_bytes = 0;
    uint64_t vertices_computed = 0;
    if (!is_materialize) {
      // Pregel-on-MapReduce: Compute runs map-side over this partition.
      VertexContext ctx(this, shard);
      for (VertexId v : partition_.partitions[task].vertices) {
        if (active_[v] == 0 && !messages_.HasCurrent(v)) continue;
        ctx.Reset(v);
        program_.Compute(ctx, messages_.CurrentMessages(v));
        active_[v] = ctx.voted_halt() ? 0 : 1;
        ++vertices_computed;
      }
      message_bytes = ctx.messages_sent() * cost_.bytes_per_message;
    }
    // Spill: every vertex's state plus emitted messages go to local disk.
    uint64_t output = state_bytes_ / job_config_.num_workers + message_bytes;
    map_output_bytes_[task] = output;
    co_await RunOnThreads(
        &sim_, &TaskCpu(task),
        cost_.spill_per_byte * static_cast<double>(output),
        job_config_.compute_threads);
    co_await cluster_.node(TaskNode(task)).disk().Transfer(output);
    logger_.AddInfo(op, "VerticesComputed", Json(vertices_computed));
    logger_.AddInfo(op, "OutputBytes", Json(output));
    logger_.EndOperation(op);
  }

  sim::Task<> ShuffleTask(OpId parent, uint32_t task) {
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("ShuffleTask-%u", task + 1),
        "ShuffleTask", StrFormat("ShuffleTask-%u", task + 1));
    // All but the local 1/W of this map task's output crosses the network,
    // spread evenly over the other reducers.
    uint64_t output = map_output_bytes_[task];
    uint64_t remote = output - output / job_config_.num_workers;
    uint64_t per_reducer =
        job_config_.num_workers > 1 ? remote / (job_config_.num_workers - 1)
                                    : 0;
    for (uint32_t r = 0; r < job_config_.num_workers; ++r) {
      if (r == task || per_reducer == 0) continue;
      co_await cluster_.Send(TaskNode(task), TaskNode(r), per_reducer);
    }
    logger_.AddInfo(op, "ShuffledBytes", Json(remote));
    logger_.EndOperation(op);
  }

  sim::Task<> ReduceTask(OpId parent, uint32_t task) {
    OpId op = logger_.StartOperation(
        parent, "Worker", StrFormat("ReduceTask-%u", task + 1),
        "ReduceTask", StrFormat("ReduceTask-%u", task + 1));
    uint64_t input = state_bytes_ / job_config_.num_workers;
    uint64_t records = partition_.partitions[task].vertices.size();
    // Merge-sort the shuffled input, apply per record, write new state.
    co_await RunOnThreads(
        &sim_, &TaskCpu(task),
        cost_.sort_per_byte * static_cast<double>(input) +
            cost_.reduce_per_record * static_cast<double>(records),
        job_config_.compute_threads);
    co_await RunOnThreads(
        &sim_, &TaskCpu(task),
        cost_.serialize_per_byte * static_cast<double>(input),
        job_config_.compute_threads);
    co_await hdfs_.WriteFromNode(
        TaskNode(task),
        StrFormat("/state/iter-%llu/part-%u",
                  static_cast<unsigned long long>(iteration_), task),
        input);
    logger_.AddInfo(op, "Records", Json(records));
    logger_.EndOperation(op);
  }

  sim::Task<> RunOffloadGraph(OpId root) {
    OpId offload = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id,
        core::ops::kOffloadGraph, core::ops::kOffloadGraph);
    OpId op = logger_.StartOperation(offload, "Worker", "Worker-1",
                                     "ExtractOutput", "ExtractOutput");
    // Strip values from the last state file (a cheap map-only pass
    // without compute; the state is already on HDFS).
    uint64_t result_bytes = 12 * graph_.num_vertices();
    co_await hdfs_.WriteFromNode(0, "/output/values", result_bytes);
    logger_.AddInfo(op, "BytesWritten", Json(result_bytes));
    logger_.EndOperation(op);
    logger_.EndOperation(offload);
  }

  sim::Task<> RunCleanup(OpId root) {
    OpId cleanup = logger_.StartOperation(
        root, core::ops::kJobActor, job_config_.job_id, core::ops::kCleanup,
        core::ops::kCleanup);
    OpId op = logger_.StartOperation(cleanup, "Master", "Master-0",
                                     "JobCleanup", "JobCleanup");
    co_await yarn_.Cleanup();
    co_await sim_.Delay(SimTime::Seconds(1.5));  // staging dir removal
    logger_.EndOperation(op);
    logger_.EndOperation(cleanup);
  }

  class VertexContext : public algo::PregelVertexContext {
   public:
    VertexContext(HadoopJob* job, uint64_t shard)
        : job_(job), shard_(shard) {}

    void Reset(VertexId v) {
      vertex_ = v;
      voted_halt_ = false;
    }
    bool voted_halt() const { return voted_halt_; }
    uint64_t messages_sent() const { return messages_sent_; }

    VertexId vertex_id() const override { return vertex_; }
    uint64_t superstep() const override { return job_->iteration_; }
    uint64_t num_vertices() const override {
      return job_->graph_.num_vertices();
    }
    double value() const override { return job_->values_[vertex_]; }
    void set_value(double v) override { job_->values_[vertex_] = v; }
    std::span<const VertexId> neighbors() const override {
      return job_->neighbors_[vertex_];
    }
    void SendTo(VertexId target, double message) override {
      job_->messages_.Deliver(shard_, target, message);
      ++messages_sent_;
    }
    void SendToAllNeighbors(double message) override {
      for (VertexId nbr : job_->neighbors_[vertex_]) SendTo(nbr, message);
    }
    void VoteToHalt() override { voted_halt_ = true; }

   private:
    HadoopJob* job_;
    uint64_t shard_ = 0;
    VertexId vertex_ = 0;
    bool voted_halt_ = false;
    uint64_t messages_sent_ = 0;
  };

  const HadoopCostModel& cost_;
  const graph::Graph& graph_;
  const algo::PregelProgram& program_;
  JobConfig job_config_;

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::Hdfs hdfs_;
  cluster::YarnManager yarn_;
  cluster::EnvironmentMonitor monitor_;
  JobLogger logger_;

  graph::EdgeCutResult partition_;
  std::vector<std::vector<VertexId>> neighbors_;
  std::vector<double> values_;
  std::vector<uint8_t> active_;
  MessageStore messages_;
  std::vector<cluster::YarnManager::Container> containers_;
  std::vector<uint64_t> map_output_bytes_;

  uint64_t input_bytes_ = 0;
  uint64_t state_bytes_ = 0;
  uint64_t iteration_ = 0;

  // Fault injection (inert when the plan is empty).
  sim::FaultInjector injector_;
  bool job_failed_ = false;
  uint64_t failed_attempts_ = 0;
  uint64_t restarts_ = 0;
  SimTime lost_time_;
};

}  // namespace

Result<JobResult> HadoopPlatform::Run(
    const graph::Graph& graph, const algo::AlgorithmSpec& spec,
    const cluster::ClusterConfig& cluster_config,
    const JobConfig& job_config) const {
  GRANULA_ASSIGN_OR_RETURN(auto program, algo::MakePregelProgram(spec));
  HadoopJob job(cost_, graph, *program, cluster_config, job_config);
  JobResult result;
  GRANULA_RETURN_IF_ERROR(job.Execute(&result));
  return result;
}

}  // namespace granula::platform
