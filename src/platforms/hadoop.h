#ifndef GRANULA_PLATFORMS_HADOOP_H_
#define GRANULA_PLATFORMS_HADOOP_H_

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "graph/graph.h"
#include "platforms/cost_model.h"
#include "platforms/platform.h"

namespace granula::platform {

// Cost constants for the MapReduce engine (same calibration scale as the
// other platforms; see cost_model.h).
struct HadoopCostModel {
  // Map: read + parse a state record ("vertex value adjacency messages").
  SimTime map_parse_per_byte = SimTime::Micros(60);
  // Map output spill to local disk, and reduce-side merge sort.
  SimTime spill_per_byte = SimTime::Micros(8);
  SimTime sort_per_byte = SimTime::Micros(20);
  // Reduce: apply + serialize the new state file.
  SimTime reduce_per_record = SimTime::Micros(250);
  SimTime serialize_per_byte = SimTime::Micros(10);
  // Per-MR-job fixed costs beyond YARN container allocation.
  SimTime job_submit = SimTime::Seconds(1.2);
  SimTime job_commit = SimTime::Seconds(0.8);
  // State-record framing bytes per vertex (ids, value, separators).
  uint64_t state_bytes_per_vertex = 24;
  uint64_t bytes_per_message = 16;
};

// A from-scratch simulation of a Hadoop-MapReduce-like platform used *as a
// graph processor* — the paper's Table 1 last row, and its introduction's
// cautionary tale: "General Big Data platforms, such as the MapReduce-based
// Apache Hadoop, have not been able so far to process graphs without
// severe performance penalties".
//
// The engine runs Pregel programs through the classic
// Pregel-on-MapReduce encoding: one MR job per superstep. Each job
//   * allocates fresh YARN containers (no long-lived workers!),
//   * map tasks read the full graph-state file from HDFS, run Compute for
//     active vertices, and spill (vertex-state + message) records,
//   * a shuffle moves every record to its reducer,
//   * reduce tasks merge messages per vertex and write the complete next
//     state file back to HDFS (with replication).
// Rewriting the whole graph through the filesystem every iteration — and
// re-paying provisioning per iteration — is exactly where the orders-of-
// magnitude penalty comes from; bench/intro_hadoop_penalty quantifies it.
//
// Correctness: identical vertex values to the Giraph engine and the
// sequential references (same PregelProgram objects; tested).
class HadoopPlatform {
 public:
  HadoopPlatform() = default;
  explicit HadoopPlatform(HadoopCostModel cost) : cost_(cost) {}

  const HadoopCostModel& cost_model() const { return cost_; }

  Result<JobResult> Run(const graph::Graph& graph,
                        const algo::AlgorithmSpec& spec,
                        const cluster::ClusterConfig& cluster_config,
                        const JobConfig& job_config) const;

 private:
  HadoopCostModel cost_;
};

}  // namespace granula::platform

#endif  // GRANULA_PLATFORMS_HADOOP_H_
