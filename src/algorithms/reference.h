#ifndef GRANULA_ALGORITHMS_REFERENCE_H_
#define GRANULA_ALGORITHMS_REFERENCE_H_

#include <vector>

#include "algorithms/api.h"
#include "common/result.h"
#include "graph/graph.h"

namespace granula::algo {

// Sequential, single-machine reference implementations. The platform
// engines are validated against these (see tests/): a distributed run on any
// partitioning must produce exactly the values computed here.
//
// All of them treat the graph as undirected, like the engines.

// Hop distances from `source`; kInfinity for unreachable vertices.
std::vector<double> ReferenceBfs(const graph::Graph& graph,
                                 graph::VertexId source);

// Shortest-path distances from `source` using EdgeWeight(); Dijkstra.
std::vector<double> ReferenceSssp(const graph::Graph& graph,
                                  graph::VertexId source);

// Connected-component labels: each vertex mapped to the smallest vertex id
// in its component.
std::vector<double> ReferenceWcc(const graph::Graph& graph);

// PageRank after exactly `iterations` synchronous updates with the given
// damping factor, starting from the uniform vector.
std::vector<double> ReferencePageRank(const graph::Graph& graph,
                                      uint64_t iterations, double damping);

// Synchronous community detection by label propagation, `iterations`
// rounds, most-frequent label with smallest-label tie-breaking.
std::vector<double> ReferenceCdlp(const graph::Graph& graph,
                                  uint64_t iterations);

// Local clustering coefficient per vertex (undirected definition).
std::vector<double> ReferenceLcc(const graph::Graph& graph);

// Dispatch by spec (LCC included).
Result<std::vector<double>> RunReference(const graph::Graph& graph,
                                         const AlgorithmSpec& spec);

}  // namespace granula::algo

#endif  // GRANULA_ALGORITHMS_REFERENCE_H_
