#ifndef GRANULA_ALGORITHMS_API_H_
#define GRANULA_ALGORITHMS_API_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/graph.h"

namespace granula::algo {

// The Graphalytics core algorithms. BFS is the paper's headline workload
// (Section 4); the rest exercise the engines more broadly. LCC is
// implemented as a reference algorithm only: the platform engines exchange
// scalar messages, and LCC needs adjacency-list messages (documented
// limitation, matching the scope of the paper's experiments).
enum class AlgorithmId {
  kBfs,
  kPageRank,
  kWcc,
  kSssp,
  kCdlp,
  kLcc,
};

std::string_view AlgorithmName(AlgorithmId id);
Result<AlgorithmId> ParseAlgorithm(std::string_view name);

// Parameters for a run. Only the fields relevant to the algorithm are used.
struct AlgorithmSpec {
  AlgorithmId id = AlgorithmId::kBfs;
  graph::VertexId source = 0;    // BFS, SSSP
  uint64_t max_iterations = 10;  // PageRank, CDLP
  double damping = 0.85;         // PageRank
};

// Deterministic synthetic edge weight in [1, 8], derived from the endpoint
// ids. Both the platform engines and the reference SSSP use this function,
// so their outputs are directly comparable without storing weights.
double EdgeWeight(graph::VertexId u, graph::VertexId v);

// Sentinel for "unreached" distances in BFS/SSSP vertex values.
inline constexpr double kInfinity = 1e300;

}  // namespace granula::algo

#endif  // GRANULA_ALGORITHMS_API_H_
