#ifndef GRANULA_ALGORITHMS_PREGEL_H_
#define GRANULA_ALGORITHMS_PREGEL_H_

#include <cstdint>
#include <memory>
#include <span>

#include "algorithms/api.h"
#include "common/result.h"
#include "graph/graph.h"

namespace granula::algo {

// The vertex-centric (Pregel) programming model, as used by the simulated
// Giraph engine. Vertex values and messages are doubles; every Graphalytics
// algorithm except LCC is expressible this way.

// Engine-provided view of one vertex during Compute().
class PregelVertexContext {
 public:
  virtual ~PregelVertexContext() = default;

  virtual graph::VertexId vertex_id() const = 0;
  virtual uint64_t superstep() const = 0;
  virtual uint64_t num_vertices() const = 0;

  virtual double value() const = 0;
  virtual void set_value(double v) = 0;

  virtual std::span<const graph::VertexId> neighbors() const = 0;

  virtual void SendTo(graph::VertexId target, double message) = 0;
  virtual void SendToAllNeighbors(double message) = 0;

  // An inactive vertex skips Compute() until a message re-activates it.
  virtual void VoteToHalt() = 0;
};

// Optional message combiner, applied before delivery (and, in a distributed
// engine, before network transfer — Giraph's classic optimization).
enum class Combiner { kNone, kMin, kMax, kSum };

class PregelProgram {
 public:
  virtual ~PregelProgram() = default;

  virtual double InitialValue(graph::VertexId v,
                              uint64_t num_vertices) const = 0;

  // Whether every vertex starts active (PageRank/CDLP/WCC) or only some
  // (BFS/SSSP start the source only).
  virtual bool InitiallyActive(graph::VertexId v) const = 0;

  virtual void Compute(PregelVertexContext& ctx,
                       std::span<const double> messages) const = 0;

  virtual Combiner combiner() const { return Combiner::kNone; }

  // Hard superstep cap (0 = run until all vertices halt).
  virtual uint64_t max_supersteps() const { return 0; }
};

// Factory: builds the vertex program for `spec`. Fails for algorithms that
// have no Pregel formulation here (LCC).
Result<std::unique_ptr<PregelProgram>> MakePregelProgram(
    const AlgorithmSpec& spec);

}  // namespace granula::algo

#endif  // GRANULA_ALGORITHMS_PREGEL_H_
