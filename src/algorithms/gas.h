#ifndef GRANULA_ALGORITHMS_GAS_H_
#define GRANULA_ALGORITHMS_GAS_H_

#include <cstdint>
#include <memory>

#include "algorithms/api.h"
#include "common/result.h"
#include "graph/graph.h"

namespace granula::algo {

// The Gather-Apply-Scatter model, as used by the simulated PowerGraph
// engine. The engine invokes, per active vertex and iteration:
//   acc = fold(Gather(edge) for each gather edge)  -- distributed over mirrors
//   new_value = Apply(old_value, acc)              -- on the master replica
//   for each scatter edge: maybe activate neighbor -- distributed over mirrors
class GasProgram {
 public:
  virtual ~GasProgram() = default;

  virtual double InitialValue(graph::VertexId v,
                              uint64_t num_vertices) const = 0;
  virtual bool InitiallyActive(graph::VertexId v) const = 0;

  // Identity element for the gather accumulator.
  virtual double GatherInit() const = 0;

  // Contribution of one edge (self, other) given the neighbor's value and
  // (undirected) degree. PageRank divides by the neighbor's degree here.
  virtual double Gather(graph::VertexId self, graph::VertexId other,
                        double other_value, uint64_t other_degree) const = 0;

  // Commutative/associative fold of two partial accumulators — the property
  // PowerGraph exploits to gather on mirrors before combining at the master.
  virtual double Sum(double a, double b) const = 0;

  struct ApplyResult {
    double new_value;
    bool scatter;  // run the scatter phase for this vertex?
  };
  virtual ApplyResult Apply(graph::VertexId v, double old_value,
                            double acc, uint64_t num_vertices) const = 0;

  // During scatter on edge (self, other): should `other` be active next
  // iteration?
  virtual bool ScatterActivates(graph::VertexId self, graph::VertexId other,
                                double new_value,
                                double other_value) const = 0;

  // Hard iteration cap (0 = run until no vertex is active).
  virtual uint64_t max_iterations() const { return 0; }

  // Fixed-round algorithms (PageRank) keep every vertex active until the
  // iteration cap instead of using scatter-driven activation.
  virtual bool always_active() const { return false; }
};

// Factory: builds the GAS program for `spec`. Fails for LCC.
Result<std::unique_ptr<GasProgram>> MakeGasProgram(const AlgorithmSpec& spec);

}  // namespace granula::algo

#endif  // GRANULA_ALGORITHMS_GAS_H_
