#include "algorithms/reference.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <unordered_set>

namespace granula::algo {

namespace {

// Undirected adjacency used by every reference algorithm.
struct Adjacency {
  explicit Adjacency(const graph::Graph& graph) {
    neighbors.resize(graph.num_vertices());
    for (const graph::Edge& e : graph.edges()) {
      neighbors[e.src].push_back(e.dst);
      neighbors[e.dst].push_back(e.src);
    }
    for (auto& list : neighbors) std::sort(list.begin(), list.end());
  }
  std::vector<std::vector<graph::VertexId>> neighbors;
};

}  // namespace

std::vector<double> ReferenceBfs(const graph::Graph& graph,
                                 graph::VertexId source) {
  Adjacency adj(graph);
  std::vector<double> dist(graph.num_vertices(), kInfinity);
  if (source >= graph.num_vertices()) return dist;
  std::deque<graph::VertexId> queue{source};
  dist[source] = 0.0;
  while (!queue.empty()) {
    graph::VertexId v = queue.front();
    queue.pop_front();
    for (graph::VertexId u : adj.neighbors[v]) {
      if (dist[u] == kInfinity) {
        dist[u] = dist[v] + 1.0;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<double> ReferenceSssp(const graph::Graph& graph,
                                  graph::VertexId source) {
  Adjacency adj(graph);
  std::vector<double> dist(graph.num_vertices(), kInfinity);
  if (source >= graph.num_vertices()) return dist;
  using Entry = std::pair<double, graph::VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (graph::VertexId u : adj.neighbors[v]) {
      double nd = d + EdgeWeight(v, u);
      if (nd < dist[u]) {
        dist[u] = nd;
        heap.push({nd, u});
      }
    }
  }
  return dist;
}

std::vector<double> ReferenceWcc(const graph::Graph& graph) {
  uint64_t n = graph.num_vertices();
  std::vector<graph::VertexId> parent(n);
  for (graph::VertexId v = 0; v < n; ++v) parent[v] = v;
  auto find = [&](graph::VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const graph::Edge& e : graph.edges()) {
    graph::VertexId a = find(e.src), b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Labels must be the component minimum: compress fully, then the root of
  // each tree is its minimum because unions always point larger at smaller.
  std::vector<double> label(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    label[v] = static_cast<double>(find(v));
  }
  return label;
}

std::vector<double> ReferencePageRank(const graph::Graph& graph,
                                      uint64_t iterations, double damping) {
  Adjacency adj(graph);
  uint64_t n = graph.num_vertices();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> next(n, 0.0);
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    for (graph::VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (graph::VertexId u : adj.neighbors[v]) {
        sum += rank[u] / static_cast<double>(adj.neighbors[u].size());
      }
      next[v] =
          (1.0 - damping) / static_cast<double>(n) + damping * sum;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> ReferenceCdlp(const graph::Graph& graph,
                                  uint64_t iterations) {
  Adjacency adj(graph);
  uint64_t n = graph.num_vertices();
  std::vector<double> label(n);
  for (graph::VertexId v = 0; v < n; ++v) label[v] = static_cast<double>(v);
  std::vector<double> next(n);
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    for (graph::VertexId v = 0; v < n; ++v) {
      if (adj.neighbors[v].empty()) {
        next[v] = label[v];
        continue;
      }
      std::map<double, uint64_t> freq;
      for (graph::VertexId u : adj.neighbors[v]) ++freq[label[u]];
      double best_label = label[v];
      uint64_t best_count = 0;
      for (const auto& [lbl, count] : freq) {
        if (count > best_count) {
          best_count = count;
          best_label = lbl;
        }
      }
      next[v] = best_label;
    }
    label.swap(next);
  }
  return label;
}

std::vector<double> ReferenceLcc(const graph::Graph& graph) {
  Adjacency adj(graph);
  uint64_t n = graph.num_vertices();
  std::vector<double> lcc(n, 0.0);
  for (graph::VertexId v = 0; v < n; ++v) {
    // Deduplicated neighbor set (parallel edges count once).
    std::vector<graph::VertexId> nbrs = adj.neighbors[v];
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), v), nbrs.end());
    size_t d = nbrs.size();
    if (d < 2) continue;
    std::unordered_set<graph::VertexId> nbr_set(nbrs.begin(), nbrs.end());
    uint64_t links = 0;
    for (graph::VertexId u : nbrs) {
      std::vector<graph::VertexId> unbrs = adj.neighbors[u];
      unbrs.erase(std::unique(unbrs.begin(), unbrs.end()), unbrs.end());
      for (graph::VertexId w : unbrs) {
        if (w > u && nbr_set.count(w) > 0) ++links;
      }
    }
    lcc[v] = 2.0 * static_cast<double>(links) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return lcc;
}

Result<std::vector<double>> RunReference(const graph::Graph& graph,
                                         const AlgorithmSpec& spec) {
  switch (spec.id) {
    case AlgorithmId::kBfs:
      return ReferenceBfs(graph, spec.source);
    case AlgorithmId::kSssp:
      return ReferenceSssp(graph, spec.source);
    case AlgorithmId::kWcc:
      return ReferenceWcc(graph);
    case AlgorithmId::kPageRank:
      return ReferencePageRank(graph, spec.max_iterations, spec.damping);
    case AlgorithmId::kCdlp:
      return ReferenceCdlp(graph, spec.max_iterations);
    case AlgorithmId::kLcc:
      return ReferenceLcc(graph);
  }
  return Status::InvalidArgument("unknown algorithm id");
}

}  // namespace granula::algo
