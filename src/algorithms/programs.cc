#include <algorithm>
#include <map>
#include <memory>

#include "algorithms/api.h"
#include "algorithms/gas.h"
#include "algorithms/pregel.h"
#include "common/strings.h"

namespace granula::algo {

std::string_view AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kBfs:
      return "BFS";
    case AlgorithmId::kPageRank:
      return "PageRank";
    case AlgorithmId::kWcc:
      return "WCC";
    case AlgorithmId::kSssp:
      return "SSSP";
    case AlgorithmId::kCdlp:
      return "CDLP";
    case AlgorithmId::kLcc:
      return "LCC";
  }
  return "unknown";
}

Result<AlgorithmId> ParseAlgorithm(std::string_view name) {
  for (AlgorithmId id :
       {AlgorithmId::kBfs, AlgorithmId::kPageRank, AlgorithmId::kWcc,
        AlgorithmId::kSssp, AlgorithmId::kCdlp, AlgorithmId::kLcc}) {
    if (name == AlgorithmName(id)) return id;
  }
  return Status::NotFound(
      StrFormat("unknown algorithm '%.*s'", static_cast<int>(name.size()),
                name.data()));
}

double EdgeWeight(graph::VertexId u, graph::VertexId v) {
  if (u > v) std::swap(u, v);  // symmetric
  uint64_t x = u * 0x9e3779b97f4a7c15ULL + v;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return 1.0 + static_cast<double>(x % 8);  // [1, 8]
}

namespace {

// ---------------------------------------------------------------- Pregel --

class BfsPregel : public PregelProgram {
 public:
  explicit BfsPregel(graph::VertexId source) : source_(source) {}

  double InitialValue(graph::VertexId, uint64_t) const override {
    return kInfinity;
  }
  bool InitiallyActive(graph::VertexId v) const override {
    return v == source_;
  }
  Combiner combiner() const override { return Combiner::kMin; }

  void Compute(PregelVertexContext& ctx,
               std::span<const double> messages) const override {
    double best = ctx.value();
    if (ctx.superstep() == 0 && ctx.vertex_id() == source_) best = 0.0;
    for (double m : messages) best = std::min(best, m);
    if (best < ctx.value() || (ctx.superstep() == 0 && best == 0.0)) {
      ctx.set_value(best);
      ctx.SendToAllNeighbors(best + 1.0);
    }
    ctx.VoteToHalt();
  }

 private:
  graph::VertexId source_;
};

class SsspPregel : public PregelProgram {
 public:
  explicit SsspPregel(graph::VertexId source) : source_(source) {}

  double InitialValue(graph::VertexId, uint64_t) const override {
    return kInfinity;
  }
  bool InitiallyActive(graph::VertexId v) const override {
    return v == source_;
  }
  Combiner combiner() const override { return Combiner::kMin; }

  void Compute(PregelVertexContext& ctx,
               std::span<const double> messages) const override {
    double best = ctx.value();
    if (ctx.superstep() == 0 && ctx.vertex_id() == source_) best = 0.0;
    for (double m : messages) best = std::min(best, m);
    if (best < ctx.value() || (ctx.superstep() == 0 && best == 0.0)) {
      ctx.set_value(best);
      for (graph::VertexId nbr : ctx.neighbors()) {
        ctx.SendTo(nbr, best + EdgeWeight(ctx.vertex_id(), nbr));
      }
    }
    ctx.VoteToHalt();
  }

 private:
  graph::VertexId source_;
};

class WccPregel : public PregelProgram {
 public:
  double InitialValue(graph::VertexId v, uint64_t) const override {
    return static_cast<double>(v);
  }
  bool InitiallyActive(graph::VertexId) const override { return true; }
  Combiner combiner() const override { return Combiner::kMin; }

  void Compute(PregelVertexContext& ctx,
               std::span<const double> messages) const override {
    double best = ctx.value();
    for (double m : messages) best = std::min(best, m);
    if (ctx.superstep() == 0) {
      ctx.SendToAllNeighbors(best);
    } else if (best < ctx.value()) {
      ctx.set_value(best);
      ctx.SendToAllNeighbors(best);
    }
    ctx.VoteToHalt();
  }
};

class PageRankPregel : public PregelProgram {
 public:
  PageRankPregel(uint64_t iterations, double damping)
      : iterations_(iterations), damping_(damping) {}

  double InitialValue(graph::VertexId, uint64_t num_vertices) const override {
    return 1.0 / static_cast<double>(num_vertices);
  }
  bool InitiallyActive(graph::VertexId) const override { return true; }
  Combiner combiner() const override { return Combiner::kSum; }
  uint64_t max_supersteps() const override { return iterations_ + 1; }

  void Compute(PregelVertexContext& ctx,
               std::span<const double> messages) const override {
    if (ctx.superstep() > 0) {
      double sum = 0.0;
      for (double m : messages) sum += m;
      double n = static_cast<double>(ctx.num_vertices());
      ctx.set_value((1.0 - damping_) / n + damping_ * sum);
    }
    if (ctx.superstep() < iterations_) {
      size_t degree = ctx.neighbors().size();
      if (degree > 0) {
        ctx.SendToAllNeighbors(ctx.value() /
                               static_cast<double>(degree));
      }
      // Stay active: every vertex updates every round, with or without
      // incoming messages (matches the reference power iteration).
    } else {
      ctx.VoteToHalt();
    }
  }

 private:
  uint64_t iterations_;
  double damping_;
};

class CdlpPregel : public PregelProgram {
 public:
  explicit CdlpPregel(uint64_t iterations) : iterations_(iterations) {}

  double InitialValue(graph::VertexId v, uint64_t) const override {
    return static_cast<double>(v);
  }
  bool InitiallyActive(graph::VertexId) const override { return true; }
  uint64_t max_supersteps() const override { return iterations_ + 1; }

  void Compute(PregelVertexContext& ctx,
               std::span<const double> messages) const override {
    if (ctx.superstep() > 0 && !messages.empty()) {
      // Most frequent label; ties broken toward the smallest label
      // (the Graphalytics CDLP rule).
      std::map<double, uint64_t> freq;
      for (double m : messages) ++freq[m];
      double best_label = ctx.value();
      uint64_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count) {  // map iterates labels ascending
          best_count = count;
          best_label = label;
        }
      }
      ctx.set_value(best_label);
    }
    if (ctx.superstep() < iterations_) {
      ctx.SendToAllNeighbors(ctx.value());
    } else {
      ctx.VoteToHalt();
    }
  }

 private:
  uint64_t iterations_;
};

// ------------------------------------------------------------------- GAS --

class BfsGas : public GasProgram {
 public:
  explicit BfsGas(graph::VertexId source) : source_(source) {}

  double InitialValue(graph::VertexId v, uint64_t) const override {
    return v == source_ ? 0.0 : kInfinity;
  }
  bool InitiallyActive(graph::VertexId v) const override {
    return v == source_;
  }
  double GatherInit() const override { return kInfinity; }
  double Gather(graph::VertexId, graph::VertexId, double other_value,
                uint64_t) const override {
    return other_value + 1.0;
  }
  double Sum(double a, double b) const override { return std::min(a, b); }
  ApplyResult Apply(graph::VertexId, double old_value, double acc,
                    uint64_t) const override {
    return ApplyResult{std::min(old_value, acc), true};
  }
  bool ScatterActivates(graph::VertexId, graph::VertexId, double new_value,
                        double other_value) const override {
    return new_value + 1.0 < other_value;
  }

 private:
  graph::VertexId source_;
};

class SsspGas : public GasProgram {
 public:
  explicit SsspGas(graph::VertexId source) : source_(source) {}

  double InitialValue(graph::VertexId v, uint64_t) const override {
    return v == source_ ? 0.0 : kInfinity;
  }
  bool InitiallyActive(graph::VertexId v) const override {
    return v == source_;
  }
  double GatherInit() const override { return kInfinity; }
  double Gather(graph::VertexId self, graph::VertexId other,
                double other_value, uint64_t) const override {
    return other_value + EdgeWeight(other, self);
  }
  double Sum(double a, double b) const override { return std::min(a, b); }
  ApplyResult Apply(graph::VertexId, double old_value, double acc,
                    uint64_t) const override {
    return ApplyResult{std::min(old_value, acc), true};
  }
  bool ScatterActivates(graph::VertexId self, graph::VertexId other,
                        double new_value,
                        double other_value) const override {
    return new_value + EdgeWeight(self, other) < other_value;
  }

 private:
  graph::VertexId source_;
};

class WccGas : public GasProgram {
 public:
  double InitialValue(graph::VertexId v, uint64_t) const override {
    return static_cast<double>(v);
  }
  bool InitiallyActive(graph::VertexId) const override { return true; }
  double GatherInit() const override { return kInfinity; }
  double Gather(graph::VertexId, graph::VertexId, double other_value,
                uint64_t) const override {
    return other_value;
  }
  double Sum(double a, double b) const override { return std::min(a, b); }
  ApplyResult Apply(graph::VertexId, double old_value, double acc,
                    uint64_t) const override {
    return ApplyResult{std::min(old_value, acc), true};
  }
  bool ScatterActivates(graph::VertexId, graph::VertexId, double new_value,
                        double other_value) const override {
    return new_value < other_value;
  }
};

class PageRankGas : public GasProgram {
 public:
  PageRankGas(uint64_t iterations, double damping)
      : iterations_(iterations), damping_(damping) {}

  double InitialValue(graph::VertexId, uint64_t num_vertices) const override {
    return 1.0 / static_cast<double>(num_vertices);
  }
  bool InitiallyActive(graph::VertexId) const override { return true; }
  double GatherInit() const override { return 0.0; }
  double Gather(graph::VertexId, graph::VertexId, double other_value,
                uint64_t other_degree) const override {
    return other_degree == 0
               ? 0.0
               : other_value / static_cast<double>(other_degree);
  }
  double Sum(double a, double b) const override { return a + b; }
  ApplyResult Apply(graph::VertexId, double, double acc,
                    uint64_t num_vertices) const override {
    double n = static_cast<double>(num_vertices);
    return ApplyResult{(1.0 - damping_) / n + damping_ * acc, false};
  }
  bool ScatterActivates(graph::VertexId, graph::VertexId, double,
                        double) const override {
    return false;
  }
  uint64_t max_iterations() const override { return iterations_; }
  bool always_active() const override { return true; }

 private:
  uint64_t iterations_;
  double damping_;
};

}  // namespace

Result<std::unique_ptr<PregelProgram>> MakePregelProgram(
    const AlgorithmSpec& spec) {
  switch (spec.id) {
    case AlgorithmId::kBfs:
      return std::unique_ptr<PregelProgram>(new BfsPregel(spec.source));
    case AlgorithmId::kSssp:
      return std::unique_ptr<PregelProgram>(new SsspPregel(spec.source));
    case AlgorithmId::kWcc:
      return std::unique_ptr<PregelProgram>(new WccPregel());
    case AlgorithmId::kPageRank:
      return std::unique_ptr<PregelProgram>(
          new PageRankPregel(spec.max_iterations, spec.damping));
    case AlgorithmId::kCdlp:
      return std::unique_ptr<PregelProgram>(
          new CdlpPregel(spec.max_iterations));
    case AlgorithmId::kLcc:
      return Status::Unimplemented(
          "LCC requires adjacency-list messages; reference implementation "
          "only");
  }
  return Status::InvalidArgument("unknown algorithm id");
}

Result<std::unique_ptr<GasProgram>> MakeGasProgram(const AlgorithmSpec& spec) {
  switch (spec.id) {
    case AlgorithmId::kBfs:
      return std::unique_ptr<GasProgram>(new BfsGas(spec.source));
    case AlgorithmId::kSssp:
      return std::unique_ptr<GasProgram>(new SsspGas(spec.source));
    case AlgorithmId::kWcc:
      return std::unique_ptr<GasProgram>(new WccGas());
    case AlgorithmId::kPageRank:
      return std::unique_ptr<GasProgram>(
          new PageRankGas(spec.max_iterations, spec.damping));
    case AlgorithmId::kCdlp:
      return Status::Unimplemented(
          "CDLP's histogram gather is not a scalar monoid; use the Pregel "
          "formulation");
    case AlgorithmId::kLcc:
      return Status::Unimplemented(
          "LCC requires adjacency-list messages; reference implementation "
          "only");
  }
  return Status::InvalidArgument("unknown algorithm id");
}

}  // namespace granula::algo
