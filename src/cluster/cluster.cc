#include "cluster/cluster.h"

#include "common/strings.h"

namespace granula::cluster {

Cluster::Cluster(sim::Simulator* sim, const ClusterConfig& config)
    : sim_(sim), config_(config) {
  nodes_.reserve(config.num_nodes);
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    std::string hostname = StrFormat("%s%u", config.hostname_prefix.c_str(),
                                     config.first_host_number + i);
    double speed = i < config.node_speed_factors.size()
                       ? config.node_speed_factors[i]
                       : 1.0;
    nodes_.push_back(std::make_unique<Node>(
        sim, i, std::move(hostname), config.cores_per_node, speed,
        config.disk_bytes_per_sec, config.net_bytes_per_sec,
        config.net_latency));
  }
}

sim::Task<> Cluster::Send(uint32_t src, uint32_t dst, uint64_t bytes) {
  if (src == dst || bytes == 0) co_return;
  network_bytes_sent_ += bytes;
  co_await nodes_[src]->nic_out().Transfer(bytes);
}

}  // namespace granula::cluster
