#ifndef GRANULA_CLUSTER_CLUSTER_H_
#define GRANULA_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sim/resources.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace granula::cluster {

// One simulated machine: a multi-core CPU, a disk, and a full-duplex NIC.
class Node {
 public:
  Node(sim::Simulator* sim, uint32_t id, std::string hostname, int cores,
       double cpu_speed_factor, double disk_bytes_per_sec,
       double net_bytes_per_sec, SimTime net_latency)
      : id_(id),
        hostname_(std::move(hostname)),
        cpu_(sim, cores, cpu_speed_factor),
        disk_(sim, disk_bytes_per_sec, SimTime()),
        nic_out_(sim, net_bytes_per_sec, net_latency),
        nic_in_(sim, net_bytes_per_sec, SimTime()) {}

  uint32_t id() const { return id_; }
  const std::string& hostname() const { return hostname_; }

  sim::Cpu& cpu() { return cpu_; }
  const sim::Cpu& cpu() const { return cpu_; }
  sim::Channel& disk() { return disk_; }
  sim::Channel& nic_out() { return nic_out_; }
  sim::Channel& nic_in() { return nic_in_; }

 private:
  uint32_t id_;
  std::string hostname_;
  sim::Cpu cpu_;
  sim::Channel disk_;
  sim::Channel nic_out_;
  sim::Channel nic_in_;
};

// Dimensions of the simulated cluster. Defaults approximate a DAS5-like
// 8-node slice (16 cores, 10 Gbit/s interconnect, local spinning disks).
struct ClusterConfig {
  uint32_t num_nodes = 8;
  int cores_per_node = 16;
  double disk_bytes_per_sec = 150.0 * 1024 * 1024;   // 150 MiB/s
  double net_bytes_per_sec = 1250.0 * 1024 * 1024;   // 10 Gbit/s
  SimTime net_latency = SimTime::Micros(50);
  std::string hostname_prefix = "node";
  uint32_t first_host_number = 339;  // the paper's Giraph run used node339+
  // Per-node CPU speed multipliers (empty = all 1.0). A factor of 0.5
  // makes the node take twice as long per unit of compute — used by the
  // failure-diagnosis experiments to inject a straggler.
  std::vector<double> node_speed_factors;
};

// A set of nodes joined by a full-bisection network. Transfers serialize on
// the sender's NIC and then incur the link latency; receiver-side contention
// is tracked in the receiver's nic_in meter but does not add delay (a
// deliberate simplification — the experiments here are disk- and CPU-bound).
class Cluster {
 public:
  Cluster(sim::Simulator* sim, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator* simulator() { return sim_; }
  const ClusterConfig& config() const { return config_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  Node& node(uint32_t id) { return *nodes_[id]; }
  const Node& node(uint32_t id) const { return *nodes_[id]; }

  // Sends `bytes` from node `src` to node `dst`. Local sends are free.
  sim::Task<> Send(uint32_t src, uint32_t dst, uint64_t bytes);

  uint64_t network_bytes_sent() const { return network_bytes_sent_; }

 private:
  sim::Simulator* sim_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  uint64_t network_bytes_sent_ = 0;
};

}  // namespace granula::cluster

#endif  // GRANULA_CLUSTER_CLUSTER_H_
