#include "cluster/storage.h"

#include <algorithm>

#include "common/strings.h"

namespace granula::cluster {

// ------------------------------------------------------------- LocalFs --

Status LocalFs::CreateFile(uint32_t node, const std::string& path,
                           uint64_t bytes) {
  if (node >= cluster_->num_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  files_[{node, path}] = FileInfo{path, bytes};
  return Status::OK();
}

Result<FileInfo> LocalFs::Stat(uint32_t node, const std::string& path) const {
  auto it = files_.find({node, path});
  if (it == files_.end()) {
    return Status::NotFound(StrFormat("local file %s on node %u",
                                      path.c_str(), node));
  }
  return it->second;
}

sim::Task<> LocalFs::Read(uint32_t node, std::string path) {
  auto it = files_.find({node, path});
  uint64_t bytes = it == files_.end() ? 0 : it->second.size_bytes;
  co_await cluster_->node(node).disk().Transfer(bytes);
}

sim::Task<> LocalFs::Write(uint32_t node, std::string path, uint64_t bytes) {
  files_[{node, path}] = FileInfo{path, bytes};
  co_await cluster_->node(node).disk().Transfer(bytes);
}

// ------------------------------------------------------------ SharedFs --

Status SharedFs::CreateFile(const std::string& path, uint64_t bytes) {
  files_[path] = FileInfo{path, bytes};
  return Status::OK();
}

Result<FileInfo> SharedFs::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrFormat("shared file %s", path.c_str()));
  }
  return it->second;
}

sim::Task<> SharedFs::Read(uint32_t reader, std::string path,
                           uint64_t bytes) {
  (void)path;  // size is caller-provided to allow partial reads
  co_await cluster_->node(server_node_).disk().Transfer(bytes);
  co_await cluster_->Send(server_node_, reader, bytes);
}

sim::Task<> SharedFs::ReadAll(uint32_t reader, std::string path) {
  auto it = files_.find(path);
  uint64_t bytes = it == files_.end() ? 0 : it->second.size_bytes;
  co_await Read(reader, std::move(path), bytes);
}

sim::Task<> SharedFs::Write(uint32_t writer, std::string path,
                            uint64_t bytes) {
  files_[path] = FileInfo{path, bytes};
  co_await cluster_->Send(writer, server_node_, bytes);
  co_await cluster_->node(server_node_).disk().Transfer(bytes);
}

// ---------------------------------------------------------------- Hdfs --

Status Hdfs::CreateFile(const std::string& path, uint64_t bytes) {
  if (options_.replication == 0 ||
      options_.replication > cluster_->num_nodes()) {
    return Status::InvalidArgument(
        "replication must be in [1, num_nodes]");
  }
  files_[path] = FileInfo{path, bytes};
  std::vector<Block> blocks;
  uint64_t index = 0;
  for (uint64_t offset = 0; offset < bytes;
       offset += options_.block_size, ++index) {
    Block block;
    block.index = index;
    block.bytes = std::min<uint64_t>(options_.block_size, bytes - offset);
    for (uint32_t r = 0; r < options_.replication; ++r) {
      block.replicas.push_back((next_placement_ + r) %
                               cluster_->num_nodes());
    }
    next_placement_ = (next_placement_ + 1) % cluster_->num_nodes();
    blocks.push_back(std::move(block));
  }
  blocks_[path] = std::move(blocks);
  return Status::OK();
}

Result<FileInfo> Hdfs::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrFormat("hdfs file %s", path.c_str()));
  }
  return it->second;
}

Result<std::vector<Hdfs::Block>> Hdfs::GetBlocks(
    const std::string& path) const {
  auto it = blocks_.find(path);
  if (it == blocks_.end()) {
    return Status::NotFound(StrFormat("hdfs file %s", path.c_str()));
  }
  return it->second;
}

sim::Task<> Hdfs::ReadBlock(uint32_t reader, Block block) {
  // Prefer a local replica; otherwise read from the replica whose id is
  // "closest" (deterministic choice keeps runs reproducible).
  bool local = std::find(block.replicas.begin(), block.replicas.end(),
                         reader) != block.replicas.end();
  if (local) {
    co_await cluster_->node(reader).disk().Transfer(block.bytes);
  } else {
    uint32_t source = block.replicas[reader % block.replicas.size()];
    co_await cluster_->node(source).disk().Transfer(block.bytes);
    co_await cluster_->Send(source, reader, block.bytes);
  }
}

sim::Task<> Hdfs::WriteFromNode(uint32_t writer, std::string path,
                                uint64_t bytes) {
  Status s = CreateFile(path, bytes);
  if (!s.ok()) co_return;
  // Pipeline: local disk write plus (replication - 1) network pushes.
  co_await cluster_->node(writer).disk().Transfer(bytes);
  for (uint32_t r = 1; r < options_.replication; ++r) {
    uint32_t target = (writer + r) % cluster_->num_nodes();
    co_await cluster_->Send(writer, target, bytes);
  }
}

}  // namespace granula::cluster
