#include "cluster/provisioning.h"

namespace granula::cluster {

sim::Task<> YarnManager::LaunchApplicationMaster(uint32_t am_node) {
  sim::Simulator* sim = cluster_->simulator();
  co_await rm_queue_.Acquire();
  co_await sim->Delay(options_.rm_heartbeat);
  rm_queue_.Release();
  // The AM launch burns a little CPU on its node (JVM startup) but mostly
  // waits on classloading and registration.
  co_await cluster_->node(am_node).cpu().Run(options_.app_master_launch *
                                             0.15);
  co_await sim->Delay(options_.app_master_launch * 0.85);
}

sim::Task<> YarnManager::AllocateContainers(uint32_t am_node, uint32_t count,
                                            std::vector<Container>* out) {
  sim::Simulator* sim = cluster_->simulator();
  std::vector<sim::ProcessHandle> launches;
  for (uint32_t i = 0; i < count; ++i) {
    // Each grant needs an RM heartbeat round (serialized at the RM).
    co_await rm_queue_.Acquire();
    co_await sim->Delay(options_.rm_heartbeat);
    rm_queue_.Release();

    Container c;
    c.node = (am_node + 1 + i) % cluster_->num_nodes();
    c.container_id = next_container_id_++;
    out->push_back(c);

    // Container (JVM) launch proceeds in parallel across nodes.
    launches.push_back(cluster_->simulator()->Spawn(
        [](Cluster* cluster, uint32_t node, SimTime launch) -> sim::Task<> {
          co_await cluster->node(node).cpu().Run(launch * 0.2);
          co_await cluster->simulator()->Delay(launch * 0.8);
        }(cluster_, c.node, options_.container_launch)));
  }
  co_await sim::JoinAll(std::move(launches));
}

sim::Task<> YarnManager::Cleanup() {
  co_await cluster_->simulator()->Delay(options_.app_cleanup);
}

sim::Task<> MpiLauncher::LaunchRanks(uint32_t num_ranks) {
  std::vector<sim::ProcessHandle> spawns;
  for (uint32_t rank = 0; rank < num_ranks; ++rank) {
    uint32_t node = rank % cluster_->num_nodes();
    spawns.push_back(cluster_->simulator()->Spawn(
        [](Cluster* cluster, uint32_t n, SimTime spawn) -> sim::Task<> {
          co_await cluster->simulator()->Delay(spawn);
          co_await cluster->node(n).cpu().Run(spawn * 0.3);
        }(cluster_, node, options_.ssh_spawn)));
  }
  co_await sim::JoinAll(std::move(spawns));
  co_await cluster_->simulator()->Delay(options_.mpi_init);
}

sim::Task<> MpiLauncher::Finalize() {
  co_await cluster_->simulator()->Delay(options_.finalize);
}

sim::Task<> ZooKeeper::Op(uint32_t client) {
  ++operations_;
  co_await cluster_->Send(client, server_node_, 512);
  co_await cluster_->simulator()->Delay(options_.op_latency);
  co_await cluster_->Send(server_node_, client, 512);
}

}  // namespace granula::cluster
