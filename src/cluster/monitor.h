#ifndef GRANULA_CLUSTER_MONITOR_H_
#define GRANULA_CLUSTER_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/sim_time.h"
#include "sim/task.h"

namespace granula::cluster {

// One utilization sample: CPU busy-seconds accumulated per second of wall
// time on one node over [time - interval, time] — the y-axis of the paper's
// Figs. 6 and 7 ("CPU time / second").
struct UtilizationSample {
  uint32_t node;
  std::string hostname;
  double time_seconds;      // end of the sampling window
  double cpu_seconds_per_second;
  double net_bytes_per_second;
  double disk_bytes_per_second;
};

// Granula's environment-log source: a sampling daemon that polls every
// node's resource meters at a fixed interval while a job runs. Start() the
// monitor before the job, Stop() after; Samples() is the environment log.
class EnvironmentMonitor {
 public:
  EnvironmentMonitor(Cluster* cluster, SimTime interval)
      : cluster_(cluster), interval_(interval) {}

  // Begins sampling from the current simulation time.
  void Start();
  // Stops sampling (takes one final sample covering the partial window).
  void Stop();

  bool running() const { return running_; }
  SimTime interval() const { return interval_; }
  const std::vector<UtilizationSample>& samples() const { return samples_; }

  // Max over samples of the summed cpu_seconds_per_second across nodes —
  // the y-axis peak in the stacked utilization figures.
  double PeakClusterCpu() const;

 private:
  sim::Task<> RunLoop();
  void TakeSample(double window_seconds);

  Cluster* cluster_;
  SimTime interval_;
  bool running_ = false;
  uint64_t epoch_ = 0;  // invalidates a stale RunLoop after Stop/Start
  SimTime last_sample_time_;
  std::vector<double> last_cpu_busy_;
  std::vector<uint64_t> last_net_bytes_;
  std::vector<uint64_t> last_disk_bytes_;
  std::vector<UtilizationSample> samples_;
};

}  // namespace granula::cluster

#endif  // GRANULA_CLUSTER_MONITOR_H_
