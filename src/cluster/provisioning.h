#ifndef GRANULA_CLUSTER_PROVISIONING_H_
#define GRANULA_CLUSTER_PROVISIONING_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace granula::cluster {

// A YARN-like resource negotiator. Container allocation is deliberately
// slow: requests queue at the ResourceManager, each grant has scheduling
// latency, and each granted container pays a JVM-like launch cost. This is
// the mechanism behind Giraph's long, CPU-idle Startup phase (paper
// Sections 3.4 and 4.3).
class YarnManager {
 public:
  struct Options {
    SimTime rm_heartbeat = SimTime::Millis(600);   // allocation round trip
    SimTime container_launch = SimTime::Seconds(3.5);  // JVM + classpath
    SimTime app_master_launch = SimTime::Seconds(4.0);
    SimTime app_cleanup = SimTime::Seconds(2.0);
  };

  YarnManager(Cluster* cluster, Options options)
      : cluster_(cluster),
        options_(options),
        rm_queue_(cluster->simulator(), 1) {}

  const Options& options() const { return options_; }

  struct Container {
    uint32_t node;
    uint32_t container_id;
  };

  // Submits an application: launches an ApplicationMaster on `am_node`.
  sim::Task<> LaunchApplicationMaster(uint32_t am_node);

  // Allocates `count` containers, one per node round-robin starting after
  // `am_node`. Out-parameter style keeps the coroutine return type simple.
  sim::Task<> AllocateContainers(uint32_t am_node, uint32_t count,
                                 std::vector<Container>* out);

  // Tears down the application (container release + RM bookkeeping).
  sim::Task<> Cleanup();

 private:
  Cluster* cluster_;
  Options options_;
  sim::Semaphore rm_queue_;  // the RM handles one request at a time
  uint32_t next_container_id_ = 0;
};

// An MPI-like launcher (mpirun): near-instant process spawn on every node,
// plus one collective barrier for MPI_Init. PowerGraph's startup is cheap
// for exactly this reason.
class MpiLauncher {
 public:
  struct Options {
    SimTime ssh_spawn = SimTime::Millis(600);  // per-rank process spawn
    SimTime mpi_init = SimTime::Millis(1600);  // collective init
    SimTime finalize = SimTime::Millis(1100);
  };

  MpiLauncher(Cluster* cluster, Options options)
      : cluster_(cluster), options_(options) {}

  const Options& options() const { return options_; }

  // Spawns one rank per node in [0, num_ranks) and runs MPI_Init.
  sim::Task<> LaunchRanks(uint32_t num_ranks);
  sim::Task<> Finalize();

 private:
  Cluster* cluster_;
  Options options_;
};

// A ZooKeeper-like coordination service hosted on one node. Giraph uses it
// for worker registration and superstep barriers; every operation costs a
// round trip to the ZK node.
class ZooKeeper {
 public:
  struct Options {
    SimTime op_latency = SimTime::Millis(8);  // znode create/watch RTT
  };

  ZooKeeper(Cluster* cluster, uint32_t server_node, Options options)
      : cluster_(cluster), server_node_(server_node), options_(options) {}

  uint32_t server_node() const { return server_node_; }
  uint64_t operations() const { return operations_; }

  // One synchronous znode operation from node `client`.
  sim::Task<> Op(uint32_t client);

 private:
  Cluster* cluster_;
  uint32_t server_node_;
  Options options_;
  uint64_t operations_ = 0;
};

}  // namespace granula::cluster

#endif  // GRANULA_CLUSTER_PROVISIONING_H_
