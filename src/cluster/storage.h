#ifndef GRANULA_CLUSTER_STORAGE_H_
#define GRANULA_CLUSTER_STORAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/task.h"

namespace granula::cluster {

// Metadata for a simulated file: contents are never materialized, only byte
// sizes (which drive transfer durations).
struct FileInfo {
  std::string path;
  uint64_t size_bytes = 0;
};

// Per-node local filesystem: reads/writes serialize on the node's own disk.
class LocalFs {
 public:
  explicit LocalFs(Cluster* cluster) : cluster_(cluster) {}

  Status CreateFile(uint32_t node, const std::string& path, uint64_t bytes);
  Result<FileInfo> Stat(uint32_t node, const std::string& path) const;

  // Reads/writes the whole file through node `node`'s disk.
  sim::Task<> Read(uint32_t node, std::string path);
  sim::Task<> Write(uint32_t node, std::string path, uint64_t bytes);

 private:
  Cluster* cluster_;
  std::map<std::pair<uint32_t, std::string>, FileInfo> files_;
};

// An NFS-like shared filesystem with a single file server (PowerGraph's
// local/shared input in Table 1). All traffic funnels through the server
// node's disk and NIC — the structural cause of the paper's Fig. 7 shape.
class SharedFs {
 public:
  SharedFs(Cluster* cluster, uint32_t server_node)
      : cluster_(cluster), server_node_(server_node) {}

  uint32_t server_node() const { return server_node_; }

  Status CreateFile(const std::string& path, uint64_t bytes);
  Result<FileInfo> Stat(const std::string& path) const;

  // Reads `bytes` of `path` from node `reader`: server disk, then network
  // to the reader (free if the reader is the server itself).
  sim::Task<> Read(uint32_t reader, std::string path, uint64_t bytes);
  sim::Task<> ReadAll(uint32_t reader, std::string path);
  sim::Task<> Write(uint32_t writer, std::string path, uint64_t bytes);

 private:
  Cluster* cluster_;
  uint32_t server_node_;
  std::map<std::string, FileInfo> files_;
};

// An HDFS-like block store: files are chunked, blocks are placed on
// datanodes round-robin with `replication` copies, and readers prefer local
// replicas (Giraph's loading path: every worker pulls its own blocks in
// parallel).
class Hdfs {
 public:
  struct Options {
    uint64_t block_size = 32ull * 1024 * 1024;  // 32 MiB
    uint32_t replication = 3;
  };

  Hdfs(Cluster* cluster, Options options)
      : cluster_(cluster), options_(options) {}

  const Options& options() const { return options_; }

  // Creates `path` with `bytes` and places its blocks. `seed_node` rotates
  // the round-robin start so files don't all start on node 0.
  Status CreateFile(const std::string& path, uint64_t bytes);
  Result<FileInfo> Stat(const std::string& path) const;

  struct Block {
    uint64_t index;
    uint64_t bytes;
    std::vector<uint32_t> replicas;  // nodes holding a copy
  };
  Result<std::vector<Block>> GetBlocks(const std::string& path) const;

  // Reads one block from node `reader`: a local replica costs one disk
  // read; a remote one costs the remote disk plus a network transfer.
  sim::Task<> ReadBlock(uint32_t reader, Block block);

  // Writes `bytes` to `path` from node `writer`: each block goes to the
  // writer's disk plus (replication-1) network copies. Replaces any
  // existing file.
  sim::Task<> WriteFromNode(uint32_t writer, std::string path,
                            uint64_t bytes);

 private:
  Cluster* cluster_;
  Options options_;
  std::map<std::string, std::vector<Block>> blocks_;
  std::map<std::string, FileInfo> files_;
  uint32_t next_placement_ = 0;
};

}  // namespace granula::cluster

#endif  // GRANULA_CLUSTER_STORAGE_H_
