#include "cluster/monitor.h"

#include <algorithm>

namespace granula::cluster {

void EnvironmentMonitor::Start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  last_sample_time_ = cluster_->simulator()->Now();
  uint32_t n = cluster_->num_nodes();
  last_cpu_busy_.assign(n, 0.0);
  last_net_bytes_.assign(n, 0);
  last_disk_bytes_.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    last_cpu_busy_[i] = cluster_->node(i).cpu().BusySeconds();
    last_net_bytes_[i] = cluster_->node(i).nic_out().bytes_transferred();
    last_disk_bytes_[i] = cluster_->node(i).disk().bytes_transferred();
  }
  cluster_->simulator()->Spawn(RunLoop());
}

void EnvironmentMonitor::Stop() {
  if (!running_) return;
  SimTime now = cluster_->simulator()->Now();
  double partial = (now - last_sample_time_).seconds();
  if (partial > 1e-12) TakeSample(partial);
  running_ = false;
  ++epoch_;
}

sim::Task<> EnvironmentMonitor::RunLoop() {
  uint64_t my_epoch = epoch_;
  while (running_ && epoch_ == my_epoch) {
    co_await cluster_->simulator()->Delay(interval_);
    if (!running_ || epoch_ != my_epoch) co_return;
    TakeSample(interval_.seconds());
  }
}

void EnvironmentMonitor::TakeSample(double window_seconds) {
  SimTime now = cluster_->simulator()->Now();
  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    Node& node = cluster_->node(i);
    double cpu_busy = node.cpu().BusySeconds();
    uint64_t net = node.nic_out().bytes_transferred();
    uint64_t disk = node.disk().bytes_transferred();

    UtilizationSample sample;
    sample.node = i;
    sample.hostname = node.hostname();
    sample.time_seconds = now.seconds();
    sample.cpu_seconds_per_second =
        (cpu_busy - last_cpu_busy_[i]) / window_seconds;
    sample.net_bytes_per_second =
        static_cast<double>(net - last_net_bytes_[i]) / window_seconds;
    sample.disk_bytes_per_second =
        static_cast<double>(disk - last_disk_bytes_[i]) / window_seconds;
    samples_.push_back(std::move(sample));

    last_cpu_busy_[i] = cpu_busy;
    last_net_bytes_[i] = net;
    last_disk_bytes_[i] = disk;
  }
  last_sample_time_ = now;
}

double EnvironmentMonitor::PeakClusterCpu() const {
  // Samples are appended node-major per window; sum each window.
  double peak = 0.0;
  double current = 0.0;
  double current_time = -1.0;
  for (const UtilizationSample& s : samples_) {
    if (s.time_seconds != current_time) {
      peak = std::max(peak, current);
      current = 0.0;
      current_time = s.time_seconds;
    }
    current += s.cpu_seconds_per_second;
  }
  return std::max(peak, current);
}

}  // namespace granula::cluster
