#ifndef GRANULA_SIM_SYNC_H_
#define GRANULA_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <vector>

#include "sim/simulator.h"

namespace granula::sim {

// One-shot broadcast event. Waiters suspend until Trigger(); waits after the
// trigger complete immediately. Resumptions go through the event queue so
// wake-up order is deterministic.
class Event {
 public:
  explicit Event(Simulator* sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const { return triggered_; }

  void Trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (std::coroutine_handle<> h : waiters_) {
      sim_->ScheduleResume(sim_->Now(), h);
    }
    waiters_.clear();
  }

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Reusable BSP barrier for `parties` participants. Every arrival suspends;
// when the last party arrives, the whole generation is released at the
// current simulation time. This is the synchronization point between Pregel
// supersteps.
class Barrier {
 public:
  Barrier(Simulator* sim, int parties) : sim_(sim), parties_(parties) {
    assert(parties > 0);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  int parties() const { return parties_; }
  uint64_t generation() const { return generation_; }

  auto Arrive() {
    struct Awaiter {
      Barrier* barrier;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        barrier->waiting_.push_back(h);
        if (static_cast<int>(barrier->waiting_.size()) == barrier->parties_) {
          ++barrier->generation_;
          for (std::coroutine_handle<> w : barrier->waiting_) {
            barrier->sim_->ScheduleResume(barrier->sim_->Now(), w);
          }
          barrier->waiting_.clear();
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  int parties_;
  uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

// Counting semaphore with FIFO handoff: Release passes a permit directly to
// the oldest waiter, so acquisition order is fair and deterministic.
class Semaphore {
 public:
  Semaphore(Simulator* sim, int64_t permits)
      : sim_(sim), permits_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  int64_t available() const { return permits_; }
  size_t queue_length() const { return waiters_.size(); }

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->permits_ > 0 && sem->waiters_.empty()) {
          --sem->permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->waiters_.push_back(h);
        sem->Drain();
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Release() {
    ++permits_;
    Drain();
  }

 private:
  void Drain() {
    while (permits_ > 0 && !waiters_.empty()) {
      --permits_;
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      sim_->ScheduleResume(sim_->Now(), h);
    }
  }

  Simulator* sim_;
  int64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// An unbounded FIFO channel between simulated processes. Receive suspends
// until a message is available; Send never blocks. Used as the message
// substrate of both platform engines.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator* sim) : sim_(sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void Send(T item) {
    items_.push_back(std::move(item));
    if (!receivers_.empty()) {
      ReceiveAwaiter* r = receivers_.front();
      receivers_.pop_front();
      r->value = std::move(items_.front());
      items_.pop_front();
      sim_->ScheduleResume(sim_->Now(), r->handle);
    }
  }

  struct ReceiveAwaiter {
    Mailbox* mailbox;
    std::optional<T> value;
    std::coroutine_handle<> handle;

    bool await_ready() noexcept {
      if (!mailbox->items_.empty() && mailbox->receivers_.empty()) {
        value = std::move(mailbox->items_.front());
        mailbox->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      mailbox->receivers_.push_back(this);
    }
    T await_resume() noexcept { return std::move(*value); }
  };

  ReceiveAwaiter Receive() { return ReceiveAwaiter{this, std::nullopt, {}}; }

 private:
  Simulator* sim_;
  std::deque<T> items_;
  std::deque<ReceiveAwaiter*> receivers_;
};

}  // namespace granula::sim

#endif  // GRANULA_SIM_SYNC_H_
