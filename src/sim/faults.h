#ifndef GRANULA_SIM_FAULTS_H_
#define GRANULA_SIM_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"

namespace granula::sim {

// Deterministic fault injection for simulated platform runs.
//
// A FaultPlan is pure data: a list of faults that *will* happen, fixed
// before the job starts. Platforms consult it through FaultInjector at
// well-defined decision points (superstep start, task launch, storage
// read, log emission) and react the way the real platform would —
// re-attempt, checkpoint/restart, or abort-and-retry. Because the plan
// is data and the injector is a pure function of it, a faulted run stays
// a deterministic function of (config, seed): same plan + same
// GRANULA_HOST_THREADS ⇒ byte-identical logs and archives.

enum class FaultKind : uint8_t {
  // A worker process dies. Giraph recovers at superstep granularity via
  // checkpoint/restart; the abort-and-retry platforms (PowerGraph,
  // PGX.D, GraphMat) lose the whole attempt.
  kWorkerCrash,
  // A single task attempt fails (Hadoop map task, Giraph load split).
  // Recovered by re-attempting just that task.
  kTaskFailure,
  // A transient storage error during a read; retried in place after a
  // backoff, inside the surrounding operation.
  kStorageError,
  // A monitoring-side fault: the log write for a chosen record is
  // dropped or torn. The job itself is unaffected — this exercises the
  // lint/repair and quarantine pipeline downstream.
  kLogWrite,
};

// What happens to the log line of a kLogWrite fault.
enum class LogWriteFault : uint8_t {
  kNone,
  kDrop,      // record never persisted (agent died before the write)
  kTruncate,  // line written without its tail + newline (torn write)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kWorkerCrash;
  // Victim worker / rank / task index (kWorkerCrash, kTaskFailure,
  // kStorageError).
  uint32_t worker = 0;
  // Superstep / iteration at which the fault strikes. For load-phase
  // faults this is ignored (load happens once, before step 0).
  uint64_t step = 0;
  // How many consecutive attempts fail before one succeeds. Attempts
  // 0 .. failures-1 fail; attempt `failures` succeeds (if the retry
  // policy allows that many).
  uint32_t failures = 1;
  // Virtual work performed before the crash is detected — the part of
  // the attempt that is genuinely lost.
  SimTime work_before_crash = SimTime::Millis(400);
  // kLogWrite only: the seq of the record to corrupt, and how.
  uint64_t log_seq = 0;
  LogWriteFault log_effect = LogWriteFault::kDrop;
};

// How a platform reacts to failures. Carried inside the plan so wiring
// a faulted run needs exactly one new JobConfig field.
struct RetryPolicy {
  // Total attempts allowed per decision point (first try included).
  uint32_t max_attempts = 4;
  // Exponential backoff between attempts: base * factor^retries.
  SimTime backoff_base = SimTime::Millis(600);
  double backoff_factor = 2.0;
  // Time for the master/coordinator to notice a dead worker (heartbeat
  // timeout) — added to every crash's lost time.
  SimTime detect_timeout = SimTime::Seconds(2.0);
  // Giraph: checkpoint every k supersteps (k=0 disables checkpoints
  // even under a non-empty plan).
  uint64_t checkpoint_interval = 2;
  // Abort-and-retry platforms: cluster resubmission latency on top of
  // the backoff.
  SimTime resubmit_delay = SimTime::Millis(900);
};

class FaultPlan {
 public:
  void Add(FaultSpec spec) { specs_.push_back(spec); }
  bool empty() const { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

  RetryPolicy retry;

  // A seeded random plan: `num_faults` worker crashes / task failures /
  // storage errors spread over workers [0, num_workers) and steps
  // [0, max_step]. Deterministic in `seed`.
  static FaultPlan Random(uint64_t seed, uint32_t num_workers,
                          uint64_t max_step, uint32_t num_faults);

  // Parses the textual fault grammar shared by `granula run --fault=` and
  // the sweep-config "faults" entries: comma-separated SPECs of
  //   crash:WORKER:STEP[:N]   worker crash at a superstep/iteration
  //   task:WORKER:STEP[:N]    single task-attempt failure
  //   storage:WORKER[:N]      transient read error, retried in place
  //   logdrop:SEQ             the log record with that seq is never written
  //   logtrunc:SEQ            ... is written torn (half line, no newline)
  // N = how many consecutive attempts fail (default 1). Numeric fields are
  // parsed strictly ("crash:x:1" is an error, not worker 0). The returned
  // plan carries the default RetryPolicy; callers adjust it afterwards.
  static Result<FaultPlan> Parse(const std::string& text);

 private:
  std::vector<FaultSpec> specs_;
};

// Read-only view a platform queries at its decision points. Holds no
// mutable state: the *platform* tracks which attempt it is on, so the
// injector stays a pure function and replays identically under any host
// thread count.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(&plan) {}

  bool enabled() const { return !plan_->empty(); }
  const RetryPolicy& policy() const { return plan_->retry; }

  // Abort-and-retry platforms: the fault (if any) that dooms job-level
  // attempt `attempt`. Crash/task specs are consumed in (step, worker)
  // order; a spec with failures=N dooms N consecutive attempts.
  const FaultSpec* JobFault(uint32_t attempt) const;

  // Giraph master: the crash (if any) that dooms attempt `attempt` of
  // superstep `step`.
  const FaultSpec* CrashAt(uint64_t step, uint32_t attempt) const;

  // Hadoop: the fault (if any) that dooms attempt `attempt` of task
  // `worker` in iteration `step`. Worker crashes surface as failed task
  // attempts (YARN reschedules the container).
  const FaultSpec* TaskFault(uint32_t worker, uint64_t step,
                             uint32_t attempt) const;

  // Load-phase faults for `worker` (task failures and storage errors;
  // step is ignored — load precedes step 0).
  const FaultSpec* LoadFault(uint32_t worker, uint32_t attempt) const;

  // Storage errors only, for in-place read retries.
  const FaultSpec* StorageFault(uint32_t worker, uint32_t attempt) const;

  // Backoff before retry number `retries` (0-based).
  SimTime Backoff(uint32_t retries) const;

  // Monitoring-side: the effect (if any) on the log record with
  // sequence number `seq`.
  LogWriteFault LogFaultFor(uint64_t seq) const;

 private:
  const FaultPlan* plan_;
};

}  // namespace granula::sim

#endif  // GRANULA_SIM_FAULTS_H_
