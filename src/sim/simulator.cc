#include "sim/simulator.h"

#include <cassert>

namespace granula::sim {

namespace {

// The root wrapper for a spawned process: a self-destroying coroutine that
// runs the user task to completion and then wakes every joiner.
struct RootCoroutine {
  struct promise_type {
    RootCoroutine get_return_object() {
      return RootCoroutine{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // suspend_never: the frame frees itself once the body finishes.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

// Yields the coroutine's own handle without suspending.
struct SelfHandle {
  std::coroutine_handle<> handle;
  bool await_ready() noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> h) noexcept {
    handle = h;
    return false;  // resume immediately
  }
  std::coroutine_handle<> await_resume() noexcept { return handle; }
};

RootCoroutine RunRoot(Task<> task,
                      std::shared_ptr<internal_sim::ProcessState> state) {
  std::coroutine_handle<> self = co_await SelfHandle{};
  co_await std::move(task);
  state->done = true;
  Simulator* sim = state->sim;
  for (std::coroutine_handle<> waiter : state->waiters) {
    sim->ScheduleResume(sim->Now(), waiter);
  }
  state->waiters.clear();
  // The frame frees itself right after this (final_suspend is
  // suspend_never); drop it from the leak-sweep registry first.
  sim->ForgetRoot(self.address());
}

}  // namespace

void Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  queue_.push(QueuedEvent{at, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleResume(SimTime at, std::coroutine_handle<> h) {
  ScheduleAt(at, [h]() { h.resume(); });
}

ProcessHandle Simulator::Spawn(Task<> task) {
  auto state = std::make_shared<internal_sim::ProcessState>(this);
  RootCoroutine root = RunRoot(std::move(task), state);
  live_roots_.insert(root.handle.address());
  ScheduleResume(now_, root.handle);
  return ProcessHandle(std::move(state));
}

Simulator::~Simulator() {
  // Destroying a root frame cascades through the Task objects it owns,
  // freeing every nested frame of that process. Queued resume callbacks
  // for those frames are never run (the queue is simply dropped), so no
  // handle is touched twice.
  for (void* address : live_roots_) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Simulator::Run() {
  while (!queue_.empty()) {
    // Copy out before pop: fn may schedule new events.
    QueuedEvent ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_events_;
    ev.fn();
  }
}

bool Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    QueuedEvent ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_events_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
  return !queue_.empty();
}

Task<> JoinAll(std::vector<ProcessHandle> handles) {
  for (const ProcessHandle& h : handles) {
    co_await h.Join();
  }
}

}  // namespace granula::sim
