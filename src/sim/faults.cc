#include "sim/faults.h"

#include <algorithm>

#include "common/random.h"
#include "common/strings.h"

namespace granula::sim {

FaultPlan FaultPlan::Random(uint64_t seed, uint32_t num_workers,
                            uint64_t max_step, uint32_t num_faults) {
  FaultPlan plan;
  if (num_workers == 0) return plan;
  Rng rng(seed);
  for (uint32_t i = 0; i < num_faults; ++i) {
    FaultSpec spec;
    switch (rng.NextBounded(3)) {
      case 0:
        spec.kind = FaultKind::kWorkerCrash;
        break;
      case 1:
        spec.kind = FaultKind::kTaskFailure;
        break;
      default:
        spec.kind = FaultKind::kStorageError;
        break;
    }
    spec.worker = static_cast<uint32_t>(rng.NextBounded(num_workers));
    spec.step = rng.NextBounded(max_step + 1);
    spec.failures = 1;
    spec.work_before_crash =
        SimTime::Millis(static_cast<int64_t>(100 + rng.NextBounded(900)));
    plan.Add(spec);
  }
  return plan;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  for (const std::string& one : StrSplit(text, ',')) {
    std::vector<std::string> parts = StrSplit(one, ':');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument("empty --fault spec");
    }
    auto part_u64 = [&](size_t i, uint64_t fallback) -> Result<uint64_t> {
      if (i >= parts.size()) return fallback;
      Result<uint64_t> value = ParseUint64(parts[i]);
      if (!value.ok()) {
        return Status::InvalidArgument("bad fault spec '" + one +
                                       "': " + value.status().message());
      }
      return value;
    };
    FaultSpec spec;
    const std::string& kind = parts[0];
    if (kind == "crash" || kind == "task") {
      if (parts.size() < 3 || parts.size() > 4) {
        return Status::InvalidArgument(
            "--fault " + kind + " expects " + kind + ":WORKER:STEP[:N]");
      }
      spec.kind = kind == "crash" ? FaultKind::kWorkerCrash
                                  : FaultKind::kTaskFailure;
      GRANULA_ASSIGN_OR_RETURN(uint64_t worker, part_u64(1, 0));
      GRANULA_ASSIGN_OR_RETURN(spec.step, part_u64(2, 0));
      GRANULA_ASSIGN_OR_RETURN(uint64_t failures, part_u64(3, 1));
      spec.worker = static_cast<uint32_t>(worker);
      spec.failures = static_cast<uint32_t>(failures);
    } else if (kind == "storage") {
      if (parts.size() < 2 || parts.size() > 3) {
        return Status::InvalidArgument(
            "--fault storage expects storage:WORKER[:N]");
      }
      spec.kind = FaultKind::kStorageError;
      GRANULA_ASSIGN_OR_RETURN(uint64_t worker, part_u64(1, 0));
      GRANULA_ASSIGN_OR_RETURN(uint64_t failures, part_u64(2, 1));
      spec.worker = static_cast<uint32_t>(worker);
      spec.failures = static_cast<uint32_t>(failures);
    } else if (kind == "logdrop" || kind == "logtrunc") {
      if (parts.size() != 2) {
        return Status::InvalidArgument("--fault " + kind + " expects " +
                                       kind + ":SEQ");
      }
      spec.kind = FaultKind::kLogWrite;
      GRANULA_ASSIGN_OR_RETURN(spec.log_seq, part_u64(1, 0));
      spec.log_effect = kind == "logdrop" ? LogWriteFault::kDrop
                                          : LogWriteFault::kTruncate;
    } else {
      return Status::InvalidArgument(
          "unknown fault kind '" + kind +
          "' (crash|task|storage|logdrop|logtrunc)");
    }
    plan.Add(spec);
  }
  return plan;
}

namespace {

// Walks `specs` filtered by `match` in the order given by `less`,
// treating each matching spec as dooming `failures` consecutive
// attempts; returns the spec that covers `attempt`, if any.
template <typename Match, typename Less>
const FaultSpec* CoveringSpec(const std::vector<FaultSpec>& specs,
                              uint32_t attempt, Match match, Less less) {
  std::vector<const FaultSpec*> hits;
  for (const FaultSpec& spec : specs) {
    if (match(spec)) hits.push_back(&spec);
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [&](const FaultSpec* a, const FaultSpec* b) {
                     return less(*a, *b);
                   });
  uint32_t covered = 0;
  for (const FaultSpec* spec : hits) {
    if (attempt < covered + spec->failures) return spec;
    covered += spec->failures;
  }
  return nullptr;
}

bool ByStepWorker(const FaultSpec& a, const FaultSpec& b) {
  if (a.step != b.step) return a.step < b.step;
  return a.worker < b.worker;
}

}  // namespace

const FaultSpec* FaultInjector::JobFault(uint32_t attempt) const {
  return CoveringSpec(
      plan_->specs(), attempt,
      [](const FaultSpec& s) {
        return s.kind == FaultKind::kWorkerCrash ||
               s.kind == FaultKind::kTaskFailure;
      },
      ByStepWorker);
}

const FaultSpec* FaultInjector::CrashAt(uint64_t step,
                                        uint32_t attempt) const {
  return CoveringSpec(
      plan_->specs(), attempt,
      [step](const FaultSpec& s) {
        return s.kind == FaultKind::kWorkerCrash && s.step == step;
      },
      ByStepWorker);
}

const FaultSpec* FaultInjector::TaskFault(uint32_t worker, uint64_t step,
                                          uint32_t attempt) const {
  return CoveringSpec(
      plan_->specs(), attempt,
      [worker, step](const FaultSpec& s) {
        return (s.kind == FaultKind::kTaskFailure ||
                s.kind == FaultKind::kWorkerCrash) &&
               s.worker == worker && s.step == step;
      },
      ByStepWorker);
}

const FaultSpec* FaultInjector::LoadFault(uint32_t worker,
                                          uint32_t attempt) const {
  return CoveringSpec(
      plan_->specs(), attempt,
      [worker](const FaultSpec& s) {
        return (s.kind == FaultKind::kTaskFailure ||
                s.kind == FaultKind::kStorageError) &&
               s.worker == worker;
      },
      ByStepWorker);
}

const FaultSpec* FaultInjector::StorageFault(uint32_t worker,
                                             uint32_t attempt) const {
  return CoveringSpec(
      plan_->specs(), attempt,
      [worker](const FaultSpec& s) {
        return s.kind == FaultKind::kStorageError && s.worker == worker;
      },
      ByStepWorker);
}

SimTime FaultInjector::Backoff(uint32_t retries) const {
  const RetryPolicy& p = plan_->retry;
  double scale = 1.0;
  for (uint32_t i = 0; i < retries; ++i) scale *= p.backoff_factor;
  return p.backoff_base * scale;
}

LogWriteFault FaultInjector::LogFaultFor(uint64_t seq) const {
  for (const FaultSpec& spec : plan_->specs()) {
    if (spec.kind == FaultKind::kLogWrite && spec.log_seq == seq) {
      return spec.log_effect;
    }
  }
  return LogWriteFault::kNone;
}

}  // namespace granula::sim
