#ifndef GRANULA_SIM_TASK_H_
#define GRANULA_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace granula::sim {

// A lazy coroutine with symmetric-transfer continuation, in the style of
// cppcoro::task. Task<T> is the unit of composition inside the simulator:
// simulated activities are coroutines returning Task<> (or Task<T> for a
// value) and awaiting each other, sim delays, and sync primitives.
//
// A Task starts suspended; it runs when first awaited (or when wrapped into a
// top-level process by Simulator::Spawn). When it finishes, control transfers
// back to the awaiting coroutine without bouncing through the event queue.
//
// Tasks are move-only and must be awaited at most once.
template <typename T>
class Task;

namespace internal_task {

template <typename T>
class TaskPromise;

// Final awaiter: transfers control back to the coroutine that awaited this
// task (or a noop coroutine for detached tasks, which cannot happen through
// the public API).
template <typename Promise>
struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

template <typename T>
class TaskPromiseBase {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter<TaskPromise<T>> final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    // The library does not throw across coroutine boundaries; any exception
    // escaping a simulated activity is a programming error.
    std::terminate();
  }

  std::coroutine_handle<> continuation;
};

template <typename T>
class TaskPromise : public TaskPromiseBase<T> {
 public:
  Task<T> get_return_object();
  void return_value(T value) { value_ = std::move(value); }
  T TakeValue() { return std::move(*value_); }

 private:
  std::optional<T> value_;
};

template <>
class TaskPromise<void> : public TaskPromiseBase<void> {
 public:
  Task<void> get_return_object();
  void return_void() {}
  void TakeValue() {}
};

}  // namespace internal_task

template <typename T = void>
class Task {
 public:
  using promise_type = internal_task::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiting a task starts it and suspends the awaiter until it completes;
  // the task's return value becomes the await result.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer: start running the child
      }
      T await_resume() noexcept { return handle.promise().TakeValue(); }
    };
    assert(handle_ && "co_await on an empty Task");
    return Awaiter{handle_};
  }

  // Releases ownership of the coroutine frame (used by Simulator::Spawn's
  // root wrapper, which manages the frame's lifetime itself).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace internal_task {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(
      std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace internal_task

}  // namespace granula::sim

#endif  // GRANULA_SIM_TASK_H_
