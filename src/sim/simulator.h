#ifndef GRANULA_SIM_SIMULATOR_H_
#define GRANULA_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "common/sim_time.h"
#include "sim/task.h"

namespace granula::sim {

class Simulator;

namespace internal_sim {

// Shared completion record for a spawned process. Lives as long as either
// the running root coroutine or any ProcessHandle refers to it.
struct ProcessState {
  explicit ProcessState(Simulator* s) : sim(s) {}
  Simulator* sim;
  bool done = false;
  std::vector<std::coroutine_handle<>> waiters;
};

}  // namespace internal_sim

// A handle to a process started with Simulator::Spawn. Copyable; used to
// join (await completion of) the process from other coroutines.
class ProcessHandle {
 public:
  ProcessHandle() = default;
  explicit ProcessHandle(std::shared_ptr<internal_sim::ProcessState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }

  // Awaitable: co_await handle.Join() suspends until the process finishes
  // (resumes immediately if it already has).
  auto Join() const {
    struct Awaiter {
      std::shared_ptr<internal_sim::ProcessState> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        state->waiters.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<internal_sim::ProcessState> state_;
};

// The discrete-event simulation kernel: a virtual clock and an event queue.
// All concurrency in the simulated cluster is cooperative: coroutines suspend
// on Delay()/sync primitives/resources and the kernel resumes them in
// deterministic (time, insertion-order) order. A simulation run is therefore
// a pure function of its inputs — a property the whole test suite relies on.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  // Destroys the frames of processes that never finished — abandoning a
  // simulation mid-run (e.g. RunUntil and walk away) must not leak.
  ~Simulator();

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules resumption of a suspended coroutine at absolute time `at`.
  void ScheduleResume(SimTime at, std::coroutine_handle<> h);

  // Starts `task` as a top-level concurrent process. The task begins running
  // at the current simulation time (after already-queued events for that
  // time). The returned handle can be joined.
  ProcessHandle Spawn(Task<> task);

  // Awaitable: suspends the calling coroutine for `d` simulated time.
  auto Delay(SimTime d) {
    struct Awaiter {
      Simulator* sim;
      SimTime at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->ScheduleResume(at, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + d};
  }

  // Runs until the event queue is empty.
  void Run();

  // Runs events with time <= `until`; the clock ends at min(until, last
  // event time). Returns true if events remain.
  bool RunUntil(SimTime until);

  uint64_t processed_events() const { return processed_events_; }

  // Internal (used by the root-process wrapper): lifetime registry of
  // running top-level processes.
  void ForgetRoot(void* address) { live_roots_.erase(address); }

 private:
  struct QueuedEvent {
    SimTime time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t processed_events_ = 0;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, EventOrder>
      queue_;
  // Frame addresses of live root coroutines; swept by the destructor.
  std::set<void*> live_roots_;
};

// Joins every handle in `handles` (order does not matter; all must finish).
Task<> JoinAll(std::vector<ProcessHandle> handles);

}  // namespace granula::sim

#endif  // GRANULA_SIM_SIMULATOR_H_
