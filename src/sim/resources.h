#ifndef GRANULA_SIM_RESOURCES_H_
#define GRANULA_SIM_RESOURCES_H_

#include <cstdint>

#include "common/sim_time.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace granula::sim {

// Tracks the busy time of a resource with `capacity` parallel channels.
// Utilization over a window is (busy-seconds delta) / window — exactly what
// the environment monitor samples to produce Granula's environment logs.
class BusyMeter {
 public:
  BusyMeter(Simulator* sim, int capacity)
      : sim_(sim), capacity_(capacity) {}

  void OnStart() {
    Accrue();
    ++running_;
  }
  void OnStop() {
    Accrue();
    --running_;
  }

  // Total busy channel-seconds accumulated up to the current sim time,
  // including the elapsed portion of in-flight work.
  double BusySeconds() const {
    double busy = busy_seconds_;
    busy += running_ * (sim_->Now() - last_change_).seconds();
    return busy;
  }

  int running() const { return running_; }
  int capacity() const { return capacity_; }

 private:
  void Accrue() {
    SimTime now = sim_->Now();
    busy_seconds_ += running_ * (now - last_change_).seconds();
    last_change_ = now;
  }

  Simulator* sim_;
  int capacity_;
  int running_ = 0;
  double busy_seconds_ = 0.0;
  SimTime last_change_;
};

// A multi-core CPU. Run(d) occupies one core for `d` of *nominal* work,
// queueing FCFS when all cores are busy; a `speed_factor` below 1.0 models
// a degraded/slow node (the same work holds a core longer — the signal
// behind straggler diagnosis). BusySeconds() feeds the environment
// monitor's "CPU time / second" series (paper Figs. 6-7).
class Cpu {
 public:
  Cpu(Simulator* sim, int cores, double speed_factor = 1.0)
      : sim_(sim),
        cores_(cores),
        speed_factor_(speed_factor > 0 ? speed_factor : 1.0),
        sem_(sim, cores),
        meter_(sim, cores) {}

  int cores() const { return cores_; }
  double speed_factor() const { return speed_factor_; }
  double BusySeconds() const { return meter_.BusySeconds(); }
  int running() const { return meter_.running(); }

  // Occupies one core for `duration / speed_factor` of wall time.
  Task<> Run(SimTime duration) {
    co_await sem_.Acquire();
    meter_.OnStart();
    co_await sim_->Delay(duration * (1.0 / speed_factor_));
    meter_.OnStop();
    sem_.Release();
  }

 private:
  Simulator* sim_;
  int cores_;
  double speed_factor_;
  Semaphore sem_;
  BusyMeter meter_;
};

// A bandwidth-limited, optionally latency-bearing channel: disks and network
// links. Transfers serialize over `channels` lanes; each transfer holds a
// lane for bytes/bandwidth, then the payload arrives after `latency` more.
class Channel {
 public:
  Channel(Simulator* sim, double bytes_per_second, SimTime latency,
          int channels = 1)
      : sim_(sim),
        bytes_per_second_(bytes_per_second),
        latency_(latency),
        sem_(sim, channels),
        meter_(sim, channels) {}

  double bytes_per_second() const { return bytes_per_second_; }
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  double BusySeconds() const { return meter_.BusySeconds(); }

  Task<> Transfer(uint64_t bytes) {
    co_await sem_.Acquire();
    meter_.OnStart();
    double secs = static_cast<double>(bytes) / bytes_per_second_;
    co_await sim_->Delay(SimTime::Seconds(secs));
    bytes_transferred_ += bytes;
    meter_.OnStop();
    sem_.Release();
    if (latency_ > SimTime()) {
      co_await sim_->Delay(latency_);
    }
  }

 private:
  Simulator* sim_;
  double bytes_per_second_;
  SimTime latency_;
  Semaphore sem_;
  BusyMeter meter_;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace granula::sim

#endif  // GRANULA_SIM_RESOURCES_H_
