#include "granula/monitor/job_logger.h"

namespace granula::core {

OpId JobLogger::StartOperation(OpId parent, std::string actor_type,
                               std::string actor_id,
                               std::string mission_type,
                               std::string mission_id) {
  LogRecord record;
  record.kind = LogRecord::Kind::kStartOp;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = next_op_id_++;
  record.parent_id = parent;
  record.actor_type = std::move(actor_type);
  record.actor_id = std::move(actor_id);
  record.mission_type = std::move(mission_type);
  record.mission_id = std::move(mission_id);
  OpId id = record.op_id;
  records_.push_back(std::move(record));
  return id;
}

void JobLogger::EndOperation(OpId op) {
  LogRecord record;
  record.kind = LogRecord::Kind::kEndOp;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = op;
  records_.push_back(std::move(record));
}

void JobLogger::AddInfo(OpId op, std::string name, Json value) {
  LogRecord record;
  record.kind = LogRecord::Kind::kInfo;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = op;
  record.info_name = std::move(name);
  record.info_value = std::move(value);
  records_.push_back(std::move(record));
}

}  // namespace granula::core
