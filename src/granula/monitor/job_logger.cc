#include "granula/monitor/job_logger.h"

#include <charconv>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <thread>

#include "common/mapped_file.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace granula::core {

namespace {

std::string_view KindName(LogRecord::Kind kind) {
  switch (kind) {
    case LogRecord::Kind::kStartOp:
      return "start";
    case LogRecord::Kind::kEndOp:
      return "end";
    case LogRecord::Kind::kInfo:
      return "info";
  }
  return "unknown";
}

// --------------------------------------------------- JSONL fast path ----
//
// The writer side (AppendJsonl) emits the record's keys directly in sorted
// order, so its output is byte-identical to ToJson().Dump(0) — the
// std::map-backed DOM sorts the same keys and Dump(0) adds no whitespace.
// tests/jsonl_codec_test.cc diffs the two writers over full platform runs.

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  JsonAppendEscaped(out, s);
  out += '"';
}

void AppendJsonInt(std::string& out, int64_t v) {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // int64 always fits
  out.append(buf, static_cast<size_t>(p - buf));
}

// Matches Json(uint64_t) + Dump: values above INT64_MAX are stored (and
// therefore printed) as doubles.
void AppendJsonUint(std::string& out, uint64_t v) {
  if (v <= static_cast<uint64_t>(INT64_MAX)) {
    AppendJsonInt(out, static_cast<int64_t>(v));
  } else {
    JsonAppendDouble(out, static_cast<double>(v));
  }
}

// The reader side: a single-pass scan of the writer's own canonical format
// (object with no interior whitespace, unescaped keys and strings, plain
// integer scalars). String fields come out as views into the line — zero
// copies until they are committed into the LogRecord.
struct CanonicalFields {
  std::string_view kind;
  std::string_view actor_type;
  std::string_view actor_id;
  std::string_view mission_type;
  std::string_view mission_id;
  std::string_view name;
  uint64_t seq = 0;
  uint64_t op = 0;
  uint64_t parent = 0;
  int64_t t = 0;
  std::string_view value;  // raw extent of the free-form info payload
  bool has_value = false;
};

// Returns false for anything non-canonical; the caller then falls back to
// the DOM path, which owns all tolerance and error reporting. A canonical
// line may end in trailing whitespace (CRLF logs) but nothing else.
bool ScanCanonicalLine(std::string_view s, CanonicalFields& f) {
  const size_t n = s.size();
  size_t i = 0;
  if (i >= n || s[i] != '{') return false;
  ++i;
  if (i < n && s[i] == '}') {
    ++i;
  } else {
    while (true) {
      if (i >= n || s[i] != '"') return false;
      ++i;
      const size_t key_start = i;
      while (i < n && s[i] != '"' && s[i] != '\\') ++i;
      if (i >= n || s[i] != '"') return false;  // escaped key → DOM path
      const std::string_view key = s.substr(key_start, i - key_start);
      ++i;
      if (i >= n || s[i] != ':') return false;
      ++i;
      std::string_view* string_field = nullptr;
      if (key == "kind") {
        string_field = &f.kind;
      } else if (key == "actor_type") {
        string_field = &f.actor_type;
      } else if (key == "actor_id") {
        string_field = &f.actor_id;
      } else if (key == "mission_type") {
        string_field = &f.mission_type;
      } else if (key == "mission_id") {
        string_field = &f.mission_id;
      } else if (key == "name") {
        string_field = &f.name;
      }
      if (string_field != nullptr) {
        if (i >= n || s[i] != '"') return false;
        ++i;
        const size_t value_start = i;
        while (i < n && s[i] != '"' && s[i] != '\\') ++i;
        if (i >= n || s[i] != '"') return false;  // escape → DOM path
        *string_field = s.substr(value_start, i - value_start);
        ++i;
      } else if (key == "seq" || key == "op" || key == "parent") {
        uint64_t v = 0;
        auto [p, ec] = std::from_chars(s.data() + i, s.data() + n, v);
        if (ec != std::errc()) return false;
        i = static_cast<size_t>(p - s.data());
        (key == "seq" ? f.seq : key == "op" ? f.op : f.parent) = v;
      } else if (key == "t") {
        int64_t v = 0;
        auto [p, ec] = std::from_chars(s.data() + i, s.data() + n, v);
        if (ec != std::errc()) return false;
        i = static_cast<size_t>(p - s.data());
        f.t = v;
      } else if (key == "value") {
        const size_t value_start = i;
        if (!JsonSkipValue(s, i)) return false;
        f.value = s.substr(value_start, i - value_start);
        f.has_value = true;
      } else {
        return false;  // unknown key → DOM path decides what it means
      }
      if (i < n && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < n && s[i] == '}') {
        ++i;
        break;
      }
      return false;  // whitespace, exotic number tail, or truncation
    }
  }
  while (i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                   s[i] == '\n')) {
    ++i;
  }
  return i == n;
}

// Builds the record from a successful canonical scan, mirroring FromJson
// field-for-field (kind-gated assignment, absent keys keep defaults).
// nullopt → the line needs the DOM path after all (unknown kind, or an
// info payload Json::Parse rejects).
std::optional<LogRecord> RecordFromCanonical(const CanonicalFields& f) {
  LogRecord r;
  if (f.kind == "start") {
    r.kind = LogRecord::Kind::kStartOp;
  } else if (f.kind == "end") {
    r.kind = LogRecord::Kind::kEndOp;
  } else if (f.kind == "info") {
    r.kind = LogRecord::Kind::kInfo;
  } else {
    return std::nullopt;
  }
  r.seq = f.seq;
  r.time = SimTime::Nanos(f.t);
  r.op_id = f.op;
  if (r.kind == LogRecord::Kind::kStartOp) {
    r.parent_id = f.parent;
    r.actor_type = std::string(f.actor_type);
    r.actor_id = std::string(f.actor_id);
    r.mission_type = std::string(f.mission_type);
    r.mission_id = std::string(f.mission_id);
  }
  if (r.kind == LogRecord::Kind::kInfo) {
    r.info_name = std::string(f.name);
    if (f.has_value) {
      auto value = Json::Parse(f.value);
      if (!value.ok()) return std::nullopt;
      r.info_value = std::move(*value);
    }
  }
  return r;
}

}  // namespace

void LogRecord::AppendJsonl(std::string& out) const {
  out += '{';
  if (kind == Kind::kStartOp) {
    if (!actor_id.empty()) {
      out += "\"actor_id\":";
      AppendJsonString(out, actor_id);
      out += ',';
    }
    out += "\"actor_type\":";
    AppendJsonString(out, actor_type);
    out += ',';
  }
  out += "\"kind\":\"";
  out += KindName(kind);
  out += '"';
  if (kind == Kind::kStartOp) {
    if (!mission_id.empty()) {
      out += ",\"mission_id\":";
      AppendJsonString(out, mission_id);
    }
    out += ",\"mission_type\":";
    AppendJsonString(out, mission_type);
  }
  if (kind == Kind::kInfo) {
    out += ",\"name\":";
    AppendJsonString(out, info_name);
  }
  out += ",\"op\":";
  AppendJsonUint(out, op_id);
  if (kind == Kind::kStartOp) {
    out += ",\"parent\":";
    AppendJsonUint(out, parent_id);
  }
  out += ",\"seq\":";
  AppendJsonUint(out, seq);
  out += ",\"t\":";
  AppendJsonInt(out, time.nanos());
  if (kind == Kind::kInfo) {
    out += ",\"value\":";
    info_value.DumpTo(out);
  }
  out += '}';
}

Result<LogRecord> LogRecord::ParseJsonl(std::string_view line) {
  CanonicalFields fields;
  if (ScanCanonicalLine(line, fields)) {
    if (auto record = RecordFromCanonical(fields)) return std::move(*record);
  }
  // Non-canonical input: the DOM path reproduces the legacy tolerance and
  // error text exactly.
  auto parsed = Json::Parse(line);
  if (!parsed.ok()) return parsed.status();
  return FromJson(*parsed);
}

Json LogRecord::ToJson() const {
  Json j;
  j["kind"] = std::string(KindName(kind));
  j["seq"] = seq;
  j["t"] = time.nanos();
  j["op"] = op_id;
  if (kind == Kind::kStartOp) {
    j["parent"] = parent_id;
    j["actor_type"] = actor_type;
    if (!actor_id.empty()) j["actor_id"] = actor_id;
    j["mission_type"] = mission_type;
    if (!mission_id.empty()) j["mission_id"] = mission_id;
  }
  if (kind == Kind::kInfo) {
    j["name"] = info_name;
    j["value"] = info_value;
  }
  return j;
}

Result<LogRecord> LogRecord::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::Corruption("log record must be a JSON object");
  }
  LogRecord r;
  std::string kind = j.GetString("kind");
  if (kind == "start") {
    r.kind = Kind::kStartOp;
  } else if (kind == "end") {
    r.kind = Kind::kEndOp;
  } else if (kind == "info") {
    r.kind = Kind::kInfo;
  } else {
    return Status::Corruption(
        StrFormat("unknown log record kind '%s'", kind.c_str()));
  }
  r.seq = static_cast<uint64_t>(j.GetInt("seq"));
  r.time = SimTime::Nanos(j.GetInt("t"));
  r.op_id = static_cast<uint64_t>(j.GetInt("op"));
  if (r.kind == Kind::kStartOp) {
    r.parent_id = static_cast<uint64_t>(j.GetInt("parent"));
    r.actor_type = j.GetString("actor_type");
    r.actor_id = j.GetString("actor_id");
    r.mission_type = j.GetString("mission_type");
    r.mission_id = j.GetString("mission_id");
  }
  if (r.kind == Kind::kInfo) {
    r.info_name = j.GetString("name");
    if (const Json* value = j.Find("value")) r.info_value = *value;
  }
  return r;
}

Status WriteLogRecords(const std::string& path,
                       const std::vector<LogRecord>& records) {
  std::ofstream file(path, std::ios::trunc | std::ios::binary);
  if (!file) {
    return Status::IoError(StrFormat("cannot write %s", path.c_str()));
  }
  // Serialize through the fast codec into one reused buffer, flushed in
  // ~1 MiB slabs so memory stays bounded for multi-GB logs.
  constexpr size_t kFlushBytes = 1 << 20;
  std::string buffer;
  buffer.reserve(kFlushBytes + 4096);
  for (const LogRecord& r : records) {
    r.AppendJsonl(buffer);
    buffer += '\n';
    if (buffer.size() >= kFlushBytes) {
      file.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  file.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  file.flush();
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<std::vector<LogRecord>> ReadLogRecords(const std::string& path) {
  // mmap (with a checked read fallback): lines are parsed straight out of
  // the page cache, never copied into an intermediate string. A failed or
  // short read in the fallback is an IoError — the previous reader resized
  // to the partial byte count and silently parsed a truncated log.
  GRANULA_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::string_view data = file.data();

  std::vector<std::string_view> lines;
  lines.reserve(data.size() / 64 + 1);
  for (size_t pos = 0; pos < data.size();) {
    const char* nl = static_cast<const char*>(
        std::memchr(data.data() + pos, '\n', data.size() - pos));
    const size_t line_end =
        nl != nullptr ? static_cast<size_t>(nl - data.data()) : data.size();
    lines.emplace_back(data.data() + pos, line_end - pos);
    pos = line_end + 1;
  }

  // Parse line-range chunks concurrently. The decomposition depends only
  // on the line count (ThreadPool's determinism contract), chunks are
  // concatenated in index order, and the earliest bad line wins — so the
  // result is identical to a serial read at every host-thread count.
  struct Chunk {
    std::vector<LogRecord> records;
    Status error = Status::OK();
    size_t error_line = 0;
  };
  const uint64_t grain = ChunkedGrain(lines.size());
  std::vector<Chunk> chunks(ThreadPool::NumChunks(lines.size(), grain));
  ParallelFor(0, lines.size(), grain,
              [&](uint64_t chunk_index, uint64_t begin, uint64_t end) {
                Chunk& chunk = chunks[chunk_index];
                for (uint64_t i = begin; i < end; ++i) {
                  const std::string_view line = lines[i];
                  if (line.find_first_not_of(" \t\r") ==
                      std::string_view::npos) {
                    continue;
                  }
                  auto record = LogRecord::ParseJsonl(line);
                  if (!record.ok()) {
                    chunk.error = record.status();
                    chunk.error_line = i + 1;
                    break;
                  }
                  chunk.records.push_back(std::move(*record));
                }
              });

  size_t total = 0;
  for (const Chunk& chunk : chunks) {
    if (!chunk.error.ok()) {
      return Status::Corruption(StrFormat("%s:%zu: %s", path.c_str(),
                                          chunk.error_line,
                                          chunk.error.ToString().c_str()));
    }
    total += chunk.records.size();
  }
  std::vector<LogRecord> records;
  records.reserve(total);
  for (Chunk& chunk : chunks) {
    std::move(chunk.records.begin(), chunk.records.end(),
              std::back_inserter(records));
  }
  return records;
}

Status JobLogger::StreamTo(const std::string& path, uint64_t delay_us) {
  auto stream = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*stream) {
    return Status::IoError(StrFormat("cannot write %s", path.c_str()));
  }
  stream_ = std::move(stream);
  stream_delay_us_ = delay_us;
  for (const LogRecord& record : records_) Emit(record);
  return Status::OK();
}

void JobLogger::StopStreaming() {
  if (stream_ != nullptr) stream_->flush();
  stream_.reset();
  stream_delay_us_ = 0;
}

void JobLogger::Emit(const LogRecord& record, bool truncate) {
  if (stream_ == nullptr) return;
  emit_buffer_.clear();
  record.AppendJsonl(emit_buffer_);
  if (truncate) {
    // Torn write: the line loses its tail and its newline, so it merges
    // with the next streamed line into one malformed line at the tailer.
    emit_buffer_.resize(emit_buffer_.size() / 2);
  } else {
    emit_buffer_ += '\n';
  }
  stream_->write(emit_buffer_.data(),
                 static_cast<std::streamsize>(emit_buffer_.size()));
  stream_->flush();
  if (stream_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(stream_delay_us_));
  }
}

void JobLogger::Append(LogRecord&& record) {
  WriteFault fault = write_fault_hook_ == nullptr ? WriteFault::kNone
                                                  : write_fault_hook_(record);
  if (fault == WriteFault::kDrop) return;
  records_.push_back(std::move(record));
  Emit(records_.back(), fault == WriteFault::kTruncate);
}

OpId JobLogger::StartOperation(OpId parent, std::string actor_type,
                               std::string actor_id,
                               std::string mission_type,
                               std::string mission_id) {
  LogRecord record;
  record.kind = LogRecord::Kind::kStartOp;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = next_op_id_++;
  record.parent_id = parent;
  record.actor_type = std::move(actor_type);
  record.actor_id = std::move(actor_id);
  record.mission_type = std::move(mission_type);
  record.mission_id = std::move(mission_id);
  OpId id = record.op_id;
  Append(std::move(record));
  return id;
}

void JobLogger::EndOperation(OpId op) {
  LogRecord record;
  record.kind = LogRecord::Kind::kEndOp;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = op;
  Append(std::move(record));
}

void JobLogger::AddInfo(OpId op, std::string name, Json value) {
  LogRecord record;
  record.kind = LogRecord::Kind::kInfo;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = op;
  record.info_name = std::move(name);
  record.info_value = std::move(value);
  Append(std::move(record));
}

}  // namespace granula::core
