#include "granula/monitor/job_logger.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/strings.h"

namespace granula::core {

namespace {

std::string_view KindName(LogRecord::Kind kind) {
  switch (kind) {
    case LogRecord::Kind::kStartOp:
      return "start";
    case LogRecord::Kind::kEndOp:
      return "end";
    case LogRecord::Kind::kInfo:
      return "info";
  }
  return "unknown";
}

}  // namespace

Json LogRecord::ToJson() const {
  Json j;
  j["kind"] = std::string(KindName(kind));
  j["seq"] = seq;
  j["t"] = time.nanos();
  j["op"] = op_id;
  if (kind == Kind::kStartOp) {
    j["parent"] = parent_id;
    j["actor_type"] = actor_type;
    if (!actor_id.empty()) j["actor_id"] = actor_id;
    j["mission_type"] = mission_type;
    if (!mission_id.empty()) j["mission_id"] = mission_id;
  }
  if (kind == Kind::kInfo) {
    j["name"] = info_name;
    j["value"] = info_value;
  }
  return j;
}

Result<LogRecord> LogRecord::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::Corruption("log record must be a JSON object");
  }
  LogRecord r;
  std::string kind = j.GetString("kind");
  if (kind == "start") {
    r.kind = Kind::kStartOp;
  } else if (kind == "end") {
    r.kind = Kind::kEndOp;
  } else if (kind == "info") {
    r.kind = Kind::kInfo;
  } else {
    return Status::Corruption(
        StrFormat("unknown log record kind '%s'", kind.c_str()));
  }
  r.seq = static_cast<uint64_t>(j.GetInt("seq"));
  r.time = SimTime::Nanos(j.GetInt("t"));
  r.op_id = static_cast<uint64_t>(j.GetInt("op"));
  if (r.kind == Kind::kStartOp) {
    r.parent_id = static_cast<uint64_t>(j.GetInt("parent"));
    r.actor_type = j.GetString("actor_type");
    r.actor_id = j.GetString("actor_id");
    r.mission_type = j.GetString("mission_type");
    r.mission_id = j.GetString("mission_id");
  }
  if (r.kind == Kind::kInfo) {
    r.info_name = j.GetString("name");
    if (const Json* value = j.Find("value")) r.info_value = *value;
  }
  return r;
}

Status WriteLogRecords(const std::string& path,
                       const std::vector<LogRecord>& records) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::IoError(StrFormat("cannot write %s", path.c_str()));
  }
  for (const LogRecord& r : records) {
    file << r.ToJson().Dump(0) << '\n';
  }
  file.flush();
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<std::vector<LogRecord>> ReadLogRecords(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::vector<LogRecord> records;
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return Status::Corruption(StrFormat("%s:%zu: %s", path.c_str(),
                                          line_number,
                                          parsed.status().ToString().c_str()));
    }
    auto record = LogRecord::FromJson(*parsed);
    if (!record.ok()) {
      return Status::Corruption(StrFormat("%s:%zu: %s", path.c_str(),
                                          line_number,
                                          record.status().ToString().c_str()));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Status JobLogger::StreamTo(const std::string& path, uint64_t delay_us) {
  auto stream = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*stream) {
    return Status::IoError(StrFormat("cannot write %s", path.c_str()));
  }
  stream_ = std::move(stream);
  stream_delay_us_ = delay_us;
  for (const LogRecord& record : records_) Emit(record);
  return Status::OK();
}

void JobLogger::StopStreaming() {
  if (stream_ != nullptr) stream_->flush();
  stream_.reset();
  stream_delay_us_ = 0;
}

void JobLogger::Emit(const LogRecord& record) {
  if (stream_ == nullptr) return;
  *stream_ << record.ToJson().Dump(0) << '\n';
  stream_->flush();
  if (stream_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(stream_delay_us_));
  }
}

OpId JobLogger::StartOperation(OpId parent, std::string actor_type,
                               std::string actor_id,
                               std::string mission_type,
                               std::string mission_id) {
  LogRecord record;
  record.kind = LogRecord::Kind::kStartOp;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = next_op_id_++;
  record.parent_id = parent;
  record.actor_type = std::move(actor_type);
  record.actor_id = std::move(actor_id);
  record.mission_type = std::move(mission_type);
  record.mission_id = std::move(mission_id);
  OpId id = record.op_id;
  records_.push_back(std::move(record));
  Emit(records_.back());
  return id;
}

void JobLogger::EndOperation(OpId op) {
  LogRecord record;
  record.kind = LogRecord::Kind::kEndOp;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = op;
  records_.push_back(std::move(record));
  Emit(records_.back());
}

void JobLogger::AddInfo(OpId op, std::string name, Json value) {
  LogRecord record;
  record.kind = LogRecord::Kind::kInfo;
  record.seq = next_seq_++;
  record.time = Now();
  record.op_id = op;
  record.info_name = std::move(name);
  record.info_value = std::move(value);
  records_.push_back(std::move(record));
  Emit(records_.back());
}

}  // namespace granula::core
