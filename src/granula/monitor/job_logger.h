#ifndef GRANULA_GRANULA_MONITOR_JOB_LOGGER_H_
#define GRANULA_GRANULA_MONITOR_JOB_LOGGER_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/sim_time.h"

namespace granula::core {

// One platform-log entry. Platforms under analysis emit a flat stream of
// these (paper P2, "platform logs reveal the internal operations"); the
// archiver later reconstructs the operation tree from them. Keeping the
// monitoring format flat and order-independent mirrors real Granula, which
// scrapes per-machine log files that interleave arbitrarily.
struct LogRecord {
  enum class Kind { kStartOp, kEndOp, kInfo };

  Kind kind = Kind::kStartOp;
  uint64_t seq = 0;       // global emission order (for stable tie-breaks)
  SimTime time;           // virtual timestamp
  uint64_t op_id = 0;     // operation this record belongs to
  uint64_t parent_id = 0; // kStartOp only; 0 = root

  // kStartOp only: the actor @ mission annotation.
  std::string actor_type;
  std::string actor_id;
  std::string mission_type;
  std::string mission_id;

  // kInfo only.
  std::string info_name;
  Json info_value;

  // Serialization for captured logs. Keeps `seq` and `kind` exactly, so a
  // log written to disk lints and archives identically to the in-memory
  // stream (the provenance the lint pass keys on).
  Json ToJson() const;
  static Result<LogRecord> FromJson(const Json& j);

  // Fast JSONL codec — the serialization fast path (DESIGN.md
  // "Serialization fast paths"). AppendJsonl appends exactly the bytes of
  // ToJson().Dump(0) without building a DOM: keys are emitted in sorted
  // order, strings through the bulk-run escape fast path, integers via
  // to_chars. ParseJsonl parses one log line; canonical lines (the writer's
  // own output) take a single-pass schema-aware scan with no DOM and no
  // per-key allocations, and anything non-canonical — reordered keys,
  // whitespace, escapes, exotic numbers, malformed input — transparently
  // falls back to Json::Parse + FromJson, so it accepts exactly the same
  // lines and reports exactly the same errors as the DOM path. Only the
  // free-form `value` payload of an info record goes through Json::Parse.
  void AppendJsonl(std::string& out) const;
  static Result<LogRecord> ParseJsonl(std::string_view line);
};

// Captured-log persistence: one compact JSON object per line (JSONL), the
// flat order-independent format the archiver expects back. Enables
// offline lint/repair of logs scraped from real platforms.
//
// ReadLogRecords shards the file's lines over the process-wide host pool
// (GRANULA_HOST_THREADS) and parses chunks concurrently; chunks are
// concatenated in chunk-index order, so the returned sequence — and the
// error reported for a corrupt file (the earliest bad line wins) — is
// byte-for-byte identical to a serial read at any thread count.
Status WriteLogRecords(const std::string& path,
                       const std::vector<LogRecord>& records);
Result<std::vector<LogRecord>> ReadLogRecords(const std::string& path);

// Identifies a started operation in the log stream.
using OpId = uint64_t;
inline constexpr OpId kNoOp = 0;

// The instrumentation API platforms call while running (Granula's
// "monitoring" hooks). Thin by design: each call appends one LogRecord.
class JobLogger {
 public:
  using Clock = std::function<SimTime()>;

  explicit JobLogger(Clock clock) : clock_(std::move(clock)) {}

  JobLogger(const JobLogger&) = delete;
  JobLogger& operator=(const JobLogger&) = delete;

  // Starts an operation; `parent` is kNoOp for the job root. `mission_id`
  // distinguishes repetitions (e.g. "Superstep-4"); empty ids default to
  // the type names at archive time.
  OpId StartOperation(OpId parent, std::string actor_type,
                      std::string actor_id, std::string mission_type,
                      std::string mission_id = "");

  void EndOperation(OpId op);

  void AddInfo(OpId op, std::string name, Json value);

  // Live-log streaming: in addition to buffering, append every record to
  // `path` as one JSONL line, flushed per record so a tailer (granula
  // watch) sees it immediately. Records already buffered are written out
  // first. `delay_us` adds a wall-clock pause after each streamed record —
  // pacing for live demos and tail-while-running tests; virtual time and
  // determinism are unaffected.
  Status StreamTo(const std::string& path, uint64_t delay_us = 0);
  void StopStreaming();
  bool streaming() const { return stream_ != nullptr; }

  // Injected monitoring-side write faults (fault injection; kept as a
  // local enum so this header stays independent of the sim module).
  // kDrop: the record is never persisted — not buffered, not streamed —
  // as if the monitoring agent died before the write. kTruncate: the
  // record is buffered normally but its streamed JSONL line is written
  // torn (prefix only, no newline), so it merges with the next line into
  // one malformed line at the tailer. The seq counter advances either
  // way: downstream lint sees the resulting gap.
  enum class WriteFault { kNone, kDrop, kTruncate };
  using WriteFaultHook = std::function<WriteFault(const LogRecord&)>;
  void SetWriteFaultHook(WriteFaultHook hook) {
    write_fault_hook_ = std::move(hook);
  }

  const std::vector<LogRecord>& records() const { return records_; }
  std::vector<LogRecord> TakeRecords() { return std::move(records_); }

 private:
  SimTime Now() const { return clock_(); }
  void Append(LogRecord&& record);
  void Emit(const LogRecord& record, bool truncate = false);

  Clock clock_;
  uint64_t next_op_id_ = 1;
  uint64_t next_seq_ = 0;
  std::vector<LogRecord> records_;
  std::unique_ptr<std::ofstream> stream_;
  uint64_t stream_delay_us_ = 0;
  WriteFaultHook write_fault_hook_;
  std::string emit_buffer_;  // reused across Emit calls
};

// A JobLogger whose clock is a Simulator's virtual clock lives in
// platforms/; this header stays independent of the sim module so archives
// can also be built from externally captured logs.

}  // namespace granula::core

#endif  // GRANULA_GRANULA_MONITOR_JOB_LOGGER_H_
