#include "granula/serve/http.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace granula::serve {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string LowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= ' ' || c >= 127) return false;
    if (std::string_view("()<>@,;:\\\"/[]?={}").find(static_cast<char>(c)) !=
        std::string_view::npos) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string HttpRequest::Header(const std::string& name,
                                const std::string& fallback) const {
  auto it = headers.find(LowerAscii(name));
  return it == headers.end() ? fallback : it->second;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
               HexDigit(s[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(HexDigit(s[i + 1]) * 16 + HexDigit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view s) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t amp = s.find('&', pos);
    std::string_view pair =
        s.substr(pos, amp == std::string_view::npos ? amp : amp - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[UrlDecode(pair)] = "";
      } else {
        out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return out;
}

Result<bool> ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                              size_t* consumed) {
  size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("request header block exceeds 16 KiB");
    }
    return false;  // need more bytes
  }
  if (header_end > kMaxHeaderBytes) {
    return Status::InvalidArgument("request header block exceeds 16 KiB");
  }
  std::string_view head = buffer.substr(0, header_end);

  HttpRequest request;

  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(request.method) || request.target.empty() ||
      request.target[0] != '/') {
    return Status::InvalidArgument("malformed request line");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument(
        StrFormat("unsupported HTTP version '%.*s'",
                  static_cast<int>(version.size()), version.data()));
  }

  // Headers.
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find("\r\n", pos);
    std::string_view line = head.substr(
        pos, end == std::string_view::npos ? head.size() - pos : end - pos);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string name = LowerAscii(StrTrim(line.substr(0, colon)));
    if (!IsToken(name)) {
      return Status::InvalidArgument("malformed header name");
    }
    request.headers[name] = std::string(StrTrim(line.substr(colon + 1)));
    if (end == std::string_view::npos) break;
    pos = end + 2;
  }

  // Body (Content-Length framing only; the daemon has no chunked uploads).
  size_t body_len = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    auto parsed = ParseUint64(it->second);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          StrFormat("bad Content-Length '%s'", it->second.c_str()));
    }
    if (*parsed > kMaxBodyBytes) {
      return Status::InvalidArgument("request body exceeds 1 MiB");
    }
    body_len = static_cast<size_t>(*parsed);
  }
  if (request.headers.count("transfer-encoding") > 0) {
    return Status::InvalidArgument("chunked request bodies are unsupported");
  }
  size_t total = header_end + 4 + body_len;
  if (buffer.size() < total) return false;  // body still in flight
  request.body = std::string(buffer.substr(header_end + 4, body_len));

  // Split the target into decoded path + query.
  size_t qmark = request.target.find('?');
  std::string_view raw_path(request.target);
  if (qmark != std::string::npos) {
    request.query = ParseQueryString(
        std::string_view(request.target).substr(qmark + 1));
    raw_path = raw_path.substr(0, qmark);
  }
  request.path = UrlDecode(raw_path);
  for (std::string_view part : StrSplit(raw_path.substr(1), '/')) {
    if (part.empty()) continue;
    request.segments.push_back(UrlDecode(part));
  }

  *out = std::move(request);
  *consumed = total;
  return true;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive, bool head_only) {
  std::string out;
  out.reserve(256 + (head_only ? 0 : response.body.size()));
  out += StrFormat("HTTP/1.1 %d ", response.status);
  out += HttpStatusReason(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  if (!head_only) out += response.body;
  return out;
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return status < 400 ? "OK" : "Error";
  }
}

}  // namespace granula::serve
