#ifndef GRANULA_GRANULA_SERVE_SERVER_H_
#define GRANULA_GRANULA_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/socket.h"
#include "granula/serve/service.h"

namespace granula::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 picks a free port; port() reports the real one
  // Connection workers. 0 = every thread of the shared host pool; larger
  // values are clamped to the pool size (the pool runs exactly one job).
  int threads = 0;
  // Per-direction socket timeout. A client that stalls mid-request gets a
  // 408 (or a silent close when it never sent a byte) after this long.
  int timeout_ms = 5000;
  // Bounded hand-off queue between the listener and the workers; when all
  // workers are busy and the queue is full, new connections get 503.
  int accept_queue = 64;
  int backlog = 128;  // kernel listen backlog
};

// The blocking HTTP/1.1 daemon: one listener thread accepting into a
// bounded queue, plus connection workers that run as ONE long ParallelFor
// job on the shared host ThreadPool (the pool runs a single job at a
// time, so all pool-using setup — archiving, packing — must finish before
// Start()). Each worker drains connections from the queue, speaking
// keep-alive HTTP until the peer closes, errors, or Stop() drains the
// daemon.
//
// Shutdown: Stop() closes the listener, rejects queued connections, and
// shuts down the read side of in-flight sockets — a worker mid-response
// still flushes its bytes, then sees EOF and exits. Stop() blocks until
// every worker has returned.
class HttpServer {
 public:
  HttpServer(ArchiveService* service, ServerOptions options)
      : service_(service), options_(std::move(options)) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and spins up the listener + workers. IoError when the address
  // is unavailable (CLI exit 1); FailedPrecondition when already started.
  Status Start();

  // The bound port (after Start(); real port when options.port was 0).
  int port() const { return port_; }

  // Graceful drain; idempotent; safe to call without a successful Start().
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void ListenerLoop();
  // One worker's connection loop (runs as a ParallelFor chunk).
  void WorkerLoop();
  // Serves one connection until close/EOF/timeout/stop.
  void ServeConnection(TcpSocket socket);

  ArchiveService* service_;
  ServerOptions options_;

  TcpListener listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Listener -> worker hand-off, bounded by options_.accept_queue.
  // `active_fds_` tracks sockets currently inside ServeConnection so
  // Stop() can unblock their reads; a worker registers the fd under the
  // same lock that pops it, so no connection is ever invisible to Stop().
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<TcpSocket> queue_;
  std::unordered_set<int> active_fds_;

  std::thread listener_thread_;
  std::thread driver_thread_;  // runs the workers' ParallelFor
};

}  // namespace granula::serve

#endif  // GRANULA_GRANULA_SERVE_SERVER_H_
