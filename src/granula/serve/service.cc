#include "granula/serve/service.h"

#include <chrono>
#include <limits>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "granula/archive/gba.h"

namespace granula::serve {

namespace {

using core::ArchiveRepository;

// FNV-1a over the fields that identify one saved archive state. The saved
// time is the load-bearing input: Save() overwriting a name bumps it, so
// the old tag stops validating (tests pin this across an overwrite).
uint64_t Fnv1a(std::string_view s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashEntry(const ArchiveRepository::Entry& entry, uint64_t h) {
  h = Fnv1a(entry.name, h);
  h = Fnv1a(StrFormat("|%lld|%llu|%.17g|",
                      static_cast<long long>(entry.saved_unix_seconds),
                      static_cast<unsigned long long>(entry.operations),
                      entry.total_seconds),
            h);
  h = Fnv1a(core::ArchiveFormatName(entry.format), h);
  return h;
}

constexpr uint64_t kFnvSeed = 1469598103934665603ull;

std::string QuoteTag(uint64_t h) {
  return StrFormat("\"g%016llx\"", static_cast<unsigned long long>(h));
}

// Weak list matching is fine here: tags are opaque hex tokens, so a
// substring hit on the exact quoted tag cannot false-positive.
bool IfNoneMatchHits(const HttpRequest& request, const std::string& tag) {
  std::string header = request.Header("If-None-Match");
  if (header.empty()) return false;
  if (header == "*") return true;
  return header.find(tag) != std::string::npos;
}

std::string_view SeverityName(core::Severity severity) {
  switch (severity) {
    case core::Severity::kInfo: return "info";
    case core::Severity::kWarning: return "warning";
    case core::Severity::kCritical: return "critical";
  }
  return "info";
}

Json EntryToJson(const ArchiveRepository::Entry& entry) {
  Json j = Json::MakeObject();
  j["name"] = entry.name;
  j["platform"] = entry.platform;
  j["algorithm"] = entry.algorithm;
  j["status"] = entry.status;
  j["total_seconds"] = entry.total_seconds;
  j["operations"] = entry.operations;
  j["saved_unix_seconds"] = entry.saved_unix_seconds;
  j["format"] = core::ArchiveFormatName(entry.format);
  return j;
}

HttpResponse JsonResponse(Json body, int status = 200) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump(2);
  response.body.push_back('\n');
  return response;
}

HttpResponse NotModified(const std::string& tag) {
  HttpResponse response;
  response.status = 304;
  response.content_type.clear();
  response.headers.emplace_back("ETag", tag);
  return response;
}

bool WantsGba(const HttpRequest& request) {
  auto it = request.query.find("format");
  if (it != request.query.end()) return it->second == "gba";
  return request.Header("Accept").find("application/x-granula-gba") !=
         std::string::npos;
}

}  // namespace

HttpResponse MakeErrorResponse(int status, std::string_view code,
                               std::string_view message) {
  Json error = Json::MakeObject();
  error["code"] = code;
  error["message"] = message;
  Json body = Json::MakeObject();
  body["error"] = std::move(error);
  return JsonResponse(std::move(body), status);
}

HttpResponse StatusToResponse(const Status& status) {
  int http = 500;
  switch (status.code()) {
    case StatusCode::kNotFound:
      http = 404;
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      http = 400;
      break;
    default:
      http = 500;  // IoError/Corruption/Internal: the server's fault
      break;
  }
  return MakeErrorResponse(http, StatusCodeName(status.code()),
                           status.message());
}

void LatencyHistogram::Record(uint64_t micros) {
  int bucket = 0;
  while (bucket + 1 < kBuckets && (1ull << (bucket + 1)) <= micros) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

Json LatencyHistogram::ToJson() const {
  Json j = Json::MakeObject();
  j["unit"] = "microseconds_pow2_buckets";
  j["count"] = count_.load(std::memory_order_relaxed);
  j["max_us"] = max_micros_.load(std::memory_order_relaxed);
  Json buckets = Json::MakeArray();
  int last = kBuckets - 1;
  while (last > 0 && buckets_[last].load(std::memory_order_relaxed) == 0) {
    --last;
  }
  for (int i = 0; i <= last; ++i) {
    buckets.Append(buckets_[i].load(std::memory_order_relaxed));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

HttpResponse ArchiveService::Handle(const HttpRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  counters_.requests.fetch_add(1, std::memory_order_relaxed);

  HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response = MakeErrorResponse(
        405, "method_not_allowed",
        StrFormat("method %s is not supported (the archive service is "
                  "read-only)",
                  request.method.c_str()));
    response.headers.emplace_back("Allow", "GET, HEAD");
  } else {
    response = Route(request);
  }

  if (response.status == 304) {
    counters_.not_modified.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status < 400) {
    counters_.ok.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status < 500) {
    counters_.client_errors.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.server_errors.fetch_add(1, std::memory_order_relaxed);
  }

  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  latency_.Record(micros < 0 ? 0 : static_cast<uint64_t>(micros));
  return response;
}

HttpResponse ArchiveService::Route(const HttpRequest& request) {
  const auto& seg = request.segments;
  if (seg.empty()) {
    Json j = Json::MakeObject();
    j["service"] = "granula-serve";
    Json endpoints = Json::MakeArray();
    endpoints.Append("/archives");
    endpoints.Append("/archives?platform=&algorithm=&status=&since=&until=");
    endpoints.Append("/archives/<name>");
    endpoints.Append("/archives/<name>?depth=N");
    endpoints.Append("/archives/<name>/subtree/<path>");
    endpoints.Append("/archives/<name>/findings");
    endpoints.Append("/archives/<name>/quarantine");
    endpoints.Append("/stats");
    j["endpoints"] = std::move(endpoints);
    return JsonResponse(std::move(j));
  }
  if (seg[0] == "stats" && seg.size() == 1) return GetStats();
  if (seg[0] == "archives") {
    if (seg.size() == 1) return ListArchives(request);
    const std::string& name = seg[1];
    if (seg.size() == 2) return GetArchive(request, name);
    if (seg[2] == "findings" && seg.size() == 3) return GetFindings(name);
    if (seg[2] == "quarantine" && seg.size() == 3) {
      return GetQuarantine(name);
    }
    if (seg[2] == "subtree" && seg.size() > 3) {
      std::vector<std::string> parts(seg.begin() + 3, seg.end());
      return GetSubtree(request, name, StrJoin(parts, "/"));
    }
  }
  return MakeErrorResponse(
      404, "not_found",
      StrFormat("no route for '%s'", request.path.c_str()));
}

HttpResponse ArchiveService::ListArchives(const HttpRequest& request) {
  ArchiveRepository::Query query;
  for (const auto& [key, value] : request.query) {
    if (key == "platform") {
      query.platform = value;
    } else if (key == "algorithm") {
      query.algorithm = value;
    } else if (key == "status") {
      query.status = value;
    } else if (key == "since" || key == "until") {
      auto parsed = ParseUint64(value);
      if (!parsed.ok() ||
          *parsed > static_cast<uint64_t>(
                        std::numeric_limits<int64_t>::max())) {
        return MakeErrorResponse(
            400, "invalid_argument",
            StrFormat("bad %s '%s': expected unix seconds", key.c_str(),
                      value.c_str()));
      }
      (key == "since" ? query.saved_since : query.saved_until) =
          static_cast<int64_t>(*parsed);
    } else {
      return MakeErrorResponse(
          400, "invalid_argument",
          StrFormat("unknown query parameter '%s' (expected platform, "
                    "algorithm, status, since, until)",
                    key.c_str()));
    }
  }

  auto selected = repository_->Select(query);
  if (!selected.ok()) return StatusToResponse(selected.status());

  // List ETag = hash over every matched entry: any save, overwrite, or
  // removal that changes the answer changes the tag ("index generation").
  uint64_t h = kFnvSeed;
  for (const auto& entry : *selected) h = HashEntry(entry, h);
  const std::string tag = QuoteTag(h);
  if (IfNoneMatchHits(request, tag)) return NotModified(tag);

  Json body = Json::MakeObject();
  Json archives = Json::MakeArray();
  for (const auto& entry : *selected) archives.Append(EntryToJson(entry));
  body["count"] = static_cast<uint64_t>(selected->size());
  body["archives"] = std::move(archives);
  HttpResponse response = JsonResponse(std::move(body));
  response.headers.emplace_back("ETag", tag);
  return response;
}

std::string ArchiveService::EntryTag(const std::string& name, bool* found) {
  *found = false;
  auto entries = repository_->List();
  if (!entries.ok()) return "";
  for (const auto& entry : *entries) {
    if (entry.name == name) {
      *found = true;
      return QuoteTag(HashEntry(entry, kFnvSeed));
    }
  }
  return "";
}

HttpResponse ArchiveService::GetArchive(const HttpRequest& request,
                                        const std::string& name) {
  bool found = false;
  const std::string tag = EntryTag(name, &found);
  if (!found) {
    return MakeErrorResponse(
        404, "not_found", StrFormat("no archive named '%s'", name.c_str()));
  }
  if (IfNoneMatchHits(request, tag)) return NotModified(tag);

  int levels = 0;  // full load
  auto depth_it = request.query.find("depth");
  if (depth_it != request.query.end()) {
    auto parsed = ParseUint64(depth_it->second);
    if (!parsed.ok() || *parsed == 0 || *parsed > 1000000) {
      return MakeErrorResponse(
          400, "invalid_argument",
          StrFormat("bad depth '%s': expected a positive level count",
                    depth_it->second.c_str()));
    }
    levels = static_cast<int>(*parsed);
  }

  auto archive = levels > 0 ? repository_->LoadShallow(name, levels)
                            : repository_->Load(name);
  if (!archive.ok()) return StatusToResponse(archive.status());

  HttpResponse response;
  response.body = archive->ToJsonString(2);
  response.headers.emplace_back("ETag", tag);
  return response;
}

HttpResponse ArchiveService::GetSubtree(const HttpRequest& request,
                                        const std::string& name,
                                        const std::string& path) {
  bool found = false;
  std::string tag = EntryTag(name, &found);
  if (!found) {
    return MakeErrorResponse(
        404, "not_found", StrFormat("no archive named '%s'", name.c_str()));
  }
  // The subtree tag folds the path in so distinct subtrees of one archive
  // carry distinct validators.
  tag = QuoteTag(Fnv1a(path, Fnv1a(tag, kFnvSeed)));
  if (IfNoneMatchHits(request, tag)) return NotModified(tag);

  const bool gba = WantsGba(request);
  HttpResponse response;
  if (gba) response.content_type = "application/x-granula-gba";
  response.headers.emplace_back("ETag", tag);

  // Serialized-body LRU, keyed on the validator plus the negotiated
  // format: a hit is the exact bytes a fresh fetch would produce, so the
  // decode AND the serialization are both skipped.
  const std::string cache_key = tag + (gba ? "|gba" : "|json");
  if (auto cached = ResponseCacheGet(cache_key)) {
    response.body = *cached;
    return response;
  }

  auto subtree = repository_->FetchSubtree(name, path);
  if (!subtree.ok()) return StatusToResponse(subtree.status());

  if (gba) {
    response.body = core::EncodeGbaSubtree(**subtree);
  } else {
    response.body = (*subtree)->ToJson().Dump(2);
    response.body.push_back('\n');
  }
  ResponseCachePut(cache_key, response.body);
  return response;
}

std::shared_ptr<const std::string> ArchiveService::ResponseCacheGet(
    const std::string& key) {
  if (options_.response_cache_capacity == 0) return nullptr;
  std::lock_guard<std::mutex> lock(response_mu_);
  auto it = response_cache_.find(key);
  if (it == response_cache_.end()) {
    ++response_stats_.misses;
    return nullptr;
  }
  ++response_stats_.hits;
  response_lru_.splice(response_lru_.begin(), response_lru_,
                       it->second.lru_it);
  return it->second.body;
}

void ArchiveService::ResponseCachePut(const std::string& key,
                                      std::string body) {
  if (options_.response_cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(response_mu_);
  if (response_cache_.count(key) != 0) return;  // racing fill, keep first
  while (response_cache_.size() >= options_.response_cache_capacity) {
    response_cache_.erase(response_lru_.back());
    response_lru_.pop_back();
    ++response_stats_.evictions;
  }
  response_lru_.push_front(key);
  response_cache_.emplace(
      key, ResponseSlot{std::make_shared<const std::string>(std::move(body)),
                        response_lru_.begin()});
}

HttpResponse ArchiveService::GetFindings(const std::string& name) {
  auto archive = repository_->Load(name);
  if (!archive.ok()) return StatusToResponse(archive.status());
  std::vector<core::Finding> findings =
      core::AnalyzeChokepoints(*archive, options_.chokepoints);
  Json body = Json::MakeObject();
  body["archive"] = name;
  body["count"] = static_cast<uint64_t>(findings.size());
  Json array = Json::MakeArray();
  for (const core::Finding& finding : findings) {
    Json j = Json::MakeObject();
    j["kind"] = core::FindingKindName(finding.kind);
    j["severity"] = SeverityName(finding.severity);
    j["operation"] = finding.operation;
    j["description"] = finding.description;
    j["metric"] = finding.metric;
    array.Append(std::move(j));
  }
  body["findings"] = std::move(array);
  return JsonResponse(std::move(body));
}

HttpResponse ArchiveService::GetQuarantine(const std::string& name) {
  // Level-1 load: metadata + lint without decoding the operation tree.
  auto archive = repository_->LoadShallow(name, 1);
  if (!archive.ok()) return StatusToResponse(archive.status());
  Json body = Json::MakeObject();
  body["archive"] = name;
  body["clean"] = archive->lint.clean();
  body["quarantined"] = archive->lint.ToJson();
  return JsonResponse(std::move(body));
}

HttpResponse ArchiveService::GetStats() {
  Json body = Json::MakeObject();

  Json requests = Json::MakeObject();
  requests["total"] = counters_.requests.load(std::memory_order_relaxed);
  requests["ok"] = counters_.ok.load(std::memory_order_relaxed);
  requests["not_modified"] =
      counters_.not_modified.load(std::memory_order_relaxed);
  requests["client_errors"] =
      counters_.client_errors.load(std::memory_order_relaxed);
  requests["server_errors"] =
      counters_.server_errors.load(std::memory_order_relaxed);
  body["requests"] = std::move(requests);

  Json transport = Json::MakeObject();
  transport["connections"] =
      transport_.connections.load(std::memory_order_relaxed);
  transport["rejected"] = transport_.rejected.load(std::memory_order_relaxed);
  transport["timeouts"] = transport_.timeouts.load(std::memory_order_relaxed);
  body["transport"] = std::move(transport);

  const ArchiveRepository::CacheStats cache = repository_->cache_stats();
  Json cache_json = Json::MakeObject();
  cache_json["hits"] = cache.hits;
  cache_json["misses"] = cache.misses;
  cache_json["evictions"] = cache.evictions;
  body["subtree_cache"] = std::move(cache_json);

  Json response_json = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(response_mu_);
    response_json["hits"] = response_stats_.hits;
    response_json["misses"] = response_stats_.misses;
    response_json["evictions"] = response_stats_.evictions;
    response_json["entries"] = static_cast<uint64_t>(response_cache_.size());
  }
  body["response_cache"] = std::move(response_json);

  body["body_reads"] = ArchiveRepository::BodyReadCount();
  body["latency"] = latency_.ToJson();
  return JsonResponse(std::move(body));
}

}  // namespace granula::serve
