#ifndef GRANULA_GRANULA_SERVE_HTTP_H_
#define GRANULA_GRANULA_SERVE_HTTP_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace granula::serve {

// HTTP/1.1 request/response types and a blocking-free incremental parser
// for the embedded archive server. Scope is deliberately the subset the
// daemon needs: GET/HEAD with headers and optional small bodies, no
// chunked transfer encoding, no multipart. Limits keep a hostile or
// confused client from ballooning memory: 16 KiB of headers, 1 MiB of
// body.

inline constexpr size_t kMaxHeaderBytes = 16 * 1024;
inline constexpr size_t kMaxBodyBytes = 1024 * 1024;

struct HttpRequest {
  std::string method;  // uppercase, e.g. "GET"
  std::string target;  // raw request target, e.g. "/archives?status=complete"
  std::string path;    // decoded path, e.g. "/archives"
  // Decoded path segments, e.g. {"archives", "giraph-bfs-001"}.
  std::vector<std::string> segments;
  // Decoded query parameters; a repeated key keeps the last value.
  std::map<std::string, std::string> query;
  // Header names are lowercased; values are trimmed.
  std::map<std::string, std::string> headers;
  std::string body;

  // Header value or `fallback` when absent.
  std::string Header(const std::string& name,
                     const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  // Extra headers (ETag, Allow, ...). Content-Length/Connection are
  // emitted by SerializeHttpResponse.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

// Incremental request parse over the bytes received so far.
//   - Returns false when `buffer` does not yet hold a complete request
//     (read more and call again).
//   - Returns true and sets `*consumed` (bytes of `buffer` used) when one
//     complete request was parsed into `*out`.
//   - Returns a Status for a malformed or over-limit request; the
//     connection should answer 400 and close.
Result<bool> ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                              size_t* consumed);

// Serializes a full response (status line, headers, body). `head_only`
// omits the body while keeping the true Content-Length, per HEAD
// semantics.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive, bool head_only = false);

// Percent-decoding ('+' also decodes to space, per form encoding).
// Malformed escapes are kept literally rather than rejected.
std::string UrlDecode(std::string_view s);

// Parses "a=1&b=two" into decoded key/value pairs.
std::map<std::string, std::string> ParseQueryString(std::string_view s);

// Canonical reason phrase for `status` ("Not Found", ...).
std::string_view HttpStatusReason(int status);

}  // namespace granula::serve

#endif  // GRANULA_GRANULA_SERVE_HTTP_H_
