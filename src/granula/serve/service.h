#ifndef GRANULA_GRANULA_SERVE_SERVICE_H_
#define GRANULA_GRANULA_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "granula/analysis/chokepoint.h"
#include "granula/archive/repository.h"
#include "granula/serve/http.h"

namespace granula::serve {

// Request latency histogram: power-of-two microsecond buckets
// (bucket i counts requests with latency in [2^i, 2^(i+1)) µs; bucket 0
// also takes sub-microsecond requests). Lock-free — workers record
// concurrently, /stats reads a relaxed snapshot.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 24;  // up to ~8.4 s

  void Record(uint64_t micros);
  Json ToJson() const;  // {"unit","count","max_us","buckets":[...]}

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> max_micros_{0};
};

// Request-outcome counters, all relaxed atomics (exactness across a
// concurrent snapshot is not worth a lock for monitoring numbers).
struct ServiceCounters {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> ok{0};             // 2xx
  std::atomic<uint64_t> not_modified{0};   // 304
  std::atomic<uint64_t> client_errors{0};  // 4xx
  std::atomic<uint64_t> server_errors{0};  // 5xx
};

// Transport-level counters, owned here so /stats can report them but
// incremented by the HttpServer (the service never sees a socket).
struct TransportCounters {
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> rejected{0};  // accept queue full -> 503
  std::atomic<uint64_t> timeouts{0};  // slow clients -> 408 / drop
};

struct ServiceOptions {
  // Options for /archives/<name>/findings. cluster_cpu_capacity <= 0
  // leaves the CPU detectors off, as in `granula analyze`.
  core::ChokepointOptions chokepoints;
  // Entries in the serialized-subtree-response LRU (0 disables it). Keys
  // are the response's ETag (+ negotiated format), so a Save() that
  // overwrites an archive changes the tag and strands the old body, which
  // then ages out — no explicit invalidation needed.
  size_t response_cache_capacity = 128;
};

// The HTTP-facing view of an ArchiveRepository: pure request -> response,
// no sockets, no threads of its own. Thread-safe — the server calls
// Handle() from every worker concurrently; the repository's index reads
// are stateless and its subtree cache is internally locked.
//
// Routes (GET/HEAD only):
//   /                               endpoint index
//   /archives                       list (index-served, no body reads)
//   /archives?platform=&algorithm=&status=&since=&until=
//                                   filtered list (same contract)
//   /archives/<name>                full archive (?depth=N for a shallow cut)
//   /archives/<name>/subtree/<path> one operation subtree, JSON by default;
//                                   `Accept: application/x-granula-gba` or
//                                   ?format=gba returns raw GBA bytes
//   /archives/<name>/findings       choke-point analysis
//   /archives/<name>/quarantine     lint findings
//   /stats                          counters, cache stats, latency histogram
//
// Caching contract: every /archives* response carries an ETag derived from
// the index entry's saved time (lists: from all matched entries), so a
// Save() that overwrites an archive changes the tag. If-None-Match hits
// answer 304 with no body.
class ArchiveService {
 public:
  ArchiveService(core::ArchiveRepository* repository, ServiceOptions options)
      : repository_(repository), options_(std::move(options)) {}

  // Handles one parsed request. Never fails: errors become JSON error
  // responses ({"error":{"code","message"}}). Records latency + outcome.
  HttpResponse Handle(const HttpRequest& request);

  TransportCounters& transport() { return transport_; }

 private:
  HttpResponse Route(const HttpRequest& request);
  HttpResponse ListArchives(const HttpRequest& request);
  HttpResponse GetArchive(const HttpRequest& request,
                          const std::string& name);
  HttpResponse GetSubtree(const HttpRequest& request, const std::string& name,
                          const std::string& path);
  HttpResponse GetFindings(const std::string& name);
  HttpResponse GetQuarantine(const std::string& name);
  HttpResponse GetStats();

  // ETag for `name` from the index ("" when the name is not indexed);
  // sets `*found` accordingly.
  std::string EntryTag(const std::string& name, bool* found);

  // Serialized-response LRU lookup/insert for subtree bodies. A hit skips
  // both the repository fetch and the serialization.
  std::shared_ptr<const std::string> ResponseCacheGet(const std::string& key);
  void ResponseCachePut(const std::string& key, std::string body);

  core::ArchiveRepository* repository_;
  ServiceOptions options_;
  ServiceCounters counters_;
  TransportCounters transport_;
  LatencyHistogram latency_;

  struct ResponseSlot {
    std::shared_ptr<const std::string> body;
    std::list<std::string>::iterator lru_it;
  };
  struct ResponseCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  mutable std::mutex response_mu_;  // guards the three members below
  std::list<std::string> response_lru_;
  std::unordered_map<std::string, ResponseSlot> response_cache_;
  ResponseCacheStats response_stats_;
};

// Error payload shared with tests: {"error":{"code","message"}}.
HttpResponse MakeErrorResponse(int status, std::string_view code,
                               std::string_view message);

// Maps a repository/analysis Status to an HTTP error response.
HttpResponse StatusToResponse(const Status& status);

}  // namespace granula::serve

#endif  // GRANULA_GRANULA_SERVE_SERVICE_H_
