#include "granula/serve/server.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace granula::serve {

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is already running");
  }
  GRANULA_ASSIGN_OR_RETURN(
      listener_,
      TcpListener::Bind(options_.host, options_.port, options_.backlog));
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  listener_thread_ = std::thread([this] { ListenerLoop(); });

  // Connection workers are one long ParallelFor job: W chunks, each a
  // worker loop. The pool runs a single job at a time, so W is clamped to
  // the pool size — more chunks than runnable threads would leave workers
  // parked until another loop exits at shutdown.
  const int pool_threads = ThreadPool::Global().num_threads();
  int workers = options_.threads <= 0 ? pool_threads
                                      : std::min(options_.threads,
                                                 pool_threads);
  workers = std::max(workers, 1);
  driver_thread_ = std::thread([this, workers] {
    ThreadPool::Global().ParallelFor(
        0, static_cast<uint64_t>(workers), 1,
        [this](uint64_t, uint64_t, uint64_t) { WorkerLoop(); });
  });
  return Status::OK();
}

void HttpServer::ListenerLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept(/*timeout_ms=*/50);
    if (!accepted.ok()) break;  // listener broken; Stop() owns cleanup
    if (!accepted->valid()) continue;  // poll timeout: re-check stopping_
    TcpSocket socket = std::move(*accepted);
    service_->transport().connections.fetch_add(1,
                                                std::memory_order_relaxed);
    (void)socket.SetTimeouts(options_.timeout_ms, options_.timeout_ms);

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!stopping_.load(std::memory_order_acquire) &&
          queue_.size() < static_cast<size_t>(options_.accept_queue)) {
        queue_.push_back(std::move(socket));
        queue_cv_.notify_one();
        continue;
      }
    }
    // Queue full (or draining): turn the connection away instead of
    // letting it starve unread.
    service_->transport().rejected.fetch_add(1, std::memory_order_relaxed);
    HttpResponse busy = MakeErrorResponse(
        503, "overloaded", "accept queue is full; retry shortly");
    (void)socket.WriteAll(
        SerializeHttpResponse(busy, /*keep_alive=*/false));
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    TcpSocket socket;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping, queue drained
      socket = std::move(queue_.front());
      queue_.pop_front();
      // Registered under the pop's lock so Stop() either sees the socket
      // in the queue or in the active set — never neither.
      active_fds_.insert(socket.fd());
    }
    const int fd = socket.fd();
    ServeConnection(std::move(socket));
    std::lock_guard<std::mutex> lock(queue_mu_);
    active_fds_.erase(fd);
  }
}

void HttpServer::ServeConnection(TcpSocket socket) {
  std::string buffer;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Accumulate bytes until one complete request is parsed.
    HttpRequest request;
    size_t consumed = 0;
    bool complete = false;
    while (!complete) {
      auto parsed = ParseHttpRequest(buffer, &request, &consumed);
      if (!parsed.ok()) {
        HttpResponse bad = MakeErrorResponse(400, "bad_request",
                                             parsed.status().message());
        (void)socket.WriteAll(
            SerializeHttpResponse(bad, /*keep_alive=*/false));
        return;
      }
      if (*parsed) {
        complete = true;
        break;
      }
      switch (socket.Read(buffer)) {
        case TcpSocket::ReadOutcome::kData:
          break;
        case TcpSocket::ReadOutcome::kEof:
        case TcpSocket::ReadOutcome::kError:
          // Idle keep-alive close, peer reset, or Stop()'s read shutdown;
          // partial bytes are not answerable once the peer is gone.
          return;
        case TcpSocket::ReadOutcome::kTimeout: {
          service_->transport().timeouts.fetch_add(
              1, std::memory_order_relaxed);
          if (!buffer.empty()) {
            // The client started a request and stalled: tell it why the
            // connection is going away.
            HttpResponse timeout = MakeErrorResponse(
                408, "request_timeout",
                StrFormat("no complete request within %d ms",
                          options_.timeout_ms));
            (void)socket.WriteAll(
                SerializeHttpResponse(timeout, /*keep_alive=*/false));
          }
          return;
        }
      }
    }
    buffer.erase(0, consumed);

    HttpResponse response = service_->Handle(request);
    const bool keep_alive =
        request.Header("Connection") != "close" &&
        !stopping_.load(std::memory_order_acquire);
    if (!socket
             .WriteAll(SerializeHttpResponse(response, keep_alive,
                                             request.method == "HEAD"))
             .ok()) {
      return;
    }
    if (!keep_alive) return;
  }
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();  // destructors close the queued sockets
    for (int fd : active_fds_) ShutdownReadFd(fd);
  }
  queue_cv_.notify_all();
  if (listener_thread_.joinable()) listener_thread_.join();
  listener_.Close();
  if (driver_thread_.joinable()) driver_thread_.join();
}

}  // namespace granula::serve
