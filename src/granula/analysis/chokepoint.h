#ifndef GRANULA_GRANULA_ANALYSIS_CHOKEPOINT_H_
#define GRANULA_GRANULA_ANALYSIS_CHOKEPOINT_H_

#include <string>
#include <vector>

#include "granula/archive/archive.h"

namespace granula::core {

// Automated choke-point analysis over performance archives — the first of
// the paper's future-work directions (Section 6: "to further enhance
// Granula's ability to support performance analysis, for example on
// choke-point analysis and failure diagnosis").
//
// Each detector encodes one of the diagnostic patterns the paper walks
// through manually in Section 4; running them over an archive yields the
// same conclusions automatically (tested against the reference runs).

enum class FindingKind {
  kDominantPhase,       // one domain phase eats most of the runtime
  kIdleDuringPhase,     // CPUs idle through a long phase (latency-bound)
  kCpuSaturatedPhase,   // a phase pegs the cluster CPU (compute-bound)
  kSingleNodeHotspot,   // one node does (almost) all the work in a phase
  kWorkerImbalance,     // slowest/fastest worker ratio above threshold
  kSynchronizationOverhead,  // large share of processing outside compute
  kStragglerNode,       // one node consistently slower across supersteps
  kFailureRecovery,     // time lost to FailedAttempt/Restart operations
  kStalledJob,          // job root never closed (aborted or wedged run);
                        // also synthesized live by `granula watch` when a
                        // tailed log stops advancing
};

std::string_view FindingKindName(FindingKind kind);

enum class Severity { kInfo, kWarning, kCritical };

struct Finding {
  FindingKind kind;
  Severity severity = Severity::kInfo;
  std::string operation;    // path-ish location, e.g. "GiraphJob/LoadGraph"
  std::string description;  // human-readable diagnosis
  double metric = 0.0;      // the number that triggered the finding
};

struct ChokepointOptions {
  double dominant_phase_fraction = 0.40;
  double idle_cpu_fraction = 0.10;       // of cluster capacity
  double saturated_cpu_fraction = 0.75;  // of cluster capacity
  // A node is a hotspot when its share of the phase's CPU time is at
  // least this multiple of the fair share (1/num_nodes), and it averages
  // at least `hotspot_min_node_cores` busy cores over the phase.
  double hotspot_fair_share_multiple = 3.5;
  double hotspot_min_node_cores = 1.0;
  double imbalance_ratio = 1.5;          // slowest/fastest local superstep
  double sync_overhead_fraction = 0.30;  // non-compute share of supersteps
  double straggler_ratio = 1.25;         // node mean vs cluster mean
  // Failure recovery: share of the job lost to FailedAttempt/Restart
  // operations that upgrades the finding from info to warning/critical.
  double lost_time_warning_fraction = 0.05;
  double lost_time_critical_fraction = 0.25;
  // Total cluster CPU capacity in CPU-s/s (nodes x cores). Needed for the
  // idle/saturated detectors; <=0 disables them.
  double cluster_cpu_capacity = 0.0;
  // Phases shorter than this fraction of the job are not diagnosed.
  double min_phase_fraction = 0.05;
};

// Runs every detector; findings are ordered most-severe first.
std::vector<Finding> AnalyzeChokepoints(const PerformanceArchive& archive,
                                        const ChokepointOptions& options);

// Renders findings as a terminal report.
std::string RenderFindings(const std::vector<Finding>& findings);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ANALYSIS_CHOKEPOINT_H_
