#include "granula/analysis/chokepoint.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace granula::core {

std::string_view FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kDominantPhase:
      return "dominant_phase";
    case FindingKind::kIdleDuringPhase:
      return "idle_during_phase";
    case FindingKind::kCpuSaturatedPhase:
      return "cpu_saturated_phase";
    case FindingKind::kSingleNodeHotspot:
      return "single_node_hotspot";
    case FindingKind::kWorkerImbalance:
      return "worker_imbalance";
    case FindingKind::kSynchronizationOverhead:
      return "synchronization_overhead";
    case FindingKind::kStragglerNode:
      return "straggler_node";
    case FindingKind::kFailureRecovery:
      return "failure_recovery";
    case FindingKind::kStalledJob:
      return "stalled_job";
  }
  return "unknown";
}

namespace {

std::string PhasePath(const PerformanceArchive& archive,
                      const ArchivedOperation& phase) {
  std::string root = archive.root->mission_id.empty()
                         ? archive.root->mission_type
                         : archive.root->mission_id;
  std::string leaf =
      phase.mission_id.empty() ? phase.mission_type : phase.mission_id;
  return root + "/" + leaf;
}

// CPU-seconds per node within (begin, end], plus the total.
struct PhaseCpu {
  std::map<uint32_t, double> per_node;
  std::map<uint32_t, std::string> hostname;
  double total = 0;
  double window = 0;  // sampling interval estimate (for CPU-s conversion)
};

PhaseCpu CpuWithin(const PerformanceArchive& archive, double begin,
                   double end) {
  PhaseCpu cpu;
  // Estimate the sampling interval from consecutive sample times of node 0.
  double previous = -1;
  for (const EnvironmentRecord& r : archive.environment) {
    if (r.node != 0) continue;
    if (previous >= 0) {
      cpu.window = r.time_seconds - previous;
      break;
    }
    previous = r.time_seconds;
  }
  if (cpu.window <= 0) cpu.window = 1.0;
  for (const EnvironmentRecord& r : archive.environment) {
    if (r.time_seconds > begin && r.time_seconds <= end + 1e-9) {
      double cpu_seconds = r.cpu_seconds_per_second * cpu.window;
      cpu.per_node[r.node] += cpu_seconds;
      cpu.hostname[r.node] = r.hostname;
      cpu.total += cpu_seconds;
    }
  }
  return cpu;
}

void DetectPhaseFindings(const PerformanceArchive& archive,
                         const ChokepointOptions& options,
                         std::vector<Finding>* findings) {
  double job_seconds = archive.root->Duration().seconds();
  if (job_seconds <= 0) return;
  for (const auto& phase : archive.root->children) {
    double seconds = phase->Duration().seconds();
    double fraction = seconds / job_seconds;
    std::string path = PhasePath(archive, *phase);

    if (fraction >= options.dominant_phase_fraction) {
      findings->push_back(Finding{
          FindingKind::kDominantPhase, Severity::kCritical, path,
          StrFormat("%s takes %s of the job (%s of %s)",
                    phase->mission_type.c_str(),
                    HumanPercent(fraction).c_str(),
                    HumanSeconds(seconds).c_str(),
                    HumanSeconds(job_seconds).c_str()),
          fraction});
    }
    if (fraction < options.min_phase_fraction) continue;
    if (archive.environment.empty()) continue;

    PhaseCpu cpu = CpuWithin(archive, phase->StartTime().seconds(),
                             phase->EndTime().seconds());
    if (options.cluster_cpu_capacity > 0 && seconds > 0) {
      double mean_fraction =
          cpu.total / (seconds * options.cluster_cpu_capacity);
      if (mean_fraction <= options.idle_cpu_fraction) {
        findings->push_back(Finding{
            FindingKind::kIdleDuringPhase, Severity::kWarning, path,
            StrFormat("CPUs are %s utilized during %s — the phase is bound "
                      "by latency or I/O waits, not compute",
                      HumanPercent(mean_fraction).c_str(),
                      phase->mission_type.c_str()),
            mean_fraction});
      } else if (mean_fraction >= options.saturated_cpu_fraction) {
        findings->push_back(Finding{
            FindingKind::kCpuSaturatedPhase, Severity::kInfo, path,
            StrFormat("%s runs at %s of cluster CPU capacity — compute-"
                      "bound; a faster implementation would shorten it",
                      phase->mission_type.c_str(),
                      HumanPercent(mean_fraction).c_str()),
            mean_fraction});
      }
    }
    if (cpu.total > 0 && cpu.per_node.size() > 1) {
      auto hottest = std::max_element(
          cpu.per_node.begin(), cpu.per_node.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      double share = hottest->second / cpu.total;
      double fair_share = 1.0 / static_cast<double>(cpu.per_node.size());
      // A hotspot only matters when that node is genuinely working:
      // nearly idle phases trivially concentrate their negligible CPU
      // somewhere. Require the hottest node to average at least one busy
      // core over the phase (a PowerGraph-style sequential loader runs
      // several).
      double hottest_mean_cores = hottest->second / seconds;
      if (share >= options.hotspot_fair_share_multiple * fair_share &&
          hottest_mean_cores >= options.hotspot_min_node_cores) {
        findings->push_back(Finding{
            FindingKind::kSingleNodeHotspot, Severity::kCritical, path,
            StrFormat("%s of the CPU time in %s is on %s alone — the phase "
                      "does not use the distributed cluster",
                      HumanPercent(share).c_str(),
                      phase->mission_type.c_str(),
                      cpu.hostname[hottest->first].c_str()),
            share});
      }
    }
  }
}

void DetectSuperstepFindings(const PerformanceArchive& archive,
                             const ChokepointOptions& options,
                             std::vector<Finding>* findings) {
  // Worker imbalance per superstep-like operation (derived infos come from
  // the model; absent infos mean the model was too coarse — no findings).
  for (const ArchivedOperation* step :
       archive.FindOperations("Master", "Superstep")) {
    double imbalance = step->InfoNumber("WorkerImbalance", -1);
    if (imbalance >= options.imbalance_ratio) {
      findings->push_back(Finding{
          FindingKind::kWorkerImbalance, Severity::kWarning,
          archive.root->mission_id + "/ProcessGraph/" + step->mission_id,
          StrFormat("slowest worker in %s is %.2fx the fastest — load "
                    "imbalance leaves workers waiting at the barrier",
                    step->mission_id.c_str(), imbalance),
          imbalance});
    }
  }

  // Synchronization overhead + straggler detection across all supersteps.
  double compute_total = 0, local_total = 0;
  std::map<std::string, double> per_worker_compute;
  for (const ArchivedOperation* local :
       archive.FindOperations("Worker", "LocalSuperstep")) {
    local_total += local->Duration().seconds();
  }
  for (const ArchivedOperation* compute :
       archive.FindOperations("Worker", "Compute")) {
    compute_total += compute->Duration().seconds();
    per_worker_compute[compute->actor_id] += compute->Duration().seconds();
  }
  if (local_total > 0) {
    double overhead = 1.0 - compute_total / local_total;
    if (overhead >= options.sync_overhead_fraction) {
      findings->push_back(Finding{
          FindingKind::kSynchronizationOverhead, Severity::kWarning,
          archive.root->mission_id + "/ProcessGraph",
          StrFormat("%s of worker superstep time is outside Compute "
                    "(PreStep/Message/PostStep + barrier waits)",
                    HumanPercent(overhead).c_str()),
          overhead});
    }
  }
  if (per_worker_compute.size() > 1 && compute_total > 0) {
    double mean = compute_total / per_worker_compute.size();
    for (const auto& [worker, total] : per_worker_compute) {
      if (mean > 0 && total / mean >= options.straggler_ratio) {
        findings->push_back(Finding{
            FindingKind::kStragglerNode, Severity::kCritical,
            archive.root->mission_id + "/ProcessGraph",
            StrFormat("%s spends %.2fx the mean compute time across the "
                      "whole run — a consistently slow or overloaded node",
                      worker.c_str(), total / mean),
            total / mean});
      }
    }
  }
}

// Sums the durations of FailedAttempt/Restart operations anywhere in the
// tree. Matched subtrees are not descended into: a failed attempt's
// children are the replayed work, already covered by its own duration.
void SumFailures(const ArchivedOperation& op, double* lost_seconds,
                 uint64_t* attempts, uint64_t* restarts) {
  if (op.mission_type == "FailedAttempt") {
    *lost_seconds += op.Duration().seconds();
    ++*attempts;
    return;
  }
  if (op.mission_type == "Restart") {
    *lost_seconds += op.Duration().seconds();
    ++*restarts;
    return;
  }
  for (const auto& child : op.children) {
    SumFailures(*child, lost_seconds, attempts, restarts);
  }
}

void DetectFailureFindings(const PerformanceArchive& archive,
                           const ChokepointOptions& options,
                           std::vector<Finding>* findings) {
  double lost = 0;
  uint64_t attempts = 0, restarts = 0;
  SumFailures(*archive.root, &lost, &attempts, &restarts);
  std::string path = archive.root->mission_id.empty()
                         ? archive.root->mission_type
                         : archive.root->mission_id;
  if (attempts + restarts > 0) {
    double job_seconds = archive.root->Duration().seconds();
    double fraction = job_seconds > 0 ? lost / job_seconds : 0.0;
    Severity severity =
        fraction >= options.lost_time_critical_fraction ? Severity::kCritical
        : fraction >= options.lost_time_warning_fraction ? Severity::kWarning
                                                         : Severity::kInfo;
    findings->push_back(Finding{
        FindingKind::kFailureRecovery, severity, path,
        StrFormat("%llu failed attempt(s) and %llu restart(s) lost %s to "
                  "failure recovery (%s of the job)",
                  static_cast<unsigned long long>(attempts),
                  static_cast<unsigned long long>(restarts),
                  HumanSeconds(lost).c_str(), HumanPercent(fraction).c_str()),
        fraction});
  }
  // An in-flight streaming snapshot is incomplete by construction — only
  // flag archives whose root is genuinely never going to close.
  if (archive.status == ArchiveStatus::kIncomplete &&
      !archive.root->HasInfo("InFlight")) {
    findings->push_back(Finding{
        FindingKind::kStalledJob, Severity::kCritical, path,
        "the job root never closed — the run aborted (retries exhausted) "
        "or is still in flight",
        0.0});
  }
}

}  // namespace

std::vector<Finding> AnalyzeChokepoints(const PerformanceArchive& archive,
                                        const ChokepointOptions& options) {
  std::vector<Finding> findings;
  if (archive.root == nullptr) return findings;
  DetectPhaseFindings(archive, options, &findings);
  DetectSuperstepFindings(archive, options, &findings);
  DetectFailureFindings(archive, options, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return findings;
}

std::string RenderFindings(const std::vector<Finding>& findings) {
  if (findings.empty()) return "no choke-points found\n";
  std::string out;
  for (const Finding& finding : findings) {
    const char* severity = finding.severity == Severity::kCritical
                               ? "CRITICAL"
                               : finding.severity == Severity::kWarning
                                     ? "WARNING "
                                     : "INFO    ";
    out += StrFormat("[%s] %-24s %s\n         %s\n", severity,
                     std::string(FindingKindName(finding.kind)).c_str(),
                     finding.operation.c_str(),
                     finding.description.c_str());
  }
  return out;
}

}  // namespace granula::core
