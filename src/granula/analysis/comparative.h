#ifndef GRANULA_GRANULA_ANALYSIS_COMPARATIVE_H_
#define GRANULA_GRANULA_ANALYSIS_COMPARATIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "granula/analysis/regression.h"
#include "granula/archive/archive.h"
#include "granula/archive/repository.h"

namespace granula::core {

// Multi-archive comparison over a sweep repository — the paper's Fig. 5
// per-phase breakdown generalized to N platforms × M workloads, plus
// scaling curves across graph scales and a regression gate built on
// CompareArchives. Everything here consumes archives only: the sweep can
// be re-analyzed (or diffed against a months-old baseline) without
// re-running a single job.

// One archive of a sweep, with the metadata the sweep driver stamped.
struct SweepEntry {
  std::string name;       // repository name
  std::string platform;
  std::string algorithm;
  std::string graph;      // original graph spec
  std::string fault;      // "" for clean runs
  uint32_t nodes = 0;
  uint64_t graph_vertices = 0;
  PerformanceArchive archive;
};

// Loads every archive of `repo` with its sweep metadata, sorted by name.
// Archives without sweep metadata (foreign saves in a shared repository)
// still load — their axis fields are simply empty.
//
// `levels` > 0 cuts each operation tree to its first `levels` levels
// (root = level 1) via ArchiveRepository::LoadShallow — against a packed
// (GBA) repository the rows below the cut are never decoded, which is
// what keeps a depth-limited bench gate cheap on big sweeps. A gate at
// RegressionOptions::max_depth D only ever flattens the first D levels,
// so entries loaded with `levels` = D gate identically to full loads.
Result<std::vector<SweepEntry>> LoadSweepEntries(const ArchiveRepository& repo,
                                                 int levels);
Result<std::vector<SweepEntry>> LoadSweepEntries(const ArchiveRepository& repo);

// The comparative report: one per-phase table per workload, plus scaling
// curves along the graph axis.
struct ComparativeReport {
  struct Row {
    std::string platform;
    std::string archive_name;
    double total_seconds = 0;
    bool complete = true;
    // Parallel to WorkloadTable::phases; 0 when the platform's archive
    // has no such phase.
    std::vector<double> phase_seconds;
  };
  // One workload = (algorithm, graph, nodes, fault); rows = platforms.
  struct WorkloadTable {
    std::string algorithm;
    std::string graph;
    std::string fault;
    uint32_t nodes = 0;
    // Union of the platforms' top-level phases (root children), in
    // first-seen row order. Duplicate-named phases (e.g. FailedAttempt
    // repetitions) are summed.
    std::vector<std::string> phases;
    std::vector<Row> rows;
  };
  struct ScalingPoint {
    std::string graph;
    uint64_t vertices = 0;
    double seconds = 0;
  };
  // One curve = (platform, algorithm, nodes, fault) across >= 2 graphs,
  // points sorted by vertex count.
  struct ScalingCurve {
    std::string platform;
    std::string algorithm;
    std::string fault;
    uint32_t nodes = 0;
    std::vector<ScalingPoint> points;
  };

  std::vector<WorkloadTable> workloads;  // sorted by (algo, graph, nodes)
  std::vector<ScalingCurve> scaling;     // sorted by (platform, algo)
};

ComparativeReport BuildComparativeReport(
    const std::vector<SweepEntry>& entries);

// The regression gate: candidate sweep vs. committed baseline sweep,
// jobs matched by archive name, each pair diffed with CompareArchives.
struct SweepRegressionSummary {
  struct JobDelta {
    std::string name;
    RegressionReport report;
  };
  std::vector<JobDelta> jobs;        // jobs present in both sweeps
  std::vector<std::string> missing;  // baseline-only names
  std::vector<std::string> added;    // candidate-only names

  bool HasRegressions() const {
    for (const JobDelta& job : jobs) {
      if (job.report.HasRegressions()) return true;
    }
    return false;
  }
  uint64_t TotalRegressions() const {
    uint64_t n = 0;
    for (const JobDelta& job : jobs) n += job.report.regressions.size();
    return n;
  }
};

SweepRegressionSummary CompareSweeps(
    const std::vector<SweepEntry>& baseline,
    const std::vector<SweepEntry>& candidate,
    const RegressionOptions& options);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ANALYSIS_COMPARATIVE_H_
