#include "granula/analysis/comparative.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/strings.h"

namespace granula::core {
namespace {

std::string MetadataOr(const PerformanceArchive& archive,
                       const std::string& key, std::string fallback = "") {
  auto it = archive.job_metadata.find(key);
  return it == archive.job_metadata.end() ? std::move(fallback) : it->second;
}

std::string PhaseName(const ArchivedOperation& op) {
  return op.mission_id.empty() ? op.mission_type : op.mission_id;
}

}  // namespace

Result<std::vector<SweepEntry>> LoadSweepEntries(
    const ArchiveRepository& repo) {
  return LoadSweepEntries(repo, 0);
}

Result<std::vector<SweepEntry>> LoadSweepEntries(const ArchiveRepository& repo,
                                                 int levels) {
  GRANULA_ASSIGN_OR_RETURN(auto listed, repo.List());
  std::vector<SweepEntry> entries;
  for (const auto& listed_entry : listed) {
    GRANULA_ASSIGN_OR_RETURN(PerformanceArchive archive,
                             repo.LoadShallow(listed_entry.name, levels));
    SweepEntry entry;
    entry.name = listed_entry.name;
    entry.platform = MetadataOr(archive, "platform");
    entry.algorithm = MetadataOr(archive, "algorithm");
    entry.graph = MetadataOr(archive, "graph");
    entry.fault = MetadataOr(archive, "fault");
    Result<uint64_t> nodes = ParseUint64(MetadataOr(archive, "nodes", "0"));
    entry.nodes = nodes.ok() ? static_cast<uint32_t>(*nodes) : 0;
    Result<uint64_t> vertices =
        ParseUint64(MetadataOr(archive, "graph_vertices", "0"));
    entry.graph_vertices = vertices.ok() ? *vertices : 0;
    entry.archive = std::move(archive);
    entries.push_back(std::move(entry));
  }
  // List() is name-sorted already; keep that contract explicit here.
  std::sort(entries.begin(), entries.end(),
            [](const SweepEntry& a, const SweepEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

ComparativeReport BuildComparativeReport(
    const std::vector<SweepEntry>& entries) {
  ComparativeReport report;

  // ---- per-workload tables: platforms side by side, phase by phase ----
  using WorkloadKey = std::tuple<std::string, std::string, uint32_t,
                                 std::string>;  // algo, graph, nodes, fault
  std::map<WorkloadKey, ComparativeReport::WorkloadTable> tables;
  for (const SweepEntry& entry : entries) {
    if (entry.archive.root == nullptr) continue;
    WorkloadKey key{entry.algorithm, entry.graph, entry.nodes, entry.fault};
    ComparativeReport::WorkloadTable& table = tables[key];
    table.algorithm = entry.algorithm;
    table.graph = entry.graph;
    table.nodes = entry.nodes;
    table.fault = entry.fault;

    ComparativeReport::Row row;
    row.platform = entry.platform;
    row.archive_name = entry.name;
    row.total_seconds = entry.archive.root->Duration().seconds();
    row.complete = entry.archive.status == ArchiveStatus::kComplete;

    // Sum this archive's top-level phases by name (FailedAttempt
    // repetitions under fault plans collapse into one column).
    std::map<std::string, double> phase_seconds;
    std::vector<std::string> phase_order;
    for (const auto& child : entry.archive.root->children) {
      std::string name = PhaseName(*child);
      if (phase_seconds.emplace(name, 0.0).second) {
        phase_order.push_back(name);
      }
      phase_seconds[name] += child->Duration().seconds();
    }
    // Extend the table's phase union in this row's phase order.
    for (const std::string& name : phase_order) {
      if (std::find(table.phases.begin(), table.phases.end(), name) ==
          table.phases.end()) {
        table.phases.push_back(name);
      }
    }
    row.phase_seconds.assign(table.phases.size(), 0.0);
    for (size_t i = 0; i < table.phases.size(); ++i) {
      auto it = phase_seconds.find(table.phases[i]);
      if (it != phase_seconds.end()) row.phase_seconds[i] = it->second;
    }
    table.rows.push_back(std::move(row));
  }
  for (auto& [key, table] : tables) {
    // Later rows may have widened the phase union; re-pad earlier rows.
    for (ComparativeReport::Row& row : table.rows) {
      row.phase_seconds.resize(table.phases.size(), 0.0);
    }
    std::sort(table.rows.begin(), table.rows.end(),
              [](const ComparativeReport::Row& a,
                 const ComparativeReport::Row& b) {
                return a.platform < b.platform;
              });
    report.workloads.push_back(std::move(table));
  }

  // ---- scaling curves along the graph axis --------------------------
  using CurveKey = std::tuple<std::string, std::string, uint32_t,
                              std::string>;  // platform, algo, nodes, fault
  std::map<CurveKey, ComparativeReport::ScalingCurve> curves;
  for (const SweepEntry& entry : entries) {
    if (entry.archive.root == nullptr) continue;
    CurveKey key{entry.platform, entry.algorithm, entry.nodes, entry.fault};
    ComparativeReport::ScalingCurve& curve = curves[key];
    curve.platform = entry.platform;
    curve.algorithm = entry.algorithm;
    curve.nodes = entry.nodes;
    curve.fault = entry.fault;
    curve.points.push_back({entry.graph, entry.graph_vertices,
                            entry.archive.root->Duration().seconds()});
  }
  for (auto& [key, curve] : curves) {
    if (curve.points.size() < 2) continue;  // nothing to scale against
    std::sort(curve.points.begin(), curve.points.end(),
              [](const ComparativeReport::ScalingPoint& a,
                 const ComparativeReport::ScalingPoint& b) {
                return std::tie(a.vertices, a.graph) <
                       std::tie(b.vertices, b.graph);
              });
    report.scaling.push_back(std::move(curve));
  }
  return report;
}

SweepRegressionSummary CompareSweeps(
    const std::vector<SweepEntry>& baseline,
    const std::vector<SweepEntry>& candidate,
    const RegressionOptions& options) {
  SweepRegressionSummary summary;
  std::map<std::string, const SweepEntry*> candidates;
  for (const SweepEntry& entry : candidate) {
    candidates[entry.name] = &entry;
  }
  std::map<std::string, bool> matched;
  for (const SweepEntry& base : baseline) {
    auto it = candidates.find(base.name);
    if (it == candidates.end()) {
      summary.missing.push_back(base.name);
      continue;
    }
    matched[base.name] = true;
    summary.jobs.push_back(
        {base.name,
         CompareArchives(base.archive, it->second->archive, options)});
  }
  for (const SweepEntry& entry : candidate) {
    if (matched.count(entry.name) == 0) summary.added.push_back(entry.name);
  }
  return summary;
}

}  // namespace granula::core
