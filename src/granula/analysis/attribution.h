#ifndef GRANULA_GRANULA_ANALYSIS_ATTRIBUTION_H_
#define GRANULA_GRANULA_ANALYSIS_ATTRIBUTION_H_

#include <map>
#include <string>
#include <vector>

#include "granula/archive/archive.h"

namespace granula::core {

// Resource-to-operation attribution: maps the environment log's samples
// onto the operation tree — the mechanism behind the paper's Figs. 6-7
// ("map these data to the each corresponding system operation") made a
// reusable query.

struct OperationResourceUsage {
  std::string path;          // mission ids from the root, '/'-joined
  double duration_seconds = 0;
  double cpu_seconds = 0;    // total CPU time during the operation
  double mean_cpu = 0;       // cpu_seconds / duration
  // Per-node CPU seconds (hostname -> CPU-s); reveals hotspots.
  std::map<std::string, double> per_node_cpu;
};

struct AttributionOptions {
  // Attribute to operations at most this many levels below the root
  // (1 = the root's direct children, i.e. the domain phases). 0 = root only.
  int max_depth = 1;
};

// Integrates every environment sample into the operations whose
// [StartTime, EndTime] window contains the sample, down to `max_depth`.
// Windows of sibling operations may overlap (distributed workers); each
// level is attributed independently, so per-level totals are conserved.
std::vector<OperationResourceUsage> AttributeCpu(
    const PerformanceArchive& archive, const AttributionOptions& options);

// Convenience: CPU-seconds per domain phase (root's direct children),
// keyed by mission id.
std::map<std::string, double> PhaseCpuSeconds(
    const PerformanceArchive& archive);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ANALYSIS_ATTRIBUTION_H_
