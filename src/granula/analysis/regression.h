#ifndef GRANULA_GRANULA_ANALYSIS_REGRESSION_H_
#define GRANULA_GRANULA_ANALYSIS_REGRESSION_H_

#include <string>
#include <vector>

#include "granula/archive/archive.h"

namespace granula::core {

// Performance-regression testing over archives — the paper's Section-6
// vision of integrating "performance analysis as part of standard software
// engineering practices, in the form of performance regression tests".
//
// Two archives of the same job (baseline: the committed/known-good run;
// candidate: the run under test) are compared operation-by-operation.
// Operations are matched by their path of mission ids, so the comparison
// is stable across runs with identical structure and degrades gracefully
// (added/removed operations are reported, not fatal).

struct OperationDelta {
  std::string path;
  double baseline_seconds = 0;
  double candidate_seconds = 0;
  // (candidate - baseline) / baseline; +0.25 means 25 % slower.
  double relative_change = 0;
};

struct RegressionReport {
  std::vector<OperationDelta> regressions;   // slower than tolerance
  std::vector<OperationDelta> improvements;  // faster than tolerance
  std::vector<std::string> added;            // only in candidate
  std::vector<std::string> removed;          // only in baseline
  double total_baseline_seconds = 0;
  double total_candidate_seconds = 0;

  bool HasRegressions() const { return !regressions.empty(); }
};

struct RegressionOptions {
  // Relative slowdown that counts as a regression (0.10 = 10 %).
  double tolerance = 0.10;
  // Operations shorter than this (in both runs) are ignored: tiny
  // operations have proportionally noisy timings.
  double min_seconds = 0.05;
  // Limit the comparison depth (0 = all levels present in the archives).
  int max_depth = 0;
};

RegressionReport CompareArchives(const PerformanceArchive& baseline,
                                 const PerformanceArchive& candidate,
                                 const RegressionOptions& options);

// Renders a report as terminal text (regressions first).
std::string RenderRegressionReport(const RegressionReport& report);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ANALYSIS_REGRESSION_H_
