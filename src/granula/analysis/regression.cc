#include "granula/analysis/regression.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace granula::core {

namespace {

std::string OperationName(const ArchivedOperation& op) {
  return op.mission_id.empty() ? op.mission_type : op.mission_id;
}

// Flattens an operation tree into path -> duration. Sibling operations
// with identical names (rare; means the model lacks distinguishing
// mission ids) ALL get "#k" suffixes, k being the 1-based occurrence
// index among the same-named siblings. Suffixing every duplicate —
// including the first — is deliberate: leaving the first unsuffixed (the
// old encounter-order scheme) made a baseline operation silently pair
// with whichever candidate sibling happened to be flattened first, e.g.
// a run's sole "Load" against the first of two "Load" attempts in the
// candidate. With structural suffixes such shape changes surface as
// added/removed paths instead of a bogus delta.
void Flatten(const ArchivedOperation& op, const std::string& path,
             int depth, int max_depth,
             std::map<std::string, double>* out) {
  (*out)[path] = op.Duration().seconds();
  if (max_depth > 0 && depth + 1 >= max_depth) return;
  std::map<std::string, int> name_count, seen;
  for (const auto& child : op.children) ++name_count[OperationName(*child)];
  for (const auto& child : op.children) {
    std::string name = OperationName(*child);
    std::string child_path = path.empty() ? name : path + "/" + name;
    if (name_count[name] > 1) {
      child_path += "#" + std::to_string(++seen[name]);
    }
    // Last-resort guard for pathological names (a '/' inside a mission id
    // can collide with a genuinely nested path).
    while (out->count(child_path) > 0) child_path += "'";
    Flatten(*child, child_path, depth + 1, max_depth, out);
  }
}

}  // namespace

RegressionReport CompareArchives(const PerformanceArchive& baseline,
                                 const PerformanceArchive& candidate,
                                 const RegressionOptions& options) {
  RegressionReport report;
  std::map<std::string, double> base_ops, cand_ops;
  if (baseline.root != nullptr) {
    Flatten(*baseline.root, OperationName(*baseline.root), 0,
            options.max_depth, &base_ops);
    report.total_baseline_seconds = baseline.root->Duration().seconds();
  }
  if (candidate.root != nullptr) {
    Flatten(*candidate.root, OperationName(*candidate.root), 0,
            options.max_depth, &cand_ops);
    report.total_candidate_seconds = candidate.root->Duration().seconds();
  }

  for (const auto& [path, base_seconds] : base_ops) {
    auto it = cand_ops.find(path);
    if (it == cand_ops.end()) {
      report.removed.push_back(path);
      continue;
    }
    double cand_seconds = it->second;
    if (base_seconds < options.min_seconds &&
        cand_seconds < options.min_seconds) {
      continue;
    }
    if (base_seconds <= 0) continue;
    double change = (cand_seconds - base_seconds) / base_seconds;
    OperationDelta delta{path, base_seconds, cand_seconds, change};
    if (change >= options.tolerance) {
      report.regressions.push_back(delta);
    } else if (change <= -options.tolerance) {
      report.improvements.push_back(delta);
    }
  }
  for (const auto& [path, seconds] : cand_ops) {
    if (base_ops.count(path) == 0) report.added.push_back(path);
  }

  auto by_change_desc = [](const OperationDelta& a,
                           const OperationDelta& b) {
    return a.relative_change > b.relative_change;
  };
  std::sort(report.regressions.begin(), report.regressions.end(),
            by_change_desc);
  std::sort(report.improvements.begin(), report.improvements.end(),
            [](const OperationDelta& a, const OperationDelta& b) {
              return a.relative_change < b.relative_change;
            });
  return report;
}

std::string RenderRegressionReport(const RegressionReport& report) {
  std::string out = StrFormat(
      "job total: %s -> %s (%+.1f%%)\n",
      HumanSeconds(report.total_baseline_seconds).c_str(),
      HumanSeconds(report.total_candidate_seconds).c_str(),
      report.total_baseline_seconds > 0
          ? 100.0 *
                (report.total_candidate_seconds -
                 report.total_baseline_seconds) /
                report.total_baseline_seconds
          : 0.0);
  if (!report.regressions.empty()) {
    out += "regressions:\n";
    for (const OperationDelta& delta : report.regressions) {
      out += StrFormat("  %-48s %9s -> %9s  %+7.1f%%\n", delta.path.c_str(),
                       HumanSeconds(delta.baseline_seconds).c_str(),
                       HumanSeconds(delta.candidate_seconds).c_str(),
                       100.0 * delta.relative_change);
    }
  }
  if (!report.improvements.empty()) {
    out += "improvements:\n";
    for (const OperationDelta& delta : report.improvements) {
      out += StrFormat("  %-48s %9s -> %9s  %+7.1f%%\n", delta.path.c_str(),
                       HumanSeconds(delta.baseline_seconds).c_str(),
                       HumanSeconds(delta.candidate_seconds).c_str(),
                       100.0 * delta.relative_change);
    }
  }
  for (const std::string& path : report.added) {
    out += StrFormat("  added:   %s\n", path.c_str());
  }
  for (const std::string& path : report.removed) {
    out += StrFormat("  removed: %s\n", path.c_str());
  }
  if (report.regressions.empty() && report.improvements.empty()) {
    out += "no changes beyond tolerance\n";
  }
  return out;
}

}  // namespace granula::core
