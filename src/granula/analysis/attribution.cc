#include "granula/analysis/attribution.h"

namespace granula::core {

namespace {

// Sampling interval estimate: the spacing of node-0 samples (1.0 s
// fallback when fewer than two samples exist).
double SamplingInterval(const PerformanceArchive& archive) {
  double previous = -1;
  for (const EnvironmentRecord& r : archive.environment) {
    if (r.node != 0) continue;
    if (previous >= 0) {
      double interval = r.time_seconds - previous;
      if (interval > 0) return interval;
    }
    previous = r.time_seconds;
  }
  return 1.0;
}

void Collect(const PerformanceArchive& archive, const ArchivedOperation& op,
             const std::string& prefix, int depth, int max_depth,
             double interval,
             std::vector<OperationResourceUsage>* out) {
  std::string name = op.mission_id.empty() ? op.mission_type : op.mission_id;
  std::string path = prefix.empty() ? name : prefix + "/" + name;
  if (depth > 0) {  // the root row is rarely useful; include children only
    OperationResourceUsage usage;
    usage.path = path;
    usage.duration_seconds = op.Duration().seconds();
    double begin = op.StartTime().seconds();
    double end = op.EndTime().seconds();
    for (const EnvironmentRecord& r : archive.environment) {
      if (r.time_seconds > begin && r.time_seconds <= end + 1e-9) {
        double cpu = r.cpu_seconds_per_second * interval;
        usage.cpu_seconds += cpu;
        usage.per_node_cpu[r.hostname] += cpu;
      }
    }
    usage.mean_cpu = usage.duration_seconds > 0
                         ? usage.cpu_seconds / usage.duration_seconds
                         : 0.0;
    out->push_back(std::move(usage));
  }
  if (depth >= max_depth) return;
  for (const auto& child : op.children) {
    Collect(archive, *child, path, depth + 1, max_depth, interval, out);
  }
}

}  // namespace

std::vector<OperationResourceUsage> AttributeCpu(
    const PerformanceArchive& archive, const AttributionOptions& options) {
  std::vector<OperationResourceUsage> out;
  if (archive.root == nullptr) return out;
  double interval = SamplingInterval(archive);
  Collect(archive, *archive.root, "", 0, options.max_depth, interval, &out);
  return out;
}

std::map<std::string, double> PhaseCpuSeconds(
    const PerformanceArchive& archive) {
  std::map<std::string, double> out;
  for (const OperationResourceUsage& usage :
       AttributeCpu(archive, AttributionOptions{})) {
    // Strip the root prefix for phase-keyed lookups.
    size_t slash = usage.path.find('/');
    std::string key = slash == std::string::npos
                          ? usage.path
                          : usage.path.substr(slash + 1);
    out[key] += usage.cpu_seconds;
  }
  return out;
}

}  // namespace granula::core
