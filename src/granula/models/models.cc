#include "granula/models/models.h"

#include <array>

namespace granula::core {

namespace {

// Sums the durations of direct children whose mission_type is in `types`.
template <size_t N>
Result<Json> SumChildDurations(const ArchivedOperation& op,
                               const std::array<const char*, N>& types) {
  int64_t total = 0;
  bool found = false;
  for (const auto& child : op.children) {
    for (const char* type : types) {
      if (child->mission_type == type) {
        total += child->Duration().nanos();
        found = true;
      }
    }
  }
  if (!found) return Status::NotFound("no matching phases");
  return Json(total);
}

// Fraction of the operation's own duration spent in `numerator_info`.
Result<Json> FractionOfDuration(const ArchivedOperation& op,
                                const std::string& numerator_info) {
  const InfoValue* numerator = op.FindInfo(numerator_info);
  if (numerator == nullptr || !numerator->value.is_number()) {
    return Status::NotFound("numerator missing");
  }
  int64_t total = op.Duration().nanos();
  if (total <= 0) return Status::NotFound("zero duration");
  return Json(numerator->value.AsDouble() / static_cast<double>(total));
}

// Total duration of FailedAttempt and Restart operations anywhere below
// `op`. Matched subtrees are not descended into: a storage-retry
// FailedAttempt nested inside an aborted job attempt is already part of
// that attempt's lost time.
int64_t SumLostNanos(const ArchivedOperation& op) {
  int64_t total = 0;
  for (const auto& child : op.children) {
    if (child->mission_type == ops::kFailedAttempt ||
        child->mission_type == ops::kRestart) {
      total += child->Duration().nanos();
    } else {
      total += SumLostNanos(*child);
    }
  }
  return total;
}

int64_t CountFailedAttempts(const ArchivedOperation& op) {
  int64_t count = 0;
  for (const auto& child : op.children) {
    if (child->mission_type == ops::kFailedAttempt) ++count;
    count += CountFailedAttempts(*child);
  }
  return count;
}

// Installs the job root, the five domain phases, and the Ts/Td/Tp metric
// rules shared by every platform model.
void AddDomainLayer(PerformanceModel* model) {
  (void)model->AddRoot(ops::kJobActor, ops::kJobMission);
  for (const char* phase : {ops::kStartup, ops::kLoadGraph,
                            ops::kProcessGraph, ops::kOffloadGraph,
                            ops::kCleanup}) {
    (void)model->AddOperation(ops::kJobActor, phase, ops::kJobActor,
                              ops::kJobMission);
  }
  (void)model->AddRule(
      ops::kJobActor, ops::kJobMission,
      MakeCustomRule("SetupTime", "Startup + Cleanup durations (Ts)",
                     [](const ArchivedOperation& op) {
                       return SumChildDurations(
                           op, std::array<const char*, 2>{ops::kStartup,
                                                          ops::kCleanup});
                     }));
  (void)model->AddRule(
      ops::kJobActor, ops::kJobMission,
      MakeCustomRule("IoTime", "LoadGraph + OffloadGraph durations (Td)",
                     [](const ArchivedOperation& op) {
                       return SumChildDurations(
                           op, std::array<const char*, 2>{
                                   ops::kLoadGraph, ops::kOffloadGraph});
                     }));
  (void)model->AddRule(
      ops::kJobActor, ops::kJobMission,
      MakeCustomRule("ProcessingTime", "ProcessGraph duration (Tp)",
                     [](const ArchivedOperation& op) {
                       return SumChildDurations(
                           op, std::array<const char*, 1>{
                                   ops::kProcessGraph});
                     }));
  for (const char* metric : {"SetupTime", "IoTime", "ProcessingTime"}) {
    (void)model->AddRule(
        ops::kJobActor, ops::kJobMission,
        MakeCustomRule(std::string(metric) + "Fraction",
                       std::string(metric) + " / Duration",
                       [metric](const ArchivedOperation& op) {
                         return FractionOfDuration(op, metric);
                       }));
  }

  // Failure vocabulary: abort-and-retry platforms place whole failed job
  // attempts and their restarts directly under the root. Clean archives
  // carry none of these, and the rules return NotFound so their output
  // is byte-identical to a model without them.
  (void)model->AddOperation(ops::kJobActor, ops::kFailedAttempt,
                            ops::kJobActor, ops::kJobMission);
  (void)model->AddOperation(ops::kJobActor, ops::kRestart, ops::kJobActor,
                            ops::kJobMission);
  (void)model->AddRule(
      ops::kJobActor, ops::kJobMission,
      MakeCustomRule("LostTime",
                     "FailedAttempt + Restart durations, anywhere in the "
                     "tree (wasted-time-due-to-failure)",
                     [](const ArchivedOperation& op) -> Result<Json> {
                       int64_t lost = SumLostNanos(op);
                       if (lost == 0) return Status::NotFound("no failures");
                       return Json(lost);
                     }));
  (void)model->AddRule(
      ops::kJobActor, ops::kJobMission,
      MakeCustomRule("LostTimeFraction", "LostTime / Duration",
                     [](const ArchivedOperation& op) {
                       return FractionOfDuration(op, "LostTime");
                     }));
  (void)model->AddRule(
      ops::kJobActor, ops::kJobMission,
      MakeCustomRule("FailedAttemptCount",
                     "number of FailedAttempt operations in the tree",
                     [](const ArchivedOperation& op) -> Result<Json> {
                       int64_t count = CountFailedAttempts(op);
                       if (count == 0) return Status::NotFound("no failures");
                       return Json(count);
                     }));
}

}  // namespace

PerformanceModel MakeGraphProcessingDomainModel() {
  PerformanceModel model("GraphProcessingDomain");
  AddDomainLayer(&model);
  return model;
}

PerformanceModel MakeGiraphModel() {
  PerformanceModel model("Giraph");
  AddDomainLayer(&model);

  // --- System level (3): the Giraph workflow (paper Fig. 4, column 2).
  (void)model.AddOperation("Master", "JobStartup", ops::kJobActor,
                           ops::kStartup);
  (void)model.AddOperation("Master", "LaunchWorkers", ops::kJobActor,
                           ops::kStartup);
  (void)model.AddOperation("Worker", "LoadHdfsData", ops::kJobActor,
                           ops::kLoadGraph);
  (void)model.AddOperation("Master", "Superstep", ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Master", "SyncZookeeper", ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Worker", "OffloadHdfsData", ops::kJobActor,
                           ops::kOffloadGraph);
  (void)model.AddOperation("Master", "JobCleanup", ops::kJobActor,
                           ops::kCleanup);

  // --- Implementation level (4): per-worker local operations.
  (void)model.AddOperation("Worker", "LocalStartup", "Master",
                           "LaunchWorkers");
  (void)model.AddOperation("Worker", "LocalLoad", "Worker", "LoadHdfsData");
  (void)model.AddOperation("Worker", "LocalSuperstep", "Master", "Superstep");
  (void)model.AddOperation("Worker", "LocalOffload", "Worker",
                           "OffloadHdfsData");
  (void)model.AddOperation("Master", "AbortWorkers", "Master", "JobCleanup");
  (void)model.AddOperation("Client", "ClientCleanup", "Master", "JobCleanup");
  (void)model.AddOperation("Master", "ServerCleanup", "Master", "JobCleanup");
  (void)model.AddOperation("ZooKeeper", "ZkCleanup", "Master", "JobCleanup");

  // --- Implementation level (5): superstep stages (paper Fig. 4, the
  // PreStep / Compute / Message / PostStep breakdown used in Fig. 8).
  for (const char* stage : {"PreStep", "Compute", "Message", "PostStep"}) {
    (void)model.AddOperation("Worker", stage, "Worker", "LocalSuperstep");
  }

  // Metric rules the analysis in Section 4 uses.
  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("SuperstepCount", Aggregate::kCount, "Duration",
                             "Superstep"));
  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("SuperstepTime", Aggregate::kSum, "Duration",
                             "Superstep"));
  (void)model.AddRule("Master", "Superstep",
                      MakeChildAggregateRule("SlowestWorker", Aggregate::kMax,
                                             "Duration", "LocalSuperstep"));
  (void)model.AddRule("Master", "Superstep",
                      MakeChildAggregateRule("FastestWorker", Aggregate::kMin,
                                             "Duration", "LocalSuperstep"));
  (void)model.AddRule(
      "Master", "Superstep",
      MakeCustomRule("WorkerImbalance", "SlowestWorker / FastestWorker",
                     [](const ArchivedOperation& op) -> Result<Json> {
                       double slow = op.InfoNumber("SlowestWorker", -1);
                       double fast = op.InfoNumber("FastestWorker", -1);
                       if (slow < 0 || fast <= 0) {
                         return Status::NotFound("worker durations missing");
                       }
                       return Json(slow / fast);
                     }));
  (void)model.AddRule("Worker", "LocalSuperstep",
                      MakeChildAggregateRule("ComputeTime", Aggregate::kSum,
                                             "Duration", "Compute"));
  (void)model.AddRule(
      "Worker", "LocalSuperstep",
      MakeCustomRule("OverheadTime", "Duration - ComputeTime",
                     [](const ArchivedOperation& op) -> Result<Json> {
                       const InfoValue* compute = op.FindInfo("ComputeTime");
                       if (compute == nullptr) {
                         return Status::NotFound("ComputeTime missing");
                       }
                       return Json(static_cast<double>(op.Duration().nanos()) -
                                   compute->value.AsDouble());
                     }));
  (void)model.AddRule("Worker", "Compute",
                      MakeRateRule("VerticesPerSecond", "VerticesComputed"));

  // --- Failure recovery (fault injection): doomed superstep attempts and
  // load re-attempts (Worker@FailedAttempt — one type pair covers both
  // placements), checkpoint/restart, and the checkpoint overhead rule.
  (void)model.AddOperation("Worker", ops::kFailedAttempt, ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Master", ops::kRestart, ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Master", ops::kCheckpoint, ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Worker", ops::kCheckpoint, "Master",
                           ops::kCheckpoint);
  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("CheckpointTime", Aggregate::kSum, "Duration",
                             ops::kCheckpoint));
  return model;
}

PerformanceModel MakePowerGraphModel() {
  PerformanceModel model("PowerGraph");
  AddDomainLayer(&model);

  // --- System level (3).
  (void)model.AddOperation("Mpi", "LaunchRanks", ops::kJobActor,
                           ops::kStartup);
  (void)model.AddOperation("Coordinator", "ReadInput", ops::kJobActor,
                           ops::kLoadGraph);
  (void)model.AddOperation("Rank", "FinalizeGraph", ops::kJobActor,
                           ops::kLoadGraph);
  (void)model.AddOperation("Engine", "Iteration", ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Rank", "WriteResults", ops::kJobActor,
                           ops::kOffloadGraph);
  (void)model.AddOperation("Mpi", "Finalize", ops::kJobActor, ops::kCleanup);

  // --- Implementation level (4): GAS stages per rank per iteration.
  (void)model.AddOperation("Rank", "LocalStartup", "Mpi", "LaunchRanks");
  for (const char* stage : {"Gather", "Apply", "Scatter", "Exchange"}) {
    (void)model.AddOperation("Rank", stage, "Engine", "Iteration");
  }

  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("IterationCount", Aggregate::kCount, "Duration",
                             "Iteration"));
  (void)model.AddRule(
      ops::kJobActor, ops::kLoadGraph,
      MakeChildAggregateRule("SequentialReadTime", Aggregate::kSum,
                             "Duration", "ReadInput"));
  (void)model.AddRule(
      ops::kJobActor, ops::kLoadGraph,
      MakeCustomRule(
          "SequentialReadFraction", "SequentialReadTime / Duration",
          [](const ArchivedOperation& op) {
            return FractionOfDuration(op, "SequentialReadTime");
          }));

  // --- Failure recovery: storage-error re-reads inside the sequential
  // coordinator load (whole-job aborts use the domain-layer
  // Job@FailedAttempt / Job@Restart vocabulary).
  (void)model.AddOperation("Coordinator", ops::kFailedAttempt,
                           "Coordinator", "ReadInput");
  return model;
}

PerformanceModel MakeHadoopModel() {
  PerformanceModel model("Hadoop");
  AddDomainLayer(&model);

  // --- System level (3).
  (void)model.AddOperation("Client", "JobStartup", ops::kJobActor,
                           ops::kStartup);
  (void)model.AddOperation("Job", "MaterializeState", ops::kJobActor,
                           ops::kLoadGraph);
  (void)model.AddOperation("Master", "MrJob", ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Worker", "ExtractOutput", ops::kJobActor,
                           ops::kOffloadGraph);
  (void)model.AddOperation("Master", "JobCleanup", ops::kJobActor,
                           ops::kCleanup);

  // --- Implementation level (4): the anatomy of one MapReduce job.
  // Operation models are keyed by (actor, mission) type, so one
  // registration (under MrJob) also covers the same sub-operations when
  // they appear under the MaterializeState job.
  (void)model.AddOperation("Master", "JobSetup", "Master", "MrJob");
  (void)model.AddOperation("Job", "MapPhase", "Master", "MrJob");
  (void)model.AddOperation("Job", "ShufflePhase", "Master", "MrJob");
  (void)model.AddOperation("Job", "ReducePhase", "Master", "MrJob");
  (void)model.AddOperation("Master", "JobCommit", "Master", "MrJob");
  (void)model.AddOperation("Worker", "MapTask", "Job", "MapPhase");
  (void)model.AddOperation("Worker", "ShuffleTask", "Job", "ShufflePhase");
  (void)model.AddOperation("Worker", "ReduceTask", "Job", "ReducePhase");

  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("IterationCount", Aggregate::kCount,
                             "Duration", "MrJob"));
  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("MeanJobTime", Aggregate::kMean, "Duration",
                             "MrJob"));
  (void)model.AddRule("Master", "MrJob",
                      MakeChildAggregateRule("SetupTime", Aggregate::kSum,
                                             "Duration", "JobSetup"));

  // --- Failure recovery: failed map-task attempts rescheduled by YARN.
  (void)model.AddOperation("Worker", ops::kFailedAttempt, "Job",
                           "MapPhase");
  return model;
}


PerformanceModel MakePgxdModel() {
  PerformanceModel model("PGX.D");
  AddDomainLayer(&model);

  // --- System level (3).
  (void)model.AddOperation("Native", "SpawnProcesses", ops::kJobActor,
                           ops::kStartup);
  (void)model.AddOperation("Node", "LoadLocalData", ops::kJobActor,
                           ops::kLoadGraph);
  (void)model.AddOperation("Engine", "Iteration", ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Node", "WriteLocal", ops::kJobActor,
                           ops::kOffloadGraph);
  (void)model.AddOperation("Native", "Teardown", ops::kJobActor,
                           ops::kCleanup);

  // --- Implementation level (4).
  (void)model.AddOperation("Process", "LocalStartup", "Native",
                           "SpawnProcesses");
  (void)model.AddOperation("Node", "BuildCsr", "Node", "LoadLocalData");
  for (const char* stage : {"Push", "Pull", "Apply"}) {
    (void)model.AddOperation("Node", stage, "Engine", "Iteration");
  }

  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("IterationCount", Aggregate::kCount,
                             "Duration", "Iteration"));
  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeCustomRule(
          "PushIterations", "iterations that chose the push direction",
          [](const ArchivedOperation& op) -> Result<Json> {
            int64_t pushes = 0;
            for (const auto& child : op.children) {
              if (child->mission_type != "Iteration") continue;
              const InfoValue* direction = child->FindInfo("Direction");
              if (direction != nullptr && direction->value.is_string() &&
                  direction->value.AsString() == "push") {
                ++pushes;
              }
            }
            return Json(pushes);
          }));

  // --- Failure recovery: transient storage errors during local loads.
  (void)model.AddOperation("Node", ops::kFailedAttempt, "Node",
                           "LoadLocalData");
  return model;
}


PerformanceModel MakeGraphMatModel() {
  PerformanceModel model("GraphMat");
  AddDomainLayer(&model);

  // --- System level (3).
  (void)model.AddOperation("Mpi", "LaunchRanks", ops::kJobActor,
                           ops::kStartup);
  (void)model.AddOperation("Rank", "ReadSlice", ops::kJobActor,
                           ops::kLoadGraph);
  (void)model.AddOperation("Engine", "Iteration", ops::kJobActor,
                           ops::kProcessGraph);
  (void)model.AddOperation("Rank", "WriteResults", ops::kJobActor,
                           ops::kOffloadGraph);
  (void)model.AddOperation("Mpi", "Finalize", ops::kJobActor,
                           ops::kCleanup);

  // --- Implementation level (4).
  (void)model.AddOperation("Rank", "BuildMatrix", "Rank", "ReadSlice");
  (void)model.AddOperation("Rank", "Spmv", "Engine", "Iteration");
  (void)model.AddOperation("Rank", "Apply", "Engine", "Iteration");

  (void)model.AddRule(
      ops::kJobActor, ops::kProcessGraph,
      MakeChildAggregateRule("IterationCount", Aggregate::kCount,
                             "Duration", "Iteration"));
  (void)model.AddRule(
      "Rank", "Spmv",
      MakeCustomRule(
          "MatrixUtilization", "ActiveNonzeros / StreamedEdges",
          [](const ArchivedOperation& op) -> Result<Json> {
            double streamed = op.InfoNumber("StreamedEdges", 0);
            if (streamed <= 0) return Status::NotFound("no streamed edges");
            return Json(op.InfoNumber("ActiveNonzeros") / streamed);
          }));

  // --- Failure recovery: transient storage errors during slice reads.
  (void)model.AddOperation("Rank", ops::kFailedAttempt, "Rank",
                           "ReadSlice");
  return model;
}

}  // namespace granula::core
