#ifndef GRANULA_GRANULA_MODELS_MODELS_H_
#define GRANULA_GRANULA_MODELS_MODELS_H_

#include "granula/model/performance_model.h"

namespace granula::core {

// Shared domain-level vocabulary (paper Fig. 3). Using identical actor and
// mission *types* across platforms at the domain level is what makes
// cross-platform comparison possible (paper Section 4.1): the same metric
// rules (setup time Ts, I/O time Td, processing time Tp) apply to any
// platform's archive.
namespace ops {
inline constexpr const char* kJobActor = "Job";
inline constexpr const char* kJobMission = "GraphProcessingJob";
inline constexpr const char* kStartup = "Startup";
inline constexpr const char* kLoadGraph = "LoadGraph";
inline constexpr const char* kProcessGraph = "ProcessGraph";
inline constexpr const char* kOffloadGraph = "OffloadGraph";
inline constexpr const char* kCleanup = "Cleanup";
// Failure vocabulary (fault injection, sim/faults.h). A FailedAttempt
// operation wraps work that was thrown away; a Restart wraps the
// recovery (backoff + resubmission + checkpoint replay); a Checkpoint
// wraps Giraph's periodic state save. Shared across platforms so the
// lost-time rules and the failure-recovery chokepoint detector apply to
// any archive.
inline constexpr const char* kFailedAttempt = "FailedAttempt";
inline constexpr const char* kRestart = "Restart";
inline constexpr const char* kCheckpoint = "Checkpoint";
}  // namespace ops

// Domain-level model only (levels 1-2: the job and its five phases). Works
// on any platform's logs; everything below the phases is filtered out at
// archive time. Derives on the root:
//   SetupTime      = Startup + Cleanup          (the paper's Ts)
//   IoTime         = LoadGraph + OffloadGraph   (Td)
//   ProcessingTime = ProcessGraph               (Tp)
// each in nanoseconds, plus their fractions of the total.
PerformanceModel MakeGraphProcessingDomainModel();

// The full Giraph model (paper Fig. 4): domain phases, Yarn/ZooKeeper/HDFS
// system operations, per-worker local operations, and the
// PreStep/Compute/Message/PostStep breakdown of each superstep. Model
// levels: 1 job, 2 domain phases, 3 system, 4 per-worker, 5 superstep
// stages (the paper numbers these 1-4 by column; WithMaxLevel(2) is the
// domain view either way).
PerformanceModel MakeGiraphModel();

// The PowerGraph model: MPI startup, the sequential coordinator read +
// per-rank graph finalization that explain Fig. 7, and per-iteration
// Gather/Apply/Scatter operations.
PerformanceModel MakePowerGraphModel();

// The Hadoop-as-graph-processor model (paper Table 1, last row): one
// MapReduce job per superstep, each with JobSetup (fresh YARN containers),
// Map/Shuffle/Reduce phases, per-task operations, and JobCommit. Built for
// the intro's "severe performance penalties" experiment.
PerformanceModel MakeHadoopModel();

// The PGX.D model (paper Table 1, row 4): native process spawn, parallel
// local CSR loading, and push-pull iterations whose chosen direction is an
// info on each Iteration operation.
PerformanceModel MakePgxdModel();

// The GraphMat model (paper Table 1, row 3): Intel-MPI launch, parallel
// slice reads + matrix build, and generalized-SpMV iterations.
PerformanceModel MakeGraphMatModel();

}  // namespace granula::core

#endif  // GRANULA_GRANULA_MODELS_MODELS_H_
