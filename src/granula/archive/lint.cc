#include "granula/archive/lint.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace granula::core {

std::string_view LintDefectName(LintDefect defect) {
  switch (defect) {
    case LintDefect::kDuplicateStartOp:
      return "duplicate_start_op";
    case LintDefect::kDuplicateEndOp:
      return "duplicate_end_op";
    case LintDefect::kEndBeforeStart:
      return "end_before_start";
    case LintDefect::kOrphanInfo:
      return "orphan_info";
    case LintDefect::kOrphanEndOp:
      return "orphan_end_op";
    case LintDefect::kParentCycle:
      return "parent_cycle";
    case LintDefect::kUnreachableSubtree:
      return "unreachable_subtree";
    case LintDefect::kMultipleRoots:
      return "multiple_roots";
    case LintDefect::kMissingEndTime:
      return "missing_end_time";
  }
  return "unknown";
}

Result<LintDefect> ParseLintDefect(std::string_view name) {
  for (LintDefect defect :
       {LintDefect::kDuplicateStartOp, LintDefect::kDuplicateEndOp,
        LintDefect::kEndBeforeStart, LintDefect::kOrphanInfo,
        LintDefect::kOrphanEndOp, LintDefect::kParentCycle,
        LintDefect::kUnreachableSubtree, LintDefect::kMultipleRoots,
        LintDefect::kMissingEndTime}) {
    if (LintDefectName(defect) == name) return defect;
  }
  return Status::InvalidArgument(
      StrFormat("unknown lint defect '%.*s'", static_cast<int>(name.size()),
                name.data()));
}

Json LintFinding::ToJson() const {
  Json j;
  j["defect"] = std::string(LintDefectName(defect));
  j["op"] = op_id;
  j["seq"] = seq;
  j["repaired"] = repaired;
  j["detail"] = detail;
  return j;
}

Result<LintFinding> LintFinding::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::Corruption("lint finding must be a JSON object");
  }
  LintFinding finding;
  GRANULA_ASSIGN_OR_RETURN(finding.defect,
                           ParseLintDefect(j.GetString("defect")));
  finding.op_id = static_cast<uint64_t>(j.GetInt("op"));
  finding.seq = static_cast<uint64_t>(j.GetInt("seq"));
  finding.repaired = j.GetBool("repaired");
  finding.detail = j.GetString("detail");
  return finding;
}

bool LintReport::HasFatal() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const LintFinding& f) {
                       return f.defect != LintDefect::kMissingEndTime;
                     });
}

size_t LintReport::CountOf(LintDefect defect) const {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [defect](const LintFinding& f) {
                      return f.defect == defect;
                    }));
}

std::string LintReport::Summary() const {
  if (findings.empty()) return "log lint: clean";
  std::string out = StrFormat("log lint: %zu finding(s)", findings.size());
  for (const LintFinding& f : findings) {
    out += StrFormat("\n  [%s] op %llu seq %llu: %s%s",
                     std::string(LintDefectName(f.defect)).c_str(),
                     static_cast<unsigned long long>(f.op_id),
                     static_cast<unsigned long long>(f.seq),
                     f.detail.c_str(), f.repaired ? " (repaired)" : "");
  }
  return out;
}

Json LintReport::ToJson() const {
  Json j = Json::MakeArray();
  for (const LintFinding& f : findings) j.Append(f.ToJson());
  return j;
}

Result<LintReport> LintReport::FromJson(const Json& j) {
  if (!j.is_array()) {
    return Status::Corruption("quarantine section must be a JSON array");
  }
  LintReport report;
  for (const Json& entry : j.AsArray()) {
    GRANULA_ASSIGN_OR_RETURN(auto finding, LintFinding::FromJson(entry));
    report.findings.push_back(std::move(finding));
  }
  return report;
}

namespace {

std::string OpName(const LogRecord& start) {
  const std::string& actor =
      start.actor_id.empty() ? start.actor_type : start.actor_id;
  const std::string& mission =
      start.mission_id.empty() ? start.mission_type : start.mission_id;
  return actor + " @ " + mission;
}

}  // namespace

LintedLog LintAndRepair(const std::vector<LogRecord>& records) {
  LintedLog out;
  std::vector<LintFinding>& findings = out.report.findings;

  // Pass 1: index StartOps. The lowest-seq start wins; later duplicates
  // are quarantined (ties keep the earlier array position, which only
  // matters for hand-crafted logs that reuse a seq).
  for (const LogRecord& r : records) {
    if (r.kind != LogRecord::Kind::kStartOp) continue;
    LintedLog::Op& op = out.ops[r.op_id];
    if (op.start == nullptr) {
      op.start = &r;
      continue;
    }
    const LogRecord* loser = &r;
    if (r.seq < op.start->seq) {
      loser = op.start;
      op.start = &r;
    }
    findings.push_back(
        {LintDefect::kDuplicateStartOp, r.op_id, loser->seq, true,
         StrFormat("duplicate StartOp for %s", OpName(*loser).c_str())});
  }

  // Pass 2: attach EndOps and Infos; stray records are quarantined.
  std::map<uint64_t, std::vector<const LogRecord*>> ends;
  for (const LogRecord& r : records) {
    if (r.kind == LogRecord::Kind::kStartOp) continue;
    auto it = out.ops.find(r.op_id);
    if (it == out.ops.end()) {
      bool is_end = r.kind == LogRecord::Kind::kEndOp;
      findings.push_back(
          {is_end ? LintDefect::kOrphanEndOp : LintDefect::kOrphanInfo,
           r.op_id, r.seq, true,
           StrFormat("%s record for an operation with no StartOp",
                     is_end ? "EndOp" : StrFormat("Info '%s'",
                                                  r.info_name.c_str())
                                            .c_str())});
      continue;
    }
    if (r.kind == LogRecord::Kind::kEndOp) {
      ends[r.op_id].push_back(&r);
    } else {
      it->second.infos.push_back(&r);
    }
  }
  for (auto& [id, op] : out.ops) {
    std::sort(op.infos.begin(), op.infos.end(),
              [](const LogRecord* a, const LogRecord* b) {
                return a->seq < b->seq;
              });
  }

  // Resolve ends per op: the first (by seq) end not earlier than the start
  // wins; inverted ends and later duplicates are quarantined.
  for (auto& [id, candidates] : ends) {
    std::sort(candidates.begin(), candidates.end(),
              [](const LogRecord* a, const LogRecord* b) {
                return a->seq < b->seq;
              });
    LintedLog::Op& op = out.ops[id];
    for (const LogRecord* end : candidates) {
      if (end->time < op.start->time) {
        findings.push_back(
            {LintDefect::kEndBeforeStart, id, end->seq, true,
             StrFormat("EndOp at %s precedes StartOp at %s",
                       end->time.ToString().c_str(),
                       op.start->time.ToString().c_str())});
        if (!op.end_time.has_value()) {
          op.end_provenance = " (inverted EndOp quarantined)";
        }
      } else if (op.end_time.has_value()) {
        findings.push_back(
            {LintDefect::kDuplicateEndOp, id, end->seq, true,
             StrFormat("duplicate EndOp at %s; first EndOp at %s wins",
                       end->time.ToString().c_str(),
                       op.end_time->ToString().c_str())});
        op.end_provenance = " (duplicate EndOp quarantined)";
      } else {
        op.end_time = end->time;
        // A valid end supersedes any earlier inverted-end provenance.
        op.end_provenance.clear();
      }
    }
  }

  // Pass 3: parent graph. Classify every op's parent chain as reaching a
  // root (parent == kNoOp or a parent absent from the log), looping (a
  // cycle, incl. self-parent), or dangling off a cycle.
  enum class Fate { kUnknown, kRoot, kCycle, kDangling };
  std::map<uint64_t, Fate> fate;
  std::map<uint64_t, uint64_t> root_of;  // op -> root its chain reaches
  for (const auto& [id, op] : out.ops) {
    if (fate.count(id) > 0) continue;
    std::vector<uint64_t> path;
    std::set<uint64_t> on_path;
    uint64_t cur = id;
    Fate terminal = Fate::kRoot;
    uint64_t root = cur;
    while (true) {
      if (auto it = fate.find(cur); it != fate.end()) {
        terminal = it->second == Fate::kRoot ? Fate::kRoot : Fate::kDangling;
        root = terminal == Fate::kRoot ? root_of.at(cur) : kNoOp;
        break;
      }
      if (on_path.count(cur) > 0) {
        // Found a cycle: everything from the first occurrence of `cur`
        // onward is on the cycle; the prefix dangles off it.
        auto cycle_start = std::find(path.begin(), path.end(), cur);
        uint64_t min_id = *std::min_element(cycle_start, path.end());
        findings.push_back(
            {LintDefect::kParentCycle, min_id,
             out.ops.at(min_id).start->seq, false,
             StrFormat("parent links of %zu operation(s) form a cycle",
                       static_cast<size_t>(path.end() - cycle_start))});
        for (auto it = cycle_start; it != path.end(); ++it) {
          fate[*it] = Fate::kCycle;
        }
        path.erase(cycle_start, path.end());
        terminal = Fate::kDangling;
        root = kNoOp;
        break;
      }
      path.push_back(cur);
      on_path.insert(cur);
      uint64_t parent = out.ops.at(cur).start->parent_id;
      if (parent == kNoOp || out.ops.count(parent) == 0) {
        terminal = Fate::kRoot;
        root = cur;
        break;
      }
      cur = parent;
    }
    for (uint64_t op_id : path) {
      fate[op_id] = terminal;
      if (terminal == Fate::kRoot) root_of[op_id] = root;
    }
  }

  // Pick the primary root: largest subtree, ties broken by lowest seq.
  std::map<uint64_t, uint64_t> subtree_size;  // root -> member count
  for (const auto& [id, root] : root_of) {
    (void)id;
    ++subtree_size[root];
  }
  for (const auto& [root, size] : subtree_size) {
    (void)size;
    if (out.root == kNoOp) {
      out.root = root;
      continue;
    }
    uint64_t best = subtree_size[out.root];
    uint64_t cand = subtree_size[root];
    if (cand > best ||
        (cand == best &&
         out.ops.at(root).start->seq < out.ops.at(out.root).start->seq)) {
      out.root = root;
    }
  }

  // Quarantine everything not under the primary root.
  std::set<uint64_t> doomed;
  for (const auto& [id, f] : fate) {
    if (f == Fate::kRoot && root_of.at(id) == out.root) continue;
    doomed.insert(id);
    if (f == Fate::kRoot && id == root_of.at(id)) {
      findings.push_back(
          {LintDefect::kMultipleRoots, id, out.ops.at(id).start->seq, false,
           StrFormat("extra root %s (subtree of %llu operation(s)) "
                     "quarantined",
                     OpName(*out.ops.at(id).start).c_str(),
                     static_cast<unsigned long long>(subtree_size[id]))});
    } else if (f == Fate::kRoot) {
      findings.push_back(
          {LintDefect::kUnreachableSubtree, id, out.ops.at(id).start->seq,
           false,
           StrFormat("%s belongs to a quarantined root's subtree",
                     OpName(*out.ops.at(id).start).c_str())});
    } else if (f == Fate::kDangling) {
      findings.push_back(
          {LintDefect::kUnreachableSubtree, id, out.ops.at(id).start->seq,
           false,
           StrFormat("%s hangs off a parent cycle, unreachable from any "
                     "root",
                     OpName(*out.ops.at(id).start).c_str())});
    }
    // Cycle members were already reported as one kParentCycle finding.
  }
  for (uint64_t id : doomed) out.ops.erase(id);

  // Wire surviving children in start-seq order, and flag missing ends.
  std::vector<const LogRecord*> starts;
  starts.reserve(out.ops.size());
  for (const auto& [id, op] : out.ops) starts.push_back(op.start);
  std::sort(starts.begin(), starts.end(),
            [](const LogRecord* a, const LogRecord* b) {
              return a->seq < b->seq;
            });
  for (const LogRecord* start : starts) {
    if (start->op_id == out.root) continue;
    out.ops.at(start->parent_id).children.push_back(start->op_id);
  }
  for (const auto& [id, op] : out.ops) {
    if (!op.end_time.has_value() && ends.count(id) == 0) {
      findings.push_back(
          {LintDefect::kMissingEndTime, id, op.start->seq, true,
           StrFormat("no EndOp for %s; EndTime repaired from the subtree",
                     OpName(*op.start).c_str())});
    }
  }

  // Deterministic report order regardless of input record order.
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              if (a.op_id != b.op_id) return a.op_id < b.op_id;
              if (a.defect != b.defect) return a.defect < b.defect;
              return a.detail < b.detail;
            });
  return out;
}

LintReport LintLog(const std::vector<LogRecord>& records) {
  return LintAndRepair(records).report;
}

}  // namespace granula::core
