#ifndef GRANULA_GRANULA_ARCHIVE_ARCHIVE_H_
#define GRANULA_GRANULA_ARCHIVE_ARCHIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "granula/archive/lint.h"

namespace granula::core {

// One piece of performance information attached to an operation (the
// "info" of the paper's performance model, Fig. 1). `source` records the
// provenance: which rule or log record produced the value.
struct InfoValue {
  Json value;
  std::string source;
};

// An operation in a performance archive: an actor executing a mission, with
// its info set and filial operations (paper Section 3.2). The well-known
// infos "StartTime" and "EndTime" hold integer nanoseconds of virtual time.
class ArchivedOperation {
 public:
  ArchivedOperation() = default;

  std::string actor_type;
  std::string actor_id;
  std::string mission_type;
  std::string mission_id;

  std::map<std::string, InfoValue> infos;
  std::vector<std::unique_ptr<ArchivedOperation>> children;

  // "actor @ mission", e.g. "Worker-3 @ Superstep-4".
  std::string DisplayName() const;
  // "actor_type@mission_type", the model key, e.g. "Worker@Superstep".
  std::string TypeKey() const;

  bool HasInfo(std::string_view name) const;
  const InfoValue* FindInfo(std::string_view name) const;
  // Numeric info accessor; returns `fallback` when absent or non-numeric.
  double InfoNumber(std::string_view name, double fallback = 0.0) const;

  SimTime StartTime() const;  // SimTime() when absent
  SimTime EndTime() const;
  SimTime Duration() const { return EndTime() - StartTime(); }

  void SetInfo(std::string name, Json value, std::string source);

  // Pre-order traversal.
  void Visit(const std::function<void(const ArchivedOperation&)>& fn) const;

  // Deep copy of this operation and its subtree. Used by the streaming
  // archiver to emit snapshots without giving up its working tree.
  std::unique_ptr<ArchivedOperation> Clone() const;

  // Number of operations in this subtree (including this one).
  uint64_t SubtreeSize() const;

  Json ToJson() const;
  static Result<std::unique_ptr<ArchivedOperation>> FromJson(const Json& j);
};

// Environment-log entry stored alongside the operation tree.
struct EnvironmentRecord {
  uint32_t node = 0;
  std::string hostname;
  double time_seconds = 0;
  double cpu_seconds_per_second = 0;
  double net_bytes_per_second = 0;
  double disk_bytes_per_second = 0;
};

// Whether the archived job ran to completion. kIncomplete marks a root
// operation that never closed — a crashed job, or a live snapshot taken
// mid-run — so consumers can tell a truncated capture from a finished
// one without digging through lint defects.
enum class ArchiveStatus { kComplete, kIncomplete };

std::string_view ArchiveStatusName(ArchiveStatus status);

// The performance archive (paper Section 3.3, P3): the standardized,
// queryable artifact produced by one evaluated job. Serializes to JSON so
// archives can be stored, shared, diffed, and re-visualized without
// re-running the experiment.
class PerformanceArchive {
 public:
  std::map<std::string, std::string> job_metadata;  // platform, algorithm...
  std::string model_name;
  ArchiveStatus status = ArchiveStatus::kComplete;
  std::unique_ptr<ArchivedOperation> root;
  std::vector<EnvironmentRecord> environment;
  // Lint findings from archiving: what was quarantined or repaired when the
  // log was dirty (serialized as the "quarantined" section). Empty for a
  // clean log.
  LintReport lint;

  // Path query: "/" separated mission ids (falling back to mission types),
  // e.g. "GiraphJob/ProcessGraph/Superstep-4". Leading element matches the
  // root. Returns nullptr when no match.
  const ArchivedOperation* FindByPath(std::string_view path) const;

  // All operations whose (actor_type, mission_type) match; empty strings
  // act as wildcards.
  std::vector<const ArchivedOperation*> FindOperations(
      std::string_view actor_type, std::string_view mission_type) const;

  // Total operations in the archive.
  uint64_t OperationCount() const;

  // Fraction of the root's duration spent in each direct child, keyed by
  // mission id — the numbers behind Fig. 5.
  std::map<std::string, double> TopLevelBreakdown() const;

  std::string ToJsonString(int indent = 2) const;
  static Result<PerformanceArchive> FromJsonString(std::string_view text);
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_ARCHIVE_H_
