#ifndef GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_
#define GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "granula/archive/archive.h"

namespace granula::core {

// On-disk encoding of one archive file. JSON is the interchange format —
// human-readable, diff-able, lint-able; GBA (granula/archive/gba.h) is the
// compact binary twin a repository serves queries from.
enum class ArchiveFormat { kJson, kGba };

std::string_view ArchiveFormatName(ArchiveFormat format);  // "json" / "gba"
Result<ArchiveFormat> ParseArchiveFormat(std::string_view name);

// A directory of performance archives — the sharing mechanism behind
// requirement R2 ("sharing performance results for the entire community
// of analysts"): runs accumulate as archive files that any analyst can
// list, query, reload, re-visualize, and diff without re-running
// experiments.
//
// Layout: <directory>/<name>.json or <name>.gba, where auto-generated
// names are "<platform>-<algorithm>-<NNN>" with NNN one past the highest
// index already on disk (never reusing a previously assigned name, even
// after deletions — names act as stable experiment ids). A persisted
// index file, <directory>/index.json, carries every entry List() and
// Query() need, so metadata queries never open archive bodies; the name
// "index" is reserved.
//
// Durability: every save writes <name>.<ext>.tmp, fsyncs it, and renames
// it into place, so a crash or full disk mid-write never leaves a
// truncated archive visible to List()/Load(). The index is rewritten the
// same way after the body is durable; since the index can always be
// rebuilt from the archive files, a crash between the two writes loses
// nothing.
class ArchiveRepository {
 public:
  explicit ArchiveRepository(std::string directory)
      : directory_(std::move(directory)) {}

  const std::string& directory() const { return directory_; }

  // Creates the directory if needed.
  Status Init();

  // Format used for new Save()/SaveAll() bodies. Defaults to kJson (the
  // interchange format); `granula pack` converts a repository wholesale.
  ArchiveFormat write_format() const { return write_format_; }
  void set_write_format(ArchiveFormat format) { write_format_ = format; }

  // Saves under an auto-generated (or explicit) name; returns the name.
  // The body write is fsync'd before the rename, and the index entry is
  // updated atomically afterwards.
  Result<std::string> Save(const PerformanceArchive& archive,
                           const std::string& name = "");

  // Batch save: archives N jobs across a std::thread pool (serialization
  // dominates the cost, so this scales with cores). Names are assigned
  // up front, exactly as N sequential Save() calls would; the returned
  // vector is parallel to `archives`. On any failure the first error is
  // returned and the remaining archives are still attempted, so a batch
  // never leaves half-written files behind. The index is updated once,
  // after every body is durable. `num_threads` <= 0 picks the hardware
  // concurrency.
  Result<std::vector<std::string>> SaveAll(
      const std::vector<const PerformanceArchive*>& archives,
      int num_threads = 0);

  struct Entry {
    std::string name;
    std::string platform;
    std::string algorithm;
    std::string status;  // ArchiveStatusName: "complete" / "incomplete"
    double total_seconds = 0;
    uint64_t operations = 0;
    int64_t saved_unix_seconds = 0;
    ArchiveFormat format = ArchiveFormat::kJson;
  };

  // All archives in the repository, sorted by name. Served from the
  // persisted index whenever the index agrees with the set of archive
  // files on disk; otherwise the index is rebuilt (foreign/corrupt files
  // are skipped — a shared directory may contain other data) and
  // re-persisted best-effort. Directory-iteration failures surface as
  // IoError.
  Result<std::vector<Entry>> List() const;

  // Index-backed filtering: empty string fields are wildcards, the time
  // bounds are *inclusive* unix seconds on the save time (0 = unbounded):
  // an entry saved at exactly `saved_since` or exactly `saved_until`
  // matches. A query with both bounds set and saved_since > saved_until is
  // an InvalidArgument error, not an empty result — the HTTP layer maps it
  // to a 400 and a silent empty list would hide the caller's mistake.
  // Never opens archive bodies when the index is consistent.
  struct Query {
    std::string platform;
    std::string algorithm;
    std::string status;
    int64_t saved_since = 0;
    int64_t saved_until = 0;

    bool Matches(const Entry& entry) const;
  };
  Result<std::vector<Entry>> Select(const Query& query) const;

  // Full load. Prefers <name>.gba, falls back to <name>.json.
  Result<PerformanceArchive> Load(const std::string& name) const;

  // Loads the archive with the operation tree cut to its first `levels`
  // levels (root = level 1; <= 0 loads everything). For GBA bodies the
  // rows below the cut are never decoded — this is what the bench-sweep
  // gate at --depth D reads. JSON bodies fall back to a full parse.
  Result<PerformanceArchive> LoadShallow(const std::string& name,
                                         int levels) const;

  // Decodes one operation subtree (FindByPath semantics) through an LRU
  // cache of hot subtrees. For GBA bodies only the subtree's rows are
  // decoded from the mapped file. The returned pointer stays valid after
  // eviction (shared ownership). NotFound when the archive or path does
  // not exist.
  //
  // Safe to call from concurrent readers (the serve daemon's workers all
  // share one repository): the cache and its stats are mutex-guarded, and
  // the disk decode on a miss runs outside the lock so a cold fetch never
  // stalls concurrent hits. Two threads missing the same key may both
  // decode; the first insert wins and the loser adopts it.
  Result<std::shared_ptr<const ArchivedOperation>> FetchSubtree(
      const std::string& name, const std::string& path);

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  // Consistent snapshot of the counters (by value: readers may be
  // concurrently fetching).
  CacheStats cache_stats() const;
  // Maximum cached subtrees (default 64). 0 disables caching.
  void set_cache_capacity(size_t capacity);

  // Converts every archive body to `format` (bodies already there are
  // untouched), updating the index. Conversion is atomic per archive:
  // the new body is fsync-renamed into place before the old one is
  // removed.
  struct PackStats {
    size_t converted = 0;
    size_t skipped = 0;  // already in the target format
    uint64_t bytes_before = 0;  // total size of converted bodies
    uint64_t bytes_after = 0;
  };
  Result<PackStats> Pack(ArchiveFormat format);

  Status Remove(const std::string& name);

  // Number of archive-body files opened process-wide (Load, LoadShallow,
  // FetchSubtree misses, index rebuilds). Tests pin this to prove that
  // index-served List()/Select() answer without touching bodies.
  static uint64_t BodyReadCount();

  // Test hooks (process-wide). The I/O fault hook runs before each stage
  // of an atomic write — stage is "write", "fsync", or "rename", `path`
  // the tmp file — or before an archive body read (stage "read", `path`
  // the archive file) — and a non-OK return makes that stage fail as a
  // device error would. The wall clock override feeds Entry::saved_unix_seconds.
  // Pass {} / nullptr to restore the defaults.
  static void SetIoFaultHookForTest(
      std::function<Status(const char* stage, const std::string& path)> hook);
  static void SetWallClockForTest(int64_t (*now_unix_seconds)());

 private:
  std::string PathFor(const std::string& name, ArchiveFormat format) const;
  std::string IndexPath() const;

  // Format of the body actually on disk for `name` (.gba preferred).
  Result<ArchiveFormat> DiskFormat(const std::string& name) const;

  // Serializes `payload` to <path>.tmp, fsyncs, then renames into place.
  Status WriteAtomic(const std::string& path,
                     const std::string& payload) const;

  // Reads + decodes one archive body (full or level-cut). Counts toward
  // BodyReadCount().
  Result<PerformanceArchive> LoadBody(const std::string& name,
                                      ArchiveFormat format, int levels) const;

  // Builds the index entry for an in-memory archive (no I/O).
  Entry MakeEntry(const std::string& name, const PerformanceArchive& archive,
                  ArchiveFormat format, int64_t saved) const;

  // Index persistence. LoadIndex returns entries keyed by name; a missing
  // or unreadable index reads as empty.
  std::map<std::string, Entry> LoadIndex() const;
  Status StoreIndex(const std::map<std::string, Entry>& entries) const;

  // Names of archive files on disk (stems of *.json / *.gba, "index"
  // excluded) with their preferred format.
  Result<std::map<std::string, ArchiveFormat>> ScanDisk() const;

  // Rebuilds index entries for `disk`, reusing `cached` where the name is
  // already present, and persists the result best-effort.
  std::vector<Entry> Rebuild(const std::map<std::string, ArchiveFormat>& disk,
                             std::map<std::string, Entry> cached) const;

  // Merges `updates` into the persisted index (best-effort; the index is
  // reconstructible, so failures here never fail the save).
  void UpdateIndex(const std::vector<Entry>& updates) const;

  // Auto-name for `archive`: "<platform>-<algorithm>-<NNN>". `taken` keeps
  // names unique within one batch before anything reaches the disk.
  std::string AutoName(const PerformanceArchive& archive,
                       std::vector<std::string>* taken);

  void CacheInvalidate(const std::string& name);

  std::string directory_;
  ArchiveFormat write_format_ = ArchiveFormat::kJson;
  // Highest auto-index handed out per prefix. The disk scan alone would
  // forget an index once its file is Remove()d; this keeps names
  // monotonically increasing for the repository's lifetime.
  std::map<std::string, int> high_water_;

  // LRU subtree cache: list front = most recent; map values hold the list
  // iterator for O(1) touch. Keys are "<name>\0<path>". `cache_mu_` guards
  // every member below it — FetchSubtree runs on the serve daemon's
  // concurrent workers; the rest of the repository (Save/Pack/Remove call
  // CacheInvalidate) stays single-writer as before.
  struct CacheSlot {
    std::shared_ptr<const ArchivedOperation> subtree;
    std::list<std::string>::iterator lru_it;
  };
  mutable std::mutex cache_mu_;
  size_t cache_capacity_ = 64;
  std::list<std::string> cache_lru_;
  std::unordered_map<std::string, CacheSlot> cache_;
  CacheStats cache_stats_;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_
