#ifndef GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_
#define GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "granula/archive/archive.h"

namespace granula::core {

// A directory of performance archives — the sharing mechanism behind
// requirement R2 ("sharing performance results for the entire community
// of analysts"): runs accumulate as JSON files that any analyst can list,
// reload, re-visualize, and diff without re-running experiments.
//
// Layout: <directory>/<name>.json, where auto-generated names are
// "<platform>-<algorithm>-<NNN>" with NNN one past the highest index
// already on disk (never reusing a previously assigned name, even after
// deletions — names act as stable experiment ids).
//
// Durability: every save writes <name>.json.tmp and renames it into place,
// so a crash or full disk mid-write never leaves a truncated .json visible
// to List()/Load().
class ArchiveRepository {
 public:
  explicit ArchiveRepository(std::string directory)
      : directory_(std::move(directory)) {}

  const std::string& directory() const { return directory_; }

  // Creates the directory if needed.
  Status Init();

  // Saves under an auto-generated (or explicit) name; returns the name.
  Result<std::string> Save(const PerformanceArchive& archive,
                           const std::string& name = "");

  // Batch save: archives N jobs across a std::thread pool (serialization
  // dominates the cost, so this scales with cores). Names are assigned
  // up front, exactly as N sequential Save() calls would; the returned
  // vector is parallel to `archives`. On any failure the first error is
  // returned and the remaining archives are still attempted, so a batch
  // never leaves half-written files behind. `num_threads` <= 0 picks the
  // hardware concurrency.
  Result<std::vector<std::string>> SaveAll(
      const std::vector<const PerformanceArchive*>& archives,
      int num_threads = 0);

  struct Entry {
    std::string name;
    std::string platform;
    std::string algorithm;
    double total_seconds = 0;
    uint64_t operations = 0;
  };
  // All archives in the repository, sorted by name. Unreadable or invalid
  // files are skipped (a shared directory may contain foreign data), but
  // directory-iteration failures are surfaced as IoError.
  Result<std::vector<Entry>> List() const;

  Result<PerformanceArchive> Load(const std::string& name) const;

  Status Remove(const std::string& name);

 private:
  std::string PathFor(const std::string& name) const;

  // Serializes `payload` to <name>.json.tmp, then renames into place.
  Status WriteAtomic(const std::string& name,
                     const std::string& payload) const;

  // Auto-name for `archive`: "<platform>-<algorithm>-<NNN>". `taken` keeps
  // names unique within one batch before anything reaches the disk.
  std::string AutoName(const PerformanceArchive& archive,
                       std::vector<std::string>* taken);

  std::string directory_;
  // Highest auto-index handed out per prefix. The disk scan alone would
  // forget an index once its file is Remove()d; this keeps names
  // monotonically increasing for the repository's lifetime.
  std::map<std::string, int> high_water_;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_
