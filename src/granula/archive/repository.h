#ifndef GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_
#define GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "granula/archive/archive.h"

namespace granula::core {

// A directory of performance archives — the sharing mechanism behind
// requirement R2 ("sharing performance results for the entire community
// of analysts"): runs accumulate as JSON files that any analyst can list,
// reload, re-visualize, and diff without re-running experiments.
//
// Layout: <directory>/<name>.json, where auto-generated names are
// "<platform>-<algorithm>-<NNN>" with NNN a monotonically growing index.
class ArchiveRepository {
 public:
  explicit ArchiveRepository(std::string directory)
      : directory_(std::move(directory)) {}

  const std::string& directory() const { return directory_; }

  // Creates the directory if needed.
  Status Init();

  // Saves under an auto-generated (or explicit) name; returns the name.
  Result<std::string> Save(const PerformanceArchive& archive,
                           const std::string& name = "");

  struct Entry {
    std::string name;
    std::string platform;
    std::string algorithm;
    double total_seconds = 0;
    uint64_t operations = 0;
  };
  // All archives in the repository, sorted by name. Unreadable or invalid
  // files are skipped (a shared directory may contain foreign data).
  Result<std::vector<Entry>> List() const;

  Result<PerformanceArchive> Load(const std::string& name) const;

  Status Remove(const std::string& name);

 private:
  std::string PathFor(const std::string& name) const;

  std::string directory_;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_REPOSITORY_H_
