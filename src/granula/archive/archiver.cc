#include "granula/archive/archiver.h"

#include <memory>

#include "common/strings.h"
#include "granula/archive/assembly.h"

namespace granula::core {

namespace {

// Recursively assembles op `id` from the linted view. Operations missing
// from `model` are spliced out: their children are hoisted into `out`
// directly. Node construction and child ordering go through the shared
// assembly core so streaming assembly (granula/live) matches byte-for-byte.
void Assemble(uint64_t id, const LintedLog& linted,
              const PerformanceModel& model, bool* saw_unmodeled,
              std::vector<std::unique_ptr<ArchivedOperation>>* out) {
  const LintedLog::Op& p = linted.ops.at(id);

  std::vector<std::unique_ptr<ArchivedOperation>> children;
  for (uint64_t child : p.children) {
    Assemble(child, linted, model, saw_unmodeled, &children);
  }

  bool modeled =
      model.Contains(p.start->actor_type, p.start->mission_type);
  if (!modeled) {
    *saw_unmodeled = true;
    for (auto& child : children) out->push_back(std::move(child));
    return;
  }

  std::unique_ptr<ArchivedOperation> op =
      MakeOperationNode(*p.start, p.end_time, p.end_provenance, p.infos);
  op->children = std::move(children);
  SortChildrenByStartTime(op.get());
  out->push_back(std::move(op));
}

}  // namespace

Result<PerformanceArchive> Archiver::Build(
    const PerformanceModel& model, const std::vector<LogRecord>& records,
    std::vector<EnvironmentRecord> environment,
    std::map<std::string, std::string> job_metadata) const {
  GRANULA_RETURN_IF_ERROR(model.Validate());
  PerformanceModel effective =
      options_.max_level > 0 ? model.WithMaxLevel(options_.max_level) : model;

  LintedLog linted = LintAndRepair(records);
  if (options_.tolerance == Tolerance::kStrict && linted.report.HasFatal()) {
    return Status::Corruption(linted.report.Summary());
  }
  if (linted.root == kNoOp) {
    return Status::Corruption("log contains no root operation");
  }

  std::vector<std::unique_ptr<ArchivedOperation>> assembled;
  bool saw_unmodeled = false;
  Assemble(linted.root, linted, effective, &saw_unmodeled, &assembled);
  if (options_.strict && saw_unmodeled) {
    return Status::FailedPrecondition(
        "strict mode: log contains operations absent from the model");
  }
  if (assembled.size() != 1) {
    return Status::FailedPrecondition(
        "root operation is not covered by the model");
  }

  PerformanceArchive archive;
  archive.model_name = effective.name();
  // A root with no usable EndOp is a job that never finished (crash, or
  // a log truncated mid-run): lint repairs the timestamp so assembly can
  // proceed, and the archive is marked incomplete rather than carrying
  // only a generic defect string.
  if (!linted.ops.at(linted.root).end_time.has_value()) {
    archive.status = ArchiveStatus::kIncomplete;
  }
  archive.root = std::move(assembled[0]);
  archive.environment = std::move(environment);
  archive.job_metadata = std::move(job_metadata);
  archive.lint = std::move(linted.report);
  FinalizeOperationTree(*archive.root, effective);
  return archive;
}

}  // namespace granula::core
