#include "granula/archive/archiver.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/strings.h"

namespace granula::core {

namespace {

// Pre-assembly view of one logged operation.
struct PendingOp {
  const LogRecord* start = nullptr;
  std::optional<SimTime> end_time;
  std::vector<const LogRecord*> infos;
  std::vector<uint64_t> children;  // in start-record seq order
};

// Recursively assembles op `id`. Operations missing from `model` are
// spliced out: their children are hoisted into `out` directly.
void Assemble(uint64_t id, const std::map<uint64_t, PendingOp>& pending,
              const PerformanceModel& model, bool* saw_unmodeled,
              std::vector<std::unique_ptr<ArchivedOperation>>* out) {
  const PendingOp& p = pending.at(id);

  std::vector<std::unique_ptr<ArchivedOperation>> children;
  for (uint64_t child : p.children) {
    Assemble(child, pending, model, saw_unmodeled, &children);
  }

  bool modeled =
      model.Contains(p.start->actor_type, p.start->mission_type);
  if (!modeled) {
    *saw_unmodeled = true;
    for (auto& child : children) out->push_back(std::move(child));
    return;
  }

  auto op = std::make_unique<ArchivedOperation>();
  op->actor_type = p.start->actor_type;
  op->actor_id = p.start->actor_id;
  op->mission_type = p.start->mission_type;
  op->mission_id = p.start->mission_id;
  op->SetInfo("StartTime", Json(p.start->time.nanos()), "platform log");
  if (p.end_time.has_value()) {
    op->SetInfo("EndTime", Json(p.end_time->nanos()), "platform log");
  }
  for (const LogRecord* info : p.infos) {
    op->SetInfo(info->info_name, info->info_value, "platform log");
  }
  op->children = std::move(children);
  std::stable_sort(op->children.begin(), op->children.end(),
                   [](const auto& a, const auto& b) {
                     return a->StartTime() < b->StartTime();
                   });
  out->push_back(std::move(op));
}

// Post-order: repair missing EndTime from the subtree, then run the
// model's derivation rules.
void FinalizeOperation(ArchivedOperation& op, const PerformanceModel& model) {
  SimTime child_max_end;
  for (auto& child : op.children) {
    FinalizeOperation(*child, model);
    child_max_end = std::max(child_max_end, child->EndTime());
  }
  if (!op.HasInfo("EndTime")) {
    SimTime repaired = std::max(op.StartTime(), child_max_end);
    op.SetInfo("EndTime", Json(repaired.nanos()),
               "max end of subtree (repaired)");
  }
  const OperationModel* op_model = model.Find(op.actor_type, op.mission_type);
  if (op_model == nullptr) return;
  for (const InfoRulePtr& rule : op_model->rules) {
    Result<Json> derived = rule->Derive(op);
    if (derived.ok()) {
      op.SetInfo(rule->info_name(), std::move(derived).value(),
                 rule->Describe());
    }
  }
}

}  // namespace

Result<PerformanceArchive> Archiver::Build(
    const PerformanceModel& model, const std::vector<LogRecord>& records,
    std::vector<EnvironmentRecord> environment,
    std::map<std::string, std::string> job_metadata) const {
  GRANULA_RETURN_IF_ERROR(model.Validate());
  PerformanceModel effective =
      options_.max_level > 0 ? model.WithMaxLevel(options_.max_level) : model;

  // Index the flat stream (which may be arbitrarily ordered) by op id.
  std::map<uint64_t, PendingOp> pending;
  std::vector<const LogRecord*> starts;
  for (const LogRecord& r : records) {
    if (r.kind == LogRecord::Kind::kStartOp) {
      PendingOp& p = pending[r.op_id];
      if (p.start != nullptr) {
        return Status::Corruption(
            StrFormat("duplicate StartOp for op %llu",
                      static_cast<unsigned long long>(r.op_id)));
      }
      p.start = &r;
      starts.push_back(&r);
    }
  }
  std::sort(starts.begin(), starts.end(),
            [](const LogRecord* a, const LogRecord* b) {
              return a->seq < b->seq;
            });
  for (const LogRecord& r : records) {
    auto it = pending.find(r.op_id);
    if (it == pending.end() || it->second.start == nullptr) {
      if (r.kind != LogRecord::Kind::kStartOp) continue;  // orphan: ignore
    }
    switch (r.kind) {
      case LogRecord::Kind::kStartOp:
        break;  // already indexed
      case LogRecord::Kind::kEndOp:
        it->second.end_time = r.time;
        break;
      case LogRecord::Kind::kInfo:
        it->second.infos.push_back(&r);
        break;
    }
  }

  // Wire children (in emission order) and find the root.
  std::vector<uint64_t> roots;
  for (const LogRecord* start : starts) {
    uint64_t parent = start->parent_id;
    if (parent != kNoOp && pending.count(parent) > 0 &&
        pending[parent].start != nullptr) {
      if (parent == start->op_id) {
        return Status::Corruption("operation is its own parent");
      }
      pending[parent].children.push_back(start->op_id);
    } else {
      roots.push_back(start->op_id);
    }
  }
  if (roots.empty()) {
    return Status::Corruption("log contains no root operation");
  }
  if (roots.size() > 1) {
    return Status::Corruption(
        StrFormat("log contains %zu root operations", roots.size()));
  }

  // Reject cycles among non-root records (defensive: a hand-crafted log
  // could contain A->B->A, unreachable from the root).
  std::set<uint64_t> reachable;
  std::vector<uint64_t> stack{roots[0]};
  while (!stack.empty()) {
    uint64_t id = stack.back();
    stack.pop_back();
    if (!reachable.insert(id).second) {
      return Status::Corruption("cycle in operation parent links");
    }
    for (uint64_t child : pending[id].children) stack.push_back(child);
  }
  if (reachable.size() != pending.size()) {
    return Status::Corruption("operations unreachable from the root");
  }

  std::vector<std::unique_ptr<ArchivedOperation>> assembled;
  bool saw_unmodeled = false;
  Assemble(roots[0], pending, effective, &saw_unmodeled, &assembled);
  if (options_.strict && saw_unmodeled) {
    return Status::FailedPrecondition(
        "strict mode: log contains operations absent from the model");
  }
  if (assembled.size() != 1) {
    return Status::FailedPrecondition(
        "root operation is not covered by the model");
  }

  PerformanceArchive archive;
  archive.model_name = effective.name();
  archive.root = std::move(assembled[0]);
  archive.environment = std::move(environment);
  archive.job_metadata = std::move(job_metadata);
  FinalizeOperation(*archive.root, effective);
  return archive;
}

}  // namespace granula::core
