#include "granula/archive/archiver.h"

#include <algorithm>
#include <memory>

#include "common/strings.h"

namespace granula::core {

namespace {

// Recursively assembles op `id` from the linted view. Operations missing
// from `model` are spliced out: their children are hoisted into `out`
// directly.
void Assemble(uint64_t id, const LintedLog& linted,
              const PerformanceModel& model, bool* saw_unmodeled,
              std::vector<std::unique_ptr<ArchivedOperation>>* out) {
  const LintedLog::Op& p = linted.ops.at(id);

  std::vector<std::unique_ptr<ArchivedOperation>> children;
  for (uint64_t child : p.children) {
    Assemble(child, linted, model, saw_unmodeled, &children);
  }

  bool modeled =
      model.Contains(p.start->actor_type, p.start->mission_type);
  if (!modeled) {
    *saw_unmodeled = true;
    for (auto& child : children) out->push_back(std::move(child));
    return;
  }

  auto op = std::make_unique<ArchivedOperation>();
  op->actor_type = p.start->actor_type;
  op->actor_id = p.start->actor_id;
  op->mission_type = p.start->mission_type;
  op->mission_id = p.start->mission_id;
  op->SetInfo("StartTime", Json(p.start->time.nanos()), "platform log");
  if (p.end_time.has_value()) {
    op->SetInfo("EndTime", Json(p.end_time->nanos()),
                "platform log" + p.end_provenance);
  }
  for (const LogRecord* info : p.infos) {
    op->SetInfo(info->info_name, info->info_value, "platform log");
  }
  op->children = std::move(children);
  std::stable_sort(op->children.begin(), op->children.end(),
                   [](const auto& a, const auto& b) {
                     return a->StartTime() < b->StartTime();
                   });
  out->push_back(std::move(op));
}

// Post-order: repair missing EndTime from the subtree, then run the
// model's derivation rules.
void FinalizeOperation(ArchivedOperation& op, const PerformanceModel& model) {
  SimTime child_max_end;
  for (auto& child : op.children) {
    FinalizeOperation(*child, model);
    child_max_end = std::max(child_max_end, child->EndTime());
  }
  if (!op.HasInfo("EndTime")) {
    SimTime repaired = std::max(op.StartTime(), child_max_end);
    op.SetInfo("EndTime", Json(repaired.nanos()),
               "max end of subtree (repaired)");
  }
  const OperationModel* op_model = model.Find(op.actor_type, op.mission_type);
  if (op_model == nullptr) return;
  for (const InfoRulePtr& rule : op_model->rules) {
    Result<Json> derived = rule->Derive(op);
    if (derived.ok()) {
      op.SetInfo(rule->info_name(), std::move(derived).value(),
                 rule->Describe());
    }
  }
}

}  // namespace

Result<PerformanceArchive> Archiver::Build(
    const PerformanceModel& model, const std::vector<LogRecord>& records,
    std::vector<EnvironmentRecord> environment,
    std::map<std::string, std::string> job_metadata) const {
  GRANULA_RETURN_IF_ERROR(model.Validate());
  PerformanceModel effective =
      options_.max_level > 0 ? model.WithMaxLevel(options_.max_level) : model;

  LintedLog linted = LintAndRepair(records);
  if (options_.tolerance == Tolerance::kStrict && linted.report.HasFatal()) {
    return Status::Corruption(linted.report.Summary());
  }
  if (linted.root == kNoOp) {
    return Status::Corruption("log contains no root operation");
  }

  std::vector<std::unique_ptr<ArchivedOperation>> assembled;
  bool saw_unmodeled = false;
  Assemble(linted.root, linted, effective, &saw_unmodeled, &assembled);
  if (options_.strict && saw_unmodeled) {
    return Status::FailedPrecondition(
        "strict mode: log contains operations absent from the model");
  }
  if (assembled.size() != 1) {
    return Status::FailedPrecondition(
        "root operation is not covered by the model");
  }

  PerformanceArchive archive;
  archive.model_name = effective.name();
  archive.root = std::move(assembled[0]);
  archive.environment = std::move(environment);
  archive.job_metadata = std::move(job_metadata);
  archive.lint = std::move(linted.report);
  FinalizeOperation(*archive.root, effective);
  return archive;
}

}  // namespace granula::core
