#include "granula/archive/assembly.h"

#include <algorithm>

namespace granula::core {

std::unique_ptr<ArchivedOperation> MakeOperationNode(
    const LogRecord& start, const std::optional<SimTime>& end_time,
    const std::string& end_provenance,
    const std::vector<const LogRecord*>& infos) {
  auto op = std::make_unique<ArchivedOperation>();
  op->actor_type = start.actor_type;
  op->actor_id = start.actor_id;
  op->mission_type = start.mission_type;
  op->mission_id = start.mission_id;
  op->SetInfo("StartTime", Json(start.time.nanos()), "platform log");
  if (end_time.has_value()) {
    op->SetInfo("EndTime", Json(end_time->nanos()),
                "platform log" + end_provenance);
  }
  for (const LogRecord* info : infos) {
    op->SetInfo(info->info_name, info->info_value, "platform log");
  }
  return op;
}

void SortChildrenByStartTime(ArchivedOperation* op) {
  std::stable_sort(op->children.begin(), op->children.end(),
                   [](const auto& a, const auto& b) {
                     return a->StartTime() < b->StartTime();
                   });
}

void FinalizeOperationNode(ArchivedOperation& op,
                           const PerformanceModel& model) {
  SimTime child_max_end;
  for (const auto& child : op.children) {
    child_max_end = std::max(child_max_end, child->EndTime());
  }
  if (!op.HasInfo("EndTime")) {
    SimTime repaired = std::max(op.StartTime(), child_max_end);
    op.SetInfo("EndTime", Json(repaired.nanos()),
               "max end of subtree (repaired)");
  }
  const OperationModel* op_model = model.Find(op.actor_type, op.mission_type);
  if (op_model == nullptr) return;
  for (const InfoRulePtr& rule : op_model->rules) {
    Result<Json> derived = rule->Derive(op);
    if (derived.ok()) {
      op.SetInfo(rule->info_name(), std::move(derived).value(),
                 rule->Describe());
    }
  }
}

void FinalizeOperationTree(ArchivedOperation& op,
                           const PerformanceModel& model) {
  for (auto& child : op.children) FinalizeOperationTree(*child, model);
  FinalizeOperationNode(op, model);
}

}  // namespace granula::core
