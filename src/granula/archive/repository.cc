#include "granula/archive/repository.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/strings.h"

namespace granula::core {

namespace fs = std::filesystem;

Status ArchiveRepository::Init() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create %s: %s",
                                     directory_.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

std::string ArchiveRepository::PathFor(const std::string& name) const {
  return directory_ + "/" + name + ".json";
}

Result<std::string> ArchiveRepository::Save(
    const PerformanceArchive& archive, const std::string& explicit_name) {
  GRANULA_RETURN_IF_ERROR(Init());
  std::string name = explicit_name;
  if (name.empty()) {
    auto platform_it = archive.job_metadata.find("platform");
    auto algorithm_it = archive.job_metadata.find("algorithm");
    std::string prefix =
        (platform_it != archive.job_metadata.end() ? platform_it->second
                                                   : "run") +
        "-" +
        (algorithm_it != archive.job_metadata.end() ? algorithm_it->second
                                                    : "job");
    for (int index = 1;; ++index) {
      std::string candidate = StrFormat("%s-%03d", prefix.c_str(), index);
      if (!fs::exists(PathFor(candidate))) {
        name = candidate;
        break;
      }
    }
  }
  std::ofstream file(PathFor(name));
  if (!file) {
    return Status::IoError(
        StrFormat("cannot write %s", PathFor(name).c_str()));
  }
  file << archive.ToJsonString();
  if (!file.good()) {
    return Status::IoError(
        StrFormat("write failed for %s", PathFor(name).c_str()));
  }
  return name;
}

Result<std::vector<ArchiveRepository::Entry>> ArchiveRepository::List()
    const {
  std::error_code ec;
  if (!fs::is_directory(directory_, ec)) {
    return Status::NotFound(
        StrFormat("no repository at %s", directory_.c_str()));
  }
  std::vector<Entry> entries;
  for (const fs::directory_entry& file :
       fs::directory_iterator(directory_, ec)) {
    if (ec) break;
    if (file.path().extension() != ".json") continue;
    std::string name = file.path().stem().string();
    auto archive = Load(name);
    if (!archive.ok()) continue;  // foreign or corrupt file: skip
    Entry entry;
    entry.name = name;
    auto platform_it = archive->job_metadata.find("platform");
    if (platform_it != archive->job_metadata.end()) {
      entry.platform = platform_it->second;
    }
    auto algorithm_it = archive->job_metadata.find("algorithm");
    if (algorithm_it != archive->job_metadata.end()) {
      entry.algorithm = algorithm_it->second;
    }
    if (archive->root != nullptr) {
      entry.total_seconds = archive->root->Duration().seconds();
    }
    entry.operations = archive->OperationCount();
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

Result<PerformanceArchive> ArchiveRepository::Load(
    const std::string& name) const {
  std::ifstream file(PathFor(name));
  if (!file) {
    return Status::NotFound(
        StrFormat("no archive %s in %s", name.c_str(), directory_.c_str()));
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return PerformanceArchive::FromJsonString(buffer.str());
}

Status ArchiveRepository::Remove(const std::string& name) {
  std::error_code ec;
  if (!fs::remove(PathFor(name), ec) || ec) {
    return Status::NotFound(
        StrFormat("no archive %s in %s", name.c_str(), directory_.c_str()));
  }
  return Status::OK();
}

}  // namespace granula::core
