#include "granula/archive/repository.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>

#include "common/mapped_file.h"
#include "common/strings.h"
#include "granula/archive/gba.h"

#if defined(__unix__) || defined(__APPLE__)
#define GRANULA_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace granula::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kIndexStem = "index";
constexpr uint32_t kIndexVersion = 1;

std::atomic<uint64_t> g_body_reads{0};
std::atomic<int64_t (*)()> g_wall_clock{nullptr};
std::mutex g_fault_hook_mutex;
std::function<Status(const char* stage, const std::string& path)>
    g_fault_hook;  // guarded by g_fault_hook_mutex

int64_t NowUnixSeconds() {
  if (auto* clock = g_wall_clock.load(std::memory_order_relaxed)) {
    return clock();
  }
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Status RunFaultHook(const char* stage, const std::string& path) {
  std::function<Status(const char*, const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(g_fault_hook_mutex);
    hook = g_fault_hook;
  }
  return hook ? hook(stage, path) : Status::OK();
}

// Save time of an archive file that predates the index (rebuilds).
int64_t FileMtimeUnixSeconds(const std::string& path) {
#ifdef GRANULA_HAVE_POSIX_IO
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) return static_cast<int64_t>(st.st_mtime);
#endif
  return 0;
}

uint64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

const char* ExtensionFor(ArchiveFormat format) {
  return format == ArchiveFormat::kGba ? ".gba" : ".json";
}

std::string EncodeBody(const PerformanceArchive& archive,
                       ArchiveFormat format) {
  return format == ArchiveFormat::kGba ? EncodeGba(archive)
                                       : archive.ToJsonString();
}

}  // namespace

std::string_view ArchiveFormatName(ArchiveFormat format) {
  return format == ArchiveFormat::kGba ? "gba" : "json";
}

Result<ArchiveFormat> ParseArchiveFormat(std::string_view name) {
  if (name == "json") return ArchiveFormat::kJson;
  if (name == "gba") return ArchiveFormat::kGba;
  return Status::InvalidArgument(
      StrFormat("unknown archive format '%.*s' (expected json or gba)",
                static_cast<int>(name.size()), name.data()));
}

uint64_t ArchiveRepository::BodyReadCount() {
  return g_body_reads.load(std::memory_order_relaxed);
}

void ArchiveRepository::SetIoFaultHookForTest(
    std::function<Status(const char* stage, const std::string& path)> hook) {
  std::lock_guard<std::mutex> lock(g_fault_hook_mutex);
  g_fault_hook = std::move(hook);
}

void ArchiveRepository::SetWallClockForTest(int64_t (*now_unix_seconds)()) {
  g_wall_clock.store(now_unix_seconds, std::memory_order_relaxed);
}

Status ArchiveRepository::Init() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create %s: %s",
                                     directory_.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

std::string ArchiveRepository::PathFor(const std::string& name,
                                       ArchiveFormat format) const {
  return directory_ + "/" + name + ExtensionFor(format);
}

std::string ArchiveRepository::IndexPath() const {
  return directory_ + "/" + kIndexStem + ".json";
}

Result<ArchiveFormat> ArchiveRepository::DiskFormat(
    const std::string& name) const {
  std::error_code ec;
  if (fs::exists(PathFor(name, ArchiveFormat::kGba), ec)) {
    return ArchiveFormat::kGba;
  }
  if (fs::exists(PathFor(name, ArchiveFormat::kJson), ec)) {
    return ArchiveFormat::kJson;
  }
  return Status::NotFound(
      StrFormat("no archive %s in %s", name.c_str(), directory_.c_str()));
}

Status ArchiveRepository::WriteAtomic(const std::string& path,
                                      const std::string& payload) const {
  const std::string tmp = path + ".tmp";
#ifdef GRANULA_HAVE_POSIX_IO
  auto fail = [&](int fd, Status status) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };
  GRANULA_RETURN_IF_ERROR(RunFaultHook("write", tmp));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot write %s", tmp.c_str()));
  }
  size_t written = 0;
  while (written < payload.size()) {
    ssize_t got =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (got < 0) {
      return fail(fd, Status::IoError(
                          StrFormat("write failed for %s", tmp.c_str())));
    }
    written += static_cast<size_t>(got);
  }
  // fsync before the rename: the rename's durability guarantee is only as
  // good as the bytes behind it. Without this, a crash shortly after the
  // rename could surface a zero-length or partial archive under the final
  // name — the one corruption the tmp+rename protocol exists to prevent.
  if (Status hook = RunFaultHook("fsync", tmp); !hook.ok()) {
    return fail(fd, std::move(hook));
  }
  if (::fsync(fd) != 0) {
    return fail(fd, Status::IoError(
                        StrFormat("fsync failed for %s", tmp.c_str())));
  }
  if (::close(fd) != 0) {
    return fail(-1, Status::IoError(
                        StrFormat("close failed for %s", tmp.c_str())));
  }
  if (Status hook = RunFaultHook("rename", tmp); !hook.ok()) {
    return fail(-1, std::move(hook));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return fail(-1, Status::IoError(
                        StrFormat("cannot move %s into place: %s",
                                  tmp.c_str(), ec.message().c_str())));
  }
  return Status::OK();
#else
  GRANULA_RETURN_IF_ERROR(RunFaultHook("write", tmp));
  {
    std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
    if (!file) {
      return Status::IoError(StrFormat("cannot write %s", tmp.c_str()));
    }
    file << payload;
    file.flush();
    if (!file.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::IoError(StrFormat("write failed for %s", tmp.c_str()));
    }
  }
  GRANULA_RETURN_IF_ERROR(RunFaultHook("fsync", tmp));
  GRANULA_RETURN_IF_ERROR(RunFaultHook("rename", tmp));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    return Status::IoError(StrFormat("cannot move %s into place: %s",
                                     tmp.c_str(), ec.message().c_str()));
  }
  return Status::OK();
#endif
}

Result<PerformanceArchive> ArchiveRepository::LoadBody(
    const std::string& name, ArchiveFormat format, int levels) const {
  g_body_reads.fetch_add(1, std::memory_order_relaxed);
  const std::string path = PathFor(name, format);
  GRANULA_RETURN_IF_ERROR(RunFaultHook("read", path));
  GRANULA_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  if (format == ArchiveFormat::kGba) {
    GRANULA_ASSIGN_OR_RETURN(GbaReader reader, GbaReader::Open(file.data()));
    return reader.DecodeShallow(levels);
  }
  // JSON has no partial-parse path; `levels` intentionally ignored.
  return PerformanceArchive::FromJsonString(file.data());
}

ArchiveRepository::Entry ArchiveRepository::MakeEntry(
    const std::string& name, const PerformanceArchive& archive,
    ArchiveFormat format, int64_t saved) const {
  Entry entry;
  entry.name = name;
  auto platform_it = archive.job_metadata.find("platform");
  if (platform_it != archive.job_metadata.end()) {
    entry.platform = platform_it->second;
  }
  auto algorithm_it = archive.job_metadata.find("algorithm");
  if (algorithm_it != archive.job_metadata.end()) {
    entry.algorithm = algorithm_it->second;
  }
  entry.status = std::string(ArchiveStatusName(archive.status));
  if (archive.root != nullptr) {
    entry.total_seconds = archive.root->Duration().seconds();
  }
  entry.operations = archive.OperationCount();
  entry.saved_unix_seconds = saved;
  entry.format = format;
  return entry;
}

std::map<std::string, ArchiveRepository::Entry> ArchiveRepository::LoadIndex()
    const {
  std::map<std::string, Entry> entries;
  auto file = MappedFile::Open(IndexPath());
  if (!file.ok()) return entries;
  auto parsed = Json::Parse(file->data());
  if (!parsed.ok() ||
      parsed->GetInt("version") != static_cast<int64_t>(kIndexVersion)) {
    return entries;
  }
  const Json* listed = parsed->Find("entries");
  if (listed == nullptr || !listed->is_object()) return entries;
  for (const auto& [name, j] : listed->AsObject()) {
    Entry entry;
    entry.name = name;
    entry.platform = j.GetString("platform");
    entry.algorithm = j.GetString("algorithm");
    entry.status = j.GetString("status");
    entry.total_seconds = j.GetDouble("total_s");
    entry.operations = static_cast<uint64_t>(j.GetInt("ops"));
    entry.saved_unix_seconds = j.GetInt("saved");
    auto format = ParseArchiveFormat(j.GetString("format", "json"));
    entry.format = format.ok() ? *format : ArchiveFormat::kJson;
    entries.emplace(name, std::move(entry));
  }
  return entries;
}

Status ArchiveRepository::StoreIndex(
    const std::map<std::string, Entry>& entries) const {
  Json listed = Json::MakeObject();
  for (const auto& [name, entry] : entries) {
    Json j = Json::MakeObject();
    j["platform"] = entry.platform;
    j["algorithm"] = entry.algorithm;
    j["status"] = entry.status;
    j["total_s"] = entry.total_seconds;
    j["ops"] = entry.operations;
    j["saved"] = entry.saved_unix_seconds;
    j["format"] = std::string(ArchiveFormatName(entry.format));
    listed[name] = std::move(j);
  }
  Json root = Json::MakeObject();
  root["version"] = static_cast<int64_t>(kIndexVersion);
  root["entries"] = std::move(listed);
  return WriteAtomic(IndexPath(), root.Dump(2) + "\n");
}

Result<std::map<std::string, ArchiveFormat>> ArchiveRepository::ScanDisk()
    const {
  std::error_code ec;
  if (!fs::is_directory(directory_, ec)) {
    return Status::NotFound(
        StrFormat("no repository at %s", directory_.c_str()));
  }
  std::map<std::string, ArchiveFormat> disk;
  fs::directory_iterator it(directory_, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot list %s: %s",
                                     directory_.c_str(),
                                     ec.message().c_str()));
  }
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      return Status::IoError(StrFormat("error while listing %s: %s",
                                       directory_.c_str(),
                                       ec.message().c_str()));
    }
    const fs::path& path = it->path();
    const std::string stem = path.stem().string();
    if (stem == kIndexStem) continue;
    if (path.extension() == ".gba") {
      disk[stem] = ArchiveFormat::kGba;  // .gba always wins over .json
    } else if (path.extension() == ".json") {
      disk.emplace(stem, ArchiveFormat::kJson);
    }
  }
  return disk;
}

std::vector<ArchiveRepository::Entry> ArchiveRepository::Rebuild(
    const std::map<std::string, ArchiveFormat>& disk,
    std::map<std::string, Entry> cached) const {
  std::vector<Entry> entries;
  std::map<std::string, Entry> rebuilt;
  for (const auto& [name, format] : disk) {
    auto cached_it = cached.find(name);
    if (cached_it != cached.end() && cached_it->second.format == format) {
      entries.push_back(cached_it->second);
      rebuilt.emplace(name, std::move(cached_it->second));
      continue;
    }
    auto archive = LoadBody(name, format, 0);
    if (!archive.ok()) continue;  // foreign or corrupt file: skip
    Entry entry = MakeEntry(name, *archive, format,
                            FileMtimeUnixSeconds(PathFor(name, format)));
    entries.push_back(entry);
    rebuilt.emplace(name, std::move(entry));
  }
  // Best-effort persist: a read-only or shared directory keeps working,
  // it just rebuilds again next time.
  (void)StoreIndex(rebuilt);
  return entries;
}

Result<std::vector<ArchiveRepository::Entry>> ArchiveRepository::List()
    const {
  GRANULA_ASSIGN_OR_RETURN(auto disk, ScanDisk());
  std::map<std::string, Entry> cached = LoadIndex();
  bool consistent = cached.size() == disk.size();
  if (consistent) {
    for (const auto& [name, format] : disk) {
      auto it = cached.find(name);
      if (it == cached.end() || it->second.format != format) {
        consistent = false;
        break;
      }
    }
  }
  std::vector<Entry> entries;
  if (consistent) {
    entries.reserve(cached.size());
    for (auto& [name, entry] : cached) entries.push_back(std::move(entry));
  } else {
    entries = Rebuild(disk, std::move(cached));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

bool ArchiveRepository::Query::Matches(const Entry& entry) const {
  if (!platform.empty() && entry.platform != platform) return false;
  if (!algorithm.empty() && entry.algorithm != algorithm) return false;
  if (!status.empty() && entry.status != status) return false;
  if (saved_since != 0 && entry.saved_unix_seconds < saved_since) return false;
  if (saved_until != 0 && entry.saved_unix_seconds > saved_until) return false;
  return true;
}

Result<std::vector<ArchiveRepository::Entry>> ArchiveRepository::Select(
    const Query& query) const {
  if (query.saved_since != 0 && query.saved_until != 0 &&
      query.saved_since > query.saved_until) {
    return Status::InvalidArgument(StrFormat(
        "empty time range: since (%lld) is after until (%lld)",
        static_cast<long long>(query.saved_since),
        static_cast<long long>(query.saved_until)));
  }
  GRANULA_ASSIGN_OR_RETURN(std::vector<Entry> entries, List());
  std::vector<Entry> matched;
  for (Entry& entry : entries) {
    if (query.Matches(entry)) matched.push_back(std::move(entry));
  }
  return matched;
}

void ArchiveRepository::UpdateIndex(const std::vector<Entry>& updates) const {
  std::map<std::string, Entry> cached = LoadIndex();
  for (const Entry& entry : updates) cached[entry.name] = entry;
  // Best-effort: the index is derivable from the bodies, so a failure here
  // only costs a rebuild on the next List().
  (void)StoreIndex(cached);
}

std::string ArchiveRepository::AutoName(
    const PerformanceArchive& archive,
    std::vector<std::string>* taken) {
  auto platform_it = archive.job_metadata.find("platform");
  auto algorithm_it = archive.job_metadata.find("algorithm");
  std::string prefix =
      (platform_it != archive.job_metadata.end() ? platform_it->second
                                                 : "run") +
      "-" +
      (algorithm_it != archive.job_metadata.end() ? algorithm_it->second
                                                  : "job");
  // One past the highest index already used, on disk or in this batch.
  // Scanning for the max (instead of the first gap) keeps auto-names
  // collision-free across deletions.
  int max_index = 0;
  auto consider = [&](const std::string& name) {
    if (name.rfind(prefix + "-", 0) != 0) return;
    std::string digits = name.substr(prefix.size() + 1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return;
    }
    max_index = std::max(max_index, std::atoi(digits.c_str()));
  };
  if (auto disk = ScanDisk(); disk.ok()) {
    for (const auto& [name, format] : *disk) consider(name);
  }
  for (const std::string& name : *taken) consider(name);
  // Removed archives leave no file behind; the high-water mark keeps
  // their indices retired anyway.
  int& high = high_water_[prefix];
  max_index = std::max(max_index, high);
  high = max_index + 1;
  std::string name = StrFormat("%s-%03d", prefix.c_str(), high);
  taken->push_back(name);
  return name;
}

Result<std::string> ArchiveRepository::Save(
    const PerformanceArchive& archive, const std::string& explicit_name) {
  GRANULA_RETURN_IF_ERROR(Init());
  if (explicit_name == kIndexStem) {
    return Status::InvalidArgument("archive name 'index' is reserved");
  }
  std::string name = explicit_name;
  if (name.empty()) {
    std::vector<std::string> taken;
    name = AutoName(archive, &taken);
  }
  const ArchiveFormat format = write_format_;
  const int64_t saved = NowUnixSeconds();
  GRANULA_RETURN_IF_ERROR(
      WriteAtomic(PathFor(name, format), EncodeBody(archive, format)));
  // Drop a stale sibling in the other format so Load() (which prefers
  // .gba) can never resolve to an older body under the same name.
  const ArchiveFormat other = format == ArchiveFormat::kGba
                                  ? ArchiveFormat::kJson
                                  : ArchiveFormat::kGba;
  std::error_code ignored;
  fs::remove(PathFor(name, other), ignored);
  CacheInvalidate(name);
  UpdateIndex({MakeEntry(name, archive, format, saved)});
  return name;
}

Result<std::vector<std::string>> ArchiveRepository::SaveAll(
    const std::vector<const PerformanceArchive*>& archives,
    int num_threads) {
  GRANULA_RETURN_IF_ERROR(Init());
  // Assign all names up front (single-threaded: auto-naming scans the
  // directory), then fan the serialize+write work out to a thread pool.
  std::vector<std::string> names(archives.size());
  std::vector<std::string> taken;
  for (size_t i = 0; i < archives.size(); ++i) {
    if (archives[i] == nullptr) {
      return Status::InvalidArgument("SaveAll: null archive");
    }
    names[i] = AutoName(*archives[i], &taken);
  }

  const ArchiveFormat format = write_format_;
  const int64_t saved = NowUnixSeconds();
  unsigned workers = num_threads > 0
                         ? static_cast<unsigned>(num_threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(
      workers, std::max<size_t>(archives.size(), size_t{1}));

  std::vector<Status> statuses(archives.size());
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < archives.size();
         i = next.fetch_add(1)) {
      statuses[i] = WriteAtomic(PathFor(names[i], format),
                                EncodeBody(*archives[i], format));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Index the writes that landed even when some failed: the index must
  // mirror the directory, not the batch's intent.
  std::vector<Entry> landed;
  for (size_t i = 0; i < archives.size(); ++i) {
    if (!statuses[i].ok()) continue;
    CacheInvalidate(names[i]);
    landed.push_back(MakeEntry(names[i], *archives[i], format, saved));
  }
  if (!landed.empty()) UpdateIndex(landed);

  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return names;
}

Result<PerformanceArchive> ArchiveRepository::Load(
    const std::string& name) const {
  GRANULA_ASSIGN_OR_RETURN(ArchiveFormat format, DiskFormat(name));
  return LoadBody(name, format, 0);
}

Result<PerformanceArchive> ArchiveRepository::LoadShallow(
    const std::string& name, int levels) const {
  GRANULA_ASSIGN_OR_RETURN(ArchiveFormat format, DiskFormat(name));
  return LoadBody(name, format, levels);
}

Result<std::shared_ptr<const ArchivedOperation>>
ArchiveRepository::FetchSubtree(const std::string& name,
                                const std::string& path) {
  const std::string key = name + '\0' + path;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_capacity_ > 0) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++cache_stats_.hits;
        cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
        return it->second.subtree;
      }
    }
    ++cache_stats_.misses;
  }

  // Disk decode runs unlocked so a cold fetch never stalls concurrent
  // hits on other keys.
  GRANULA_ASSIGN_OR_RETURN(ArchiveFormat format, DiskFormat(name));
  g_body_reads.fetch_add(1, std::memory_order_relaxed);
  GRANULA_RETURN_IF_ERROR(RunFaultHook("read", PathFor(name, format)));
  GRANULA_ASSIGN_OR_RETURN(MappedFile file,
                           MappedFile::Open(PathFor(name, format)));
  std::shared_ptr<const ArchivedOperation> subtree;
  if (format == ArchiveFormat::kGba) {
    GRANULA_ASSIGN_OR_RETURN(GbaReader reader, GbaReader::Open(file.data()));
    GRANULA_ASSIGN_OR_RETURN(auto decoded, reader.DecodeSubtree(path));
    subtree = std::move(decoded);
  } else {
    GRANULA_ASSIGN_OR_RETURN(PerformanceArchive archive,
                             PerformanceArchive::FromJsonString(file.data()));
    const ArchivedOperation* found = archive.FindByPath(path);
    if (found == nullptr) {
      return Status::NotFound(
          StrFormat("no operation at path '%s'", path.c_str()));
    }
    subtree = found->Clone();
  }

  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_capacity_ > 0) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Another thread decoded and inserted the same key while we were
      // off the lock; adopt its entry so the cache holds one copy.
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
      return it->second.subtree;
    }
    while (cache_.size() >= cache_capacity_) {
      const std::string& victim = cache_lru_.back();
      cache_.erase(victim);
      cache_lru_.pop_back();
      ++cache_stats_.evictions;
    }
    cache_lru_.push_front(key);
    cache_.emplace(key, CacheSlot{subtree, cache_lru_.begin()});
  }
  return subtree;
}

ArchiveRepository::CacheStats ArchiveRepository::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_stats_;
}

void ArchiveRepository::set_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_capacity_ = capacity;
  while (cache_.size() > cache_capacity_) {
    const std::string& victim = cache_lru_.back();
    cache_.erase(victim);
    cache_lru_.pop_back();
    ++cache_stats_.evictions;
  }
}

void ArchiveRepository::CacheInvalidate(const std::string& name) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  const std::string prefix = name + '\0';
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      cache_lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<ArchiveRepository::PackStats> ArchiveRepository::Pack(
    ArchiveFormat format) {
  GRANULA_ASSIGN_OR_RETURN(auto disk, ScanDisk());
  std::map<std::string, Entry> cached = LoadIndex();
  PackStats stats;
  for (const auto& [name, on_disk] : disk) {
    if (on_disk == format) {
      ++stats.skipped;
      continue;
    }
    GRANULA_ASSIGN_OR_RETURN(PerformanceArchive archive,
                             LoadBody(name, on_disk, 0));
    const std::string old_path = PathFor(name, on_disk);
    const std::string payload = EncodeBody(archive, format);
    GRANULA_RETURN_IF_ERROR(WriteAtomic(PathFor(name, format), payload));
    stats.bytes_before += FileSizeOrZero(old_path);
    stats.bytes_after += payload.size();
    std::error_code ignored;
    fs::remove(old_path, ignored);
    CacheInvalidate(name);
    int64_t saved = FileMtimeUnixSeconds(PathFor(name, format));
    if (auto it = cached.find(name); it != cached.end()) {
      saved = it->second.saved_unix_seconds;  // conversion keeps save time
    }
    cached[name] = MakeEntry(name, archive, format, saved);
    ++stats.converted;
  }
  (void)StoreIndex(cached);
  return stats;
}

Status ArchiveRepository::Remove(const std::string& name) {
  std::error_code ec;
  bool removed = fs::remove(PathFor(name, ArchiveFormat::kGba), ec) && !ec;
  ec.clear();
  removed = (fs::remove(PathFor(name, ArchiveFormat::kJson), ec) && !ec) ||
            removed;
  if (!removed) {
    return Status::NotFound(
        StrFormat("no archive %s in %s", name.c_str(), directory_.c_str()));
  }
  CacheInvalidate(name);
  std::map<std::string, Entry> cached = LoadIndex();
  if (cached.erase(name) > 0) (void)StoreIndex(cached);
  return Status::OK();
}

}  // namespace granula::core
