#include "granula/archive/repository.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "common/strings.h"

namespace granula::core {

namespace fs = std::filesystem;

Status ArchiveRepository::Init() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create %s: %s",
                                     directory_.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

std::string ArchiveRepository::PathFor(const std::string& name) const {
  return directory_ + "/" + name + ".json";
}

Status ArchiveRepository::WriteAtomic(const std::string& name,
                                      const std::string& payload) const {
  const std::string path = PathFor(name);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) {
      return Status::IoError(StrFormat("cannot write %s", tmp.c_str()));
    }
    file << payload;
    file.flush();
    if (!file.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::IoError(StrFormat("write failed for %s", tmp.c_str()));
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    return Status::IoError(StrFormat("cannot move %s into place: %s",
                                     tmp.c_str(), ec.message().c_str()));
  }
  return Status::OK();
}

std::string ArchiveRepository::AutoName(
    const PerformanceArchive& archive,
    std::vector<std::string>* taken) {
  auto platform_it = archive.job_metadata.find("platform");
  auto algorithm_it = archive.job_metadata.find("algorithm");
  std::string prefix =
      (platform_it != archive.job_metadata.end() ? platform_it->second
                                                 : "run") +
      "-" +
      (algorithm_it != archive.job_metadata.end() ? algorithm_it->second
                                                  : "job");
  // One past the highest index already used, on disk or in this batch.
  // Scanning for the max (instead of the first gap) keeps auto-names
  // collision-free across deletions.
  int max_index = 0;
  auto consider = [&](const std::string& name) {
    if (name.rfind(prefix + "-", 0) != 0) return;
    std::string digits = name.substr(prefix.size() + 1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return;
    }
    max_index = std::max(max_index, std::atoi(digits.c_str()));
  };
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (!ec) {
    for (fs::directory_iterator end; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->path().extension() != ".json") continue;
      consider(it->path().stem().string());
    }
  }
  for (const std::string& name : *taken) consider(name);
  // Removed archives leave no file behind; the high-water mark keeps
  // their indices retired anyway.
  int& high = high_water_[prefix];
  max_index = std::max(max_index, high);
  high = max_index + 1;
  std::string name = StrFormat("%s-%03d", prefix.c_str(), high);
  taken->push_back(name);
  return name;
}

Result<std::string> ArchiveRepository::Save(
    const PerformanceArchive& archive, const std::string& explicit_name) {
  GRANULA_RETURN_IF_ERROR(Init());
  std::string name = explicit_name;
  if (name.empty()) {
    std::vector<std::string> taken;
    name = AutoName(archive, &taken);
  }
  GRANULA_RETURN_IF_ERROR(WriteAtomic(name, archive.ToJsonString()));
  return name;
}

Result<std::vector<std::string>> ArchiveRepository::SaveAll(
    const std::vector<const PerformanceArchive*>& archives,
    int num_threads) {
  GRANULA_RETURN_IF_ERROR(Init());
  // Assign all names up front (single-threaded: auto-naming scans the
  // directory), then fan the serialize+write work out to a thread pool.
  std::vector<std::string> names(archives.size());
  std::vector<std::string> taken;
  for (size_t i = 0; i < archives.size(); ++i) {
    if (archives[i] == nullptr) {
      return Status::InvalidArgument("SaveAll: null archive");
    }
    names[i] = AutoName(*archives[i], &taken);
  }

  unsigned workers = num_threads > 0
                         ? static_cast<unsigned>(num_threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(
      workers, std::max<size_t>(archives.size(), size_t{1}));

  std::vector<Status> statuses(archives.size());
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < archives.size();
         i = next.fetch_add(1)) {
      statuses[i] = WriteAtomic(names[i], archives[i]->ToJsonString());
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return names;
}

Result<std::vector<ArchiveRepository::Entry>> ArchiveRepository::List()
    const {
  std::error_code ec;
  if (!fs::is_directory(directory_, ec)) {
    return Status::NotFound(
        StrFormat("no repository at %s", directory_.c_str()));
  }
  std::vector<Entry> entries;
  fs::directory_iterator it(directory_, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot list %s: %s",
                                     directory_.c_str(),
                                     ec.message().c_str()));
  }
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      return Status::IoError(StrFormat("error while listing %s: %s",
                                       directory_.c_str(),
                                       ec.message().c_str()));
    }
    if (it->path().extension() != ".json") continue;
    std::string name = it->path().stem().string();
    auto archive = Load(name);
    if (!archive.ok()) continue;  // foreign or corrupt file: skip
    Entry entry;
    entry.name = name;
    auto platform_it = archive->job_metadata.find("platform");
    if (platform_it != archive->job_metadata.end()) {
      entry.platform = platform_it->second;
    }
    auto algorithm_it = archive->job_metadata.find("algorithm");
    if (algorithm_it != archive->job_metadata.end()) {
      entry.algorithm = algorithm_it->second;
    }
    if (archive->root != nullptr) {
      entry.total_seconds = archive->root->Duration().seconds();
    }
    entry.operations = archive->OperationCount();
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

Result<PerformanceArchive> ArchiveRepository::Load(
    const std::string& name) const {
  std::ifstream file(PathFor(name));
  if (!file) {
    return Status::NotFound(
        StrFormat("no archive %s in %s", name.c_str(), directory_.c_str()));
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return PerformanceArchive::FromJsonString(buffer.str());
}

Status ArchiveRepository::Remove(const std::string& name) {
  std::error_code ec;
  if (!fs::remove(PathFor(name), ec) || ec) {
    return Status::NotFound(
        StrFormat("no archive %s in %s", name.c_str(), directory_.c_str()));
  }
  return Status::OK();
}

}  // namespace granula::core
