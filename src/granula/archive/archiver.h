#ifndef GRANULA_GRANULA_ARCHIVE_ARCHIVER_H_
#define GRANULA_GRANULA_ARCHIVE_ARCHIVER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "granula/archive/archive.h"
#include "granula/archive/lint.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {

// Granula's archiving sub-process (P3): turns the raw monitoring output —
// a flat platform-log stream plus environment records — into a
// standardized, queryable PerformanceArchive, guided by the analyst's
// performance model.
//
// Behavior highlights:
//  * Records may arrive in any order; the tree is rebuilt from ids.
//  * Every input stream runs through the LogLint pass (lint.h) first.
//    Under Tolerance::kStrict any fatal defect (duplicate records,
//    inverted EndOp, orphan records, cycles, multiple roots) rejects the
//    log with a Corruption status carrying the lint summary. Under
//    Tolerance::kRepair the offending records and subtrees are quarantined
//    into the archive's `quarantined` section and the best-effort tree is
//    built from what survives.
//  * Operations not present in the model are *filtered out*; their children
//    are re-attached to the nearest modeled ancestor. This is how the same
//    log supports both coarse and fine models (requirement R3): archiving
//    an implementation-level log under a domain-level model yields a small,
//    cheap archive.
//  * A missing EndOp is repaired with the max end time of the subtree (and
//    a "(repaired)" provenance), so one lost record does not void a run.
//    This repair applies in both tolerance modes.
//  * Info-derivation rules from the model run bottom-up after assembly.
class Archiver {
 public:
  // How to treat defective log streams (see lint.h for the defect
  // classes).
  enum class Tolerance {
    kStrict,  // any fatal lint finding fails the archive (default)
    kRepair,  // quarantine bad records/subtrees, build best-effort tree
  };

  struct Options {
    // Drop operations whose model level exceeds this (0 = keep all levels
    // present in the model).
    int max_level = 0;
    // If true, operations absent from the model fail the archive instead
    // of being filtered (useful for model-coverage testing).
    bool strict = false;
    Tolerance tolerance = Tolerance::kStrict;
  };

  Archiver() = default;
  explicit Archiver(Options options) : options_(options) {}

  Result<PerformanceArchive> Build(
      const PerformanceModel& model, const std::vector<LogRecord>& records,
      std::vector<EnvironmentRecord> environment,
      std::map<std::string, std::string> job_metadata) const;

 private:
  Options options_ = {};
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_ARCHIVER_H_
