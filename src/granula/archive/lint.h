#ifndef GRANULA_GRANULA_ARCHIVE_LINT_H_
#define GRANULA_GRANULA_ARCHIVE_LINT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {

// Defect classes found in a raw platform-log stream. Real monitoring output
// (Giraph on YARN, PowerGraph on MPI) arrives incomplete, reordered, and
// partially corrupt; the lint pass classifies every such defect so the
// archiver can either reject the log (strict) or quarantine the offending
// records and build a best-effort archive (repair).
enum class LintDefect {
  kDuplicateStartOp,    // a second StartOp for an already-started op
  kDuplicateEndOp,      // a second EndOp; the first one wins
  kEndBeforeStart,      // EndOp timestamped earlier than the StartOp
  kOrphanInfo,          // Info record for an op with no StartOp
  kOrphanEndOp,         // EndOp record for an op with no StartOp
  kParentCycle,         // parent links form a cycle (incl. self-parent)
  kUnreachableSubtree,  // op hangs off a cycle, reachable from no root
  kMultipleRoots,       // extra root next to the primary one
  kMissingEndTime,      // no (usable) EndOp; repaired from the subtree
};

// Stable lowercase name, e.g. "duplicate_end_op". Used in the archive's
// quarantine section, so it must roundtrip through ParseLintDefect.
std::string_view LintDefectName(LintDefect defect);
Result<LintDefect> ParseLintDefect(std::string_view name);

// One classified defect. `repaired` is true when repair mode keeps the
// operation alive (only stray records are quarantined); false when the
// whole operation or subtree is quarantined.
struct LintFinding {
  LintDefect defect = LintDefect::kMissingEndTime;
  uint64_t op_id = 0;  // offending operation (0 when unknown)
  uint64_t seq = 0;    // offending record's emission seq (0 when n/a)
  bool repaired = false;
  std::string detail;

  Json ToJson() const;
  static Result<LintFinding> FromJson(const Json& j);
  bool operator==(const LintFinding&) const = default;
};

// The structured result of linting one log stream. Serialized verbatim
// into the archive's "quarantined" section in repair mode, so analysts can
// audit exactly what was dropped or fixed up.
struct LintReport {
  std::vector<LintFinding> findings;  // sorted by (seq, op_id, defect)

  bool clean() const { return findings.empty(); }
  // True when any finding voids the log in strict mode. kMissingEndTime is
  // exempt: a lost EndOp has always been repaired in place.
  bool HasFatal() const;
  size_t CountOf(LintDefect defect) const;
  // Human-readable one-line-per-finding rendering for CLI output and
  // strict-mode error messages.
  std::string Summary() const;

  Json ToJson() const;
  static Result<LintReport> FromJson(const Json& j);
  bool operator==(const LintReport&) const = default;
};

// The linted — and, where possible, repaired — view of a log stream: the
// records that survive quarantine, indexed per operation and ready for
// tree assembly. Pointers alias into the input record vector.
struct LintedLog {
  struct Op {
    const LogRecord* start = nullptr;
    std::optional<SimTime> end_time;
    std::vector<const LogRecord*> infos;  // in seq order
    std::vector<uint64_t> children;       // in start-record seq order
    // Provenance suffix for EndTime when a repair touched it, e.g.
    // " (duplicate EndOp quarantined)". Empty when the log was clean.
    std::string end_provenance;
  };

  LintReport report;
  std::map<uint64_t, Op> ops;  // survivors only
  uint64_t root = kNoOp;       // chosen primary root; kNoOp when none
};

// Classifies every defect in `records` and computes the best-effort
// repaired view: first record wins on duplicates, inverted/duplicate ends
// and orphan records are dropped, and of several roots the one with the
// largest subtree (ties: lowest seq) is kept. Deterministic for any input
// order — decisions key on record seq, never on array position.
LintedLog LintAndRepair(const std::vector<LogRecord>& records);

// Classification only (same findings, without the repaired view).
LintReport LintLog(const std::vector<LogRecord>& records);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_LINT_H_
