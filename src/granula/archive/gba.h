#ifndef GRANULA_GRANULA_ARCHIVE_GBA_H_
#define GRANULA_GRANULA_ARCHIVE_GBA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "granula/archive/archive.h"

namespace granula::core {

// GBA — the Granula Binary Archive format. The compact, mmap-friendly
// on-disk twin of the JSON archive: JSON stays the interchange and lint
// format, GBA is what a repository serving millions of analysts actually
// reads. Design goals, in order:
//
//  1. Byte-exact interchange round trip:
//       Decode(Encode(a)).ToJsonString() == a.ToJsonString()
//     for every archive this codebase can produce (asserted over all five
//     platforms in tests/gba_test.cc).
//  2. Partial loads: one operation subtree — or the first K tree levels —
//     can be decoded without touching the rest of the file.
//  3. Index-grade metadata: platform/algorithm/status are readable from
//     the header sections without decoding any operation.
//
// Layout (all integers little-endian, sections 8-byte-independent since
// every read goes through memcpy):
//
//   header   "GBA1", u32 version, u64 file_size, seven u64 section
//            offsets (strings, meta, ops, infos, values, env, lint)
//   strings  interned symbol table: u32 count, u64 offsets[count+1]
//            (into the blob), blob bytes. Every string in the archive —
//            actor/mission names, info names, sources, metadata, and
//            strings inside info values — appears here exactly once.
//   meta     job_metadata pairs, model name, status, has_root flag.
//   ops      columnar operation arrays, pre-order: u32 count N, then
//            seven u32[N] columns (actor_type, actor_id, mission_type,
//            mission_id, subtree_size, info_begin, info_count).
//            subtree_size is the per-subtree offset table: the subtree
//            rooted at row i is exactly rows [i, i+subtree_size[i]), so
//            a reader skips a sibling in O(1) and decodes one subtree
//            without parsing anything outside its row range.
//   infos    columnar info arrays parallel to the ops rows: u32 count M,
//            u32 name[M], u32 source[M], u64 value_off[M] into the
//            values blob. Rows are grouped per op (ops column
//            info_begin/info_count) in sorted-name order, matching the
//            std::map order ToJson serializes.
//   values   binary-encoded Json payloads (tag byte + fixed-width
//            scalars + interned strings, arrays/objects nested inline).
//   env      EnvironmentRecord rows (fixed 40-byte rows).
//   lint     quarantine findings (defect name interned, fixed fields).
//
// Encoding is deterministic: two archives with equal ToJsonString() have
// byte-identical GBA encodings, so archives stay byte-comparable through
// pack/unpack at any GRANULA_HOST_THREADS (test-asserted).

inline constexpr uint32_t kGbaVersion = 1;

// True when `bytes` starts with the GBA magic ("GBA1"). A cheap sniff for
// tools that accept both formats; Open() does the real validation.
bool LooksLikeGba(std::string_view bytes);

// Serializes `archive` to GBA bytes. Never fails: every in-memory archive
// is representable.
std::string EncodeGba(const PerformanceArchive& archive);

// Serializes one operation subtree as a standalone GBA file (an archive
// shell with `root` as its tree and no metadata). Decodable with any
// GbaReader; the serve layer's content negotiation and `granula query
// --format=gba` both emit exactly these bytes.
std::string EncodeGbaSubtree(const ArchivedOperation& root);

// A validated, zero-copy view over GBA bytes. The reader borrows `bytes`
// — typically a MappedFile's view — and the caller must keep that backing
// storage alive for the reader's lifetime. All symbol accesses are lazy
// views into the mapped strings blob; nothing is copied until a decode
// materializes an archive or subtree.
class GbaReader {
 public:
  // Validates the magic, version, section table, and string-table shape.
  // Corruption for anything malformed; InvalidArgument for a future
  // version this build cannot read.
  static Result<GbaReader> Open(std::string_view bytes);

  uint32_t operation_count() const { return ops_count_; }

  // Metadata reads that never touch the operation columns — what the
  // repository index is (re)built from.
  std::map<std::string, std::string> JobMetadata() const;
  std::string ModelName() const;
  ArchiveStatus Status() const;

  // Full decode.
  Result<PerformanceArchive> DecodeArchive() const;

  // Decodes only the subtree at `path` (FindByPath semantics: "/"-split
  // mission ids falling back to mission types, first segment matches the
  // root). Rows outside the subtree's range are skipped via the offset
  // table, not decoded. NotFound when the path matches nothing.
  Result<std::unique_ptr<ArchivedOperation>> DecodeSubtree(
      std::string_view path) const;

  // Decodes the archive with the operation tree cut to its first `levels`
  // levels (root = level 1); levels <= 0 decodes everything. Matches the
  // level limit of RegressionOptions::max_depth, so a gate at depth D is
  // value-identical over a DecodeShallow(D) archive.
  Result<PerformanceArchive> DecodeShallow(int levels) const;

 private:
  GbaReader() = default;

  // Bounds-checked fixed-width reads at absolute offset.
  Result<uint32_t> ReadU32(uint64_t off) const;
  Result<uint64_t> ReadU64(uint64_t off) const;

  Result<std::string_view> Sym(uint32_t id) const;
  // Value of ops column `column` (0..6) at `row`.
  Result<uint32_t> OpsCol(uint32_t column, uint32_t row) const;
  Result<uint32_t> SubtreeSize(uint32_t row) const;
  bool RowMatchesSegment(uint32_t row, std::string_view segment) const;

  Result<Json> DecodeValue(uint64_t& off) const;
  // Materializes the op at `row` (fields + infos, no children).
  Result<std::unique_ptr<ArchivedOperation>> DecodeRow(uint32_t row) const;
  // Materializes rows [row, row+subtree_size) as a tree, cut to
  // `levels_left` levels (<= 0: unlimited).
  Result<std::unique_ptr<ArchivedOperation>> DecodeTree(uint32_t row,
                                                        int levels_left) const;
  Result<PerformanceArchive> DecodeWithRoot(
      std::unique_ptr<ArchivedOperation> root) const;

  std::string_view bytes_;
  uint64_t strings_off_ = 0, meta_off_ = 0, ops_off_ = 0, infos_off_ = 0,
           values_off_ = 0, env_off_ = 0, lint_off_ = 0;
  uint32_t string_count_ = 0;
  uint64_t string_offsets_ = 0;  // absolute offset of the offsets array
  uint64_t string_blob_ = 0;     // absolute offset of the blob
  uint64_t string_blob_len_ = 0;
  uint32_t ops_count_ = 0;
  uint32_t info_count_ = 0;
  uint64_t values_blob_ = 0;  // absolute offset
  uint64_t values_blob_len_ = 0;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_GBA_H_
