#ifndef GRANULA_GRANULA_ARCHIVE_ASSEMBLY_H_
#define GRANULA_GRANULA_ARCHIVE_ASSEMBLY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "granula/archive/archive.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {

// The assembly core shared by the batch Archiver and the streaming
// archiver (granula/live): building ArchivedOperation nodes from linted
// records, ordering children canonically, and finalizing operations
// bottom-up. Both archivers must go through these helpers — the contract
// that the final streaming snapshot is byte-identical to the batch archive
// rests on every node being constructed, ordered, and finalized the same
// way regardless of when the records arrived.

// Builds the archive node for one operation from its surviving records:
// the StartOp annotation, the (possibly repaired) end time with its
// provenance suffix, and the info records in seq order. Children are
// attached and ordered separately.
std::unique_ptr<ArchivedOperation> MakeOperationNode(
    const LogRecord& start, const std::optional<SimTime>& end_time,
    const std::string& end_provenance,
    const std::vector<const LogRecord*>& infos);

// Canonical child order: stable sort by StartTime over a start-seq ordered
// input vector. Callers must present children in start-record seq order
// first, so ties keep that order.
void SortChildrenByStartTime(ArchivedOperation* op);

// Finalizes ONE operation whose children are already finalized: repairs a
// missing EndTime with max(StartTime, max child EndTime) and runs the
// model's info-derivation rules. The batch archiver applies it post-order
// over the full tree; the streaming archiver applies it once per operation
// at eviction time (children are always evicted first, so the two orders
// see identical subtrees).
void FinalizeOperationNode(ArchivedOperation& op,
                           const PerformanceModel& model);

// Post-order FinalizeOperationNode over the whole subtree.
void FinalizeOperationTree(ArchivedOperation& op,
                           const PerformanceModel& model);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_ARCHIVE_ASSEMBLY_H_
