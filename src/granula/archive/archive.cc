#include "granula/archive/archive.h"

#include <algorithm>

#include "common/strings.h"

namespace granula::core {

std::string ArchivedOperation::DisplayName() const {
  const std::string& actor = actor_id.empty() ? actor_type : actor_id;
  const std::string& mission = mission_id.empty() ? mission_type : mission_id;
  return actor + " @ " + mission;
}

std::string ArchivedOperation::TypeKey() const {
  return actor_type + "@" + mission_type;
}

bool ArchivedOperation::HasInfo(std::string_view name) const {
  return infos.find(std::string(name)) != infos.end();
}

const InfoValue* ArchivedOperation::FindInfo(std::string_view name) const {
  auto it = infos.find(std::string(name));
  return it == infos.end() ? nullptr : &it->second;
}

double ArchivedOperation::InfoNumber(std::string_view name,
                                     double fallback) const {
  const InfoValue* info = FindInfo(name);
  if (info == nullptr || !info->value.is_number()) return fallback;
  return info->value.AsDouble();
}

SimTime ArchivedOperation::StartTime() const {
  const InfoValue* info = FindInfo("StartTime");
  if (info == nullptr || !info->value.is_number()) return SimTime();
  return SimTime::Nanos(info->value.AsInt());
}

SimTime ArchivedOperation::EndTime() const {
  const InfoValue* info = FindInfo("EndTime");
  if (info == nullptr || !info->value.is_number()) return SimTime();
  return SimTime::Nanos(info->value.AsInt());
}

void ArchivedOperation::SetInfo(std::string name, Json value,
                                std::string source) {
  infos[std::move(name)] = InfoValue{std::move(value), std::move(source)};
}

void ArchivedOperation::Visit(
    const std::function<void(const ArchivedOperation&)>& fn) const {
  fn(*this);
  for (const auto& child : children) child->Visit(fn);
}

std::unique_ptr<ArchivedOperation> ArchivedOperation::Clone() const {
  auto op = std::make_unique<ArchivedOperation>();
  op->actor_type = actor_type;
  op->actor_id = actor_id;
  op->mission_type = mission_type;
  op->mission_id = mission_id;
  op->infos = infos;
  op->children.reserve(children.size());
  for (const auto& child : children) op->children.push_back(child->Clone());
  return op;
}

uint64_t ArchivedOperation::SubtreeSize() const {
  uint64_t count = 1;
  for (const auto& child : children) count += child->SubtreeSize();
  return count;
}

Json ArchivedOperation::ToJson() const {
  Json j;
  j["actor_type"] = actor_type;
  j["actor_id"] = actor_id;
  j["mission_type"] = mission_type;
  j["mission_id"] = mission_id;
  Json infos_json = Json::MakeObject();
  for (const auto& [name, info] : infos) {
    Json entry;
    entry["value"] = info.value;
    entry["source"] = info.source;
    infos_json[name] = std::move(entry);
  }
  j["infos"] = std::move(infos_json);
  Json children_json = Json::MakeArray();
  for (const auto& child : children) children_json.Append(child->ToJson());
  j["children"] = std::move(children_json);
  return j;
}

Result<std::unique_ptr<ArchivedOperation>> ArchivedOperation::FromJson(
    const Json& j) {
  if (!j.is_object()) {
    return Status::Corruption("operation node must be a JSON object");
  }
  auto op = std::make_unique<ArchivedOperation>();
  op->actor_type = j.GetString("actor_type");
  op->actor_id = j.GetString("actor_id");
  op->mission_type = j.GetString("mission_type");
  op->mission_id = j.GetString("mission_id");
  if (const Json* infos = j.Find("infos"); infos != nullptr) {
    if (!infos->is_object()) {
      return Status::Corruption("infos must be an object");
    }
    for (const auto& [name, entry] : infos->AsObject()) {
      InfoValue info;
      if (const Json* value = entry.Find("value")) info.value = *value;
      info.source = entry.GetString("source");
      op->infos[name] = std::move(info);
    }
  }
  if (const Json* children = j.Find("children"); children != nullptr) {
    if (!children->is_array()) {
      return Status::Corruption("children must be an array");
    }
    for (const Json& child : children->AsArray()) {
      GRANULA_ASSIGN_OR_RETURN(auto parsed, FromJson(child));
      op->children.push_back(std::move(parsed));
    }
  }
  return op;
}

namespace {

const ArchivedOperation* MatchSegment(const ArchivedOperation& op,
                                      std::string_view segment) {
  if (op.mission_id == segment) return &op;
  if (op.mission_id.empty() && op.mission_type == segment) return &op;
  return nullptr;
}

}  // namespace

const ArchivedOperation* PerformanceArchive::FindByPath(
    std::string_view path) const {
  if (root == nullptr) return nullptr;
  std::vector<std::string> segments = StrSplit(path, '/');
  if (segments.empty()) return nullptr;
  const ArchivedOperation* current = MatchSegment(*root, segments[0]);
  if (current == nullptr) return nullptr;
  for (size_t i = 1; i < segments.size(); ++i) {
    const ArchivedOperation* next = nullptr;
    for (const auto& child : current->children) {
      next = MatchSegment(*child, segments[i]);
      if (next != nullptr) break;
    }
    if (next == nullptr) return nullptr;
    current = next;
  }
  return current;
}

std::vector<const ArchivedOperation*> PerformanceArchive::FindOperations(
    std::string_view actor_type, std::string_view mission_type) const {
  std::vector<const ArchivedOperation*> out;
  if (root == nullptr) return out;
  root->Visit([&](const ArchivedOperation& op) {
    bool actor_ok = actor_type.empty() || op.actor_type == actor_type;
    bool mission_ok = mission_type.empty() || op.mission_type == mission_type;
    if (actor_ok && mission_ok) out.push_back(&op);
  });
  return out;
}

uint64_t PerformanceArchive::OperationCount() const {
  return root == nullptr ? 0 : root->SubtreeSize();
}

std::map<std::string, double> PerformanceArchive::TopLevelBreakdown() const {
  std::map<std::string, double> breakdown;
  if (root == nullptr) return breakdown;
  double total = root->Duration().seconds();
  if (total <= 0) return breakdown;
  for (const auto& child : root->children) {
    std::string key =
        child->mission_id.empty() ? child->mission_type : child->mission_id;
    breakdown[key] += child->Duration().seconds() / total;
  }
  return breakdown;
}

std::string_view ArchiveStatusName(ArchiveStatus status) {
  return status == ArchiveStatus::kComplete ? "complete" : "incomplete";
}

std::string PerformanceArchive::ToJsonString(int indent) const {
  Json j;
  Json meta = Json::MakeObject();
  for (const auto& [key, value] : job_metadata) meta[key] = value;
  j["job"] = std::move(meta);
  j["model"] = model_name;
  j["status"] = std::string(ArchiveStatusName(status));
  j["root"] = root == nullptr ? Json() : root->ToJson();
  Json env = Json::MakeArray();
  for (const EnvironmentRecord& r : environment) {
    Json entry;
    entry["node"] = static_cast<int64_t>(r.node);
    entry["hostname"] = r.hostname;
    entry["time_s"] = r.time_seconds;
    entry["cpu"] = r.cpu_seconds_per_second;
    entry["net_bps"] = r.net_bytes_per_second;
    entry["disk_bps"] = r.disk_bytes_per_second;
    env.Append(std::move(entry));
  }
  j["environment"] = std::move(env);
  if (!lint.clean()) j["quarantined"] = lint.ToJson();
  return j.Dump(indent);
}

Result<PerformanceArchive> PerformanceArchive::FromJsonString(
    std::string_view text) {
  GRANULA_ASSIGN_OR_RETURN(Json j, Json::Parse(text));
  PerformanceArchive archive;
  if (const Json* meta = j.Find("job"); meta != nullptr && meta->is_object()) {
    for (const auto& [key, value] : meta->AsObject()) {
      if (value.is_string()) archive.job_metadata[key] = value.AsString();
    }
  }
  archive.model_name = j.GetString("model");
  // Absent in archives written before the status field existed: those
  // were all complete runs.
  archive.status = j.GetString("status") == "incomplete"
                       ? ArchiveStatus::kIncomplete
                       : ArchiveStatus::kComplete;
  if (const Json* root = j.Find("root");
      root != nullptr && !root->is_null()) {
    GRANULA_ASSIGN_OR_RETURN(archive.root, ArchivedOperation::FromJson(*root));
  }
  if (const Json* env = j.Find("environment");
      env != nullptr && env->is_array()) {
    for (const Json& entry : env->AsArray()) {
      EnvironmentRecord r;
      r.node = static_cast<uint32_t>(entry.GetInt("node"));
      r.hostname = entry.GetString("hostname");
      r.time_seconds = entry.GetDouble("time_s");
      r.cpu_seconds_per_second = entry.GetDouble("cpu");
      r.net_bytes_per_second = entry.GetDouble("net_bps");
      r.disk_bytes_per_second = entry.GetDouble("disk_bps");
      archive.environment.push_back(std::move(r));
    }
  }
  if (const Json* quarantined = j.Find("quarantined");
      quarantined != nullptr) {
    GRANULA_ASSIGN_OR_RETURN(archive.lint,
                             LintReport::FromJson(*quarantined));
  }
  return archive;
}

}  // namespace granula::core
