#include "granula/archive/gba.h"

#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace granula::core {
namespace {

// ------------------------------------------------------------ writing ----

constexpr char kMagic[4] = {'G', 'B', 'A', '1'};
constexpr size_t kHeaderSize = 72;
// Nesting guard for the recursive value codec; far beyond any real info
// payload, shallow enough to keep a hostile file from blowing the stack.
constexpr int kMaxValueDepth = 512;

enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagArray = 6,
  kTagObject = 7,
};

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.append(b, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}

void PutF64(std::string& out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(out, bits);
}

void PatchU64(std::string& out, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[pos + i] = static_cast<char>(v >> (8 * i));
}

// First-encounter-order string interning. Deterministic for a given
// archive: the walk order below never depends on memory layout.
class SymbolTable {
 public:
  uint32_t Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(order_.size());
    auto [pos, inserted] = index_.emplace(std::string(s), id);
    (void)inserted;
    order_.push_back(&pos->first);
    return id;
  }

  void Serialize(std::string& out) const {
    PutU32(out, static_cast<uint32_t>(order_.size()));
    uint64_t off = 0;
    for (const std::string* s : order_) {
      PutU64(out, off);
      off += s->size();
    }
    PutU64(out, off);  // offsets[count] == blob length
    for (const std::string* s : order_) out.append(*s);
  }

 private:
  std::map<std::string, uint32_t, std::less<>> index_;
  std::vector<const std::string*> order_;
};

void EncodeValue(const Json& v, SymbolTable& syms, std::string& blob) {
  switch (v.type()) {
    case Json::Type::kNull:
      PutU8(blob, kTagNull);
      return;
    case Json::Type::kBool:
      PutU8(blob, v.AsBool() ? kTagTrue : kTagFalse);
      return;
    case Json::Type::kInt:
      PutU8(blob, kTagInt);
      PutU64(blob, static_cast<uint64_t>(v.AsInt()));
      return;
    case Json::Type::kDouble:
      PutU8(blob, kTagDouble);
      PutF64(blob, v.AsDouble());
      return;
    case Json::Type::kString:
      PutU8(blob, kTagString);
      PutU32(blob, syms.Intern(v.AsString()));
      return;
    case Json::Type::kArray: {
      PutU8(blob, kTagArray);
      const Json::Array& array = v.AsArray();
      PutU32(blob, static_cast<uint32_t>(array.size()));
      for (const Json& element : array) EncodeValue(element, syms, blob);
      return;
    }
    case Json::Type::kObject: {
      PutU8(blob, kTagObject);
      const Json::Object& object = v.AsObject();
      PutU32(blob, static_cast<uint32_t>(object.size()));
      for (const auto& [key, element] : object) {
        PutU32(blob, syms.Intern(key));
        EncodeValue(element, syms, blob);
      }
      return;
    }
  }
}

// ------------------------------------------------------------ reading ----

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

double GetF64(const char* p) {
  uint64_t bits = GetU64(p);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Status Truncated(const char* what) {
  return granula::Status::Corruption(StrFormat("gba: truncated %s section", what));
}

}  // namespace

bool LooksLikeGba(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

namespace {

// Shared by EncodeGba (root = archive.root) and EncodeGbaSubtree (root =
// any operation under an empty shell archive): the row walk starts at
// `root`, the header sections come from `archive`.
std::string EncodeGbaImpl(const PerformanceArchive& archive,
                          const ArchivedOperation* root) {
  SymbolTable syms;

  // ---- walk the tree once: columns, info rows, value blob -------------
  struct OpRow {
    uint32_t actor_type, actor_id, mission_type, mission_id;
    uint32_t subtree_size, info_begin, info_count;
  };
  std::vector<OpRow> ops;
  struct InfoRow {
    uint32_t name, source;
    uint64_t value_off;
  };
  std::vector<InfoRow> infos;
  std::string values;

  // Pre-order emission; returns the subtree size in rows. The row is
  // reserved before recursing so children land at row+1 onward.
  auto emit = [&](auto&& self, const ArchivedOperation& op) -> uint32_t {
    const size_t row = ops.size();
    ops.emplace_back();
    OpRow& r = ops[row];
    r.actor_type = syms.Intern(op.actor_type);
    r.actor_id = syms.Intern(op.actor_id);
    r.mission_type = syms.Intern(op.mission_type);
    r.mission_id = syms.Intern(op.mission_id);
    r.info_begin = static_cast<uint32_t>(infos.size());
    r.info_count = static_cast<uint32_t>(op.infos.size());
    for (const auto& [name, info] : op.infos) {  // std::map: sorted order
      InfoRow info_row;
      info_row.name = syms.Intern(name);
      info_row.source = syms.Intern(info.source);
      info_row.value_off = values.size();
      EncodeValue(info.value, syms, values);
      infos.push_back(info_row);
    }
    uint32_t size = 1;
    for (const auto& child : op.children) size += self(self, *child);
    ops[row].subtree_size = size;  // `r` may dangle after the recursion
    return size;
  };
  if (root != nullptr) emit(emit, *root);

  // ---- metadata / environment / lint (intern before serializing) -----
  std::vector<std::pair<uint32_t, uint32_t>> meta;
  for (const auto& [key, value] : archive.job_metadata) {
    meta.emplace_back(syms.Intern(key), syms.Intern(value));
  }
  const uint32_t model_sym = syms.Intern(archive.model_name);
  struct EnvRow {
    uint32_t node, hostname;
    double time, cpu, net, disk;
  };
  std::vector<EnvRow> env;
  for (const EnvironmentRecord& r : archive.environment) {
    env.push_back({r.node, syms.Intern(r.hostname), r.time_seconds,
                   r.cpu_seconds_per_second, r.net_bytes_per_second,
                   r.disk_bytes_per_second});
  }
  struct LintRow {
    uint32_t defect, detail;
    uint64_t op_id, seq;
    bool repaired;
  };
  std::vector<LintRow> lint;
  for (const LintFinding& f : archive.lint.findings) {
    lint.push_back({syms.Intern(LintDefectName(f.defect)),
                    syms.Intern(f.detail), f.op_id, f.seq, f.repaired});
  }

  // ---- assemble -------------------------------------------------------
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(out, kGbaVersion);
  PutU64(out, 0);  // file_size, patched below
  const size_t section_table = out.size();
  for (int i = 0; i < 7; ++i) PutU64(out, 0);  // offsets, patched below
  uint64_t offsets[7];

  offsets[0] = out.size();  // strings
  syms.Serialize(out);

  offsets[1] = out.size();  // meta
  PutU32(out, static_cast<uint32_t>(meta.size()));
  for (const auto& [key, value] : meta) {
    PutU32(out, key);
    PutU32(out, value);
  }
  PutU32(out, model_sym);
  PutU8(out, archive.status == ArchiveStatus::kIncomplete ? 1 : 0);
  PutU8(out, root != nullptr ? 1 : 0);

  offsets[2] = out.size();  // ops (columnar)
  PutU32(out, static_cast<uint32_t>(ops.size()));
  for (const OpRow& r : ops) PutU32(out, r.actor_type);
  for (const OpRow& r : ops) PutU32(out, r.actor_id);
  for (const OpRow& r : ops) PutU32(out, r.mission_type);
  for (const OpRow& r : ops) PutU32(out, r.mission_id);
  for (const OpRow& r : ops) PutU32(out, r.subtree_size);
  for (const OpRow& r : ops) PutU32(out, r.info_begin);
  for (const OpRow& r : ops) PutU32(out, r.info_count);

  offsets[3] = out.size();  // infos (columnar)
  PutU32(out, static_cast<uint32_t>(infos.size()));
  for (const InfoRow& r : infos) PutU32(out, r.name);
  for (const InfoRow& r : infos) PutU32(out, r.source);
  for (const InfoRow& r : infos) PutU64(out, r.value_off);

  offsets[4] = out.size();  // values blob
  PutU64(out, values.size());
  out.append(values);

  offsets[5] = out.size();  // environment
  PutU32(out, static_cast<uint32_t>(env.size()));
  for (const EnvRow& r : env) {
    PutU32(out, r.node);
    PutU32(out, r.hostname);
    PutF64(out, r.time);
    PutF64(out, r.cpu);
    PutF64(out, r.net);
    PutF64(out, r.disk);
  }

  offsets[6] = out.size();  // lint
  PutU32(out, static_cast<uint32_t>(lint.size()));
  for (const LintRow& r : lint) {
    PutU32(out, r.defect);
    PutU32(out, r.detail);
    PutU64(out, r.op_id);
    PutU64(out, r.seq);
    PutU8(out, r.repaired ? 1 : 0);
  }

  PatchU64(out, 8, out.size());
  for (int i = 0; i < 7; ++i) PatchU64(out, section_table + 8 * i, offsets[i]);
  return out;
}

}  // namespace

std::string EncodeGba(const PerformanceArchive& archive) {
  return EncodeGbaImpl(archive, archive.root.get());
}

std::string EncodeGbaSubtree(const ArchivedOperation& root) {
  PerformanceArchive shell;
  return EncodeGbaImpl(shell, &root);
}

// ----------------------------------------------------------- GbaReader ----

Result<uint32_t> GbaReader::ReadU32(uint64_t off) const {
  if (off + 4 > bytes_.size()) return Truncated("fixed-width");
  return GetU32(bytes_.data() + off);
}

Result<uint64_t> GbaReader::ReadU64(uint64_t off) const {
  if (off + 8 > bytes_.size()) return Truncated("fixed-width");
  return GetU64(bytes_.data() + off);
}

Result<GbaReader> GbaReader::Open(std::string_view bytes) {
  if (!LooksLikeGba(bytes)) {
    return granula::Status::Corruption("gba: bad magic (not a GBA archive)");
  }
  if (bytes.size() < kHeaderSize) return Truncated("header");
  const uint32_t version = GetU32(bytes.data() + 4);
  if (version != kGbaVersion) {
    return granula::Status::InvalidArgument(
        StrFormat("gba: version %u unsupported (this build reads version %u)",
                  version, kGbaVersion));
  }
  const uint64_t file_size = GetU64(bytes.data() + 8);
  if (file_size != bytes.size()) {
    return granula::Status::Corruption(
        StrFormat("gba: file size mismatch (header says %llu, have %zu bytes)",
                  static_cast<unsigned long long>(file_size), bytes.size()));
  }

  GbaReader reader;
  reader.bytes_ = bytes;
  uint64_t* section[7] = {&reader.strings_off_, &reader.meta_off_,
                          &reader.ops_off_,     &reader.infos_off_,
                          &reader.values_off_,  &reader.env_off_,
                          &reader.lint_off_};
  for (int i = 0; i < 7; ++i) {
    *section[i] = GetU64(bytes.data() + 16 + 8 * i);
    if (*section[i] > bytes.size()) return Truncated("header");
  }

  // Strings: count, offsets[count+1], blob. Individual offsets are
  // validated lazily in Sym(); only the section shape is checked here so
  // Open() stays O(1) for partial loads.
  GRANULA_ASSIGN_OR_RETURN(reader.string_count_,
                           reader.ReadU32(reader.strings_off_));
  reader.string_offsets_ = reader.strings_off_ + 4;
  const uint64_t offsets_bytes =
      (static_cast<uint64_t>(reader.string_count_) + 1) * 8;
  if (reader.string_offsets_ + offsets_bytes > bytes.size()) {
    return Truncated("strings");
  }
  reader.string_blob_ = reader.string_offsets_ + offsets_bytes;
  GRANULA_ASSIGN_OR_RETURN(
      reader.string_blob_len_,
      reader.ReadU64(reader.string_offsets_ + 8 * reader.string_count_));
  if (reader.string_blob_ + reader.string_blob_len_ > bytes.size()) {
    return Truncated("strings");
  }

  GRANULA_ASSIGN_OR_RETURN(reader.ops_count_, reader.ReadU32(reader.ops_off_));
  const uint64_t ops_bytes = 4 + static_cast<uint64_t>(reader.ops_count_) * 28;
  if (reader.ops_off_ + ops_bytes > bytes.size()) return Truncated("ops");

  GRANULA_ASSIGN_OR_RETURN(reader.info_count_,
                           reader.ReadU32(reader.infos_off_));
  const uint64_t info_bytes =
      4 + static_cast<uint64_t>(reader.info_count_) * 16;
  if (reader.infos_off_ + info_bytes > bytes.size()) return Truncated("infos");

  GRANULA_ASSIGN_OR_RETURN(reader.values_blob_len_,
                           reader.ReadU64(reader.values_off_));
  reader.values_blob_ = reader.values_off_ + 8;
  if (reader.values_blob_ + reader.values_blob_len_ > bytes.size()) {
    return Truncated("values");
  }
  return reader;
}

Result<std::string_view> GbaReader::Sym(uint32_t id) const {
  if (id >= string_count_) {
    return granula::Status::Corruption(StrFormat("gba: symbol id %u out of range", id));
  }
  GRANULA_ASSIGN_OR_RETURN(uint64_t begin,
                           ReadU64(string_offsets_ + 8 * uint64_t{id}));
  GRANULA_ASSIGN_OR_RETURN(uint64_t end,
                           ReadU64(string_offsets_ + 8 * (uint64_t{id} + 1)));
  if (begin > end || end > string_blob_len_) {
    return granula::Status::Corruption("gba: corrupt string table offsets");
  }
  return std::string_view(bytes_.data() + string_blob_ + begin, end - begin);
}

Result<uint32_t> GbaReader::OpsCol(uint32_t column, uint32_t row) const {
  if (row >= ops_count_) {
    return granula::Status::Corruption(
        StrFormat("gba: operation row %u out of range", row));
  }
  return ReadU32(ops_off_ + 4 +
                 (static_cast<uint64_t>(column) * ops_count_ + row) * 4);
}

Result<uint32_t> GbaReader::SubtreeSize(uint32_t row) const {
  GRANULA_ASSIGN_OR_RETURN(uint32_t size, OpsCol(4, row));
  if (size == 0 || uint64_t{row} + size > ops_count_) {
    return granula::Status::Corruption(
        StrFormat("gba: corrupt subtree size at row %u", row));
  }
  return size;
}

bool GbaReader::RowMatchesSegment(uint32_t row,
                                  std::string_view segment) const {
  // Mirrors archive.cc MatchSegment: mission_id wins; an empty mission_id
  // falls back to mission_type. Corruption here reads as "no match" — the
  // decode that follows a successful walk still reports it.
  auto mission_id_sym = OpsCol(3, row);
  if (!mission_id_sym.ok()) return false;
  auto mission_id = Sym(*mission_id_sym);
  if (!mission_id.ok()) return false;
  if (!mission_id->empty()) return *mission_id == segment;
  auto mission_type_sym = OpsCol(2, row);
  if (!mission_type_sym.ok()) return false;
  auto mission_type = Sym(*mission_type_sym);
  if (!mission_type.ok()) return false;
  return *mission_type == segment;
}

Result<Json> GbaReader::DecodeValue(uint64_t& off) const {
  const uint64_t end = values_blob_ + values_blob_len_;
  // Depth-limited recursive decode via an inner lambda.
  auto decode = [&](auto&& self, int depth) -> Result<Json> {
    if (depth > kMaxValueDepth) {
      return granula::Status::Corruption("gba: info value nested too deeply");
    }
    if (off + 1 > end) return Truncated("values");
    const uint8_t tag = static_cast<uint8_t>(bytes_[off]);
    ++off;
    switch (tag) {
      case kTagNull:
        return Json();
      case kTagFalse:
        return Json(false);
      case kTagTrue:
        return Json(true);
      case kTagInt: {
        if (off + 8 > end) return Truncated("values");
        int64_t v = static_cast<int64_t>(GetU64(bytes_.data() + off));
        off += 8;
        return Json(v);
      }
      case kTagDouble: {
        if (off + 8 > end) return Truncated("values");
        double v = GetF64(bytes_.data() + off);
        off += 8;
        return Json(v);
      }
      case kTagString: {
        if (off + 4 > end) return Truncated("values");
        uint32_t sym = GetU32(bytes_.data() + off);
        off += 4;
        GRANULA_ASSIGN_OR_RETURN(std::string_view s, Sym(sym));
        return Json(s);
      }
      case kTagArray: {
        if (off + 4 > end) return Truncated("values");
        uint32_t count = GetU32(bytes_.data() + off);
        off += 4;
        Json array = Json::MakeArray();
        for (uint32_t i = 0; i < count; ++i) {
          GRANULA_ASSIGN_OR_RETURN(Json element, self(self, depth + 1));
          array.Append(std::move(element));
        }
        return array;
      }
      case kTagObject: {
        if (off + 4 > end) return Truncated("values");
        uint32_t count = GetU32(bytes_.data() + off);
        off += 4;
        Json object = Json::MakeObject();
        for (uint32_t i = 0; i < count; ++i) {
          if (off + 4 > end) return Truncated("values");
          uint32_t key_sym = GetU32(bytes_.data() + off);
          off += 4;
          GRANULA_ASSIGN_OR_RETURN(std::string_view key, Sym(key_sym));
          GRANULA_ASSIGN_OR_RETURN(Json element, self(self, depth + 1));
          object[std::string(key)] = std::move(element);
        }
        return object;
      }
      default:
        return granula::Status::Corruption(
            StrFormat("gba: unknown value tag %u", tag));
    }
  };
  return decode(decode, 0);
}

Result<std::unique_ptr<ArchivedOperation>> GbaReader::DecodeRow(
    uint32_t row) const {
  auto op = std::make_unique<ArchivedOperation>();
  GRANULA_ASSIGN_OR_RETURN(uint32_t actor_type_sym, OpsCol(0, row));
  GRANULA_ASSIGN_OR_RETURN(uint32_t actor_id_sym, OpsCol(1, row));
  GRANULA_ASSIGN_OR_RETURN(uint32_t mission_type_sym, OpsCol(2, row));
  GRANULA_ASSIGN_OR_RETURN(uint32_t mission_id_sym, OpsCol(3, row));
  GRANULA_ASSIGN_OR_RETURN(std::string_view actor_type, Sym(actor_type_sym));
  GRANULA_ASSIGN_OR_RETURN(std::string_view actor_id, Sym(actor_id_sym));
  GRANULA_ASSIGN_OR_RETURN(std::string_view mission_type,
                           Sym(mission_type_sym));
  GRANULA_ASSIGN_OR_RETURN(std::string_view mission_id, Sym(mission_id_sym));
  op->actor_type = std::string(actor_type);
  op->actor_id = std::string(actor_id);
  op->mission_type = std::string(mission_type);
  op->mission_id = std::string(mission_id);

  GRANULA_ASSIGN_OR_RETURN(uint32_t info_begin, OpsCol(5, row));
  GRANULA_ASSIGN_OR_RETURN(uint32_t info_count, OpsCol(6, row));
  if (uint64_t{info_begin} + info_count > info_count_) {
    return granula::Status::Corruption(
        StrFormat("gba: info range of row %u out of bounds", row));
  }
  for (uint32_t k = info_begin; k < info_begin + info_count; ++k) {
    GRANULA_ASSIGN_OR_RETURN(uint32_t name_sym,
                             ReadU32(infos_off_ + 4 + 4 * uint64_t{k}));
    GRANULA_ASSIGN_OR_RETURN(
        uint32_t source_sym,
        ReadU32(infos_off_ + 4 + 4 * uint64_t{info_count_} + 4 * uint64_t{k}));
    GRANULA_ASSIGN_OR_RETURN(
        uint64_t value_rel,
        ReadU64(infos_off_ + 4 + 8 * uint64_t{info_count_} + 8 * uint64_t{k}));
    if (value_rel > values_blob_len_) return Truncated("values");
    GRANULA_ASSIGN_OR_RETURN(std::string_view name, Sym(name_sym));
    GRANULA_ASSIGN_OR_RETURN(std::string_view source, Sym(source_sym));
    uint64_t cursor = values_blob_ + value_rel;
    GRANULA_ASSIGN_OR_RETURN(Json value, DecodeValue(cursor));
    op->SetInfo(std::string(name), std::move(value), std::string(source));
  }
  return op;
}

Result<std::unique_ptr<ArchivedOperation>> GbaReader::DecodeTree(
    uint32_t row, int levels_left) const {
  GRANULA_ASSIGN_OR_RETURN(auto op, DecodeRow(row));
  if (levels_left != 1) {
    GRANULA_ASSIGN_OR_RETURN(uint32_t size, SubtreeSize(row));
    const uint32_t end = row + size;
    uint32_t child = row + 1;
    while (child < end) {
      GRANULA_ASSIGN_OR_RETURN(
          auto subtree,
          DecodeTree(child, levels_left > 0 ? levels_left - 1 : 0));
      op->children.push_back(std::move(subtree));
      GRANULA_ASSIGN_OR_RETURN(uint32_t child_size, SubtreeSize(child));
      child += child_size;
    }
  }
  return op;
}

std::map<std::string, std::string> GbaReader::JobMetadata() const {
  std::map<std::string, std::string> meta;
  auto count = ReadU32(meta_off_);
  if (!count.ok()) return meta;
  for (uint32_t i = 0; i < *count; ++i) {
    auto key_sym = ReadU32(meta_off_ + 4 + 8 * uint64_t{i});
    auto val_sym = ReadU32(meta_off_ + 8 + 8 * uint64_t{i});
    if (!key_sym.ok() || !val_sym.ok()) break;
    auto key = Sym(*key_sym);
    auto val = Sym(*val_sym);
    if (!key.ok() || !val.ok()) break;
    meta[std::string(*key)] = std::string(*val);
  }
  return meta;
}

std::string GbaReader::ModelName() const {
  auto count = ReadU32(meta_off_);
  if (!count.ok()) return "";
  auto model_sym = ReadU32(meta_off_ + 4 + 8 * uint64_t{*count});
  if (!model_sym.ok()) return "";
  auto model = Sym(*model_sym);
  return model.ok() ? std::string(*model) : "";
}

ArchiveStatus GbaReader::Status() const {
  auto count = ReadU32(meta_off_);
  if (!count.ok()) return ArchiveStatus::kComplete;
  const uint64_t status_off = meta_off_ + 4 + 8 * uint64_t{*count} + 4;
  if (status_off >= bytes_.size()) return ArchiveStatus::kComplete;
  return bytes_[status_off] == 1 ? ArchiveStatus::kIncomplete
                                 : ArchiveStatus::kComplete;
}

Result<PerformanceArchive> GbaReader::DecodeWithRoot(
    std::unique_ptr<ArchivedOperation> root) const {
  PerformanceArchive archive;
  archive.job_metadata = JobMetadata();
  archive.model_name = ModelName();
  archive.status = Status();
  archive.root = std::move(root);

  GRANULA_ASSIGN_OR_RETURN(uint32_t env_count, ReadU32(env_off_));
  uint64_t off = env_off_ + 4;
  if (off + uint64_t{env_count} * 40 > bytes_.size()) {
    return Truncated("environment");
  }
  archive.environment.reserve(env_count);
  for (uint32_t i = 0; i < env_count; ++i) {
    EnvironmentRecord r;
    r.node = GetU32(bytes_.data() + off);
    GRANULA_ASSIGN_OR_RETURN(std::string_view hostname,
                             Sym(GetU32(bytes_.data() + off + 4)));
    r.hostname = std::string(hostname);
    r.time_seconds = GetF64(bytes_.data() + off + 8);
    r.cpu_seconds_per_second = GetF64(bytes_.data() + off + 16);
    r.net_bytes_per_second = GetF64(bytes_.data() + off + 24);
    r.disk_bytes_per_second = GetF64(bytes_.data() + off + 32);
    archive.environment.push_back(std::move(r));
    off += 40;
  }

  GRANULA_ASSIGN_OR_RETURN(uint32_t lint_count, ReadU32(lint_off_));
  off = lint_off_ + 4;
  if (off + uint64_t{lint_count} * 25 > bytes_.size()) {
    return Truncated("lint");
  }
  for (uint32_t i = 0; i < lint_count; ++i) {
    LintFinding finding;
    GRANULA_ASSIGN_OR_RETURN(std::string_view defect_name,
                             Sym(GetU32(bytes_.data() + off)));
    GRANULA_ASSIGN_OR_RETURN(finding.defect, ParseLintDefect(defect_name));
    GRANULA_ASSIGN_OR_RETURN(std::string_view detail,
                             Sym(GetU32(bytes_.data() + off + 4)));
    finding.detail = std::string(detail);
    finding.op_id = GetU64(bytes_.data() + off + 8);
    finding.seq = GetU64(bytes_.data() + off + 16);
    finding.repaired = bytes_[off + 24] == 1;
    archive.lint.findings.push_back(std::move(finding));
    off += 25;
  }
  return archive;
}

Result<PerformanceArchive> GbaReader::DecodeArchive() const {
  return DecodeShallow(0);
}

Result<PerformanceArchive> GbaReader::DecodeShallow(int levels) const {
  std::unique_ptr<ArchivedOperation> root;
  if (ops_count_ > 0) {
    GRANULA_ASSIGN_OR_RETURN(root, DecodeTree(0, levels <= 0 ? 0 : levels));
  }
  return DecodeWithRoot(std::move(root));
}

Result<std::unique_ptr<ArchivedOperation>> GbaReader::DecodeSubtree(
    std::string_view path) const {
  std::vector<std::string> segments = StrSplit(path, '/');
  auto not_found = [&] {
    return granula::Status::NotFound(
        StrFormat("no operation at path '%.*s'",
                  static_cast<int>(path.size()), path.data()));
  };
  if (segments.empty() || ops_count_ == 0) return not_found();
  if (!RowMatchesSegment(0, segments[0])) return not_found();
  uint32_t row = 0;
  for (size_t i = 1; i < segments.size(); ++i) {
    GRANULA_ASSIGN_OR_RETURN(uint32_t size, SubtreeSize(row));
    const uint32_t end = row + size;
    uint32_t child = row + 1;
    bool found = false;
    while (child < end) {
      if (RowMatchesSegment(child, segments[i])) {
        row = child;
        found = true;
        break;
      }
      GRANULA_ASSIGN_OR_RETURN(uint32_t child_size, SubtreeSize(child));
      child += child_size;
    }
    if (!found) return not_found();
  }
  return DecodeTree(row, 0);
}

}  // namespace granula::core
