#ifndef GRANULA_GRANULA_MODEL_PERFORMANCE_MODEL_H_
#define GRANULA_GRANULA_MODEL_PERFORMANCE_MODEL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "granula/model/info_rule.h"

namespace granula::core {

// Abstraction levels from the paper (Section 3.2): every platform is
// modeled with at least these three; level 4+ is finer implementation
// detail (e.g. Giraph's PreStep/Compute/PostStep).
inline constexpr int kDomainLevel = 1;
inline constexpr int kSystemLevel = 2;
inline constexpr int kImplementationLevel = 3;

// The analyst's description of one operation type: which actor/mission pair
// it is, where it sits in the hierarchy, and how to derive its metrics.
struct OperationModel {
  std::string actor_type;
  std::string mission_type;
  int level = kDomainLevel;
  // Key of the parent operation model ("Actor@Mission"); empty for the root.
  std::string parent_key;
  std::vector<InfoRulePtr> rules;

  std::string Key() const { return actor_type + "@" + mission_type; }
};

// A Granula performance model (paper Fig. 1/Fig. 4): a hierarchy of
// operation models plus info-derivation rules. Models are built
// incrementally — coarse first, refined where the analyst needs detail —
// and can be truncated with WithMaxLevel to trade archive detail for cost
// (requirement R3).
class PerformanceModel {
 public:
  explicit PerformanceModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Registers the root operation model (level 1, no parent).
  Status AddRoot(std::string actor_type, std::string mission_type);

  // Registers a child operation model under (parent_actor@parent_mission).
  // The child's level is parent level + 1 unless `level` is given.
  Status AddOperation(std::string actor_type, std::string mission_type,
                      const std::string& parent_actor_type,
                      const std::string& parent_mission_type,
                      std::optional<int> level = std::nullopt);

  // Attaches an info-derivation rule to an operation model. Every model
  // gets the Duration rule automatically at Add time.
  Status AddRule(const std::string& actor_type,
                 const std::string& mission_type, InfoRulePtr rule);

  const OperationModel* Find(const std::string& actor_type,
                             const std::string& mission_type) const;
  bool Contains(const std::string& actor_type,
                const std::string& mission_type) const;

  const OperationModel* root() const;
  const std::map<std::string, OperationModel>& operations() const {
    return operations_;
  }
  int max_level() const;

  // Structural checks: exactly one root, every parent key resolves, levels
  // increase along parent links.
  Status Validate() const;

  // A copy with every operation model deeper than `level` removed — the
  // mechanism behind incremental, cost-bounded evaluation.
  PerformanceModel WithMaxLevel(int level) const;

 private:
  std::string name_;
  std::map<std::string, OperationModel> operations_;
  std::string root_key_;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_MODEL_PERFORMANCE_MODEL_H_
