#ifndef GRANULA_GRANULA_MODEL_INFO_RULE_H_
#define GRANULA_GRANULA_MODEL_INFO_RULE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "granula/archive/archive.h"

namespace granula::core {

// A rule that derives one info of an operation from its raw infos and its
// (already-derived) filial operations — the "rules to transform raw info
// into performance metrics" of the paper's modeling sub-process (P1).
//
// The archiver applies rules bottom-up: when Derive runs, every child of
// `op` carries its full info set.
class InfoRule {
 public:
  virtual ~InfoRule() = default;

  virtual const std::string& info_name() const = 0;

  // Produces the info value, or NotFound when the inputs are missing (the
  // archiver then simply skips the info rather than failing the archive).
  virtual Result<Json> Derive(const ArchivedOperation& op) const = 0;

  // Human-readable provenance stored as the info's source.
  virtual std::string Describe() const = 0;
};

using InfoRulePtr = std::shared_ptr<const InfoRule>;

// Duration = EndTime - StartTime, in nanoseconds.
InfoRulePtr MakeDurationRule();

// Aggregates a numeric info over children:
//   MakeChildAggregateRule("ComputeTime", "Sum", "Duration", "Compute")
// derives op.ComputeTime = sum of child.Duration over children whose
// mission_type is "Compute" (empty child_mission = all children).
enum class Aggregate { kSum, kMax, kMin, kCount, kMean };
InfoRulePtr MakeChildAggregateRule(std::string info_name, Aggregate agg,
                                   std::string child_info,
                                   std::string child_mission_type = "");

// Copies a numeric info and divides by the operation's own Duration; used
// for rates (e.g. EdgesPerSecond from EdgesProcessed).
InfoRulePtr MakeRateRule(std::string info_name, std::string numerator_info);

// Escape hatch for model-specific metrics.
InfoRulePtr MakeCustomRule(
    std::string info_name, std::string description,
    std::function<Result<Json>(const ArchivedOperation&)> fn);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_MODEL_INFO_RULE_H_
