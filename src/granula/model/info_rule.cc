#include "granula/model/info_rule.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace granula::core {

namespace {

class DurationRule : public InfoRule {
 public:
  DurationRule() : name_("Duration") {}

  const std::string& info_name() const override { return name_; }

  Result<Json> Derive(const ArchivedOperation& op) const override {
    const InfoValue* start = op.FindInfo("StartTime");
    const InfoValue* end = op.FindInfo("EndTime");
    if (start == nullptr || end == nullptr) {
      return Status::NotFound("StartTime/EndTime missing");
    }
    return Json(end->value.AsInt() - start->value.AsInt());
  }

  std::string Describe() const override { return "EndTime - StartTime"; }

 private:
  std::string name_;
};

const char* AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kSum:
      return "sum";
    case Aggregate::kMax:
      return "max";
    case Aggregate::kMin:
      return "min";
    case Aggregate::kCount:
      return "count";
    case Aggregate::kMean:
      return "mean";
  }
  return "?";
}

class ChildAggregateRule : public InfoRule {
 public:
  ChildAggregateRule(std::string info_name, Aggregate agg,
                     std::string child_info, std::string child_mission_type)
      : name_(std::move(info_name)),
        agg_(agg),
        child_info_(std::move(child_info)),
        child_mission_type_(std::move(child_mission_type)) {}

  const std::string& info_name() const override { return name_; }

  Result<Json> Derive(const ArchivedOperation& op) const override {
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    int64_t count = 0;
    for (const auto& child : op.children) {
      if (!child_mission_type_.empty() &&
          child->mission_type != child_mission_type_) {
        continue;
      }
      const InfoValue* info = child->FindInfo(child_info_);
      if (info == nullptr || !info->value.is_number()) continue;
      double v = info->value.AsDouble();
      sum += v;
      min = std::min(min, v);
      max = std::max(max, v);
      ++count;
    }
    if (count == 0 && agg_ != Aggregate::kCount) {
      return Status::NotFound("no matching children");
    }
    switch (agg_) {
      case Aggregate::kSum:
        return Json(sum);
      case Aggregate::kMax:
        return Json(max);
      case Aggregate::kMin:
        return Json(min);
      case Aggregate::kCount:
        return Json(count);
      case Aggregate::kMean:
        return Json(sum / static_cast<double>(count));
    }
    return Status::Internal("bad aggregate");
  }

  std::string Describe() const override {
    return StrFormat("%s of %s over children%s%s", AggregateName(agg_),
                     child_info_.c_str(),
                     child_mission_type_.empty() ? "" : " of type ",
                     child_mission_type_.c_str());
  }

 private:
  std::string name_;
  Aggregate agg_;
  std::string child_info_;
  std::string child_mission_type_;
};

class RateRule : public InfoRule {
 public:
  RateRule(std::string info_name, std::string numerator_info)
      : name_(std::move(info_name)),
        numerator_info_(std::move(numerator_info)) {}

  const std::string& info_name() const override { return name_; }

  Result<Json> Derive(const ArchivedOperation& op) const override {
    const InfoValue* numerator = op.FindInfo(numerator_info_);
    if (numerator == nullptr || !numerator->value.is_number()) {
      return Status::NotFound("numerator missing");
    }
    double seconds = op.Duration().seconds();
    if (seconds <= 0) return Status::NotFound("zero duration");
    return Json(numerator->value.AsDouble() / seconds);
  }

  std::string Describe() const override {
    return numerator_info_ + " / Duration";
  }

 private:
  std::string name_;
  std::string numerator_info_;
};

class CustomRule : public InfoRule {
 public:
  CustomRule(std::string info_name, std::string description,
             std::function<Result<Json>(const ArchivedOperation&)> fn)
      : name_(std::move(info_name)),
        description_(std::move(description)),
        fn_(std::move(fn)) {}

  const std::string& info_name() const override { return name_; }
  Result<Json> Derive(const ArchivedOperation& op) const override {
    return fn_(op);
  }
  std::string Describe() const override { return description_; }

 private:
  std::string name_;
  std::string description_;
  std::function<Result<Json>(const ArchivedOperation&)> fn_;
};

}  // namespace

InfoRulePtr MakeDurationRule() { return std::make_shared<DurationRule>(); }

InfoRulePtr MakeChildAggregateRule(std::string info_name, Aggregate agg,
                                   std::string child_info,
                                   std::string child_mission_type) {
  return std::make_shared<ChildAggregateRule>(
      std::move(info_name), agg, std::move(child_info),
      std::move(child_mission_type));
}

InfoRulePtr MakeRateRule(std::string info_name, std::string numerator_info) {
  return std::make_shared<RateRule>(std::move(info_name),
                                    std::move(numerator_info));
}

InfoRulePtr MakeCustomRule(
    std::string info_name, std::string description,
    std::function<Result<Json>(const ArchivedOperation&)> fn) {
  return std::make_shared<CustomRule>(std::move(info_name),
                                      std::move(description), std::move(fn));
}

}  // namespace granula::core
