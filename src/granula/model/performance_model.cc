#include "granula/model/performance_model.h"

#include <algorithm>

#include "common/strings.h"

namespace granula::core {

Status PerformanceModel::AddRoot(std::string actor_type,
                                 std::string mission_type) {
  if (!root_key_.empty()) {
    return Status::AlreadyExists("model already has a root operation");
  }
  OperationModel op;
  op.actor_type = std::move(actor_type);
  op.mission_type = std::move(mission_type);
  op.level = kDomainLevel;
  op.rules.push_back(MakeDurationRule());
  root_key_ = op.Key();
  operations_[root_key_] = std::move(op);
  return Status::OK();
}

Status PerformanceModel::AddOperation(std::string actor_type,
                                      std::string mission_type,
                                      const std::string& parent_actor_type,
                                      const std::string& parent_mission_type,
                                      std::optional<int> level) {
  std::string parent_key = parent_actor_type + "@" + parent_mission_type;
  auto parent = operations_.find(parent_key);
  if (parent == operations_.end()) {
    return Status::NotFound(
        StrFormat("parent operation model %s", parent_key.c_str()));
  }
  OperationModel op;
  op.actor_type = std::move(actor_type);
  op.mission_type = std::move(mission_type);
  op.level = level.value_or(parent->second.level + 1);
  op.parent_key = parent_key;
  op.rules.push_back(MakeDurationRule());
  std::string key = op.Key();
  if (operations_.count(key) > 0) {
    return Status::AlreadyExists(
        StrFormat("operation model %s", key.c_str()));
  }
  operations_[key] = std::move(op);
  return Status::OK();
}

Status PerformanceModel::AddRule(const std::string& actor_type,
                                 const std::string& mission_type,
                                 InfoRulePtr rule) {
  auto it = operations_.find(actor_type + "@" + mission_type);
  if (it == operations_.end()) {
    return Status::NotFound(StrFormat("operation model %s@%s",
                                      actor_type.c_str(),
                                      mission_type.c_str()));
  }
  it->second.rules.push_back(std::move(rule));
  return Status::OK();
}

const OperationModel* PerformanceModel::Find(
    const std::string& actor_type, const std::string& mission_type) const {
  auto it = operations_.find(actor_type + "@" + mission_type);
  return it == operations_.end() ? nullptr : &it->second;
}

bool PerformanceModel::Contains(const std::string& actor_type,
                                const std::string& mission_type) const {
  return Find(actor_type, mission_type) != nullptr;
}

const OperationModel* PerformanceModel::root() const {
  auto it = operations_.find(root_key_);
  return it == operations_.end() ? nullptr : &it->second;
}

int PerformanceModel::max_level() const {
  int level = 0;
  for (const auto& [key, op] : operations_) level = std::max(level, op.level);
  return level;
}

Status PerformanceModel::Validate() const {
  if (root_key_.empty()) return Status::FailedPrecondition("model has no root");
  for (const auto& [key, op] : operations_) {
    if (key == root_key_) {
      if (!op.parent_key.empty()) {
        return Status::Internal("root has a parent");
      }
      continue;
    }
    if (op.parent_key.empty()) {
      return Status::FailedPrecondition(
          StrFormat("non-root operation %s has no parent", key.c_str()));
    }
    auto parent = operations_.find(op.parent_key);
    if (parent == operations_.end()) {
      return Status::FailedPrecondition(
          StrFormat("operation %s has unknown parent %s", key.c_str(),
                    op.parent_key.c_str()));
    }
    if (op.level <= parent->second.level) {
      return Status::FailedPrecondition(
          StrFormat("operation %s level %d not deeper than parent level %d",
                    key.c_str(), op.level, parent->second.level));
    }
  }
  return Status::OK();
}

PerformanceModel PerformanceModel::WithMaxLevel(int level) const {
  PerformanceModel trimmed(name_ + StrFormat("@L%d", level));
  trimmed.root_key_ = root_key_;
  for (const auto& [key, op] : operations_) {
    if (op.level <= level) trimmed.operations_[key] = op;
  }
  // Drop operations whose parent chain was trimmed away (possible when
  // levels were assigned manually with gaps); iterate to a fixpoint since
  // removals can cascade.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = trimmed.operations_.begin();
         it != trimmed.operations_.end();) {
      const OperationModel& op = it->second;
      if (!op.parent_key.empty() &&
          trimmed.operations_.count(op.parent_key) == 0) {
        it = trimmed.operations_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  return trimmed;
}

}  // namespace granula::core
