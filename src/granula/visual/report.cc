#include "granula/visual/report.h"

#include <fstream>

#include "common/strings.h"
#include "granula/visual/svg.h"

namespace granula::core {

namespace {

std::string HtmlEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendOperationRows(const ArchivedOperation& op, int depth,
                         int max_depth, double root_seconds,
                         std::string* out) {
  double seconds = op.Duration().seconds();
  *out += StrFormat(
      "<tr><td style=\"padding-left:%dpx\">%s</td><td>%s</td>"
      "<td>%s</td></tr>\n",
      8 + depth * 18, HtmlEscape(op.DisplayName()).c_str(),
      HumanSeconds(seconds).c_str(),
      root_seconds > 0 ? HumanPercent(seconds / root_seconds).c_str() : "");
  if (max_depth > 0 && depth + 1 >= max_depth) return;
  for (const auto& child : op.children) {
    AppendOperationRows(*child, depth + 1, max_depth, root_seconds, out);
  }
}

}  // namespace

std::string RenderHtmlReport(const PerformanceArchive& archive,
                             const ReportOptions& options) {
  std::string html;
  html += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  html += "<title>" + HtmlEscape(options.title) + "</title>\n";
  html +=
      "<style>body{font-family:sans-serif;max-width:980px;margin:24px "
      "auto;color:#222}h2{border-bottom:1px solid #ccc;padding-bottom:4px}"
      "table{border-collapse:collapse;font-size:13px}td,th{border:1px solid "
      "#ddd;padding:3px 8px;text-align:left}.finding{padding:6px 10px;"
      "margin:4px 0;border-left:4px solid #999;background:#f7f7f7}"
      ".critical{border-color:#c0392b}.warning{border-color:#e67e22}"
      "pre{background:#f2f2f2;padding:8px}</style></head><body>\n";
  html += "<h1>" + HtmlEscape(options.title) + "</h1>\n";

  // Job metadata.
  html += "<h2>Job</h2>\n<table>\n";
  for (const auto& [key, value] : archive.job_metadata) {
    html += "<tr><th>" + HtmlEscape(key) + "</th><td>" + HtmlEscape(value) +
            "</td></tr>\n";
  }
  html += "<tr><th>model</th><td>" + HtmlEscape(archive.model_name) +
          "</td></tr>\n";
  if (archive.root != nullptr) {
    html += StrFormat("<tr><th>total</th><td>%s</td></tr>\n",
                      HumanSeconds(archive.root->Duration().seconds())
                          .c_str());
    html += StrFormat("<tr><th>operations</th><td>%llu</td></tr>\n",
                      static_cast<unsigned long long>(
                          archive.OperationCount()));
  }
  html += "</table>\n";

  html += "<h2>Job decomposition</h2>\n";
  html += RenderBreakdownSvg(archive);

  if (!archive.environment.empty()) {
    html += "<h2>Resource utilization</h2>\n";
    html += RenderUtilizationSvg(archive);
  }

  if (!options.timeline_actor_type.empty()) {
    std::string timeline =
        RenderTimelineSvg(archive, options.timeline_actor_type,
                          options.timeline_mission_type);
    if (timeline.find("no operations") == std::string::npos) {
      html += "<h2>" + HtmlEscape(options.timeline_actor_type) +
              " timeline</h2>\n" + timeline;
    }
  }

  if (options.include_findings) {
    html += "<h2>Automated findings</h2>\n";
    std::vector<Finding> findings =
        AnalyzeChokepoints(archive, options.chokepoint_options);
    if (findings.empty()) {
      html += "<p>no choke-points found</p>\n";
    }
    for (const Finding& finding : findings) {
      const char* css = finding.severity == Severity::kCritical
                            ? "finding critical"
                            : finding.severity == Severity::kWarning
                                  ? "finding warning"
                                  : "finding";
      html += StrFormat(
          "<div class=\"%s\"><b>%s</b> — %s<br>%s</div>\n", css,
          std::string(FindingKindName(finding.kind)).c_str(),
          HtmlEscape(finding.operation).c_str(),
          HtmlEscape(finding.description).c_str());
    }
  }

  if (archive.root != nullptr) {
    html += "<h2>Operations</h2>\n<table>\n";
    html += "<tr><th>operation</th><th>duration</th><th>share</th></tr>\n";
    AppendOperationRows(*archive.root, 0, options.tree_depth,
                        archive.root->Duration().seconds(), &html);
    html += "</table>\n";
  }

  html += "</body></html>\n";
  return html;
}

Status WriteHtmlReport(const PerformanceArchive& archive,
                       const ReportOptions& options,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  file << RenderHtmlReport(archive, options);
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace granula::core
