#ifndef GRANULA_GRANULA_VISUAL_MODEL_VIEW_H_
#define GRANULA_GRANULA_VISUAL_MODEL_VIEW_H_

#include <string>

#include "granula/model/performance_model.h"

namespace granula::core {

// Renders a performance model itself (not a run) as an indented tree with
// levels and derivation rules — the textual form of the paper's Fig. 4.
// Analysts use this to review and share models before monitoring anything.
std::string RenderModelTree(const PerformanceModel& model);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_VISUAL_MODEL_VIEW_H_
