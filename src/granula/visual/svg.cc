#include "granula/visual/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <vector>

#include "common/strings.h"

namespace granula::core {

namespace {

// A small categorical palette (distinct, print-friendly).
constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#9c755f", "#bab0ac", "#d37295",
};
constexpr int kPaletteSize = 10;

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MissionLabel(const ArchivedOperation& op) {
  return op.mission_id.empty() ? op.mission_type : op.mission_id;
}

std::string SvgHeader(int width, int height) {
  return StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"11\">\n"
      "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n",
      width, height, width, height, width, height);
}

}  // namespace

std::string RenderBreakdownSvg(const PerformanceArchive& archive, int width,
                               int height) {
  std::string svg = SvgHeader(width, height);
  if (archive.root == nullptr || archive.root->Duration().seconds() <= 0) {
    return svg + "<text x=\"10\" y=\"20\">empty archive</text>\n</svg>\n";
  }
  const ArchivedOperation& root = *archive.root;
  double total = root.Duration().seconds();
  const int margin = 60, bar_y = 40, bar_h = 44;
  const int bar_w = width - 2 * margin;

  svg += StrFormat(
      "<text x=\"%d\" y=\"22\" font-size=\"14\">%s — %s</text>\n", margin,
      Escape(root.DisplayName()).c_str(), HumanSeconds(total).c_str());

  double x = margin;
  int color_index = 0;
  std::string legend;
  double legend_x = margin;
  for (const auto& child : root.children) {
    double fraction = child->Duration().seconds() / total;
    double w = fraction * bar_w;
    const char* color = kPalette[color_index % kPaletteSize];
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" "
        "fill=\"%s\" stroke=\"white\"/>\n",
        x, bar_y, w, bar_h, color);
    if (w > 46) {
      svg += StrFormat(
          "<text x=\"%.1f\" y=\"%d\" fill=\"white\" "
          "text-anchor=\"middle\">%s</text>\n",
          x + w / 2, bar_y + bar_h / 2 + 4,
          Escape(MissionLabel(*child)).c_str());
    }
    legend += StrFormat(
        "<rect x=\"%.1f\" y=\"%d\" width=\"10\" height=\"10\" "
        "fill=\"%s\"/>\n<text x=\"%.1f\" y=\"%d\">%s %s (%s)</text>\n",
        legend_x, bar_y + bar_h + 36, color, legend_x + 14,
        bar_y + bar_h + 45, Escape(MissionLabel(*child)).c_str(),
        HumanSeconds(child->Duration().seconds()).c_str(),
        HumanPercent(fraction).c_str());
    legend_x += 180;
    x += w;
    ++color_index;
  }

  // Double axis: percent above, seconds below (as in Fig. 5).
  for (int tick = 0; tick <= 5; ++tick) {
    double fraction = tick / 5.0;
    double tx = margin + fraction * bar_w;
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" "
        "fill=\"#555\">%s</text>\n",
        tx, bar_y - 6, HumanPercent(fraction).c_str());
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" "
        "fill=\"#555\">%s</text>\n",
        tx, bar_y + bar_h + 16, HumanSeconds(fraction * total).c_str());
    svg += StrFormat(
        "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" "
        "stroke=\"#ccc\"/>\n",
        tx, bar_y, tx, bar_y + bar_h);
  }
  svg += legend;
  svg += "</svg>\n";
  return svg;
}

std::string RenderUtilizationSvg(const PerformanceArchive& archive, int width,
                                 int height) {
  std::string svg = SvgHeader(width, height);
  if (archive.environment.empty()) {
    return svg + "<text x=\"10\" y=\"20\">no environment log</text>\n</svg>\n";
  }
  const int margin_left = 60, margin_right = 20, margin_top = 36,
            margin_bottom = 60;
  const int plot_w = width - margin_left - margin_right;
  const int plot_h = height - margin_top - margin_bottom;

  // Organize samples per node and find ranges.
  std::map<uint32_t, std::vector<const EnvironmentRecord*>> per_node;
  double t_max = 0, cpu_max = 0;
  for (const EnvironmentRecord& r : archive.environment) {
    per_node[r.node].push_back(&r);
    t_max = std::max(t_max, r.time_seconds);
    cpu_max = std::max(cpu_max, r.cpu_seconds_per_second);
  }
  if (t_max <= 0) t_max = 1;
  if (cpu_max <= 0) cpu_max = 1;
  cpu_max *= 1.1;

  auto x_of = [&](double t) { return margin_left + t / t_max * plot_w; };
  auto y_of = [&](double cpu) {
    return margin_top + plot_h - cpu / cpu_max * plot_h;
  };

  // Background bands: the root's direct children (domain operations).
  if (archive.root != nullptr) {
    int color_index = 0;
    for (const auto& child : archive.root->children) {
      double x0 = x_of(child->StartTime().seconds());
      double x1 = x_of(child->EndTime().seconds());
      const char* color = kPalette[color_index % kPaletteSize];
      svg += StrFormat(
          "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" "
          "fill=\"%s\" opacity=\"0.15\"/>\n",
          x0, margin_top, std::max(0.0, x1 - x0), plot_h, color);
      svg += StrFormat(
          "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" "
          "fill=\"#333\">%s</text>\n",
          (x0 + x1) / 2, margin_top - 8,
          Escape(MissionLabel(*child)).c_str());
      ++color_index;
    }
  }

  // One polyline per node.
  int color_index = 0;
  double legend_x = margin_left;
  for (const auto& [node, samples] : per_node) {
    const char* color = kPalette[color_index % kPaletteSize];
    std::string points;
    for (const EnvironmentRecord* r : samples) {
      points += StrFormat("%.1f,%.1f ", x_of(r->time_seconds),
                          y_of(r->cpu_seconds_per_second));
    }
    svg += StrFormat(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
        "stroke-width=\"1.5\"/>\n",
        points.c_str(), color);
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%d\" width=\"10\" height=\"10\" "
        "fill=\"%s\"/>\n<text x=\"%.1f\" y=\"%d\">%s</text>\n",
        legend_x, height - 24, color, legend_x + 14, height - 15,
        Escape(samples.front()->hostname).c_str());
    legend_x += 100;
    ++color_index;
  }

  // Axes.
  svg += StrFormat(
      "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n",
      margin_left, margin_top + plot_h, margin_left + plot_w,
      margin_top + plot_h);
  svg += StrFormat(
      "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n",
      margin_left, margin_top, margin_left, margin_top + plot_h);
  for (int tick = 0; tick <= 4; ++tick) {
    double t = t_max * tick / 4;
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%.0fs</text>\n",
        x_of(t), margin_top + plot_h + 14, t);
    double cpu = cpu_max * tick / 4;
    svg += StrFormat(
        "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\">%.1f</text>\n",
        margin_left - 4, y_of(cpu) + 4, cpu);
  }
  svg += StrFormat(
      "<text x=\"%d\" y=\"%d\" transform=\"rotate(-90 14 %d)\" "
      "text-anchor=\"middle\">CPU time / second</text>\n",
      14, margin_top + plot_h / 2, margin_top + plot_h / 2);
  svg += "</svg>\n";
  return svg;
}

std::string RenderTimelineSvg(const PerformanceArchive& archive,
                              const std::string& actor_type,
                              const std::string& mission_type, int width,
                              int height) {
  std::vector<const ArchivedOperation*> ops =
      archive.FindOperations(actor_type, mission_type);
  std::set<std::string> actors;
  double t_min = 1e300, t_max = 0;
  std::set<std::string> child_types;
  for (const ArchivedOperation* op : ops) {
    actors.insert(op->actor_id.empty() ? op->actor_type : op->actor_id);
    t_min = std::min(t_min, op->StartTime().seconds());
    t_max = std::max(t_max, op->EndTime().seconds());
    for (const auto& child : op->children) {
      child_types.insert(child->mission_type);
    }
  }
  const int row_h = 22, margin_left = 90, margin_top = 30,
            margin_bottom = 46;
  if (height == 0) {
    height = margin_top + margin_bottom +
             row_h * static_cast<int>(actors.size());
  }
  std::string svg = SvgHeader(width, height);
  if (ops.empty() || t_max <= t_min) {
    return svg + "<text x=\"10\" y=\"20\">no operations</text>\n</svg>\n";
  }
  const int plot_w = width - margin_left - 20;
  auto x_of = [&](double t) {
    return margin_left + (t - t_min) / (t_max - t_min) * plot_w;
  };

  std::map<std::string, const char*> color_of;
  {
    int color_index = 0;
    for (const std::string& type : child_types) {
      color_of[type] = kPalette[color_index++ % kPaletteSize];
    }
  }

  int row = 0;
  for (const std::string& actor : actors) {
    double y = margin_top + row * row_h;
    svg += StrFormat("<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n",
                     margin_left - 6, y + row_h * 0.7,
                     Escape(actor).c_str());
    for (const ArchivedOperation* op : ops) {
      std::string op_actor =
          op->actor_id.empty() ? op->actor_type : op->actor_id;
      if (op_actor != actor) continue;
      // Parent span in light gray (barrier wait / overhead), children on
      // top in their mission color.
      svg += StrFormat(
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%d\" "
          "fill=\"#dddddd\"/>\n",
          x_of(op->StartTime().seconds()), y + 3,
          std::max(0.5, x_of(op->EndTime().seconds()) -
                            x_of(op->StartTime().seconds())),
          row_h - 6);
      for (const auto& child : op->children) {
        svg += StrFormat(
            "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%d\" "
            "fill=\"%s\"><title>%s %.3fs</title></rect>\n",
            x_of(child->StartTime().seconds()), y + 3,
            std::max(0.5, x_of(child->EndTime().seconds()) -
                              x_of(child->StartTime().seconds())),
            row_h - 6, color_of[child->mission_type],
            Escape(child->DisplayName()).c_str(),
            child->Duration().seconds());
      }
    }
    ++row;
  }

  // Legend + time axis.
  double legend_x = margin_left;
  int legend_y = height - 18;
  svg += StrFormat(
      "<rect x=\"%.1f\" y=\"%d\" width=\"10\" height=\"10\" "
      "fill=\"#dddddd\"/>\n<text x=\"%.1f\" y=\"%d\">%s (wait)</text>\n",
      legend_x, legend_y, legend_x + 14, legend_y + 9,
      Escape(mission_type).c_str());
  legend_x += 150;
  for (const auto& [type, color] : color_of) {
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%d\" width=\"10\" height=\"10\" "
        "fill=\"%s\"/>\n<text x=\"%.1f\" y=\"%d\">%s</text>\n",
        legend_x, legend_y, color, legend_x + 14, legend_y + 9,
        Escape(type).c_str());
    legend_x += 120;
  }
  for (int tick = 0; tick <= 4; ++tick) {
    double t = t_min + (t_max - t_min) * tick / 4;
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%.1fs</text>\n",
        x_of(t), height - 32, t);
  }
  svg += "</svg>\n";
  return svg;
}

std::string RenderComparisonSvg(const PerformanceArchive& baseline,
                                const PerformanceArchive& candidate,
                                int width, int height) {
  std::string svg = SvgHeader(width, height);
  if (baseline.root == nullptr || candidate.root == nullptr) {
    return svg + "<text x=\"10\" y=\"20\">missing archive</text>\n</svg>\n";
  }
  const int margin = 70, bar_h = 40, gap = 34;
  const int bar_w = width - 2 * margin;
  double max_total = std::max(baseline.root->Duration().seconds(),
                              candidate.root->Duration().seconds());
  if (max_total <= 0) max_total = 1;

  // Stable phase -> color assignment across both rows.
  std::map<std::string, const char*> color_of;
  int color_index = 0;
  auto assign_colors = [&](const PerformanceArchive& archive) {
    for (const auto& child : archive.root->children) {
      std::string key = MissionLabel(*child);
      if (color_of.count(key) == 0) {
        color_of[key] = kPalette[color_index++ % kPaletteSize];
      }
    }
  };
  assign_colors(baseline);
  assign_colors(candidate);

  auto draw_row = [&](const PerformanceArchive& archive, const char* label,
                      int y) {
    svg += StrFormat(
        "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n",
        margin - 8, y + bar_h / 2 + 4, label);
    double x = margin;
    for (const auto& child : archive.root->children) {
      double w = child->Duration().seconds() / max_total * bar_w;
      svg += StrFormat(
          "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" "
          "fill=\"%s\" stroke=\"white\"><title>%s %s</title></rect>\n",
          x, y, w, bar_h, color_of[MissionLabel(*child)],
          Escape(MissionLabel(*child)).c_str(),
          HumanSeconds(child->Duration().seconds()).c_str());
      x += w;
    }
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%d\" fill=\"#333\">%s</text>\n", x + 6,
        y + bar_h / 2 + 4,
        HumanSeconds(archive.root->Duration().seconds()).c_str());
  };
  int y0 = 34;
  draw_row(baseline, "baseline", y0);
  draw_row(candidate, "candidate", y0 + bar_h + gap);

  // Per-phase delta labels between the rows.
  {
    std::map<std::string, double> base_phase, cand_phase;
    for (const auto& child : baseline.root->children) {
      base_phase[MissionLabel(*child)] = child->Duration().seconds();
    }
    for (const auto& child : candidate.root->children) {
      cand_phase[MissionLabel(*child)] = child->Duration().seconds();
    }
    double x = margin;
    int y = y0 + bar_h + gap / 2 + 4;
    for (const auto& child : baseline.root->children) {
      std::string key = MissionLabel(*child);
      double base_seconds = base_phase[key];
      double w = base_seconds / max_total * bar_w;
      if (w > 48 && base_seconds > 0 && cand_phase.count(key) > 0) {
        double change = (cand_phase[key] - base_seconds) / base_seconds;
        svg += StrFormat(
            "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" "
            "fill=\"%s\">%+.1f%%</text>\n",
            x + w / 2, y, change > 0.001 ? "#c0392b" : "#1e8449",
            100 * change);
      }
      x += w;
    }
  }

  // Legend + axis.
  double legend_x = margin;
  for (const auto& [key, color] : color_of) {
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%d\" width=\"10\" height=\"10\" "
        "fill=\"%s\"/>\n<text x=\"%.1f\" y=\"%d\">%s</text>\n",
        legend_x, height - 40, color, legend_x + 14, height - 31,
        Escape(key).c_str());
    legend_x += 140;
  }
  for (int tick = 0; tick <= 4; ++tick) {
    double t = max_total * tick / 4;
    double x = margin + static_cast<double>(bar_w) * tick / 4;
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" "
        "fill=\"#555\">%s</text>\n",
        x, height - 10, HumanSeconds(t).c_str());
  }
  svg += "</svg>\n";
  return svg;
}

Status WriteSvgFile(const std::string& path, const std::string& svg) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  file << svg;
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace granula::core
