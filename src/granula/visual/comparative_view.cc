#include "granula/visual/comparative_view.h"

#include <algorithm>
#include <cstddef>

#include "common/strings.h"

namespace granula::core {
namespace {

std::string WorkloadTitle(const ComparativeReport::WorkloadTable& table) {
  std::string title = StrFormat("%s on %s, %u nodes", table.algorithm.c_str(),
                                table.graph.c_str(), table.nodes);
  if (!table.fault.empty()) title += ", faults: " + table.fault;
  return title;
}

std::string Seconds(double s) { return StrFormat("%.3fs", s); }

}  // namespace

std::string RenderComparativeReport(const ComparativeReport& report) {
  std::string out;
  for (const ComparativeReport::WorkloadTable& table : report.workloads) {
    if (!out.empty()) out += "\n";
    out += "== " + WorkloadTitle(table) + " ==\n";

    // Column widths: platform column, then one column per phase + total.
    size_t platform_width = 8;
    for (const ComparativeReport::Row& row : table.rows) {
      platform_width = std::max(platform_width, row.platform.size());
    }
    std::vector<size_t> widths;
    for (const std::string& phase : table.phases) {
      widths.push_back(std::max<size_t>(phase.size(), 9));
    }

    out += StrFormat("%-*s", static_cast<int>(platform_width), "platform");
    for (size_t i = 0; i < table.phases.size(); ++i) {
      out += StrFormat("  %*s", static_cast<int>(widths[i]),
                       table.phases[i].c_str());
    }
    out += StrFormat("  %9s\n", "total");
    for (const ComparativeReport::Row& row : table.rows) {
      out += StrFormat("%-*s", static_cast<int>(platform_width),
                       row.platform.c_str());
      for (size_t i = 0; i < table.phases.size(); ++i) {
        double s = i < row.phase_seconds.size() ? row.phase_seconds[i] : 0.0;
        out += StrFormat("  %*s", static_cast<int>(widths[i]),
                         Seconds(s).c_str());
      }
      out += StrFormat("  %9s%s\n", Seconds(row.total_seconds).c_str(),
                       row.complete ? "" : "  [INCOMPLETE]");
    }
  }

  if (!report.scaling.empty()) {
    if (!out.empty()) out += "\n";
    out += "== scaling across graphs ==\n";
    for (const ComparativeReport::ScalingCurve& curve : report.scaling) {
      std::string label =
          StrFormat("%s %s n%u", curve.platform.c_str(),
                    curve.algorithm.c_str(), curve.nodes);
      if (!curve.fault.empty()) label += " (" + curve.fault + ")";
      out += label + "\n";
      for (size_t i = 0; i < curve.points.size(); ++i) {
        const ComparativeReport::ScalingPoint& p = curve.points[i];
        out += StrFormat("  %-24s %12llu vertices  %10s",
                         p.graph.c_str(),
                         static_cast<unsigned long long>(p.vertices),
                         Seconds(p.seconds).c_str());
        if (i > 0 && curve.points[i - 1].seconds > 0) {
          out += StrFormat("  x%.2f", p.seconds / curve.points[i - 1].seconds);
        }
        out += "\n";
      }
    }
  }

  if (out.empty()) out = "(no archives to compare)\n";
  return out;
}

std::string RenderSweepRegressionSummary(
    const SweepRegressionSummary& summary) {
  std::string out;
  for (const SweepRegressionSummary::JobDelta& job : summary.jobs) {
    const RegressionReport& report = job.report;
    out += StrFormat(
        "%s: %zu regression(s), %zu improvement(s), total %s -> %s\n",
        job.name.c_str(), report.regressions.size(),
        report.improvements.size(),
        Seconds(report.total_baseline_seconds).c_str(),
        Seconds(report.total_candidate_seconds).c_str());
    for (const OperationDelta& delta : report.regressions) {
      out += StrFormat("  REGRESSION %-40s %10s -> %10s  (%+.1f%%)\n",
                       delta.path.c_str(),
                       Seconds(delta.baseline_seconds).c_str(),
                       Seconds(delta.candidate_seconds).c_str(),
                       delta.relative_change * 100.0);
    }
    for (const std::string& path : report.removed) {
      out += "  removed: " + path + "\n";
    }
    for (const std::string& path : report.added) {
      out += "  added:   " + path + "\n";
    }
  }
  for (const std::string& name : summary.missing) {
    out += "MISSING " + name + " (in baseline, not in candidate sweep)\n";
  }
  for (const std::string& name : summary.added) {
    out += "NEW     " + name + " (not in baseline)\n";
  }
  out += StrFormat("sweep gate: %llu regression(s) across %zu job(s)%s\n",
                   static_cast<unsigned long long>(summary.TotalRegressions()),
                   summary.jobs.size(),
                   summary.HasRegressions() ? "  [FAIL]" : "  [OK]");
  return out;
}

}  // namespace granula::core
