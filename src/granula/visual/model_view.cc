#include "granula/visual/model_view.h"

#include <map>
#include <vector>

#include "common/strings.h"

namespace granula::core {

namespace {

void RenderNode(const PerformanceModel& model,
                const std::map<std::string, std::vector<std::string>>&
                    children,
                const std::string& key, int depth, std::string* out) {
  const OperationModel* op = nullptr;
  for (const auto& [k, candidate] : model.operations()) {
    if (k == key) op = &candidate;
  }
  if (op == nullptr) return;
  *out += StrFormat("%s%-*s [level %d]\n",
                    std::string(static_cast<size_t>(depth) * 2, ' ').c_str(),
                    std::max(1, 44 - depth * 2), key.c_str(), op->level);
  for (const InfoRulePtr& rule : op->rules) {
    if (rule->info_name() == "Duration") continue;  // implicit everywhere
    *out += StrFormat("%s    . %s := %s\n",
                      std::string(static_cast<size_t>(depth) * 2, ' ')
                          .c_str(),
                      rule->info_name().c_str(), rule->Describe().c_str());
  }
  auto it = children.find(key);
  if (it == children.end()) return;
  for (const std::string& child : it->second) {
    RenderNode(model, children, child, depth + 1, out);
  }
}

}  // namespace

std::string RenderModelTree(const PerformanceModel& model) {
  std::string out = StrFormat("performance model '%s' (%zu operations, %d "
                              "levels)\n",
                              model.name().c_str(),
                              model.operations().size(), model.max_level());
  if (model.root() == nullptr) return out + "(no root)\n";
  std::map<std::string, std::vector<std::string>> children;
  for (const auto& [key, op] : model.operations()) {
    if (!op.parent_key.empty()) children[op.parent_key].push_back(key);
  }
  RenderNode(model, children, model.root()->Key(), 0, &out);
  return out;
}

}  // namespace granula::core
