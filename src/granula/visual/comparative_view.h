#ifndef GRANULA_GRANULA_VISUAL_COMPARATIVE_VIEW_H_
#define GRANULA_GRANULA_VISUAL_COMPARATIVE_VIEW_H_

#include <string>

#include "granula/analysis/comparative.h"

namespace granula::core {

// Terminal renderers for sweep-level comparisons — the output side of
// `granula bench`. Each returns a multi-line string ending in '\n'.

// One table per workload: platforms as rows, top-level phases as columns
// (plus total and completion status), followed by scaling sections of
// per-platform runtimes across graph scales with the growth factor
// between consecutive scales.
std::string RenderComparativeReport(const ComparativeReport& report);

// The regression gate's verdict: per-job regression/improvement counts,
// the worst offending operations, and missing/added jobs.
std::string RenderSweepRegressionSummary(const SweepRegressionSummary& summary);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_VISUAL_COMPARATIVE_VIEW_H_
