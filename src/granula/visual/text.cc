#include "granula/visual/text.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/strings.h"

namespace granula::core {

namespace {

// Segment characters cycle per operation so adjacent segments differ.
constexpr char kSegmentChars[] = {'#', '=', '%', '@', '+', '*', 'o', '~'};

std::string MissionLabel(const ArchivedOperation& op) {
  return op.mission_id.empty() ? op.mission_type : op.mission_id;
}

}  // namespace

std::string RenderBreakdownBar(const PerformanceArchive& archive, int width) {
  std::string out;
  if (archive.root == nullptr) return "(empty archive)\n";
  const ArchivedOperation& root = *archive.root;
  double total = root.Duration().seconds();
  out += StrFormat("%s  [total %s]\n", root.DisplayName().c_str(),
                   HumanSeconds(total).c_str());
  if (total <= 0 || root.children.empty()) return out;

  std::string bar;
  std::string legend;
  int used = 0;
  for (size_t i = 0; i < root.children.size(); ++i) {
    const ArchivedOperation& child = *root.children[i];
    double fraction = child.Duration().seconds() / total;
    int cells = (i + 1 == root.children.size())
                    ? width - used
                    : static_cast<int>(std::lround(fraction * width));
    cells = std::max(0, std::min(cells, width - used));
    char symbol = kSegmentChars[i % sizeof(kSegmentChars)];
    bar.append(static_cast<size_t>(cells), symbol);
    used += cells;
    legend += StrFormat("  %c %-14s %10s  %6s\n", symbol,
                        MissionLabel(child).c_str(),
                        HumanSeconds(child.Duration().seconds()).c_str(),
                        HumanPercent(fraction).c_str());
  }
  out += "|" + bar + "|\n";
  out += legend;
  return out;
}

namespace {

void RenderTreeNode(const ArchivedOperation& op, double parent_seconds,
                    int depth, int max_depth, std::string* out) {
  double seconds = op.Duration().seconds();
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  std::string share =
      parent_seconds > 0 ? HumanPercent(seconds / parent_seconds) : "";
  *out += StrFormat("%s%-*s %10s  %6s\n", indent.c_str(),
                    std::max(1, 40 - depth * 2), op.DisplayName().c_str(),
                    HumanSeconds(seconds).c_str(), share.c_str());
  if (max_depth > 0 && depth + 1 >= max_depth) return;
  for (const auto& child : op.children) {
    RenderTreeNode(*child, seconds, depth + 1, max_depth, out);
  }
}

}  // namespace

std::string RenderOperationTree(const PerformanceArchive& archive,
                                int max_depth) {
  if (archive.root == nullptr) return "(empty archive)\n";
  std::string out;
  RenderTreeNode(*archive.root, 0.0, 0, max_depth, &out);
  return out;
}

std::string RenderUtilizationChart(const PerformanceArchive& archive,
                                   int width) {
  std::string out;
  if (archive.environment.empty()) return "(no environment log)\n";

  // Group samples into windows and sum CPU across nodes.
  std::map<double, double> cluster_cpu;  // window end -> total cpu/s
  for (const EnvironmentRecord& r : archive.environment) {
    cluster_cpu[r.time_seconds] += r.cpu_seconds_per_second;
  }
  double peak = 0;
  for (const auto& [t, cpu] : cluster_cpu) peak = std::max(peak, cpu);
  if (peak <= 0) peak = 1;

  // Active domain-level operation per time (for the phase annotation).
  auto phase_at = [&](double t) -> std::string {
    if (archive.root == nullptr) return "";
    for (const auto& child : archive.root->children) {
      if (t > child->StartTime().seconds() &&
          t <= child->EndTime().seconds() + 1e-9) {
        return MissionLabel(*child);
      }
    }
    return "";
  };

  out += StrFormat("cluster CPU (peak %.2f CPU-s/s)\n", peak);
  for (const auto& [t, cpu] : cluster_cpu) {
    int cells = static_cast<int>(std::lround(cpu / peak * width));
    cells = std::max(0, std::min(cells, width));
    out += StrFormat("%8.2fs |%-*s| %6.2f  %s\n", t, width,
                     std::string(static_cast<size_t>(cells), '#').c_str(),
                     cpu, phase_at(t).c_str());
  }
  return out;
}

std::string RenderActorTimeline(const PerformanceArchive& archive,
                                const std::string& actor_type,
                                const std::string& mission_type,
                                int width) {
  std::vector<const ArchivedOperation*> ops =
      archive.FindOperations(actor_type, mission_type);
  if (ops.empty()) return "(no matching operations)\n";

  double t_min = 1e300, t_max = 0;
  std::set<std::string> actors;
  std::set<std::string> child_types;
  for (const ArchivedOperation* op : ops) {
    t_min = std::min(t_min, op->StartTime().seconds());
    t_max = std::max(t_max, op->EndTime().seconds());
    actors.insert(op->actor_id.empty() ? op->actor_type : op->actor_id);
    for (const auto& child : op->children) {
      child_types.insert(child->mission_type);
    }
  }
  if (t_max <= t_min) return "(degenerate time range)\n";

  // Assign a symbol per child mission type (compute-like ops get '#').
  std::map<std::string, char> symbol;
  {
    int next = 0;
    for (const std::string& type : child_types) {
      if (type.find("Compute") != std::string::npos) {
        symbol[type] = '#';
      } else {
        symbol[type] = static_cast<char>('a' + (next++ % 26));
      }
    }
  }

  std::string out = StrFormat("%s timeline, %.2fs .. %.2fs\n",
                              actor_type.c_str(), t_min, t_max);
  double dt = (t_max - t_min) / width;
  for (const std::string& actor : actors) {
    std::string row(static_cast<size_t>(width), ' ');
    for (const ArchivedOperation* op : ops) {
      std::string op_actor =
          op->actor_id.empty() ? op->actor_type : op->actor_id;
      if (op_actor != actor) continue;
      auto paint = [&](const ArchivedOperation& painted, char c) {
        int begin = static_cast<int>(
            (painted.StartTime().seconds() - t_min) / dt);
        int end =
            static_cast<int>((painted.EndTime().seconds() - t_min) / dt);
        begin = std::clamp(begin, 0, width - 1);
        end = std::clamp(end, begin, width - 1);
        for (int i = begin; i <= end; ++i) {
          row[static_cast<size_t>(i)] = c;
        }
      };
      paint(*op, '.');
      for (const auto& child : op->children) {
        paint(*child, symbol[child->mission_type]);
      }
    }
    out += StrFormat("%-12s |%s|\n", actor.c_str(), row.c_str());
  }
  out += "  legend: '.' " + mission_type + " span";
  for (const auto& [type, c] : symbol) {
    out += StrFormat(", '%c' %s", c, type.c_str());
  }
  out += "\n";
  return out;
}

}  // namespace granula::core
