#ifndef GRANULA_GRANULA_VISUAL_REPORT_H_
#define GRANULA_GRANULA_VISUAL_REPORT_H_

#include <string>

#include "granula/analysis/chokepoint.h"
#include "granula/archive/archive.h"

namespace granula::core {

struct ReportOptions {
  std::string title = "Granula performance report";
  // Actor/mission to render as the gantt timeline (empty = skip).
  std::string timeline_actor_type = "Worker";
  std::string timeline_mission_type = "LocalSuperstep";
  // Depth limit of the operation-tree table (0 = unlimited).
  int tree_depth = 4;
  // Run the choke-point detectors and include their findings.
  bool include_findings = true;
  ChokepointOptions chokepoint_options;
};

// A single, self-contained HTML page for one archive: job metadata, the
// Fig. 5-style breakdown, the Figs. 6/7-style utilization chart, the
// Fig. 8-style per-actor timeline (all inline SVG), the operation tree,
// and the automated findings. This is the shareable artifact Granula's
// "visualization" stage exists for (requirement R1/R2: results a whole
// community of analysts can read without re-running anything).
std::string RenderHtmlReport(const PerformanceArchive& archive,
                             const ReportOptions& options);

Status WriteHtmlReport(const PerformanceArchive& archive,
                       const ReportOptions& options,
                       const std::string& path);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_VISUAL_REPORT_H_
