#ifndef GRANULA_GRANULA_VISUAL_TEXT_H_
#define GRANULA_GRANULA_VISUAL_TEXT_H_

#include <string>

#include "granula/archive/archive.h"

namespace granula::core {

// Terminal renderers for performance archives (Granula's visualization
// sub-process, P4). Each returns a multi-line string ending in '\n'.

// Fig. 5-style job decomposition: one horizontal bar of the root's direct
// children, with a legend of per-operation duration and percentage.
std::string RenderBreakdownBar(const PerformanceArchive& archive,
                               int width = 72);

// Indented operation tree with Duration and share-of-parent, down to
// `max_depth` levels (0 = unlimited). The textual form of Fig. 4 applied
// to real data.
std::string RenderOperationTree(const PerformanceArchive& archive,
                                int max_depth = 0);

// Figs. 6/7-style utilization view: one row per sampling window showing the
// cluster-wide CPU usage as a bar, annotated with the domain-level
// operation active at that time.
std::string RenderUtilizationChart(const PerformanceArchive& archive,
                                   int width = 60);

// Fig. 8-style per-actor timeline: one row per distinct actor_id among
// operations of type `actor_type`, with one character column per time
// bucket showing which child mission type was running ('#' compute-like
// operations, '.' waits/overhead, ' ' idle). Distinct mission types are
// listed in the legend.
std::string RenderActorTimeline(const PerformanceArchive& archive,
                                const std::string& actor_type,
                                const std::string& mission_type,
                                int width = 80);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_VISUAL_TEXT_H_
