#ifndef GRANULA_GRANULA_VISUAL_SVG_H_
#define GRANULA_GRANULA_VISUAL_SVG_H_

#include <string>

#include "common/status.h"
#include "granula/archive/archive.h"

namespace granula::core {

// SVG renderers mirroring the paper's figures. Each returns a complete,
// standalone SVG document; WriteSvgFile saves one next to bench output so
// results can be inspected in a browser.

// Fig. 5: horizontal stacked bar of the root's direct children, with a
// percentage / seconds double axis.
std::string RenderBreakdownSvg(const PerformanceArchive& archive,
                               int width = 760, int height = 170);

// Figs. 6/7: per-node CPU utilization curves over time, with the
// domain-level operations drawn as labeled background bands.
std::string RenderUtilizationSvg(const PerformanceArchive& archive,
                                 int width = 860, int height = 360);

// Fig. 8: per-actor gantt chart of `mission_type` operations and their
// children (e.g. Worker rows with PreStep/Compute/PostStep blocks).
std::string RenderTimelineSvg(const PerformanceArchive& archive,
                              const std::string& actor_type,
                              const std::string& mission_type,
                              int width = 860, int height = 0);

// Side-by-side comparison of two archives' top-level decompositions on a
// common seconds axis (baseline above, candidate below), with per-phase
// deltas — the visual companion of analysis/regression.h.
std::string RenderComparisonSvg(const PerformanceArchive& baseline,
                                const PerformanceArchive& candidate,
                                int width = 860, int height = 300);

Status WriteSvgFile(const std::string& path, const std::string& svg);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_VISUAL_SVG_H_
