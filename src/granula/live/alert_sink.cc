#include "granula/live/alert_sink.h"

namespace granula::core {

namespace {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "info";
}

}  // namespace

Json AlertToJson(const LiveAlert& alert) {
  Json j = Json::MakeObject();
  j["kind"] = std::string(FindingKindName(alert.finding.kind));
  j["severity"] = SeverityName(alert.finding.severity);
  j["operation"] = alert.finding.operation;
  j["description"] = alert.finding.description;
  j["metric"] = alert.finding.metric;
  j["in_flight"] = alert.in_flight;
  j["snapshot"] = alert.snapshot_index;
  return j;
}

void TerminalAlertSink::OnAlert(const LiveAlert& alert) {
  std::fprintf(out_, "ALERT [%s] %s %s: %s\n",
               SeverityName(alert.finding.severity),
               std::string(FindingKindName(alert.finding.kind)).c_str(),
               alert.finding.operation.c_str(),
               alert.finding.description.c_str());
}

void TerminalAlertSink::Flush() { std::fflush(out_); }

Result<std::unique_ptr<JsonlAlertSink>> JsonlAlertSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::NotFound("cannot open alert log for append: " + path);
  }
  return std::unique_ptr<JsonlAlertSink>(new JsonlAlertSink(file));
}

JsonlAlertSink::~JsonlAlertSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlAlertSink::OnAlert(const LiveAlert& alert) {
  std::string line = AlertToJson(alert).Dump();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);  // per-alert flush: concurrent readers see it now
}

void JsonlAlertSink::Flush() { std::fflush(file_); }

}  // namespace granula::core
