#ifndef GRANULA_GRANULA_LIVE_WATCH_H_
#define GRANULA_GRANULA_LIVE_WATCH_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "common/result.h"
#include "granula/analysis/chokepoint.h"
#include "granula/archive/archive.h"
#include "granula/live/streaming_archiver.h"
#include "granula/model/performance_model.h"

namespace granula::core {

// Configuration for the `granula watch` loop.
struct WatchOptions {
  std::string log_path;          // JSONL platform log to follow
  double poll_interval_ms = 50;  // wall-clock delay between polls
  double timeout_s = 30;         // give up when the job never completes
  int max_depth = 3;             // tree depth in the live view
  bool ansi = false;   // redraw the terminal in place (interactive use)
  bool quiet = false;  // suppress periodic status lines (alerts still print)
  // Wall-clock seconds without a single new log record before the job is
  // declared stalled and a critical kStalledJob alert fires (once).
  // 0 disables stall detection; the overall timeout_s still applies.
  double stall_timeout_s = 0;
  // When non-empty, every alert is also appended to this JSONL file
  // (one JSON object per line, flushed per alert).
  std::string alert_jsonl_path;
  ChokepointOptions chokepoints;
  StreamingArchiver::Options archiver;
  std::map<std::string, std::string> job_metadata;
};

struct WatchSummary {
  uint64_t records_ingested = 0;
  uint64_t snapshots = 0;         // snapshots analyzed for alerts
  uint64_t alerts = 0;            // distinct alerts raised
  uint64_t in_flight_alerts = 0;  // raised before the job completed
  uint64_t malformed_lines = 0;
  uint64_t rotations = 0;
  uint64_t stall_alerts = 0;  // kStalledJob alerts raised by the watcher
  bool completed = false;  // job root finalized before the timeout
  StreamingArchiver::Stats archiver_stats;
  // The final archive when the job completed; otherwise the last
  // watermark snapshot (root may be absent when nothing was ever read).
  PerformanceArchive archive;
};

// Tails `options.log_path`, assembles the archive online, raises
// deduplicated choke-point alerts while the job runs, and renders the
// final tree to `out` when the job completes (or the timeout passes).
// `out` may be null for headless use (the summary still carries the
// archive and alert counts). Returns the summary either way — a timeout
// is reported via `summary.completed`, not an error status.
Result<WatchSummary> WatchLog(const PerformanceModel& model,
                              const WatchOptions& options, std::FILE* out);

}  // namespace granula::core

#endif  // GRANULA_GRANULA_LIVE_WATCH_H_
