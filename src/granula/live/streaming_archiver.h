#ifndef GRANULA_GRANULA_LIVE_STREAMING_ARCHIVER_H_
#define GRANULA_GRANULA_LIVE_STREAMING_ARCHIVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "granula/archive/archive.h"
#include "granula/archive/lint.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {

// Online counterpart of the batch Archiver (P3): assembles a performance
// archive incrementally while the monitored job is still running, instead
// of waiting for the whole log stream to be on disk.
//
// Contract with the batch Archiver:
//  * For a lint-clean log replayed record by record, calling Finish() and
//    then Snapshot() yields an archive whose JSON serialization is
//    byte-identical to `Archiver::Build` over the same records — both
//    archivers construct, order, and finalize nodes through the shared
//    assembly core (archive/assembly.h).
//  * At any prefix of the stream, Snapshot() is a valid PerformanceArchive
//    (it round-trips through JSON): operations still in flight carry an
//    `InFlight` info and a watermark-repaired EndTime so durations and
//    choke-point detectors keep working on partial data.
//  * Malformed in-flight records never crash the stream: they are
//    classified with the same LintDefect classes the batch lint pass uses
//    and quarantined. (For *defective* streams the final tree is
//    best-effort and may differ from the batch pass in the cases noted
//    below; the defect classes reported are the same.)
//
// Memory is bounded by the open-operation table: an operation is kept in
// raw-record form only until it finalizes — its EndOp arrived and all its
// children are finalized — at which point it is evicted into its final
// ArchivedOperation snapshot form (the watermark of the stream, advanced
// subtree by subtree) and its raw records are dropped. For well-nested
// logs the table size tracks the number of concurrently running
// operations, not the log length; `stats()` exposes the eviction counters
// the bounded-memory test asserts.
//
// Known divergences from the batch pass, all limited to defective streams
// (clean logs are unaffected):
//  * Records that refer to an operation after its subtree was evicted are
//    classified as orphans (the batch pass, which sees the whole log at
//    once, can tell duplicates from orphans).
//  * A child whose StartOp arrives after its parent finalized becomes a
//    root candidate and is quarantined at Finish as an extra root.
//  * Members of a quarantined extra root's subtree are summarized by the
//    single kMultipleRoots finding (the batch pass also emits one
//    kUnreachableSubtree finding per member).
class StreamingArchiver {
 public:
  struct Options {
    // Drop operations whose model level exceeds this (0 = keep all levels
    // present in the model). Same semantics as Archiver::Options.
    int max_level = 0;
  };

  struct Stats {
    uint64_t records_ingested = 0;
    uint64_t open_operations = 0;       // current open-table size
    uint64_t peak_open_operations = 0;  // high-water mark of the table
    uint64_t finalized_operations = 0;  // evicted into snapshot form
    uint64_t quarantined_records = 0;   // dropped with a lint finding
  };

  explicit StreamingArchiver(PerformanceModel model)
      : StreamingArchiver(std::move(model), Options()) {}
  StreamingArchiver(PerformanceModel model, Options options);

  // Archive envelope, forwarded into every snapshot. Environment records
  // are optional (a tailed platform log carries none).
  void SetJobMetadata(std::map<std::string, std::string> metadata);
  void SetEnvironment(std::vector<EnvironmentRecord> environment);

  // Ingests one record. Never fails: defective records are quarantined
  // with a LintFinding. No-op after Finish().
  void Append(const LogRecord& record);
  void AppendAll(const std::vector<LogRecord>& records);

  // Ends the stream: force-finalizes everything still open (missing
  // EndOps are repaired exactly like the batch pass) and elects the
  // primary root among the finalized candidates, quarantining extras.
  // Idempotent.
  void Finish();

  bool finished() const { return finished_; }

  // True once every started operation has finalized (the job root's EndOp
  // arrived) — for a JobLogger stream this means the job completed.
  bool complete() const {
    return stats_.records_ingested > 0 && open_.empty() && !roots_.empty();
  }

  // Largest record timestamp ingested so far.
  SimTime watermark() const { return watermark_; }

  const Stats& stats() const { return stats_; }
  const std::vector<LintFinding>& findings() const { return findings_; }

  // The archive as of now. Before Finish(): finalized subtrees appear in
  // final form, open operations appear with their infos so far, an
  // `InFlight` marker, and a watermark EndTime. After Finish(): the final
  // archive (byte-identical to the batch Archiver for clean logs).
  // Fails when no root operation exists (empty stream) or the root is not
  // covered by the model.
  Result<PerformanceArchive> Snapshot() const;

 private:
  // A finalized operation's contribution to its parent: one node when the
  // operation is modeled, the hoisted list of its modeled descendants when
  // it is spliced out (same splice the batch Assemble performs).
  struct Contribution {
    uint64_t start_seq = 0;
    uint64_t op_id = 0;
    uint64_t lint_size = 0;  // ops in the pre-filter subtree (root election)
    std::string name;        // "actor @ mission" for quarantine findings
    // False when the operation was closed by repair (force-finalize or a
    // quarantined EndOp) rather than a usable EndOp record. Mirrors the
    // batch pass's `end_time.has_value()` — drives ArchiveStatus when
    // this contribution is elected root.
    bool closed_by_record = true;
    std::vector<std::unique_ptr<ArchivedOperation>> nodes;
  };

  struct OpenOp {
    LogRecord start;
    std::optional<SimTime> end_time;
    std::string end_provenance;
    bool saw_end_record = false;
    bool closed = false;
    std::vector<LogRecord> infos;
    std::vector<Contribution> done_children;
    std::set<OpId> open_children;
    OpId parent = kNoOp;  // kNoOp = root candidate
  };

  void AddFinding(LintDefect defect, uint64_t op_id, uint64_t seq,
                  bool repaired, std::string detail);
  void IngestStart(const LogRecord& record);
  void IngestEnd(const LogRecord& record);
  void IngestInfo(const LogRecord& record);
  // Finalizes `id` if it is closed and has no open children, cascading to
  // the parent when the parent was only waiting on this child.
  void MaybeFinalize(OpId id);
  // Evicts `id` from the open table into its Contribution and attaches it
  // to the parent (or the root-candidate list).
  void FinalizeOp(OpId id);
  Contribution BuildContribution(OpenOp& op);
  // Depth-first forced finalization for Finish(), children first.
  void ForceFinalize(OpId id);
  // In-flight contribution for Snapshot(): clones finalized children and
  // synthesizes watermark-ended nodes for open operations.
  Contribution BuildOpenContribution(const OpenOp& op) const;

  PerformanceModel model_;
  Status model_status_;
  Options options_;
  std::map<std::string, std::string> metadata_;
  std::vector<EnvironmentRecord> environment_;

  std::map<OpId, OpenOp> open_;
  std::vector<Contribution> roots_;  // finalized root-level contributions
  int primary_root_ = -1;            // index into roots_, set by Finish()
  std::vector<LintFinding> findings_;
  SimTime watermark_;
  bool finished_ = false;
  Stats stats_;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_LIVE_STREAMING_ARCHIVER_H_
