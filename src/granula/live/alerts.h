#ifndef GRANULA_GRANULA_LIVE_ALERTS_H_
#define GRANULA_GRANULA_LIVE_ALERTS_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "granula/analysis/chokepoint.h"

namespace granula::core {

// One alert surfaced while the watched job was still running.
struct LiveAlert {
  Finding finding;
  // True when the snapshot that triggered the alert still had the job
  // root in flight — i.e. the analyst saw it before the job finished.
  bool in_flight = false;
  uint64_t snapshot_index = 0;  // which Snapshot() raised it first
};

// Incremental choke-point alerting over a stream of archive snapshots.
// Each Update() runs the batch detectors on the latest snapshot and
// returns only the findings not alerted before, keyed by
// (kind, operation): a LoadGraph dominant-phase alert fires once, not on
// every poll, while its metric keeps updating in `alerts()`.
class AlertTracker {
 public:
  explicit AlertTracker(ChokepointOptions options = {})
      : options_(options) {}

  // Analyzes `archive` (a StreamingArchiver snapshot); returns the newly
  // raised alerts, in detector severity order.
  std::vector<LiveAlert> Update(const PerformanceArchive& archive);

  // Raises a finding synthesized outside the detectors (e.g. the watch
  // loop's wall-clock stall detector). Deduplicated by the same
  // (kind, operation) key; returns the alert when it is new.
  std::optional<LiveAlert> RaiseExternal(Finding finding, bool in_flight);

  // Every alert raised so far, in the order first raised.
  const std::vector<LiveAlert>& alerts() const { return alerts_; }
  uint64_t snapshots_analyzed() const { return snapshots_; }

 private:
  ChokepointOptions options_;
  std::set<std::pair<int, std::string>> seen_;  // (kind, operation)
  std::vector<LiveAlert> alerts_;
  uint64_t snapshots_ = 0;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_LIVE_ALERTS_H_
