#include "granula/live/alerts.h"

namespace granula::core {

std::vector<LiveAlert> AlertTracker::Update(const PerformanceArchive& archive) {
  const uint64_t snapshot_index = snapshots_++;
  const bool in_flight =
      archive.root != nullptr && archive.root->HasInfo("InFlight");
  std::vector<LiveAlert> fresh;
  for (Finding& finding : AnalyzeChokepoints(archive, options_)) {
    auto key = std::make_pair(static_cast<int>(finding.kind),
                              finding.operation);
    if (!seen_.insert(std::move(key)).second) {
      // Already alerted: keep the stored metric/severity current, since
      // in-flight numbers sharpen as the operation progresses.
      for (LiveAlert& alert : alerts_) {
        if (alert.finding.kind == finding.kind &&
            alert.finding.operation == finding.operation) {
          alert.finding = std::move(finding);
          break;
        }
      }
      continue;
    }
    LiveAlert alert;
    alert.finding = std::move(finding);
    alert.in_flight = in_flight;
    alert.snapshot_index = snapshot_index;
    alerts_.push_back(alert);
    fresh.push_back(std::move(alert));
  }
  return fresh;
}

std::optional<LiveAlert> AlertTracker::RaiseExternal(Finding finding,
                                                     bool in_flight) {
  auto key = std::make_pair(static_cast<int>(finding.kind),
                            finding.operation);
  if (!seen_.insert(std::move(key)).second) return std::nullopt;
  LiveAlert alert;
  alert.finding = std::move(finding);
  alert.in_flight = in_flight;
  alert.snapshot_index = snapshots_;
  alerts_.push_back(alert);
  return alert;
}

}  // namespace granula::core
