#include "granula/live/log_tailer.h"

#include <fstream>
#include <utility>

namespace granula::core {

LogTailer::Poll LogTailer::PollOnce() {
  Poll result;

  std::ifstream file(path_, std::ios::binary);
  if (!file) return result;  // not created yet — poll again later

  file.seekg(0, std::ios::end);
  const auto end = file.tellg();
  if (end < 0) return result;
  const uint64_t size = static_cast<uint64_t>(end);
  if (size < offset_) {
    // The file shrank under us: truncated or rotated. Start over.
    offset_ = 0;
    partial_.clear();
    result.rotated = true;
  }
  if (size == offset_) return result;

  file.seekg(static_cast<std::streamoff>(offset_), std::ios::beg);
  std::string fresh(size - offset_, '\0');
  file.read(fresh.data(), static_cast<std::streamsize>(fresh.size()));
  const auto got = file.gcount();
  if (got <= 0) return result;
  fresh.resize(static_cast<size_t>(got));
  offset_ += static_cast<uint64_t>(got);

  partial_ += fresh;
  size_t line_start = 0;
  while (true) {
    size_t newline = partial_.find('\n', line_start);
    if (newline == std::string::npos) break;
    std::string_view line(partial_.data() + line_start, newline - line_start);
    line_start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.find_first_not_of(" \t") == std::string_view::npos) continue;
    // The fast JSONL codec: canonical lines skip the DOM entirely, and
    // anything else falls back internally, so malformed-line counting is
    // unchanged.
    auto record = LogRecord::ParseJsonl(line);
    if (!record.ok()) {
      ++result.malformed_lines;
      continue;
    }
    result.records.push_back(std::move(*record));
  }
  partial_.erase(0, line_start);
  total_malformed_ += result.malformed_lines;
  return result;
}

}  // namespace granula::core
