#include "granula/live/log_tailer.h"

#include <utility>

#include "common/mapped_file.h"

namespace granula::core {

LogTailer::Poll LogTailer::PollOnce() {
  Poll result;

  // Map the file instead of streaming it: a batch catch-up (opening a
  // multi-GB log mid-run) parses straight out of the page cache, and only
  // the unterminated tail is copied into partial_ between polls. A file
  // that does not exist yet — or a read that fails outright — leaves the
  // offset untouched, so the next poll retries.
  auto file = MappedFile::Open(path_);
  if (!file.ok()) return result;

  const std::string_view view = file->data();
  if (view.size() < offset_) {
    // The file shrank under us: truncated or rotated. Start over.
    offset_ = 0;
    partial_.clear();
    result.rotated = true;
  }
  if (view.size() == offset_) return result;

  std::string_view window = view.substr(offset_);
  offset_ = view.size();

  auto process = [&](std::string_view line) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.find_first_not_of(" \t") == std::string_view::npos) return;
    // The fast JSONL codec: canonical lines skip the DOM entirely, and
    // anything else falls back internally, so malformed-line counting is
    // unchanged.
    auto record = LogRecord::ParseJsonl(line);
    if (!record.ok()) {
      ++result.malformed_lines;
      return;
    }
    result.records.push_back(std::move(*record));
  };

  if (!partial_.empty()) {
    // Complete the carried-over tail with bytes up to the first newline of
    // the fresh window before touching anything else.
    const size_t newline = window.find('\n');
    if (newline == std::string_view::npos) {
      partial_.append(window);
      return result;
    }
    partial_.append(window.substr(0, newline));
    process(partial_);
    partial_.clear();
    window.remove_prefix(newline + 1);
  }

  size_t line_start = 0;
  while (true) {
    const size_t newline = window.find('\n', line_start);
    if (newline == std::string_view::npos) break;
    process(window.substr(line_start, newline - line_start));
    line_start = newline + 1;
  }
  partial_.assign(window.substr(line_start));
  total_malformed_ += result.malformed_lines;
  return result;
}

}  // namespace granula::core
