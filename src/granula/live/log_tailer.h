#ifndef GRANULA_GRANULA_LIVE_LOG_TAILER_H_
#define GRANULA_GRANULA_LIVE_LOG_TAILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "granula/monitor/job_logger.h"

namespace granula::core {

// Follows a JSONL platform log being written by a running job — the
// `tail -f` of the live-monitoring pipeline. Each Poll() returns the
// records appended since the previous poll.
//
// Robustness contract:
//  * A line is consumed only once its trailing '\n' is on disk; a partial
//    line (the writer was mid-append) stays buffered across polls.
//  * The file not existing yet is not an error — the job may not have
//    opened its log; Poll() simply returns nothing.
//  * Truncation or rotation (the file shrank, e.g. the job restarted with
//    a fresh log) is detected by size regression: the tailer restarts
//    from offset zero, drops its partial-line buffer, and reports
//    `rotated` so the consumer can reset its own state.
//  * Malformed lines are counted and skipped, never fatal — mid-job logs
//    legitimately contain garbage (crashed writers, interleaved output).
class LogTailer {
 public:
  struct Poll {
    std::vector<LogRecord> records;
    uint64_t malformed_lines = 0;
    bool rotated = false;
  };

  explicit LogTailer(std::string path) : path_(std::move(path)) {}

  // Reads everything appended since the last call. Never blocks beyond
  // one read of the file's new bytes.
  Poll PollOnce();

  const std::string& path() const { return path_; }
  uint64_t bytes_consumed() const { return offset_; }
  uint64_t total_malformed_lines() const { return total_malformed_; }

 private:
  std::string path_;
  uint64_t offset_ = 0;    // bytes consumed so far
  std::string partial_;    // tail bytes with no newline yet
  uint64_t total_malformed_ = 0;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_LIVE_LOG_TAILER_H_
