#include "granula/live/watch.h"

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "granula/live/alert_sink.h"
#include "granula/live/alerts.h"
#include "granula/live/log_tailer.h"
#include "granula/visual/text.h"

namespace granula::core {

namespace {

const char* SeverityLabel(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "info";
}

void PrintAlert(std::FILE* out, const LiveAlert& alert) {
  std::fprintf(out, "ALERT [%s] %s %s: %s\n",
               SeverityLabel(alert.finding.severity),
               std::string(FindingKindName(alert.finding.kind)).c_str(),
               alert.finding.operation.c_str(),
               alert.finding.description.c_str());
}

void Redraw(std::FILE* out, const PerformanceArchive& archive,
            const AlertTracker& alerts, const StreamingArchiver& archiver,
            int max_depth) {
  std::fprintf(out, "\x1b[2J\x1b[H");  // clear screen, home cursor
  std::fprintf(out,
               "granula watch — records %llu, open %llu, finalized %llu, "
               "watermark %s\n\n",
               static_cast<unsigned long long>(
                   archiver.stats().records_ingested),
               static_cast<unsigned long long>(
                   archiver.stats().open_operations),
               static_cast<unsigned long long>(
                   archiver.stats().finalized_operations),
               archiver.watermark().ToString().c_str());
  std::fprintf(out, "%s\n", RenderOperationTree(archive, max_depth).c_str());
  const auto& raised = alerts.alerts();
  if (!raised.empty()) {
    std::fprintf(out, "alerts (%zu):\n", raised.size());
    const size_t ticker = raised.size() > 5 ? raised.size() - 5 : 0;
    for (size_t i = ticker; i < raised.size(); ++i) {
      PrintAlert(out, raised[i]);
    }
  }
  std::fflush(out);
}

}  // namespace

Result<WatchSummary> WatchLog(const PerformanceModel& model,
                              const WatchOptions& options, std::FILE* out) {
  GRANULA_RETURN_IF_ERROR(model.Validate());

  LogTailer tailer(options.log_path);
  std::optional<StreamingArchiver> archiver;
  archiver.emplace(model, options.archiver);
  archiver->SetJobMetadata(options.job_metadata);
  AlertTracker alerts(options.chokepoints);
  WatchSummary summary;

  // Alert routing: the terminal line printer (non-ANSI mode only; the
  // ANSI redraw shows the alert ticker itself) plus an optional JSONL
  // file. Alerts go to every sink the moment they are raised.
  std::vector<std::unique_ptr<AlertSink>> sinks;
  if (out != nullptr && !options.ansi) {
    sinks.push_back(std::make_unique<TerminalAlertSink>(out));
  }
  if (!options.alert_jsonl_path.empty()) {
    GRANULA_ASSIGN_OR_RETURN(std::unique_ptr<JsonlAlertSink> jsonl,
                             JsonlAlertSink::Open(options.alert_jsonl_path));
    sinks.push_back(std::move(jsonl));
  }
  auto emit = [&sinks](const std::vector<LiveAlert>& fresh) {
    for (const LiveAlert& alert : fresh) {
      for (std::unique_ptr<AlertSink>& sink : sinks) sink->OnAlert(alert);
    }
  };

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.timeout_s));
  auto last_progress = std::chrono::steady_clock::now();
  bool stall_raised = false;

  while (true) {
    LogTailer::Poll poll = tailer.PollOnce();
    summary.malformed_lines += poll.malformed_lines;
    if (poll.rotated) {
      // The job restarted with a fresh log: restart assembly. Alert
      // dedup state survives on purpose — the analyst already saw those.
      ++summary.rotations;
      archiver.emplace(model, options.archiver);
      archiver->SetJobMetadata(options.job_metadata);
      if (out != nullptr && !options.quiet && !options.ansi) {
        std::fprintf(out, "[watch] log rotated; restarting assembly\n");
      }
    }
    summary.records_ingested += poll.records.size();
    for (const LogRecord& record : poll.records) archiver->Append(record);

    if (!poll.records.empty() || poll.rotated) {
      last_progress = std::chrono::steady_clock::now();
      stall_raised = false;  // the job woke back up; re-arm the detector
    }

    if (!poll.records.empty()) {
      Result<PerformanceArchive> snapshot = archiver->Snapshot();
      if (snapshot.ok()) {
        ++summary.snapshots;
        std::vector<LiveAlert> fresh = alerts.Update(*snapshot);
        emit(fresh);
        if (out == nullptr) {
          // Headless mode: callers only want the summary.
        } else if (options.ansi) {
          Redraw(out, *snapshot, alerts, *archiver, options.max_depth);
        } else {
          if (!options.quiet) {
            std::fprintf(
                out, "[watch] records=%llu open=%llu watermark=%s\n",
                static_cast<unsigned long long>(
                    archiver->stats().records_ingested),
                static_cast<unsigned long long>(
                    archiver->stats().open_operations),
                archiver->watermark().ToString().c_str());
          }
          std::fflush(out);
        }
      }
    }

    if (archiver->complete()) {
      summary.completed = true;
      break;
    }
    if (options.stall_timeout_s > 0 && !stall_raised) {
      double stalled_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - last_progress)
                             .count();
      if (stalled_s >= options.stall_timeout_s) {
        stall_raised = true;
        Finding finding{
            FindingKind::kStalledJob, Severity::kCritical, options.log_path,
            StrFormat("no new log records for %.1fs while the job is still "
                      "in flight — crashed worker or wedged platform",
                      stalled_s),
            stalled_s};
        std::optional<LiveAlert> alert =
            alerts.RaiseExternal(std::move(finding), /*in_flight=*/true);
        if (alert.has_value()) {
          emit({*alert});
          if (out != nullptr && options.ansi) {
            Redraw(out, summary.archive, alerts, *archiver,
                   options.max_depth);
          }
        }
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options.poll_interval_ms));
  }

  // On completion, Finish() seals the tree and the snapshot is the batch
  // archive. On timeout, snapshot FIRST: the analyst wants the in-flight
  // watermark view of the stalled job, not a force-finalized guess.
  Result<PerformanceArchive> final_snapshot = Status::Internal("unset");
  if (summary.completed) {
    archiver->Finish();
    final_snapshot = archiver->Snapshot();
  } else {
    final_snapshot = archiver->Snapshot();
    archiver->Finish();
  }
  summary.archiver_stats = archiver->stats();
  if (final_snapshot.ok()) {
    // One last analysis over the final tree so a short job still gets its
    // findings even if every poll raced past it.
    std::vector<LiveAlert> fresh = alerts.Update(*final_snapshot);
    emit(fresh);
    summary.alerts = alerts.alerts().size();
    summary.archive = std::move(*final_snapshot);
    if (out == nullptr) {
      // Headless mode: skip the final render.
    } else if (options.ansi) {
      Redraw(out, summary.archive, alerts, *archiver, options.max_depth);
    } else {
      std::fprintf(out, "%s",
                   RenderOperationTree(summary.archive, options.max_depth)
                       .c_str());
    }
    std::vector<Finding> findings;
    findings.reserve(alerts.alerts().size());
    for (const LiveAlert& alert : alerts.alerts()) {
      findings.push_back(alert.finding);
    }
    if (out != nullptr && !findings.empty()) {
      std::fprintf(out, "%s", RenderFindings(findings).c_str());
    }
  }
  summary.alerts = alerts.alerts().size();
  for (const LiveAlert& alert : alerts.alerts()) {
    if (alert.in_flight) ++summary.in_flight_alerts;
    if (alert.finding.kind == FindingKind::kStalledJob) {
      ++summary.stall_alerts;
    }
  }
  for (std::unique_ptr<AlertSink>& sink : sinks) sink->Flush();
  if (out != nullptr) {
    std::fprintf(out, "[watch] %s: %llu record(s), %llu alert(s)%s\n",
                 summary.completed ? "job completed" : "timed out",
                 static_cast<unsigned long long>(summary.records_ingested),
                 static_cast<unsigned long long>(summary.alerts),
                 summary.completed ? "" : " (job still in flight)");
    std::fflush(out);
  }
  return summary;
}

}  // namespace granula::core
