#ifndef GRANULA_GRANULA_LIVE_ALERT_SINK_H_
#define GRANULA_GRANULA_LIVE_ALERT_SINK_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "granula/live/alerts.h"

namespace granula::core {

// Pluggable destination for live alerts. `granula watch` routes every
// freshly raised alert — choke-point findings, retry/failure alerts,
// stall detections — to each configured sink, so alerts can go to the
// terminal, a machine-readable file, or (future) a webhook without the
// watch loop knowing the difference.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  // Called once per distinct alert, in the order raised.
  virtual void OnAlert(const LiveAlert& alert) = 0;
  // Called when the watch ends; sinks with buffers should drain them.
  virtual void Flush() {}
};

// One JSON object describing the alert; reparses with common/json.h.
Json AlertToJson(const LiveAlert& alert);

// Prints the classic "ALERT [severity] kind operation: description"
// line per alert. Does not own the stream.
class TerminalAlertSink : public AlertSink {
 public:
  explicit TerminalAlertSink(std::FILE* out) : out_(out) {}
  void OnAlert(const LiveAlert& alert) override;
  void Flush() override;

 private:
  std::FILE* out_;
};

// Appends one JSON line per alert to a file, flushed per alert so a
// concurrent reader (a dashboard, a test) sees alerts as they fire.
class JsonlAlertSink : public AlertSink {
 public:
  // Opens `path` for appending; fails if the file cannot be created.
  static Result<std::unique_ptr<JsonlAlertSink>> Open(
      const std::string& path);
  ~JsonlAlertSink() override;
  void OnAlert(const LiveAlert& alert) override;
  void Flush() override;

 private:
  explicit JsonlAlertSink(std::FILE* file) : file_(file) {}
  std::FILE* file_;
};

}  // namespace granula::core

#endif  // GRANULA_GRANULA_LIVE_ALERT_SINK_H_
