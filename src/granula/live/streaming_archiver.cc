#include "granula/live/streaming_archiver.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/strings.h"
#include "granula/archive/assembly.h"

namespace granula::core {

namespace {

std::string OpName(const LogRecord& start) {
  const std::string& actor =
      start.actor_id.empty() ? start.actor_type : start.actor_id;
  const std::string& mission =
      start.mission_id.empty() ? start.mission_type : start.mission_id;
  return actor + " @ " + mission;
}

// Same deterministic report order the batch lint pass produces.
void SortFindings(std::vector<LintFinding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              if (a.op_id != b.op_id) return a.op_id < b.op_id;
              if (a.defect != b.defect) return a.defect < b.defect;
              return a.detail < b.detail;
            });
}

}  // namespace

StreamingArchiver::StreamingArchiver(PerformanceModel model, Options options)
    : model_(options.max_level > 0 ? model.WithMaxLevel(options.max_level)
                                   : model),
      model_status_(model.Validate()),
      options_(options) {}

void StreamingArchiver::SetJobMetadata(
    std::map<std::string, std::string> metadata) {
  metadata_ = std::move(metadata);
}

void StreamingArchiver::SetEnvironment(
    std::vector<EnvironmentRecord> environment) {
  environment_ = std::move(environment);
}

void StreamingArchiver::AddFinding(LintDefect defect, uint64_t op_id,
                                   uint64_t seq, bool repaired,
                                   std::string detail) {
  findings_.push_back({defect, op_id, seq, repaired, std::move(detail)});
}

void StreamingArchiver::Append(const LogRecord& record) {
  if (finished_) return;
  ++stats_.records_ingested;
  watermark_ = std::max(watermark_, record.time);
  switch (record.kind) {
    case LogRecord::Kind::kStartOp:
      IngestStart(record);
      break;
    case LogRecord::Kind::kEndOp:
      IngestEnd(record);
      break;
    case LogRecord::Kind::kInfo:
      IngestInfo(record);
      break;
  }
  stats_.open_operations = open_.size();
}

void StreamingArchiver::AppendAll(const std::vector<LogRecord>& records) {
  for (const LogRecord& record : records) Append(record);
}

void StreamingArchiver::IngestStart(const LogRecord& record) {
  if (record.parent_id == record.op_id && record.op_id != kNoOp) {
    // A self-parent is the one cycle an online pass can detect on arrival;
    // longer cycles surface as quarantined extra roots at Finish().
    AddFinding(LintDefect::kParentCycle, record.op_id, record.seq, false,
               "parent links of 1 operation(s) form a cycle");
    ++stats_.quarantined_records;
    return;
  }
  if (open_.count(record.op_id) > 0) {
    AddFinding(LintDefect::kDuplicateStartOp, record.op_id, record.seq, true,
               StrFormat("duplicate StartOp for %s", OpName(record).c_str()));
    ++stats_.quarantined_records;
    return;
  }
  OpenOp op;
  op.start = record;
  if (record.parent_id != kNoOp) {
    auto parent = open_.find(record.parent_id);
    if (parent != open_.end()) {
      op.parent = record.parent_id;
      parent->second.open_children.insert(record.op_id);
    }
    // Parent unknown (never started, or already evicted): the op becomes a
    // root candidate and the Finish() root election sorts it out.
  }
  open_.emplace(record.op_id, std::move(op));
  stats_.peak_open_operations = std::max(
      stats_.peak_open_operations, static_cast<uint64_t>(open_.size()));
}

void StreamingArchiver::IngestEnd(const LogRecord& record) {
  auto it = open_.find(record.op_id);
  if (it == open_.end()) {
    AddFinding(LintDefect::kOrphanEndOp, record.op_id, record.seq, true,
               "EndOp record for an operation with no StartOp");
    ++stats_.quarantined_records;
    return;
  }
  OpenOp& op = it->second;
  op.saw_end_record = true;
  if (record.time < op.start.time) {
    AddFinding(LintDefect::kEndBeforeStart, record.op_id, record.seq, true,
               StrFormat("EndOp at %s precedes StartOp at %s",
                         record.time.ToString().c_str(),
                         op.start.time.ToString().c_str()));
    if (!op.end_time.has_value()) {
      op.end_provenance = " (inverted EndOp quarantined)";
    }
    ++stats_.quarantined_records;
    return;
  }
  if (op.end_time.has_value()) {
    AddFinding(LintDefect::kDuplicateEndOp, record.op_id, record.seq, true,
               StrFormat("duplicate EndOp at %s; first EndOp at %s wins",
                         record.time.ToString().c_str(),
                         op.end_time->ToString().c_str()));
    op.end_provenance = " (duplicate EndOp quarantined)";
    ++stats_.quarantined_records;
    return;
  }
  op.end_time = record.time;
  // A valid end supersedes any earlier inverted-end provenance.
  op.end_provenance.clear();
  op.closed = true;
  MaybeFinalize(record.op_id);
}

void StreamingArchiver::IngestInfo(const LogRecord& record) {
  auto it = open_.find(record.op_id);
  if (it == open_.end()) {
    AddFinding(LintDefect::kOrphanInfo, record.op_id, record.seq, true,
               StrFormat("Info '%s' record for an operation with no StartOp",
                         record.info_name.c_str()));
    ++stats_.quarantined_records;
    return;
  }
  it->second.infos.push_back(record);
}

void StreamingArchiver::MaybeFinalize(OpId id) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  if (!it->second.closed || !it->second.open_children.empty()) return;
  FinalizeOp(id);
}

void StreamingArchiver::FinalizeOp(OpId id) {
  auto node = open_.extract(id);
  OpenOp& op = node.mapped();
  Contribution contribution = BuildContribution(op);
  ++stats_.finalized_operations;
  stats_.open_operations = open_.size();
  if (op.parent != kNoOp) {
    auto parent = open_.find(op.parent);
    if (parent != open_.end()) {
      parent->second.open_children.erase(id);
      parent->second.done_children.push_back(std::move(contribution));
      MaybeFinalize(op.parent);
      return;
    }
  }
  roots_.push_back(std::move(contribution));
}

StreamingArchiver::Contribution StreamingArchiver::BuildContribution(
    OpenOp& op) {
  Contribution c;
  c.start_seq = op.start.seq;
  c.op_id = op.start.op_id;
  c.name = OpName(op.start);
  c.closed_by_record = op.end_time.has_value();
  c.lint_size = 1;
  std::sort(op.done_children.begin(), op.done_children.end(),
            [](const Contribution& a, const Contribution& b) {
              return a.start_seq < b.start_seq;
            });
  for (const Contribution& child : op.done_children) {
    c.lint_size += child.lint_size;
  }

  // Mirrors the batch pass: the finding fires only when no end record of
  // any kind arrived (a quarantined inverted/duplicate end already has its
  // own finding and provenance).
  if (!op.end_time.has_value() && !op.saw_end_record) {
    AddFinding(LintDefect::kMissingEndTime, op.start.op_id, op.start.seq,
               true,
               StrFormat("no EndOp for %s; EndTime repaired from the subtree",
                         c.name.c_str()));
  }

  if (!model_.Contains(op.start.actor_type, op.start.mission_type)) {
    // Unmodeled: splice out, hoisting modeled descendants in start order —
    // the same concatenation-without-sorting the batch Assemble performs.
    for (Contribution& child : op.done_children) {
      for (auto& n : child.nodes) c.nodes.push_back(std::move(n));
    }
    return c;
  }

  std::sort(op.infos.begin(), op.infos.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.seq < b.seq;
            });
  std::vector<const LogRecord*> infos;
  infos.reserve(op.infos.size());
  for (const LogRecord& r : op.infos) infos.push_back(&r);

  std::unique_ptr<ArchivedOperation> node =
      MakeOperationNode(op.start, op.end_time, op.end_provenance, infos);
  for (Contribution& child : op.done_children) {
    for (auto& n : child.nodes) node->children.push_back(std::move(n));
  }
  SortChildrenByStartTime(node.get());
  FinalizeOperationNode(*node, model_);
  c.nodes.push_back(std::move(node));
  return c;
}

void StreamingArchiver::ForceFinalize(OpId id) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  std::vector<std::pair<uint64_t, OpId>> kids;
  kids.reserve(it->second.open_children.size());
  for (OpId child : it->second.open_children) {
    kids.emplace_back(open_.at(child).start.seq, child);
  }
  std::sort(kids.begin(), kids.end());
  for (const auto& [seq, child] : kids) ForceFinalize(child);
  // Re-find: finalizing the last forced child may have cascaded into this
  // op already (when its own EndOp had arrived earlier).
  it = open_.find(id);
  if (it == open_.end()) return;
  it->second.closed = true;
  FinalizeOp(id);
}

void StreamingArchiver::Finish() {
  if (finished_) return;
  finished_ = true;

  std::vector<std::pair<uint64_t, OpId>> tops;
  for (const auto& [id, op] : open_) {
    if (op.parent == kNoOp) tops.emplace_back(op.start.seq, id);
  }
  std::sort(tops.begin(), tops.end());
  for (const auto& [seq, id] : tops) ForceFinalize(id);

  // Root election: largest subtree wins, ties broken by lowest start seq —
  // the batch pass's rule.
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (primary_root_ < 0) {
      primary_root_ = static_cast<int>(i);
      continue;
    }
    const Contribution& best = roots_[static_cast<size_t>(primary_root_)];
    const Contribution& cand = roots_[i];
    if (cand.lint_size > best.lint_size ||
        (cand.lint_size == best.lint_size &&
         cand.start_seq < best.start_seq)) {
      primary_root_ = static_cast<int>(i);
    }
  }
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (static_cast<int>(i) == primary_root_) continue;
    AddFinding(LintDefect::kMultipleRoots, roots_[i].op_id,
               roots_[i].start_seq, false,
               StrFormat("extra root %s (subtree of %llu operation(s)) "
                         "quarantined",
                         roots_[i].name.c_str(),
                         static_cast<unsigned long long>(
                             roots_[i].lint_size)));
  }
}

StreamingArchiver::Contribution StreamingArchiver::BuildOpenContribution(
    const OpenOp& op) const {
  struct Slot {
    uint64_t start_seq = 0;
    std::vector<std::unique_ptr<ArchivedOperation>> nodes;
  };
  std::vector<Slot> slots;
  slots.reserve(op.done_children.size() + op.open_children.size());
  for (const Contribution& done : op.done_children) {
    Slot slot;
    slot.start_seq = done.start_seq;
    for (const auto& n : done.nodes) slot.nodes.push_back(n->Clone());
    slots.push_back(std::move(slot));
  }
  for (OpId child : op.open_children) {
    Contribution built = BuildOpenContribution(open_.at(child));
    Slot slot;
    slot.start_seq = built.start_seq;
    slot.nodes = std::move(built.nodes);
    slots.push_back(std::move(slot));
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    return a.start_seq < b.start_seq;
  });

  Contribution c;
  c.start_seq = op.start.seq;
  c.op_id = op.start.op_id;
  c.name = OpName(op.start);

  if (!model_.Contains(op.start.actor_type, op.start.mission_type)) {
    for (Slot& slot : slots) {
      for (auto& n : slot.nodes) c.nodes.push_back(std::move(n));
    }
    return c;
  }

  std::vector<LogRecord> sorted_infos = op.infos;
  std::sort(sorted_infos.begin(), sorted_infos.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.seq < b.seq;
            });
  std::vector<const LogRecord*> infos;
  infos.reserve(sorted_infos.size());
  for (const LogRecord& r : sorted_infos) infos.push_back(&r);

  std::unique_ptr<ArchivedOperation> node =
      MakeOperationNode(op.start, op.end_time, op.end_provenance, infos);
  if (!op.end_time.has_value()) {
    // Still running: close provisionally at the stream watermark so the
    // snapshot has well-formed durations, and mark it so downstream
    // consumers (choke-point detectors, renderers) can tell.
    SimTime horizon = std::max(watermark_, op.start.time);
    node->SetInfo("EndTime", Json(horizon.nanos()),
                  "stream watermark (in flight)");
    node->SetInfo("InFlight", Json(true), "streaming archiver");
  }
  for (Slot& slot : slots) {
    for (auto& n : slot.nodes) node->children.push_back(std::move(n));
  }
  SortChildrenByStartTime(node.get());
  // No rule derivation on in-flight nodes: rules assume complete inputs.
  c.nodes.push_back(std::move(node));
  return c;
}

Result<PerformanceArchive> StreamingArchiver::Snapshot() const {
  GRANULA_RETURN_IF_ERROR(model_status_);

  const Contribution* done_root = nullptr;
  const OpenOp* open_root = nullptr;
  if (finished_) {
    if (primary_root_ >= 0) {
      done_root = &roots_[static_cast<size_t>(primary_root_)];
    }
  } else {
    // Mid-stream election over finalized and still-open root candidates:
    // same (subtree size desc, start seq asc) rule as Finish().
    uint64_t best_size = 0;
    uint64_t best_seq = 0;
    auto consider = [&](uint64_t size, uint64_t seq, const Contribution* d,
                        const OpenOp* o) {
      bool better = done_root == nullptr && open_root == nullptr;
      if (!better) {
        better = size > best_size || (size == best_size && seq < best_seq);
      }
      if (!better) return;
      best_size = size;
      best_seq = seq;
      done_root = d;
      open_root = o;
    };
    for (const Contribution& c : roots_) {
      consider(c.lint_size, c.start_seq, &c, nullptr);
    }
    std::function<uint64_t(const OpenOp&)> open_size =
        [&](const OpenOp& op) -> uint64_t {
      uint64_t size = 1;
      for (const Contribution& done : op.done_children) {
        size += done.lint_size;
      }
      for (OpId child : op.open_children) size += open_size(open_.at(child));
      return size;
    };
    for (const auto& [id, op] : open_) {
      if (op.parent != kNoOp) continue;
      consider(open_size(op), op.start.seq, nullptr, &op);
    }
  }
  if (done_root == nullptr && open_root == nullptr) {
    return Status::Corruption("log contains no root operation");
  }

  std::vector<std::unique_ptr<ArchivedOperation>> nodes;
  if (done_root != nullptr) {
    nodes.reserve(done_root->nodes.size());
    for (const auto& n : done_root->nodes) nodes.push_back(n->Clone());
  } else {
    Contribution built = BuildOpenContribution(*open_root);
    nodes = std::move(built.nodes);
  }
  if (nodes.size() != 1) {
    return Status::FailedPrecondition(
        "root operation is not covered by the model");
  }

  PerformanceArchive archive;
  archive.model_name = model_.name();
  // Status matches the batch Archiver: incomplete when the elected root
  // never got a usable EndOp — still in flight mid-stream, or repaired
  // at Finish() (a crashed job's log).
  if (open_root != nullptr ||
      (done_root != nullptr && !done_root->closed_by_record)) {
    archive.status = ArchiveStatus::kIncomplete;
  }
  archive.root = std::move(nodes[0]);
  archive.environment = environment_;
  archive.job_metadata = metadata_;
  archive.lint.findings = findings_;
  SortFindings(&archive.lint.findings);
  return archive;
}

}  // namespace granula::core
