#include "granula/bench/sweep.h"

#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "granula/archive/archiver.h"
#include "granula/archive/repository.h"
#include "graph/io.h"
#include "platforms/dispatch.h"

namespace granula::bench {
namespace {

std::string Lower(std::string_view s) {
  std::string out;
  for (char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Filesystem-safe run-name fragment: lowercase alphanumerics, everything
// else folded to '-' ("uniform:500,2000" -> "uniform-500-2000").
std::string Slug(std::string_view s) {
  std::string out;
  for (char c : s) {
    out += std::isalnum(static_cast<unsigned char>(c))
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '-';
  }
  return out;
}

// Case-insensitive Graphalytics algorithm lookup ("pagerank" works in a
// hand-written config; the CLI's exact names keep working too).
Result<algo::AlgorithmId> AlgorithmByName(const std::string& name) {
  std::string lower = Lower(name);
  for (algo::AlgorithmId id :
       {algo::AlgorithmId::kBfs, algo::AlgorithmId::kPageRank,
        algo::AlgorithmId::kWcc, algo::AlgorithmId::kSssp,
        algo::AlgorithmId::kCdlp, algo::AlgorithmId::kLcc}) {
    if (lower == Lower(algo::AlgorithmName(id))) return id;
  }
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (BFS|PageRank|WCC|SSSP|CDLP|LCC)");
}

Result<std::vector<std::string>> StringList(const Json& json,
                                            const std::string& key) {
  const Json* value = json.Find(key);
  if (value == nullptr) return std::vector<std::string>{};
  if (value->is_string()) return std::vector<std::string>{value->AsString()};
  if (!value->is_array()) {
    return Status::InvalidArgument("sweep config: '" + key +
                                   "' must be a string or array of strings");
  }
  std::vector<std::string> out;
  for (const Json& item : value->AsArray()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("sweep config: '" + key +
                                     "' entries must be strings");
    }
    out.push_back(item.AsString());
  }
  return out;
}

}  // namespace

Result<SweepSpec> SweepSpec::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("sweep config must be a JSON object");
  }
  static const std::set<std::string> kKnownKeys = {
      "platforms",  "algorithms", "graphs",
      "nodes",      "faults",     "iterations",
      "source",     "max_attempts", "checkpoint_interval",
      "model_level"};
  for (const auto& [key, unused] : json.AsObject()) {
    if (kKnownKeys.count(key) == 0) {
      return Status::InvalidArgument("sweep config: unknown key '" + key +
                                     "'");
    }
  }

  SweepSpec spec;
  GRANULA_ASSIGN_OR_RETURN(spec.platforms, StringList(json, "platforms"));
  GRANULA_ASSIGN_OR_RETURN(spec.algorithms, StringList(json, "algorithms"));
  GRANULA_ASSIGN_OR_RETURN(spec.graphs, StringList(json, "graphs"));
  for (const char* key : {"platforms", "algorithms", "graphs"}) {
    const Json* value = json.Find(key);
    if (value == nullptr) {
      return Status::InvalidArgument(std::string("sweep config: '") + key +
                                     "' is required");
    }
  }

  if (const Json* nodes = json.Find("nodes"); nodes != nullptr) {
    spec.node_counts.clear();
    const Json::Array one_node = {*nodes};
    const Json::Array& items =
        nodes->is_array() ? nodes->AsArray() : one_node;
    for (const Json& item : items) {
      if (!item.is_int() || item.AsInt() <= 0) {
        return Status::InvalidArgument(
            "sweep config: 'nodes' entries must be positive integers");
      }
      spec.node_counts.push_back(static_cast<uint32_t>(item.AsInt()));
    }
  }

  if (const Json* faults = json.Find("faults"); faults != nullptr) {
    if (!faults->is_array()) {
      return Status::InvalidArgument(
          "sweep config: 'faults' must be an array of {name, spec}");
    }
    for (const Json& item : faults->AsArray()) {
      FaultEntry entry;
      entry.name = item.GetString("name");
      entry.spec = item.GetString("spec");
      if (!item.is_object() || entry.name.empty()) {
        return Status::InvalidArgument(
            "sweep config: each 'faults' entry needs a non-empty 'name'");
      }
      spec.faults.push_back(std::move(entry));
    }
  }

  if (const Json* v = json.Find("iterations")) {
    if (!v->is_int() || v->AsInt() <= 0) {
      return Status::InvalidArgument(
          "sweep config: 'iterations' must be a positive integer");
    }
    spec.iterations = static_cast<uint64_t>(v->AsInt());
  }
  if (const Json* v = json.Find("source")) {
    if (!v->is_int() || v->AsInt() < 0) {
      return Status::InvalidArgument(
          "sweep config: 'source' must be a non-negative integer");
    }
    spec.source = v->AsInt();
  }
  if (const Json* v = json.Find("max_attempts")) {
    if (!v->is_int() || v->AsInt() <= 0) {
      return Status::InvalidArgument(
          "sweep config: 'max_attempts' must be a positive integer");
    }
    spec.max_attempts = static_cast<uint32_t>(v->AsInt());
  }
  if (const Json* v = json.Find("checkpoint_interval")) {
    if (!v->is_int() || v->AsInt() < 0) {
      return Status::InvalidArgument(
          "sweep config: 'checkpoint_interval' must be >= 0");
    }
    spec.checkpoint_interval = static_cast<uint64_t>(v->AsInt());
  }
  if (const Json* v = json.Find("model_level")) {
    if (!v->is_int() || v->AsInt() < 0) {
      return Status::InvalidArgument(
          "sweep config: 'model_level' must be >= 0");
    }
    spec.model_level = static_cast<int>(v->AsInt());
  }
  return spec;
}

Result<SweepSpec> SweepSpec::FromJsonFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open sweep config " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  Result<Json> json = Json::Parse(buffer.str());
  if (!json.ok()) {
    return Status::InvalidArgument("sweep config " + path + ": " +
                                   json.status().message());
  }
  return FromJson(*json);
}

Result<std::vector<SweepJob>> ExpandSweep(const SweepSpec& spec) {
  if (spec.platforms.empty() || spec.algorithms.empty() ||
      spec.graphs.empty() || spec.node_counts.empty()) {
    return Status::InvalidArgument(
        "sweep needs at least one platform, algorithm, graph and node "
        "count");
  }

  // Resolve every axis value once, up front, so a typo anywhere in the
  // config fails before any job runs.
  std::vector<std::string> platforms;
  for (const std::string& name : spec.platforms) {
    GRANULA_ASSIGN_OR_RETURN(std::string canonical,
                             platform::ResolvePlatformName(name));
    platforms.push_back(canonical);
  }
  std::vector<algo::AlgorithmId> algorithms;
  for (const std::string& name : spec.algorithms) {
    GRANULA_ASSIGN_OR_RETURN(algo::AlgorithmId id, AlgorithmByName(name));
    algorithms.push_back(id);
  }
  // The clean/fault axis: one implicit clean entry when none are given.
  std::vector<std::pair<std::string, sim::FaultPlan>> faults;
  if (spec.faults.empty()) {
    faults.emplace_back("", sim::FaultPlan{});
  } else {
    for (const FaultEntry& entry : spec.faults) {
      sim::FaultPlan plan;
      if (!entry.spec.empty()) {
        GRANULA_ASSIGN_OR_RETURN(plan, sim::FaultPlan::Parse(entry.spec));
      }
      plan.retry.max_attempts = spec.max_attempts;
      plan.retry.checkpoint_interval = spec.checkpoint_interval;
      faults.emplace_back(entry.name, std::move(plan));
    }
  }

  std::vector<SweepJob> jobs;
  std::set<std::string> names;
  for (const std::string& platform_name : platforms) {
    for (size_t a = 0; a < algorithms.size(); ++a) {
      for (const std::string& graph_spec : spec.graphs) {
        for (uint32_t nodes : spec.node_counts) {
          for (const auto& [fault_name, fault_plan] : faults) {
            SweepJob job;
            job.platform = platform_name;
            job.algorithm = std::string(algo::AlgorithmName(algorithms[a]));
            job.graph = graph_spec;
            job.fault_name = fault_name;
            job.nodes = nodes;
            job.spec.id = algorithms[a];
            job.spec.source = static_cast<graph::VertexId>(spec.source);
            job.spec.max_iterations = spec.iterations;
            job.faults = fault_plan;
            job.name = platform_name + "-" + Lower(job.algorithm) + "-" +
                       Slug(graph_spec) + "-n" + std::to_string(nodes);
            if (!fault_name.empty()) job.name += "-" + Slug(fault_name);
            if (!names.insert(job.name).second) {
              return Status::InvalidArgument(
                  "sweep expands to duplicate run name '" + job.name +
                  "' (repeated axis value?)");
            }
            jobs.push_back(std::move(job));
          }
        }
      }
    }
  }
  return jobs;
}

Result<SweepResult> RunSweep(const SweepSpec& spec,
                             const SweepOptions& options,
                             std::FILE* progress) {
  GRANULA_ASSIGN_OR_RETURN(std::vector<SweepJob> jobs, ExpandSweep(spec));

  // Generate each distinct graph once, sequentially, before fanning out:
  // the generators use the host pool themselves and jobs share the
  // instances read-only.
  std::map<std::string, graph::Graph> graph_cache;
  for (const SweepJob& job : jobs) {
    if (graph_cache.count(job.graph) > 0) continue;
    Result<graph::Graph> graph = graph::GraphFromSpec(job.graph);
    if (!graph.ok()) {
      return Status::InvalidArgument("graph '" + job.graph +
                                     "': " + graph.status().message());
    }
    graph_cache.emplace(job.graph, std::move(*graph));
  }

  core::ArchiveRepository repo(options.repo_dir);
  GRANULA_RETURN_IF_ERROR(repo.Init());

  struct JobOutput {
    Result<core::PerformanceArchive> archive = Status::Internal("not run");
    SweepJobSummary summary;
  };
  std::vector<JobOutput> outputs(jobs.size());

  auto run_one = [&](size_t i) {
    const SweepJob& job = jobs[i];
    SweepJobSummary& summary = outputs[i].summary;
    summary.name = job.name;
    summary.platform = job.platform;
    summary.algorithm = job.algorithm;
    summary.graph = job.graph;
    summary.fault_name = job.fault_name;
    summary.nodes = job.nodes;

    cluster::ClusterConfig cluster_config;
    cluster_config.num_nodes = job.nodes;
    platform::JobConfig job_config;
    job_config.num_workers = job.nodes;
    job_config.faults = job.faults;

    const graph::Graph& graph = graph_cache.at(job.graph);
    Result<platform::JobResult> result = platform::RunForPlatform(
        job.platform, graph, job.spec, cluster_config, job_config);
    if (!result.ok()) {
      outputs[i].archive = result.status();
      return;
    }

    Result<core::PerformanceModel> model =
        platform::ModelForPlatform(job.platform);
    if (!model.ok()) {
      outputs[i].archive = model.status();
      return;
    }
    core::Archiver::Options archiver_options;
    archiver_options.max_level = spec.model_level;
    outputs[i].archive = core::Archiver(archiver_options)
                             .Build(*model, result->records,
                                    std::move(result->environment),
                                    {{"platform", job.platform},
                                     {"algorithm", job.algorithm},
                                     {"graph", job.graph},
                                     {"graph_vertices",
                                      std::to_string(graph.num_vertices())},
                                     {"nodes", std::to_string(job.nodes)},
                                     {"fault", job.fault_name},
                                     {"sweep_job", job.name}});
    summary.completed = result->completed;
    summary.total_seconds = result->total_seconds;
    summary.failed_attempts = result->failed_attempts;
    if (outputs[i].archive.ok()) {
      summary.operations = outputs[i].archive->OperationCount();
    }
  };

  if (options.parallel) {
    // One job per chunk; the engines' own ParallelFor calls run inline
    // when invoked from inside a chunk, so the pool is never oversubscribed
    // and every job computes exactly what it would compute alone.
    ParallelFor(0, jobs.size(), 1,
                [&](uint64_t, uint64_t begin, uint64_t end) {
                  for (uint64_t i = begin; i < end; ++i) run_one(i);
                });
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) run_one(i);
  }

  SweepResult sweep;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!outputs[i].archive.ok()) {
      return Status(outputs[i].archive.status().code(),
                    "sweep job '" + jobs[i].name +
                        "': " + outputs[i].archive.status().message());
    }
    GRANULA_ASSIGN_OR_RETURN(std::string saved,
                             repo.Save(*outputs[i].archive, jobs[i].name));
    sweep.archive_names.push_back(saved);
    sweep.jobs.push_back(outputs[i].summary);
    sweep.all_completed = sweep.all_completed && outputs[i].summary.completed;
    if (progress != nullptr) {
      std::fprintf(progress, "  [%zu/%zu] %-44s %8.2fs  %6llu ops%s\n",
                   i + 1, jobs.size(), jobs[i].name.c_str(),
                   outputs[i].summary.total_seconds,
                   static_cast<unsigned long long>(
                       outputs[i].summary.operations),
                   outputs[i].summary.completed ? "" : "  INCOMPLETE");
    }
  }
  return sweep;
}

}  // namespace granula::bench
