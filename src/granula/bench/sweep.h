#ifndef GRANULA_GRANULA_BENCH_SWEEP_H_
#define GRANULA_GRANULA_BENCH_SWEEP_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/api.h"
#include "common/json.h"
#include "common/result.h"
#include "sim/faults.h"

namespace granula::bench {

// The Graphalytics-core-style sweep driver behind `granula bench`: a
// declarative platforms × algorithms × graph scales × node counts ×
// (optional) fault plans matrix, executed job by job on the host thread
// pool and archived into one ArchiveRepository under deterministic names,
// so the comparative analysis (analysis/comparative.h) and the regression
// gate can treat the whole sweep as a single shareable artifact.

// One optional fault axis entry. An empty `spec` means "no faults" — use
// it to sweep clean and faulted variants of the same matrix side by side.
struct FaultEntry {
  std::string name;  // run-name suffix; must be non-empty per entry
  std::string spec;  // FaultPlan::Parse grammar, "" = clean
};

struct SweepSpec {
  std::vector<std::string> platforms;   // dispatch.h canonical names
  std::vector<std::string> algorithms;  // Graphalytics names, any case
  std::vector<std::string> graphs;      // graph/io.h GraphFromSpec grammar
  std::vector<uint32_t> node_counts = {8};
  std::vector<FaultEntry> faults;       // empty = clean runs only
  uint64_t iterations = 10;             // PageRank/CDLP rounds
  int64_t source = 1;                   // BFS/SSSP source vertex
  uint32_t max_attempts = 4;            // retry policy for faulted runs
  uint64_t checkpoint_interval = 2;
  int model_level = 0;                  // Archiver max_level

  // Parses the declarative JSON form:
  //   {"platforms": ["giraph", "pgxd"],
  //    "algorithms": ["BFS", "PageRank"],
  //    "graphs": ["uniform:500,2000"],
  //    "nodes": [4, 8],
  //    "faults": [{"name": "crash2", "spec": "crash:2:1"}],
  //    "iterations": 6, "source": 1, "model_level": 0}
  // Only "platforms", "algorithms" and "graphs" are required; unknown
  // keys are rejected so config typos fail loudly instead of silently
  // running the default matrix.
  static Result<SweepSpec> FromJson(const Json& json);
  static Result<SweepSpec> FromJsonFile(const std::string& path);
};

// One fully-resolved cell of the sweep matrix.
struct SweepJob {
  std::string name;  // deterministic archive name, see ExpandSweep
  std::string platform;
  std::string algorithm;   // display name, e.g. "PageRank"
  std::string graph;       // original spec string
  std::string fault_name;  // "" for clean runs
  uint32_t nodes = 0;
  algo::AlgorithmSpec spec;
  sim::FaultPlan faults;
};

// Expands the matrix in declaration order (platform-major, then
// algorithm, graph, nodes, fault) after validating every axis value.
// Job/archive names are "<platform>-<algo>-<graph-slug>-nN[-fault]",
// e.g. "giraph-bfs-uniform-500-2000-n4-crash2"; a spec whose axes would
// produce duplicate names is rejected.
Result<std::vector<SweepJob>> ExpandSweep(const SweepSpec& spec);

struct SweepOptions {
  std::string repo_dir = "sweep-archives";
  // Fan the jobs across the host pool (GRANULA_HOST_THREADS). Each job is
  // itself deterministic, and archives are saved under explicit names in
  // expansion order, so the repository bytes do not depend on the thread
  // count. false = run strictly sequentially.
  bool parallel = true;
};

struct SweepJobSummary {
  std::string name;
  std::string platform;
  std::string algorithm;
  std::string graph;
  std::string fault_name;
  uint32_t nodes = 0;
  bool completed = true;  // false: fault plan exhausted the retry policy
  double total_seconds = 0;
  uint64_t operations = 0;
  uint64_t failed_attempts = 0;
};

struct SweepResult {
  std::vector<SweepJobSummary> jobs;  // expansion order
  // Archive names in the repository, parallel to `jobs`.
  std::vector<std::string> archive_names;
  bool all_completed = true;
};

// Runs every job of the sweep and saves each archive into the repository
// at `options.repo_dir` under the job's name (overwriting a previous
// sweep's archive of the same name — names are pure functions of the
// config, which is what makes baseline comparison possible). `progress`
// (may be null) receives one summary line per job, in expansion order.
Result<SweepResult> RunSweep(const SweepSpec& spec,
                             const SweepOptions& options,
                             std::FILE* progress = nullptr);

}  // namespace granula::bench

#endif  // GRANULA_GRANULA_BENCH_SWEEP_H_
