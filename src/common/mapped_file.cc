#include "common/mapped_file.h"

#include <atomic>
#include <utility>

#include "common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define GRANULA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

namespace granula {

namespace {
std::atomic<bool> g_force_fallback{false};
std::atomic<bool> g_fail_reads{false};
}  // namespace

void MappedFile::ForceReadFallbackForTest(bool on) {
  g_force_fallback.store(on, std::memory_order_relaxed);
}

void MappedFile::FailReadsForTest(bool on) {
  g_fail_reads.store(on, std::memory_order_relaxed);
}

MappedFile::~MappedFile() { Release(); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    MoveFrom(std::move(other));
  }
  return *this;
}

void MappedFile::MoveFrom(MappedFile&& other) noexcept {
  map_ = other.map_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  buffer_ = std::move(other.buffer_);
  other.map_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.buffer_.clear();
}

void MappedFile::Release() {
#ifdef GRANULA_HAVE_MMAP
  if (mapped_ && map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), size_);
  }
#endif
  map_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#ifdef GRANULA_HAVE_MMAP

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError(
        StrFormat("cannot stat %s (not a regular file?)", path.c_str()));
  }
  const size_t size = static_cast<size_t>(st.st_size);

  MappedFile file;
  if (size == 0) {
    ::close(fd);
    return file;  // empty view, nothing to map
  }

  if (!g_force_fallback.load(std::memory_order_relaxed)) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      file.map_ = static_cast<const char*>(map);
      file.size_ = size;
      file.mapped_ = true;
      return file;
    }
  }

  // Fallback: plain read into an owned buffer. A short or failed read is
  // an error, never a silently truncated view.
  file.buffer_.resize(size);
  size_t total = 0;
  while (total < size) {
    if (g_fail_reads.load(std::memory_order_relaxed)) {
      ::close(fd);
      return Status::IoError(StrFormat("read failed for %s", path.c_str()));
    }
    ssize_t got = ::read(fd, file.buffer_.data() + total, size - total);
    if (got < 0) {
      ::close(fd);
      return Status::IoError(StrFormat("read failed for %s", path.c_str()));
    }
    if (got == 0) break;  // EOF before st_size: the file shrank under us
    total += static_cast<size_t>(got);
  }
  ::close(fd);
  if (total != size) {
    return Status::IoError(
        StrFormat("short read for %s (got %zu of %zu bytes)", path.c_str(),
                  total, size));
  }
  return file;
}

#else  // !GRANULA_HAVE_MMAP

Result<MappedFile> MappedFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  MappedFile file;
  char chunk[1 << 16];
  while (true) {
    if (g_fail_reads.load(std::memory_order_relaxed)) {
      std::fclose(f);
      return Status::IoError(StrFormat("read failed for %s", path.c_str()));
    }
    size_t got = std::fread(chunk, 1, sizeof(chunk), f);
    if (got > 0) file.buffer_.append(chunk, got);
    if (got < sizeof(chunk)) {
      if (std::ferror(f)) {
        std::fclose(f);
        return Status::IoError(StrFormat("read failed for %s", path.c_str()));
      }
      break;
    }
  }
  std::fclose(f);
  return file;
}

#endif  // GRANULA_HAVE_MMAP

}  // namespace granula
