#ifndef GRANULA_COMMON_SOCKET_H_
#define GRANULA_COMMON_SOCKET_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace granula {

// Minimal blocking TCP primitives for the embedded archive server
// (granula/serve) and its test/bench clients. POSIX sockets only — on a
// non-POSIX build every call returns Unimplemented, mirroring how
// MappedFile degrades. No external dependencies, no event loop: the
// serve layer is a listener plus blocking per-connection workers, so
// plain fds with kernel timeouts are all that is needed.

// A connected stream socket. Move-only; the destructor closes the fd.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Kernel-enforced read/write deadlines (SO_RCVTIMEO / SO_SNDTIMEO).
  // <= 0 leaves the direction unbounded.
  Status SetTimeouts(int recv_ms, int send_ms);

  // One blocking read of at most `cap` bytes appended to `out`.
  enum class ReadOutcome { kData, kEof, kTimeout, kError };
  ReadOutcome Read(std::string& out, size_t cap = 16384);

  // Writes all of `data`; a send timeout or closed peer is an IoError
  // with "timed out" in the message for the timeout case.
  Status WriteAll(std::string_view data);

  // Disallows further reads (::shutdown SHUT_RD): a thread blocked in
  // Read() observes EOF. Writes still flush, so a worker draining a
  // response is not cut off mid-body.
  void ShutdownRead();

  void Close();

 private:
  int fd_ = -1;
};

// A bound, listening socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds `host:port` (port 0 picks a free port — port() reports the
  // real one) and listens. IoError on bind/listen failure (port in use,
  // bad host); the message names the address.
  static Result<TcpListener> Bind(const std::string& host, int port,
                                  int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  // Waits up to `timeout_ms` for a connection; an invalid TcpSocket
  // means the wait timed out (callers poll a stop flag between waits).
  Result<TcpSocket> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

// Client-side connect with a millisecond deadline, for tests, benches,
// and future fleet tooling.
Result<TcpSocket> TcpConnect(const std::string& host, int port,
                             int timeout_ms);

// Half-closes the read side of an fd owned elsewhere. The server's Stop()
// uses this to unblock workers' reads on in-flight connections it tracks
// only by fd; no-op for invalid fds.
void ShutdownReadFd(int fd);

}  // namespace granula

#endif  // GRANULA_COMMON_SOCKET_H_
