#ifndef GRANULA_COMMON_LOGGING_H_
#define GRANULA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace granula {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level that is emitted; defaults to kWarning so library code is
// silent in tests and benchmarks unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style log sink; emits on destruction. Use via GRANULA_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace granula

#define GRANULA_LOG(level)                                       \
  ::granula::internal_logging::LogMessage(                       \
      ::granula::LogLevel::k##level, __FILE__, __LINE__)

#endif  // GRANULA_COMMON_LOGGING_H_
