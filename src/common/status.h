#ifndef GRANULA_COMMON_STATUS_H_
#define GRANULA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace granula {

// Error categories used across the library. Kept deliberately small; the
// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kCorruption,
};

// Returns a stable lowercase name for `code`, e.g. "invalid_argument".
std::string_view StatusCodeName(StatusCode code);

// A RocksDB/Abseil-style status object. Functions that can fail return a
// Status (or a Result<T>, see result.h) instead of throwing; exceptions are
// not used across module boundaries.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace granula

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define GRANULA_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::granula::Status granula_status_tmp_ = (expr);    \
    if (!granula_status_tmp_.ok()) {                   \
      return granula_status_tmp_;                      \
    }                                                  \
  } while (false)

#endif  // GRANULA_COMMON_STATUS_H_
