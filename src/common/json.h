#ifndef GRANULA_COMMON_JSON_H_
#define GRANULA_COMMON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace granula {

// A self-contained JSON document model, parser, and writer. Performance
// archives (granula/archive) are serialized through this module, so it must
// roundtrip exactly: Parse(Dump(v)) == v for every value this library emits.
//
// Numbers are stored as either int64 or double; integers that fit int64 are
// kept exact.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys sorted, which makes serialization
  // deterministic — a property the archive-diff tooling relies on.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}          // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}        // NOLINT
  Json(int i) : type_(Type::kInt), int_(i) {}           // NOLINT
  Json(int64_t i) : type_(Type::kInt), int_(i) {}       // NOLINT
  Json(uint64_t i)                                      // NOLINT
      : type_(Type::kInt), int_(static_cast<int64_t>(i)) {}
  Json(double d) : type_(Type::kDouble), double_(d) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : type_(Type::kString), string_(s) {}        // NOLINT
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}          // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}       // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return is_double() ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  Array& AsArray() { return array_; }
  const Object& AsObject() const { return object_; }
  Object& AsObject() { return object_; }

  // Object access. `operator[]` on a null value turns it into an object,
  // mirroring the ergonomics of nlohmann::json for building documents.
  Json& operator[](const std::string& key);
  // Returns nullptr when not an object or the key is absent.
  const Json* Find(std::string_view key) const;

  // Convenience typed getters with defaults, for tolerant readers.
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  std::string GetString(std::string_view key, std::string fallback = "") const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // Array building.
  void Append(Json value);
  size_t size() const;

  // Serialization. `indent` <= 0 produces compact single-line output.
  std::string Dump(int indent = 0) const;

  // Strict JSON parsing (RFC 8259); rejects trailing garbage.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Escapes `s` as a JSON string literal body (without surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace granula

#endif  // GRANULA_COMMON_JSON_H_
