#ifndef GRANULA_COMMON_JSON_H_
#define GRANULA_COMMON_JSON_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace granula {

// A self-contained JSON document model, parser, and writer. Performance
// archives (granula/archive) are serialized through this module, so it must
// roundtrip exactly: Parse(Dump(v)) == v for every value this library emits.
//
// Numbers are stored as either int64 or double; integers that fit int64 are
// kept exact. Unsigned values above INT64_MAX are stored as doubles (losing
// precision past 2^53) rather than wrapping negative.
//
// The value payload is a tagged union: exactly one member is live at a time,
// and arrays/objects live out of line behind an owned pointer. This keeps
// sizeof(Json) at one std::string plus a tag — the log-ingest and archive
// paths materialize millions of these, and the previous all-members-present
// layout (string + vector + map per node) dominated their memory traffic.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys sorted, which makes serialization
  // deterministic — a property the archive-diff tooling relies on. The
  // transparent comparator lets Find() take a string_view without
  // materializing a std::string per lookup.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : type_(Type::kNull), int_(0) {}
  Json(std::nullptr_t) : Json() {}                      // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}        // NOLINT
  Json(int i) : type_(Type::kInt), int_(i) {}           // NOLINT
  Json(int64_t i) : type_(Type::kInt), int_(i) {}       // NOLINT
  Json(uint64_t i) {                                    // NOLINT
    if (i <= static_cast<uint64_t>(INT64_MAX)) {
      type_ = Type::kInt;
      int_ = static_cast<int64_t>(i);
    } else {
      type_ = Type::kDouble;
      double_ = static_cast<double>(i);
    }
  }
  Json(double d) : type_(Type::kDouble), double_(d) {}  // NOLINT
  Json(const char* s) : type_(Type::kString) {          // NOLINT
    new (&string_) std::string(s);
  }
  Json(std::string s) : type_(Type::kString) {          // NOLINT
    new (&string_) std::string(std::move(s));
  }
  Json(std::string_view s) : type_(Type::kString) {     // NOLINT
    new (&string_) std::string(s);
  }
  Json(Array a)                                         // NOLINT
      : type_(Type::kArray), array_(new Array(std::move(a))) {}
  Json(Object o)                                        // NOLINT
      : type_(Type::kObject), object_(new Object(std::move(o))) {}

  Json(const Json& other) { CopyFrom(other); }
  Json(Json&& other) noexcept { MoveFrom(std::move(other)); }
  Json& operator=(const Json& other) {
    if (this != &other) {
      Json tmp(other);  // copy first: `other` may be a descendant of *this
      Destroy();
      MoveFrom(std::move(tmp));
    }
    return *this;
  }
  Json& operator=(Json&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~Json() { Destroy(); }

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return type_ == Type::kBool && bool_; }
  // Doubles saturate to [INT64_MIN, INT64_MAX] (NaN reads as 0) instead of
  // taking the UB raw cast for out-of-range values.
  int64_t AsInt() const {
    if (type_ == Type::kInt) return int_;
    if (type_ == Type::kDouble) return SaturatingInt64(double_);
    return 0;
  }
  double AsDouble() const {
    if (type_ == Type::kInt) return static_cast<double>(int_);
    if (type_ == Type::kDouble) return double_;
    return 0.0;
  }
  // The const accessors return a static empty value when the type does not
  // match, mirroring the old always-present-member behaviour. The mutable
  // AsArray/AsObject convert the value to an empty array/object on
  // mismatch, consistent with operator[] and Append on null.
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  // Object access. `operator[]` on a null value turns it into an object,
  // mirroring the ergonomics of nlohmann::json for building documents.
  Json& operator[](const std::string& key);
  // Returns nullptr when not an object or the key is absent.
  const Json* Find(std::string_view key) const;

  // Convenience typed getters with defaults, for tolerant readers.
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  std::string GetString(std::string_view key, std::string fallback = "") const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // Array building.
  void Append(Json value);
  size_t size() const;

  // Serialization. `indent` <= 0 produces compact single-line output.
  std::string Dump(int indent = 0) const;
  // Appends Dump(indent) to `out` — the allocation-free spelling used by
  // the JSONL fast path (granula/monitor) for free-form payloads.
  void DumpTo(std::string& out, int indent = 0) const;

  // Strict JSON parsing (RFC 8259); rejects trailing garbage.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  static int64_t SaturatingInt64(double d) {
    if (std::isnan(d)) return 0;
    if (d >= 9223372036854775808.0) return INT64_MAX;  // 2^63
    if (d < -9223372036854775808.0) return INT64_MIN;
    return static_cast<int64_t>(d);
  }

  void Destroy();
  void CopyFrom(const Json& other);
  void MoveFrom(Json&& other) noexcept;
  void DumpValue(std::string& out, int indent, int depth) const;

  Type type_;
  union {
    bool bool_;
    int64_t int_;
    double double_;
    std::string string_;
    Array* array_;
    Object* object_;
  };
};

static_assert(sizeof(Json) <= 48,
              "Json must stay a compact tagged union; see the class comment");

// Escapes `s` as a JSON string literal body (without surrounding quotes).
std::string JsonEscape(std::string_view s);

// Append-style escape used by the serialization fast paths: clean runs are
// bulk-copied and only bytes that require escaping ('"', '\\', control
// characters) break the run. Escapes are rare in log payloads, so this is
// effectively a single append.
void JsonAppendEscaped(std::string& out, std::string_view s);

// Appends the canonical JSON token for `d` — the shortest representation
// that reparses to the same double, identical to Json(d).Dump(0).
void JsonAppendDouble(std::string& out, double d);

// Advances `pos` past one complete JSON value starting at text[pos]
// (skipping leading whitespace). Structure-aware only — strings and
// bracket nesting are honoured but the content is not validated; callers
// hand the extent to Json::Parse for that. Returns false when no complete
// value is found before the end of `text`.
bool JsonSkipValue(std::string_view text, size_t& pos);

}  // namespace granula

#endif  // GRANULA_COMMON_JSON_H_
