#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace granula {

Summary::Summary(std::vector<double> samples)
    : samples_(std::move(samples)) {}

void Summary::Add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Summary::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Summary::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::Stdev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double sq = 0;
  for (double s : samples_) sq += (s - mean) * (s - mean);
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double Summary::Percentile(double q) const {
  EnsureSorted();
  if (sorted_.empty()) return 0.0;
  if (q <= 0) return sorted_.front();
  if (q >= 100) return sorted_.back();
  double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t low = static_cast<size_t>(rank);
  double fraction = rank - static_cast<double>(low);
  if (low + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[low] * (1.0 - fraction) + sorted_[low + 1] * fraction;
}

double Summary::Cv() const {
  double mean = Mean();
  return mean == 0.0 ? 0.0 : Stdev() / mean;
}

}  // namespace granula
