#include "common/random.h"

#include <cmath>

namespace granula {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling on the top range to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 top bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::NextGaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

namespace {

// H(x) for the rejection-inversion Zipf sampler (Hörmann & Derflinger 1996).
inline double ZipfH(double x, double s) {
  if (s == 1.0) return std::log(x);
  return std::pow(x, 1.0 - s) / (1.0 - s);
}

inline double ZipfHInv(double x, double s) {
  if (s == 1.0) return std::exp(x);
  return std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
}

}  // namespace

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 1;
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_h_x1_ = ZipfH(1.5, s) - 1.0;
    zipf_h_n_ = ZipfH(static_cast<double>(n) + 0.5, s);
    zipf_t_ = 2.0 - ZipfHInv(ZipfH(2.5, s) - std::pow(2.0, -s), s);
  }
  while (true) {
    double u = zipf_h_n_ + NextDouble() * (zipf_h_x1_ - zipf_h_n_);
    double x = ZipfHInv(u, s);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    if (kd - x <= zipf_t_ ||
        u >= ZipfH(kd + 0.5, s) - std::pow(kd, -s)) {
      return k;
    }
  }
}

}  // namespace granula
