#ifndef GRANULA_COMMON_MAPPED_FILE_H_
#define GRANULA_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"

namespace granula {

// A whole file viewed as read-only bytes, preferring mmap(2) and falling
// back to a plain read when mapping is unavailable (non-POSIX build, a
// file system that refuses maps, or the test hook below). This is the
// shared ingest substrate for multi-GB JSONL logs (ReadLogRecords,
// LogTailer catch-up) and for binary GBA archives: consumers parse
// directly out of the page cache instead of first copying the file into a
// std::string.
//
// The view returned by data() stays valid for the lifetime of the
// MappedFile object (moves included). The file is snapshotted at Open()
// size: bytes appended later are not visible through an existing map,
// which is exactly the semantics a tailer wants.
//
// Error contract: a missing file is NotFound ("cannot open <path>"); in
// the read-fallback path a failed or short read is IoError — never a
// silently truncated view (a previous reader resized to the partial
// byte count and parsed a truncated file).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept { MoveFrom(std::move(other)); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static Result<MappedFile> Open(const std::string& path);

  std::string_view data() const {
    return mapped_ ? std::string_view(map_, size_)
                   : std::string_view(buffer_);
  }
  size_t size() const { return mapped_ ? size_ : buffer_.size(); }
  // True when the view is an actual mmap (false: owned fallback buffer).
  bool mapped() const { return mapped_; }

  // Test hooks (process-wide). ForceReadFallbackForTest makes Open() skip
  // mmap so the read path is exercised; FailReadsForTest makes that read
  // path report an I/O error, standing in for a device that dies
  // mid-read. Both reset to false; tests must restore them.
  static void ForceReadFallbackForTest(bool on);
  static void FailReadsForTest(bool on);

 private:
  void Release();
  void MoveFrom(MappedFile&& other) noexcept;

  const char* map_ = nullptr;  // valid when mapped_
  size_t size_ = 0;
  bool mapped_ = false;
  std::string buffer_;  // fallback storage when !mapped_
};

}  // namespace granula

#endif  // GRANULA_COMMON_MAPPED_FILE_H_
