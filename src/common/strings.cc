#include "common/strings.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace granula {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\n' || s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string HumanBytes(double bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%.0f %s", bytes, kUnits[unit]);
  return StrFormat("%.2f %s", bytes, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  return StrFormat("%.2fs", seconds);
}

std::string HumanPercent(double fraction) {
  return StrFormat("%.1f%%", fraction * 100.0);
}

Result<uint64_t> ParseUint64(std::string_view s) {
  uint64_t value = 0;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("number out of range: '" +
                                   std::string(s) + "'");
  }
  if (ec != std::errc() || ptr != end || s.empty()) {
    return Status::InvalidArgument("not a non-negative integer: '" +
                                   std::string(s) + "'");
  }
  return value;
}

Result<double> ParseFiniteDouble(std::string_view s) {
  double value = 0;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc() || ptr != end || s.empty() || !std::isfinite(value)) {
    return Status::InvalidArgument("not a finite number: '" +
                                   std::string(s) + "'");
  }
  return value;
}

}  // namespace granula
