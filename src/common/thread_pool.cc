#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace granula {

namespace {

// Set while a thread is executing chunks, so reentrant ParallelFor calls
// (e.g. a parallel merge inside a parallel region) run inline instead of
// deadlocking on the single shared job slot.
thread_local bool t_in_pool_job = false;

int DefaultHostThreads() {
  if (const char* env = std::getenv("GRANULA_HOST_THREADS")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && n >= 1 && n <= 1024) return static_cast<int>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) { Resize(num_threads); }

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Spawn() {
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  shutdown_ = false;
}

void ThreadPool::Resize(int num_threads) {
  Shutdown();
  num_threads_ = std::max(1, num_threads);
  Spawn();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || job_gen_ != seen_gen; });
      if (shutdown_) return;
      seen_gen = job_gen_;
      // A fully claimed job is either drained or already retired; skip it
      // rather than touching its (possibly being-rewritten) fields. The
      // caller cannot start the next job while workers_in_job_ > 0, so a
      // worker that does enter here reads stable fields.
      if (next_chunk_.load(std::memory_order_relaxed) >= job_chunks_) {
        continue;
      }
      ++workers_in_job_;
    }
    t_in_pool_job = true;
    RunChunks();
    t_in_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_in_job_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunChunks() {
  for (;;) {
    uint64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= job_chunks_) return;
    uint64_t b = job_begin_ + c * job_grain_;
    uint64_t e = std::min(b + job_grain_, job_end_);
    try {
      (*job_fn_)(c, b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job_chunks_) {
      // Briefly take the lock so a caller between its predicate check and
      // its sleep cannot miss this wakeup.
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                             const ChunkFn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  uint64_t chunks = NumChunks(end - begin, grain);
  // Inline fast path: single thread, single chunk, or a nested call from
  // inside a pool job. Chunk indices and bounds are identical to the
  // threaded path.
  if (num_threads_ == 1 || chunks == 1 || t_in_pool_job) {
    for (uint64_t c = 0; c < chunks; ++c) {
      uint64_t b = begin + c * grain;
      fn(c, b, std::min(b + grain, end));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    job_chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    job_error_ = nullptr;
    ++job_gen_;
  }
  work_cv_.notify_all();
  t_in_pool_job = true;
  RunChunks();
  t_in_pool_job = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return done_chunks_.load(std::memory_order_acquire) == job_chunks_ &&
             workers_in_job_ == 0;
    });
    job_fn_ = nullptr;
  }
  if (job_error_) std::rethrow_exception(job_error_);
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: engine code may run during static destruction of
  // test fixtures; a joined-at-exit pool would deadlock with TSan atexit.
  static ThreadPool* pool = new ThreadPool(DefaultHostThreads());
  return *pool;
}

}  // namespace granula
