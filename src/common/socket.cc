#include "common/socket.h"

#include "common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define GRANULA_HAVE_POSIX_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace granula {

#ifdef GRANULA_HAVE_POSIX_SOCKETS

namespace {

Status SetTimeoutOpt(int fd, int option, int ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return Status::IoError(StrFormat("setsockopt(%d) failed: %s", option,
                                     std::strerror(errno)));
  }
  return Status::OK();
}

Result<sockaddr_in> ResolveV4(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (host.empty() || host == "0.0.0.0" || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Numeric IPv4 only: the daemon binds loopback or an explicit
    // interface address; name resolution would drag in a resolver
    // dependency for no listener-side benefit.
    return Status::InvalidArgument(
        StrFormat("bad host '%s' (expected an IPv4 address)", host.c_str()));
  }
  return addr;
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpSocket::SetTimeouts(int recv_ms, int send_ms) {
  if (!valid()) return Status::FailedPrecondition("socket is closed");
  if (recv_ms > 0) {
    GRANULA_RETURN_IF_ERROR(SetTimeoutOpt(fd_, SO_RCVTIMEO, recv_ms));
  }
  if (send_ms > 0) {
    GRANULA_RETURN_IF_ERROR(SetTimeoutOpt(fd_, SO_SNDTIMEO, send_ms));
  }
  return Status::OK();
}

TcpSocket::ReadOutcome TcpSocket::Read(std::string& out, size_t cap) {
  if (!valid()) return ReadOutcome::kError;
  char buf[16384];
  if (cap > sizeof(buf)) cap = sizeof(buf);
  for (;;) {
    ssize_t got = ::recv(fd_, buf, cap, 0);
    if (got > 0) {
      out.append(buf, static_cast<size_t>(got));
      return ReadOutcome::kData;
    }
    if (got == 0) return ReadOutcome::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadOutcome::kTimeout;
    return ReadOutcome::kError;
  }
}

Status TcpSocket::WriteAll(std::string_view data) {
  if (!valid()) return Status::FailedPrecondition("socket is closed");
  size_t written = 0;
  while (written < data.size()) {
    ssize_t got = ::send(fd_, data.data() + written, data.size() - written,
#ifdef MSG_NOSIGNAL
                         MSG_NOSIGNAL
#else
                         0
#endif
    );
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("socket write timed out");
      }
      return Status::IoError(
          StrFormat("socket write failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(got);
  }
  return Status::OK();
}

void TcpSocket::ShutdownRead() {
  if (valid()) ::shutdown(fd_, SHUT_RD);
}

void TcpSocket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(const std::string& host, int port,
                                      int backlog) {
  GRANULA_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("cannot create socket: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError(StrFormat(
        "cannot bind %s:%d: %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = Status::IoError(StrFormat(
        "cannot listen on %s:%d: %s", host.c_str(), port,
        std::strerror(errno)));
    ::close(fd);
    return status;
  }
  TcpListener listener;
  listener.fd_ = fd;
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listener.port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    listener.port_ = port;
  }
  return listener;
}

Result<TcpSocket> TcpListener::Accept(int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("listener is closed");
  pollfd pfd{fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return TcpSocket();  // spurious wake: poll again
    return Status::IoError(
        StrFormat("poll failed: %s", std::strerror(errno)));
  }
  if (ready == 0) return TcpSocket();  // timeout
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return TcpSocket();  // transient; caller loops
    }
    return Status::IoError(
        StrFormat("accept failed: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(fd);
}

void TcpListener::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpConnect(const std::string& host, int port,
                             int timeout_ms) {
  GRANULA_ASSIGN_OR_RETURN(
      sockaddr_in addr, ResolveV4(host.empty() ? "127.0.0.1" : host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("cannot create socket: %s", std::strerror(errno)));
  }
  TcpSocket sock(fd);  // owns the fd from here on
  // Non-blocking connect bounded by poll, then back to blocking mode so
  // the caller's SetTimeouts() semantics apply to reads/writes.
  int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::IoError(StrFormat("cannot connect to %s:%d: %s",
                                     host.c_str(), port,
                                     std::strerror(errno)));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      return Status::IoError(
          StrFormat("connect to %s:%d timed out", host.c_str(), port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::IoError(StrFormat("cannot connect to %s:%d: %s",
                                       host.c_str(), port,
                                       std::strerror(err)));
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void ShutdownReadFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

#else  // !GRANULA_HAVE_POSIX_SOCKETS

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
Status TcpSocket::SetTimeouts(int, int) {
  return Status::Unimplemented("sockets unavailable on this platform");
}
TcpSocket::ReadOutcome TcpSocket::Read(std::string&, size_t) {
  return ReadOutcome::kError;
}
Status TcpSocket::WriteAll(std::string_view) {
  return Status::Unimplemented("sockets unavailable on this platform");
}
void TcpSocket::ShutdownRead() {}
void TcpSocket::Close() { fd_ = -1; }

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  other.fd_ = -1;
  return *this;
}
Result<TcpListener> TcpListener::Bind(const std::string&, int, int) {
  return Status::Unimplemented("sockets unavailable on this platform");
}
Result<TcpSocket> TcpListener::Accept(int) {
  return Status::Unimplemented("sockets unavailable on this platform");
}
void TcpListener::Close() { fd_ = -1; }

Result<TcpSocket> TcpConnect(const std::string&, int, int) {
  return Status::Unimplemented("sockets unavailable on this platform");
}

void ShutdownReadFd(int) {}

#endif  // GRANULA_HAVE_POSIX_SOCKETS

}  // namespace granula
