#ifndef GRANULA_COMMON_STRINGS_H_
#define GRANULA_COMMON_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace granula {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Formats a byte count with a binary-unit suffix, e.g. "1.5 GiB".
std::string HumanBytes(double bytes);

// Formats seconds with two decimals and an "s" suffix, e.g. "81.59s".
std::string HumanSeconds(double seconds);

// Formats `value` as a percentage with one decimal, e.g. "43.3%".
std::string HumanPercent(double fraction);

// Strict numeric parsing: the whole string must be one valid number —
// "", "abc", "12x" and out-of-range values are errors, unlike the
// atof/strtoull idiom which silently yields 0. Use these for anything
// user-typed (CLI flag values, sweep-config fields).
Result<uint64_t> ParseUint64(std::string_view s);
Result<double> ParseFiniteDouble(std::string_view s);

}  // namespace granula

#endif  // GRANULA_COMMON_STRINGS_H_
