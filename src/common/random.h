#ifndef GRANULA_COMMON_RANDOM_H_
#define GRANULA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace granula {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// Deterministic xoshiro256** PRNG. Not cryptographic; chosen for speed,
// quality, and identical output on every platform (unlike std::mt19937
// paired with std:: distributions, whose outputs are not specified).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t Next();

  // Uniform on [0, bound). `bound` must be > 0. Uses rejection sampling so
  // results are exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // Uniform on [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Zipf-distributed integer on [1, n] with exponent `s` (> 0). Uses the
  // rejection-inversion method of Hörmann & Derflinger; O(1) per sample.
  uint64_t NextZipf(uint64_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Cached parameters for NextZipf so repeated calls with the same (n, s)
  // skip the setup.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  double zipf_h_x1_ = 0.0, zipf_h_n_ = 0.0, zipf_t_ = 0.0;
};

}  // namespace granula

#endif  // GRANULA_COMMON_RANDOM_H_
