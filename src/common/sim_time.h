#ifndef GRANULA_COMMON_SIM_TIME_H_
#define GRANULA_COMMON_SIM_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace granula {

// Virtual time used throughout the simulator and in every Granula log
// record. Integer nanoseconds: exact comparison and ordering matter (the
// archiver reconstructs operation trees from timestamps), so floating point
// is not used for time.
class SimTime {
 public:
  constexpr SimTime() : nanos_(0) {}
  constexpr explicit SimTime(int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime Nanos(int64_t n) { return SimTime(n); }
  static constexpr SimTime Micros(int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime Millis(int64_t ms) {
    return SimTime(ms * 1000000);
  }
  // Rounds to the nearest nanosecond: many second-denominated literals
  // (e.g. 81.59) are not exactly representable, and truncation would make
  // them drift by 1 ns per conversion.
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9 + (s < 0 ? -0.5 : 0.5)));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double seconds() const {
    return static_cast<double>(nanos_) * 1e-9;
  }
  constexpr double millis() const {
    return static_cast<double>(nanos_) * 1e-6;
  }

  // "81.59s"-style rendering, matching the axis labels in the paper figures.
  std::string ToString() const;

  constexpr SimTime operator+(SimTime other) const {
    return SimTime(nanos_ + other.nanos_);
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime(nanos_ - other.nanos_);
  }
  constexpr SimTime operator*(double factor) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(nanos_) * factor));
  }
  SimTime& operator+=(SimTime other) {
    nanos_ += other.nanos_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    nanos_ -= other.nanos_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  int64_t nanos_;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace granula

#endif  // GRANULA_COMMON_SIM_TIME_H_
