#ifndef GRANULA_COMMON_STATS_H_
#define GRANULA_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace granula {

// Descriptive statistics over a sample of doubles. Used by the multi-trial
// experiment harness to report mean +/- stdev of phase times across
// datasets, and by analysis code for percentile-based thresholds.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<double> samples);

  void Add(double sample);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2.
  double Stdev() const;
  // Linear-interpolated percentile, q in [0, 100].
  double Percentile(double q) const;
  double Median() const { return Percentile(50); }

  // Coefficient of variation (stdev / mean); 0 when the mean is 0.
  double Cv() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace granula

#endif  // GRANULA_COMMON_STATS_H_
