#include "common/sim_time.h"

#include "common/strings.h"

namespace granula {

std::string SimTime::ToString() const {
  if (nanos_ == INT64_MAX) return "inf";
  double s = seconds();
  if (s < 0) return StrFormat("-%s", SimTime(-nanos_).ToString().c_str());
  if (nanos_ < 1000) return StrFormat("%lldns", static_cast<long long>(nanos_));
  if (nanos_ < 1000000) return StrFormat("%.2fus", millis() * 1000.0);
  if (nanos_ < 1000000000) return StrFormat("%.2fms", millis());
  return StrFormat("%.2fs", s);
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.ToString();
}

}  // namespace granula
