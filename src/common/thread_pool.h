#ifndef GRANULA_COMMON_THREAD_POOL_H_
#define GRANULA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace granula {

// Host-side data-parallel executor for the compute hot paths of the
// simulated engines.
//
// Determinism contract (see DESIGN.md "Host parallelism vs. simulated
// parallelism"): the chunk decomposition of a ParallelFor depends only on
// (range, grain) — never on the thread count — and a chunk is identified by
// its index. Callers route every side effect of chunk `c` into state owned
// by `c` (a shard, a per-chunk counter) and reduce in chunk order after the
// call, so GRANULA_HOST_THREADS=1 and =N produce bit-identical results.
// Which host thread happens to run a chunk is the only nondeterministic
// part, and it is unobservable.
class ThreadPool {
 public:
  // fn(chunk_index, begin, end) processes one grain-sized chunk.
  using ChunkFn = std::function<void(uint64_t, uint64_t, uint64_t)>;

  // num_threads < 1 is clamped to 1. One of the threads is the caller of
  // ParallelFor itself; a pool of size 1 spawns no workers and runs
  // everything inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Joins all workers and respawns with the new count. Must not be called
  // concurrently with ParallelFor. Used by tests and benches to sweep the
  // host-thread axis inside one process.
  void Resize(int num_threads);

  // Runs fn over every chunk of [begin, end) and blocks until all chunks
  // completed. Chunks are (chunk_index, chunk_begin, chunk_end) with
  // chunk_begin = begin + chunk_index * grain. The caller thread
  // participates. Reentrant calls from inside a chunk run inline (no
  // deadlock, same decomposition). Exceptions from chunks are rethrown
  // (first one wins).
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const ChunkFn& fn);

  static uint64_t NumChunks(uint64_t count, uint64_t grain) {
    if (count == 0) return 0;
    if (grain == 0) grain = 1;
    return (count + grain - 1) / grain;
  }

  // The process-wide pool, created on first use with GRANULA_HOST_THREADS
  // threads (default: std::thread::hardware_concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  // Pulls chunks off the shared cursor until the current job is drained.
  void RunChunks();
  void Spawn();
  void Shutdown();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // job_gen_ bumped or shutdown
  std::condition_variable done_cv_;   // all chunks done, workers drained
  uint64_t job_gen_ = 0;
  bool shutdown_ = false;
  int workers_in_job_ = 0;

  // Current job; written under mu_ before the gen bump, read by
  // participating workers only after observing the bump under mu_.
  const ChunkFn* job_fn_ = nullptr;
  uint64_t job_begin_ = 0;
  uint64_t job_end_ = 0;
  uint64_t job_grain_ = 1;
  uint64_t job_chunks_ = 0;
  std::atomic<uint64_t> next_chunk_{0};
  std::atomic<uint64_t> done_chunks_{0};
  std::exception_ptr job_error_;
  std::mutex error_mu_;
};

// Chunk grain that yields at most `max_chunks` chunks over `count` items
// (never below `min_grain`). Depends only on the inputs, so the chunk
// decomposition — and therefore every chunk-indexed merge — is identical
// for every host-thread count.
inline uint64_t ChunkedGrain(uint64_t count, uint64_t max_chunks = 64,
                             uint64_t min_grain = 256) {
  if (max_chunks == 0) max_chunks = 1;
  uint64_t grain = (count + max_chunks - 1) / max_chunks;
  return grain < min_grain ? min_grain : grain;
}

// Convenience: ParallelFor on the process-wide pool.
inline void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                        const ThreadPool::ChunkFn& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace granula

#endif  // GRANULA_COMMON_THREAD_POOL_H_
