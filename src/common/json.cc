#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace granula {

namespace {

void AppendInt64(std::string& out, int64_t v) {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // int64 always fits
  out.append(buf, static_cast<size_t>(p - buf));
}

}  // namespace

void Json::Destroy() {
  switch (type_) {
    case Type::kString:
      string_.~basic_string();
      break;
    case Type::kArray:
      delete array_;
      break;
    case Type::kObject:
      delete object_;
      break;
    default:
      break;
  }
  type_ = Type::kNull;
  int_ = 0;
}

void Json::CopyFrom(const Json& other) {
  type_ = other.type_;
  switch (type_) {
    case Type::kNull:
      int_ = 0;
      break;
    case Type::kBool:
      bool_ = other.bool_;
      break;
    case Type::kInt:
      int_ = other.int_;
      break;
    case Type::kDouble:
      double_ = other.double_;
      break;
    case Type::kString:
      new (&string_) std::string(other.string_);
      break;
    case Type::kArray:
      array_ = new Array(*other.array_);
      break;
    case Type::kObject:
      object_ = new Object(*other.object_);
      break;
  }
}

void Json::MoveFrom(Json&& other) noexcept {
  type_ = other.type_;
  switch (type_) {
    case Type::kNull:
      int_ = 0;
      break;
    case Type::kBool:
      bool_ = other.bool_;
      break;
    case Type::kInt:
      int_ = other.int_;
      break;
    case Type::kDouble:
      double_ = other.double_;
      break;
    case Type::kString:
      new (&string_) std::string(std::move(other.string_));
      other.string_.~basic_string();
      break;
    case Type::kArray:
      array_ = other.array_;
      break;
    case Type::kObject:
      object_ = other.object_;
      break;
  }
  // The moved-from value becomes null; pointer payloads were stolen above.
  other.type_ = Type::kNull;
  other.int_ = 0;
}

const std::string& Json::AsString() const {
  static const std::string kEmpty;
  return type_ == Type::kString ? string_ : kEmpty;
}

const Json::Array& Json::AsArray() const {
  static const Array kEmpty;
  return type_ == Type::kArray ? *array_ : kEmpty;
}

Json::Array& Json::AsArray() {
  if (type_ != Type::kArray) {
    Destroy();
    array_ = new Array();
    type_ = Type::kArray;
  }
  return *array_;
}

const Json::Object& Json::AsObject() const {
  static const Object kEmpty;
  return type_ == Type::kObject ? *object_ : kEmpty;
}

Json::Object& Json::AsObject() {
  if (type_ != Type::kObject) {
    Destroy();
    object_ = new Object();
    type_ = Type::kObject;
  }
  return *object_;
}

Json& Json::operator[](const std::string& key) {
  return AsObject()[key];
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_->find(key);
  if (it == object_->end()) return nullptr;
  return &it->second;
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : fallback;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString()
                                          : std::move(fallback);
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

void Json::Append(Json value) {
  if (type_ == Type::kNull) {
    array_ = new Array();
    type_ = Type::kArray;
  }
  if (type_ != Type::kArray) return;  // matches the old silent no-op
  array_->push_back(std::move(value));
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return array_->size();
    case Type::kObject:
      return object_->size();
    default:
      return 0;
  }
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return *array_ == *other.array_;
    case Type::kObject:
      return *object_ == *other.object_;
  }
  return false;
}

void JsonAppendEscaped(std::string& out, std::string_view s) {
  size_t run = 0;  // start of the pending clean run
  for (size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c != '"' && c != '\\' && c >= 0x20) continue;
    out.append(s.data() + run, i - run);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        out += StrFormat("\\u%04x", c);
    }
    run = i + 1;
  }
  out.append(s.data() + run, s.size() - run);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  JsonAppendEscaped(out, s);
  return out;
}

void JsonAppendDouble(std::string& out, double d) {
  if (std::isnan(d)) {  // JSON has no NaN; degrade gracefully.
    out += "null";
    return;
  }
  if (std::isinf(d)) {
    out += d > 0 ? "1e999" : "-1e999";
    return;
  }
  // Shortest representation that roundtrips.
  char buf[32];
  int len = 0;
  for (int prec = 15; prec <= 17; ++prec) {
    len = std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  std::string_view token(buf, static_cast<size_t>(len));
  out += token;
  // Ensure the token is recognizably a double on re-parse.
  if (token.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

bool JsonSkipValue(std::string_view text, size_t& pos) {
  const size_t n = text.size();
  size_t i = pos;
  auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  // Skips a string literal; `j` must point at the opening quote.
  auto skip_string = [&text, n](size_t& j) {
    ++j;
    while (j < n) {
      char c = text[j];
      if (c == '\\') {
        j += 2;
        continue;
      }
      ++j;
      if (c == '"') return true;
    }
    return false;
  };
  while (i < n && is_ws(text[i])) ++i;
  if (i >= n) return false;
  char c = text[i];
  if (c == '"') {
    if (!skip_string(i)) return false;
  } else if (c == '{' || c == '[') {
    int depth = 0;
    while (i < n) {
      char d = text[i];
      if (d == '"') {
        if (!skip_string(i)) return false;
        continue;
      }
      if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        if (--depth == 0) {
          ++i;
          break;
        }
      }
      ++i;
    }
    if (depth != 0) return false;
  } else {
    // Number or bare literal: runs to the next structural delimiter.
    size_t start = i;
    while (i < n && text[i] != ',' && text[i] != '}' && text[i] != ']' &&
           !is_ws(text[i])) {
      ++i;
    }
    if (i == start) return false;
  }
  pos = i;
  return true;
}

namespace {

void AppendIndent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpValue(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      AppendInt64(out, int_);
      break;
    case Type::kDouble:
      JsonAppendDouble(out, double_);
      break;
    case Type::kString:
      out += '"';
      JsonAppendEscaped(out, string_);
      out += '"';
      break;
    case Type::kArray: {
      const Array& arr = *array_;
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) AppendIndent(out, indent, depth + 1);
        arr[i].DumpValue(out, indent, depth + 1);
      }
      if (indent > 0) AppendIndent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& obj = *object_;
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        if (indent > 0) AppendIndent(out, indent, depth + 1);
        out += '"';
        JsonAppendEscaped(out, key);
        out += "\":";
        if (indent > 0) out += ' ';
        value.DumpValue(out, indent, depth + 1);
      }
      if (indent > 0) AppendIndent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

void Json::DumpTo(std::string& out, int indent) const {
  DumpValue(out, indent, 0);
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpValue(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    SkipWhitespace();
    GRANULA_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) {
    return Status::Corruption(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        GRANULA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Json(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Json(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Json(nullptr);
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json::Object obj;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      GRANULA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      GRANULA_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(obj));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json::Array arr;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(arr));
    while (true) {
      SkipWhitespace();
      GRANULA_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(arr));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            // Reads 4 hex digits at `at`; -1 when truncated or non-hex.
            auto hex4 = [this](size_t at) -> int {
              if (at + 4 > text_.size()) return -1;
              unsigned value = 0;
              for (int i = 0; i < 4; ++i) {
                char h = text_[at + i];
                value <<= 4;
                if (h >= '0' && h <= '9') {
                  value |= static_cast<unsigned>(h - '0');
                } else if (h >= 'a' && h <= 'f') {
                  value |= static_cast<unsigned>(h - 'a' + 10);
                } else if (h >= 'A' && h <= 'F') {
                  value |= static_cast<unsigned>(h - 'A' + 10);
                } else {
                  return -1;
                }
              }
              return static_cast<int>(value);
            };
            int parsed = hex4(pos_);
            if (parsed < 0) return Error("bad \\u escape");
            pos_ += 4;
            unsigned code = static_cast<unsigned>(parsed);
            // UTF-8 encode the code point. A high surrogate pairs with an
            // immediately following low surrogate; any unpaired surrogate
            // would be invalid UTF-8, so it decodes to U+FFFD instead.
            if (code >= 0xd800 && code <= 0xdbff) {
              int low = -1;
              if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u') {
                low = hex4(pos_ + 2);
              }
              if (low >= 0xdc00 && low <= 0xdfff) {
                pos_ += 6;
                code = 0x10000 + ((code - 0xd800) << 10) +
                       (static_cast<unsigned>(low) - 0xdc00);
              } else {
                code = 0xfffd;
              }
            } else if (code >= 0xdc00 && code <= 0xdfff) {
              code = 0xfffd;  // lone low surrogate
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xf0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
      // Fall through to double for out-of-range integers.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Json(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace granula
