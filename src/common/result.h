#ifndef GRANULA_COMMON_RESULT_H_
#define GRANULA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace granula {

// A value-or-Status holder, in the spirit of absl::StatusOr / arrow::Result.
//
//   Result<Graph> r = LoadGraph(path);
//   if (!r.ok()) return r.status();
//   Graph g = std::move(r).value();
template <typename T>
class Result {
 public:
  // Implicit construction from a value or a (non-OK) Status keeps call sites
  // terse: `return Status::NotFound(...)` and `return some_value` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when not OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace granula

// Assigns the value of the Result expression `rexpr` to `lhs`, or returns its
// Status from the enclosing function. `lhs` may include a declaration:
//   GRANULA_ASSIGN_OR_RETURN(auto graph, LoadGraph(path));
#define GRANULA_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  GRANULA_ASSIGN_OR_RETURN_IMPL_(                              \
      GRANULA_RESULT_CONCAT_(granula_result_, __LINE__), lhs, rexpr)

#define GRANULA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()

#define GRANULA_RESULT_CONCAT_(a, b) GRANULA_RESULT_CONCAT_IMPL_(a, b)
#define GRANULA_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // GRANULA_COMMON_RESULT_H_
