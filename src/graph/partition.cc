#include "graph/partition.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/random.h"

namespace granula::graph {

namespace {

// Stateless 64-bit mixer for placement hashing.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Result<EdgeCutResult> PartitionEdgeCut(const Graph& graph,
                                       uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  EdgeCutResult result;
  result.partitions.resize(num_partitions);
  result.owner.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    uint32_t p = static_cast<uint32_t>(Mix(v) % num_partitions);
    result.owner[v] = p;
    result.partitions[p].vertices.push_back(v);
  }
  for (const Edge& e : graph.edges()) {
    result.partitions[result.owner[e.src]].edges.push_back(e);
    if (result.owner[e.src] != result.owner[e.dst]) ++result.cut_edges;
  }
  return result;
}

namespace {

// Replica bookkeeping shared by both vertex-cut strategies.
class ReplicaTracker {
 public:
  ReplicaTracker(uint64_t num_vertices, uint32_t num_partitions)
      : num_partitions_(num_partitions),
        replica_bits_(num_vertices * num_partitions, false) {}

  bool Has(VertexId v, uint32_t p) const {
    return replica_bits_[v * num_partitions_ + p];
  }

  // Returns true if this created a new replica.
  bool Add(VertexId v, uint32_t p) {
    auto bit = replica_bits_[v * num_partitions_ + p];
    if (bit) return false;
    replica_bits_[v * num_partitions_ + p] = true;
    return true;
  }

 private:
  uint32_t num_partitions_;
  std::vector<bool> replica_bits_;
};

VertexCutResult FinalizeVertexCut(const Graph& graph, uint32_t num_partitions,
                                  const std::vector<uint32_t>& edge_owner) {
  VertexCutResult result;
  result.partitions.resize(num_partitions);
  result.master.assign(graph.num_vertices(),
                       std::numeric_limits<uint32_t>::max());
  ReplicaTracker replicas(graph.num_vertices(), num_partitions);

  for (uint64_t i = 0; i < graph.num_edges(); ++i) {
    const Edge& e = graph.edges()[i];
    uint32_t p = edge_owner[i];
    result.partitions[p].edges.push_back(e);
    for (VertexId v : {e.src, e.dst}) {
      if (replicas.Add(v, p)) {
        result.partitions[p].replicas.push_back(v);
        ++result.total_replicas;
        // First replica becomes the master, matching PowerGraph's default.
        if (result.master[v] == std::numeric_limits<uint32_t>::max()) {
          result.master[v] = p;
        }
      }
    }
  }
  // Isolated vertices still need a master for engine bookkeeping.
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (result.master[v] == std::numeric_limits<uint32_t>::max()) {
      uint32_t p = static_cast<uint32_t>(Mix(v) % num_partitions);
      result.master[v] = p;
      result.partitions[p].replicas.push_back(v);
      ++result.total_replicas;
    }
  }
  return result;
}

}  // namespace

Result<VertexCutResult> PartitionVertexCutGreedy(const Graph& graph,
                                                 uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  ReplicaTracker replicas(graph.num_vertices(), num_partitions);
  std::vector<uint64_t> load(num_partitions, 0);
  std::vector<uint32_t> edge_owner(graph.num_edges());

  for (uint64_t i = 0; i < graph.num_edges(); ++i) {
    const Edge& e = graph.edges()[i];
    // Candidate sets per the PowerGraph greedy rules.
    uint32_t best = 0;
    int best_score = -1;
    uint64_t best_load = std::numeric_limits<uint64_t>::max();
    for (uint32_t p = 0; p < num_partitions; ++p) {
      int score = (replicas.Has(e.src, p) ? 1 : 0) +
                  (replicas.Has(e.dst, p) ? 1 : 0);
      if (score > best_score ||
          (score == best_score && load[p] < best_load)) {
        best = p;
        best_score = score;
        best_load = load[p];
      }
    }
    edge_owner[i] = best;
    ++load[best];
    replicas.Add(e.src, best);
    replicas.Add(e.dst, best);
  }
  return FinalizeVertexCut(graph, num_partitions, edge_owner);
}

Result<VertexCutResult> PartitionVertexCutRandom(const Graph& graph,
                                                 uint32_t num_partitions,
                                                 uint64_t seed) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  Rng rng(seed);
  std::vector<uint32_t> edge_owner(graph.num_edges());
  for (uint64_t i = 0; i < graph.num_edges(); ++i) {
    edge_owner[i] = static_cast<uint32_t>(rng.NextBounded(num_partitions));
  }
  return FinalizeVertexCut(graph, num_partitions, edge_owner);
}

}  // namespace granula::graph
