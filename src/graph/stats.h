#ifndef GRANULA_GRAPH_STATS_H_
#define GRANULA_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"

namespace granula::graph {

struct DegreeStats {
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  double gini = 0.0;  // 0 = perfectly even, →1 = extremely skewed
  std::map<uint64_t, uint64_t> histogram;  // degree -> vertex count
};

// Degree statistics over the (undirected) degree of every vertex. For
// directed graphs this counts out-degree.
DegreeStats ComputeDegreeStats(const Graph& graph);

// Number of connected components, treating edges as undirected.
uint64_t CountConnectedComponents(const Graph& graph);

// Eccentricity of `source`: the max BFS distance to any reachable vertex.
uint64_t Eccentricity(const Graph& graph, VertexId source);

}  // namespace granula::graph

#endif  // GRANULA_GRAPH_STATS_H_
