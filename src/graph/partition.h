#ifndef GRANULA_GRAPH_PARTITION_H_
#define GRANULA_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace granula::graph {

// Edge-cut partitioning (Giraph-style): every vertex is owned by exactly one
// partition; an edge whose endpoints live in different partitions is "cut"
// and becomes a remote message during execution.
struct EdgeCutPartition {
  std::vector<VertexId> vertices;  // owned vertices
  std::vector<Edge> edges;         // edges whose src is owned here
};

struct EdgeCutResult {
  std::vector<EdgeCutPartition> partitions;
  std::vector<uint32_t> owner;  // vertex -> partition
  uint64_t cut_edges = 0;

  double CutFraction(uint64_t total_edges) const {
    return total_edges == 0
               ? 0.0
               : static_cast<double>(cut_edges) / static_cast<double>(total_edges);
  }
};

// Hash-based edge cut, the default Giraph placement.
Result<EdgeCutResult> PartitionEdgeCut(const Graph& graph,
                                       uint32_t num_partitions);

// Vertex-cut partitioning (PowerGraph-style): every *edge* is owned by
// exactly one partition; a vertex whose edges span several partitions is
// replicated, with one replica designated master. Replication factor is the
// headline quality metric from the PowerGraph paper.
struct VertexCutPartition {
  std::vector<Edge> edges;
  std::vector<VertexId> replicas;  // vertices with a replica here
};

struct VertexCutResult {
  std::vector<VertexCutPartition> partitions;
  std::vector<uint32_t> master;  // vertex -> partition of master replica
  uint64_t total_replicas = 0;

  double ReplicationFactor(uint64_t num_vertices) const {
    return num_vertices == 0 ? 0.0
                             : static_cast<double>(total_replicas) /
                                   static_cast<double>(num_vertices);
  }
};

// PowerGraph's greedy heuristic: place each edge where its endpoints already
// have replicas, breaking ties toward the least-loaded partition.
Result<VertexCutResult> PartitionVertexCutGreedy(const Graph& graph,
                                                 uint32_t num_partitions);

// Random (hash-of-edge) vertex cut, the baseline the greedy heuristic is
// compared against in the PowerGraph paper.
Result<VertexCutResult> PartitionVertexCutRandom(const Graph& graph,
                                                 uint32_t num_partitions,
                                                 uint64_t seed);

}  // namespace granula::graph

#endif  // GRANULA_GRAPH_PARTITION_H_
