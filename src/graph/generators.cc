#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"

namespace granula::graph {

namespace {

// Samples an index from `cumulative` (a non-empty prefix-sum array of
// positive weights) proportionally to the underlying weights.
uint64_t SampleCumulative(const std::vector<double>& cumulative, Rng& rng) {
  double total = cumulative.back();
  double u = rng.NextDouble() * total;
  auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  if (it == cumulative.end()) --it;
  return static_cast<uint64_t>(it - cumulative.begin());
}


// Independent per-chunk generator so edge sampling parallelizes: the stream
// depends only on (seed, chunk), never on the host-thread count.
Rng ChunkRng(uint64_t seed, uint64_t chunk) {
  uint64_t state = seed + 0x9e3779b97f4a7c15ull * (chunk + 1);
  return Rng(SplitMix64(state));
}

}  // namespace

Result<Graph> GenerateDatagen(const DatagenConfig& config) {
  if (config.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  if (config.avg_degree <= 0) {
    return Status::InvalidArgument("avg_degree must be positive");
  }
  if (config.community_edge_fraction < 0 ||
      config.community_edge_fraction > 1) {
    return Status::InvalidArgument(
        "community_edge_fraction must be in [0, 1]");
  }
  const uint64_t n = config.num_vertices;
  Rng rng(config.seed);

  // Expected degree of vertex v: Zipf over a random permutation of ranks, so
  // high-degree hubs are spread over the id space (as Datagen's person ids
  // are).
  std::vector<uint64_t> rank(n);
  for (uint64_t v = 0; v < n; ++v) rank[v] = v + 1;
  rng.Shuffle(rank);

  // The pow() per vertex is pure, so it parallelizes without touching the
  // sequential sampling stream below; the sum stays sequential to keep its
  // floating-point fold order (and thus the generated graph) unchanged.
  std::vector<double> weight(n);
  ParallelFor(0, n, ChunkedGrain(n), [&](uint64_t, uint64_t b, uint64_t e) {
    for (uint64_t v = b; v < e; ++v) {
      weight[v] = std::pow(static_cast<double>(rank[v]),
                           -1.0 / config.degree_exponent);
    }
  });
  double weight_sum = 0;
  for (uint64_t v = 0; v < n; ++v) weight_sum += weight[v];
  // Normalize so the expected total degree hits avg_degree * n.
  double scale =
      config.avg_degree * static_cast<double>(n) / weight_sum;
  for (double& w : weight) w *= scale;

  // Community assignment: round-robin over communities of skewed sizes.
  uint64_t num_communities = config.num_communities;
  if (num_communities == 0) {
    num_communities = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::sqrt(static_cast<double>(n))));
  }
  std::vector<uint64_t> community(n);
  std::vector<std::vector<VertexId>> members(num_communities);
  for (uint64_t v = 0; v < n; ++v) {
    // Zipf community sizes: low community ids are larger.
    uint64_t c = rng.NextZipf(num_communities, 1.1) - 1;
    community[v] = c;
    members[c].push_back(v);
  }

  // Global cumulative weights for Chung-Lu sampling.
  std::vector<double> cumulative(n);
  double acc = 0;
  for (uint64_t v = 0; v < n; ++v) {
    acc += weight[v];
    cumulative[v] = acc;
  }

  // The rejection-sampling loop consumes one sequential random stream; it
  // stays single-threaded so a seed keeps producing the exact same graph
  // (downstream tests and archived runs depend on the content, not just
  // the statistics). Rmat/Uniform below chunk their streams instead.
  const uint64_t m = static_cast<uint64_t>(
      config.avg_degree * static_cast<double>(n) / 2.0);
  std::vector<Edge> edges;
  edges.reserve(m);
  uint64_t attempts = 0;
  const uint64_t max_attempts = m * 4 + 1024;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    VertexId src = SampleCumulative(cumulative, rng);
    VertexId dst;
    if (rng.NextBool(config.community_edge_fraction) &&
        members[community[src]].size() > 1) {
      const auto& local = members[community[src]];
      dst = local[rng.NextBounded(local.size())];
    } else {
      dst = SampleCumulative(cumulative, rng);
    }
    if (src == dst) continue;
    edges.push_back(Edge{src, dst});
  }
  return Graph::Create(n, std::move(edges), /*directed=*/false);
}

Result<Graph> GenerateRmat(const RmatConfig& config) {
  if (config.scale == 0 || config.scale > 30) {
    return Status::InvalidArgument("scale must be in [1, 30]");
  }
  double d = 1.0 - config.a - config.b - config.c;
  if (config.a < 0 || config.b < 0 || config.c < 0 || d < 0) {
    return Status::InvalidArgument("quadrant probabilities must sum to <= 1");
  }
  const uint64_t n = uint64_t{1} << config.scale;
  const uint64_t m =
      static_cast<uint64_t>(config.edge_factor * static_cast<double>(n));
  // Each chunk samples its slice of the edge array from its own
  // (seed, chunk)-derived stream — same graph for any host-thread count.
  std::vector<Edge> edges(m);
  const uint64_t grain = ChunkedGrain(m, /*max_chunks=*/64,
                                      /*min_grain=*/8192);
  ParallelFor(0, m, grain, [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
    Rng crng = ChunkRng(config.seed, chunk);
    for (uint64_t i = cb; i < ce; ++i) {
      uint64_t src = 0, dst = 0;
      for (uint64_t bit = 0; bit < config.scale; ++bit) {
        double u = crng.NextDouble();
        src <<= 1;
        dst <<= 1;
        if (u < config.a) {
          // top-left quadrant: neither bit set
        } else if (u < config.a + config.b) {
          dst |= 1;
        } else if (u < config.a + config.b + config.c) {
          src |= 1;
        } else {
          src |= 1;
          dst |= 1;
        }
      }
      edges[i] = Edge{src, dst};
    }
  });
  return Graph::Create(n, std::move(edges), /*directed=*/true);
}

Result<Graph> GenerateUniform(uint64_t num_vertices, uint64_t num_edges,
                              uint64_t seed) {
  if (num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  // Each chunk rejection-samples its exact slice of the edge array from
  // its own (seed, chunk)-derived stream (num_vertices >= 2, so rejection
  // always terminates).
  std::vector<Edge> edges(num_edges);
  const uint64_t grain = ChunkedGrain(num_edges, /*max_chunks=*/64,
                                      /*min_grain=*/8192);
  ParallelFor(0, num_edges, grain,
              [&](uint64_t chunk, uint64_t cb, uint64_t ce) {
                Rng crng = ChunkRng(seed, chunk);
                for (uint64_t i = cb; i < ce; ++i) {
                  for (;;) {
                    VertexId src = crng.NextBounded(num_vertices);
                    VertexId dst = crng.NextBounded(num_vertices);
                    if (src == dst) continue;
                    edges[i] = Edge{src, dst};
                    break;
                  }
                }
              });
  return Graph::Create(num_vertices, std::move(edges), /*directed=*/false);
}

Graph MakePath(uint64_t n) {
  std::vector<Edge> edges;
  for (uint64_t v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1});
  return std::move(Graph::Create(n, std::move(edges), false)).value();
}

Graph MakeCycle(uint64_t n) {
  std::vector<Edge> edges;
  for (uint64_t v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1});
  if (n >= 2) edges.push_back(Edge{n - 1, 0});
  return std::move(Graph::Create(n, std::move(edges), false)).value();
}

Graph MakeStar(uint64_t n) {
  std::vector<Edge> edges;
  for (uint64_t v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return std::move(Graph::Create(n, std::move(edges), false)).value();
}

Graph MakeComplete(uint64_t n) {
  std::vector<Edge> edges;
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return std::move(Graph::Create(n, std::move(edges), false)).value();
}

Graph MakeBinaryTree(uint64_t n) {
  std::vector<Edge> edges;
  for (uint64_t v = 1; v < n; ++v) edges.push_back(Edge{(v - 1) / 2, v});
  return std::move(Graph::Create(n, std::move(edges), false)).value();
}

Graph MakeGrid(uint64_t rows, uint64_t cols) {
  std::vector<Edge> edges;
  auto id = [cols](uint64_t r, uint64_t c) { return r * cols + c; };
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c)});
    }
  }
  return std::move(Graph::Create(rows * cols, std::move(edges), false))
      .value();
}

}  // namespace granula::graph
