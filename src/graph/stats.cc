#include "graph/stats.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace granula::graph {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  std::vector<uint64_t> degree(graph.num_vertices(), 0);
  for (const Edge& e : graph.edges()) {
    ++degree[e.src];
    if (!graph.directed()) ++degree[e.dst];
  }
  DegreeStats stats;
  if (degree.empty()) return stats;

  std::vector<uint64_t> sorted = degree;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  double total = static_cast<double>(
      std::accumulate(sorted.begin(), sorted.end(), uint64_t{0}));
  stats.mean = total / static_cast<double>(sorted.size());
  for (uint64_t d : degree) ++stats.histogram[d];

  // Gini from the sorted sequence: G = (2*sum(i*x_i)/(n*sum) - (n+1)/n).
  if (total > 0) {
    double weighted = 0;
    for (size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    }
    double n = static_cast<double>(sorted.size());
    stats.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }
  return stats;
}

uint64_t CountConnectedComponents(const Graph& graph) {
  uint64_t n = graph.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;

  // Union-find with path halving.
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  uint64_t components = n;
  for (const Edge& e : graph.edges()) {
    VertexId a = find(e.src), b = find(e.dst);
    if (a != b) {
      parent[a] = b;
      --components;
    }
  }
  return components;
}

uint64_t Eccentricity(const Graph& graph, VertexId source) {
  Csr csr = Csr::Build(graph, /*out=*/true);
  Csr in;
  const Csr* in_csr = nullptr;
  if (graph.directed()) {
    // Treat as undirected for eccentricity: traverse both directions.
    in = Csr::Build(graph, /*out=*/false);
    in_csr = &in;
  }
  std::vector<uint64_t> dist(graph.num_vertices(), UINT64_MAX);
  std::deque<VertexId> queue{source};
  dist[source] = 0;
  uint64_t ecc = 0;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    ecc = std::max(ecc, dist[v]);
    auto visit = [&](VertexId u) {
      if (dist[u] == UINT64_MAX) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    };
    for (VertexId u : csr.neighbors(v)) visit(u);
    if (in_csr != nullptr) {
      for (VertexId u : in_csr->neighbors(v)) visit(u);
    }
  }
  return ecc;
}

}  // namespace granula::graph
