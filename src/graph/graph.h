#ifndef GRANULA_GRAPH_GRAPH_H_
#define GRANULA_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"

namespace granula::graph {

using VertexId = uint64_t;

struct Edge {
  VertexId src;
  VertexId dst;

  bool operator==(const Edge&) const = default;
};

// An immutable graph held as an edge list. Vertices are dense ids in
// [0, num_vertices). Platform engines partition the edge list and build
// local adjacency; analysis code builds a Csr (see below).
class Graph {
 public:
  Graph() = default;

  // Validates that every endpoint is < num_vertices.
  static Result<Graph> Create(uint64_t num_vertices, std::vector<Edge> edges,
                              bool directed);

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return edges_.size(); }
  bool directed() const { return directed_; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Total vertices + edges, the "size" metric the paper uses for dg1000
  // ("1.03 billion vertices and edges").
  uint64_t scale() const { return num_vertices_ + num_edges(); }

 private:
  Graph(uint64_t num_vertices, std::vector<Edge> edges, bool directed)
      : num_vertices_(num_vertices),
        edges_(std::move(edges)),
        directed_(directed) {}

  uint64_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  bool directed_ = true;
};

// Compressed sparse row adjacency built from a Graph. For undirected graphs
// each edge appears in both endpoints' neighbor lists. For directed graphs,
// `out` selects out- or in-neighbors. Construction runs on the host thread
// pool (parallel counting, prefix sum, placement, per-vertex sort); the
// result is identical for every host-thread count because neighbor lists
// are sorted.
class Csr {
 public:
  static Csr Build(const Graph& graph, bool out = true);

  // Adjacency of the *undirected view* of an edge set: both endpoints list
  // each other regardless of the graph's directedness. This is what the
  // platform engines traverse (they treat every input as undirected), and
  // it also builds per-partition adjacency from a partition's local edges.
  static Csr BuildUndirected(uint64_t num_vertices,
                             std::span<const Edge> edges);

  uint64_t num_vertices() const { return offsets_.size() - 1; }
  uint64_t num_arcs() const { return targets_.size(); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(targets_.data() + offsets_[v],
                                     targets_.data() + offsets_[v + 1]);
  }
  uint64_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

 private:
  std::vector<uint64_t> offsets_;  // size num_vertices + 1
  std::vector<VertexId> targets_;
};

// Size in bytes of the graph rendered as a whitespace-separated decimal
// edge-list text file ("src dst\n" per edge) — the format both simulated
// platforms read. Drives every simulated I/O duration.
uint64_t EdgeListFileBytes(const Graph& graph);

// Size in bytes of a vertex-list text file ("id\n" per vertex).
uint64_t VertexListFileBytes(const Graph& graph);

}  // namespace granula::graph

#endif  // GRANULA_GRAPH_GRAPH_H_
