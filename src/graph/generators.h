#ifndef GRANULA_GRAPH_GENERATORS_H_
#define GRANULA_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace granula::graph {

// LDBC-Datagen-inspired synthetic social network. Reproduces the two
// structural properties the paper's experiment depends on:
//  * power-law degree distribution (Zipf-distributed expected degrees,
//    Chung-Lu edge sampling), and
//  * community structure with a small diameter (a fraction of edges stays
//    inside a vertex's community; the rest are global), so BFS exhibits the
//    explosive mid-run frontier of Fig. 8.
struct DatagenConfig {
  uint64_t num_vertices = 1000000;
  double avg_degree = 15.0;        // dg1000 is ~30M persons / ~1B edges
  double degree_exponent = 1.25;   // Zipf exponent of expected degrees
  uint64_t num_communities = 0;    // 0 = sqrt(num_vertices)
  double community_edge_fraction = 0.6;
  uint64_t seed = 42;
};
Result<Graph> GenerateDatagen(const DatagenConfig& config);

// R-MAT (Graph500-style) recursive generator.
struct RmatConfig {
  uint64_t scale = 16;  // num_vertices = 2^scale
  double edge_factor = 16.0;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  uint64_t seed = 42;
};
Result<Graph> GenerateRmat(const RmatConfig& config);

// Erdős–Rényi G(n, m): `num_edges` uniform random edges (no self loops).
Result<Graph> GenerateUniform(uint64_t num_vertices, uint64_t num_edges,
                              uint64_t seed);

// Deterministic shapes used by tests and examples.
Graph MakePath(uint64_t n);        // 0-1-2-...-(n-1)
Graph MakeCycle(uint64_t n);
Graph MakeStar(uint64_t n);        // center 0, leaves 1..n-1
Graph MakeComplete(uint64_t n);
Graph MakeBinaryTree(uint64_t n);  // parent(i) = (i-1)/2
Graph MakeGrid(uint64_t rows, uint64_t cols);

}  // namespace granula::graph

#endif  // GRANULA_GRAPH_GENERATORS_H_
