#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"
#include "graph/generators.h"

namespace granula::graph {

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  for (const Edge& e : graph.edges()) {
    file << e.src << ' ' << e.dst << '\n';
  }
  file.flush();
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path, bool directed) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  std::unordered_map<uint64_t, VertexId> dense;
  std::vector<Edge> edges;
  auto densify = [&dense](uint64_t raw) {
    auto [it, inserted] = dense.try_emplace(raw, dense.size());
    return it->second;
  };
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    uint64_t src_raw = 0, dst_raw = 0;
    if (!(fields >> src_raw >> dst_raw)) {
      return Status::Corruption(
          StrFormat("%s:%zu: expected 'src dst'", path.c_str(),
                    line_number));
    }
    edges.push_back(Edge{densify(src_raw), densify(dst_raw)});
  }
  return Graph::Create(dense.size(), std::move(edges), directed);
}

Status WriteValuesFile(const std::vector<double>& values,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  for (size_t v = 0; v < values.size(); ++v) {
    file << v << ' ' << StrFormat("%.17g", values[v]) << '\n';
  }
  file.flush();
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<Graph> GraphFromSpec(const std::string& spec) {
  size_t colon = spec.find(':');
  std::string kind = spec.substr(0, colon);
  std::string args = colon == std::string::npos ? "" : spec.substr(colon + 1);
  std::vector<std::string> parts = StrSplit(args, ',');
  // Empty/omitted fields keep their default; present fields must parse.
  auto arg_u64 = [&](size_t i, uint64_t fallback) -> Result<uint64_t> {
    if (i >= parts.size() || parts[i].empty()) return fallback;
    Result<uint64_t> value = ParseUint64(parts[i]);
    if (!value.ok()) {
      return Status::InvalidArgument("bad graph spec '" + spec +
                                     "': " + value.status().message());
    }
    return value;
  };
  auto arg_double = [&](size_t i, double fallback) -> Result<double> {
    if (i >= parts.size() || parts[i].empty()) return fallback;
    Result<double> value = ParseFiniteDouble(parts[i]);
    if (!value.ok()) {
      return Status::InvalidArgument("bad graph spec '" + spec +
                                     "': " + value.status().message());
    }
    return value;
  };
  if (kind == "datagen") {
    DatagenConfig config;
    GRANULA_ASSIGN_OR_RETURN(config.num_vertices, arg_u64(0, 100000));
    GRANULA_ASSIGN_OR_RETURN(config.avg_degree, arg_double(1, 15.0));
    return GenerateDatagen(config);
  }
  if (kind == "rmat") {
    RmatConfig config;
    GRANULA_ASSIGN_OR_RETURN(config.scale, arg_u64(0, 16));
    GRANULA_ASSIGN_OR_RETURN(config.edge_factor, arg_double(1, 16.0));
    return GenerateRmat(config);
  }
  if (kind == "uniform") {
    GRANULA_ASSIGN_OR_RETURN(uint64_t vertices, arg_u64(0, 10000));
    GRANULA_ASSIGN_OR_RETURN(uint64_t edges, arg_u64(1, 80000));
    return GenerateUniform(vertices, edges, 42);
  }
  if (kind == "file") {
    return ReadEdgeListFile(args, /*directed=*/false);
  }
  return Status::InvalidArgument("unknown graph spec '" + spec +
                                 "' (datagen:|rmat:|uniform:|file:)");
}

}  // namespace granula::graph
