#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"

namespace granula::graph {

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  for (const Edge& e : graph.edges()) {
    file << e.src << ' ' << e.dst << '\n';
  }
  file.flush();
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path, bool directed) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  std::unordered_map<uint64_t, VertexId> dense;
  std::vector<Edge> edges;
  auto densify = [&dense](uint64_t raw) {
    auto [it, inserted] = dense.try_emplace(raw, dense.size());
    return it->second;
  };
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    uint64_t src_raw = 0, dst_raw = 0;
    if (!(fields >> src_raw >> dst_raw)) {
      return Status::Corruption(
          StrFormat("%s:%zu: expected 'src dst'", path.c_str(),
                    line_number));
    }
    edges.push_back(Edge{densify(src_raw), densify(dst_raw)});
  }
  return Graph::Create(dense.size(), std::move(edges), directed);
}

Status WriteValuesFile(const std::vector<double>& values,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  for (size_t v = 0; v < values.size(); ++v) {
    file << v << ' ' << StrFormat("%.17g", values[v]) << '\n';
  }
  file.flush();
  if (!file.good()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace granula::graph
