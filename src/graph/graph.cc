#include "graph/graph.h"

#include <algorithm>

#include "common/strings.h"

namespace granula::graph {

Result<Graph> Graph::Create(uint64_t num_vertices, std::vector<Edge> edges,
                            bool directed) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument(
          StrFormat("edge (%llu, %llu) out of range for %llu vertices",
                    static_cast<unsigned long long>(e.src),
                    static_cast<unsigned long long>(e.dst),
                    static_cast<unsigned long long>(num_vertices)));
    }
  }
  return Graph(num_vertices, std::move(edges), directed);
}

Csr Csr::Build(const Graph& graph, bool out) {
  Csr csr;
  uint64_t n = graph.num_vertices();
  csr.offsets_.assign(n + 1, 0);

  auto count_arc = [&](VertexId v) { ++csr.offsets_[v + 1]; };
  for (const Edge& e : graph.edges()) {
    if (graph.directed()) {
      count_arc(out ? e.src : e.dst);
    } else {
      count_arc(e.src);
      count_arc(e.dst);
    }
  }
  for (uint64_t v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];

  csr.targets_.resize(csr.offsets_[n]);
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  auto place = [&](VertexId from, VertexId to) {
    csr.targets_[cursor[from]++] = to;
  };
  for (const Edge& e : graph.edges()) {
    if (graph.directed()) {
      if (out) {
        place(e.src, e.dst);
      } else {
        place(e.dst, e.src);
      }
    } else {
      place(e.src, e.dst);
      place(e.dst, e.src);
    }
  }
  // Sorted neighbor lists make lookups and tests deterministic.
  for (uint64_t v = 0; v < n; ++v) {
    std::sort(csr.targets_.begin() + static_cast<int64_t>(csr.offsets_[v]),
              csr.targets_.begin() + static_cast<int64_t>(csr.offsets_[v + 1]));
  }
  return csr;
}

namespace {

uint64_t DecimalDigits(uint64_t v) {
  uint64_t digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

}  // namespace

uint64_t EdgeListFileBytes(const Graph& graph) {
  uint64_t bytes = 0;
  for (const Edge& e : graph.edges()) {
    bytes += DecimalDigits(e.src) + DecimalDigits(e.dst) + 2;  // ' ' and '\n'
  }
  return bytes;
}

uint64_t VertexListFileBytes(const Graph& graph) {
  uint64_t bytes = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    bytes += DecimalDigits(v) + 1;  // '\n'
  }
  return bytes;
}

}  // namespace granula::graph
