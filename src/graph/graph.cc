#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace granula::graph {

Result<Graph> Graph::Create(uint64_t num_vertices, std::vector<Edge> edges,
                            bool directed) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument(
          StrFormat("edge (%llu, %llu) out of range for %llu vertices",
                    static_cast<unsigned long long>(e.src),
                    static_cast<unsigned long long>(e.dst),
                    static_cast<unsigned long long>(num_vertices)));
    }
  }
  return Graph(num_vertices, std::move(edges), directed);
}

namespace {

// Shared parallel CSR construction. `emit(e, f)` calls f(from, to) for each
// arc the edge contributes. Counting and placement use atomics (placement
// order within a list is scheduling-dependent), then per-vertex sorting
// canonicalizes the lists, so the final CSR is deterministic for any host
// thread count.
template <typename EmitFn>
void BuildCsrArcs(uint64_t n, std::span<const Edge> edges, EmitFn emit,
                  std::vector<uint64_t>* offsets,
                  std::vector<VertexId>* targets) {
  offsets->assign(n + 1, 0);
  const uint64_t m = edges.size();
  const uint64_t grain = ChunkedGrain(m, /*max_chunks=*/256,
                                      /*min_grain=*/4096);
  std::unique_ptr<std::atomic<uint64_t>[]> counts(
      new std::atomic<uint64_t>[n]);
  ParallelFor(0, n, ChunkedGrain(n, 256, 4096),
              [&](uint64_t, uint64_t b, uint64_t e) {
                for (uint64_t v = b; v < e; ++v) {
                  counts[v].store(0, std::memory_order_relaxed);
                }
              });
  ParallelFor(0, m, grain, [&](uint64_t, uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) {
      emit(edges[i], [&](VertexId from, VertexId) {
        counts[from].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (uint64_t v = 0; v < n; ++v) {
    (*offsets)[v + 1] =
        (*offsets)[v] + counts[v].load(std::memory_order_relaxed);
  }

  targets->resize((*offsets)[n]);
  // Reuse the counts as placement cursors (relative to each list's start).
  ParallelFor(0, n, ChunkedGrain(n, 256, 4096),
              [&](uint64_t, uint64_t b, uint64_t e) {
                for (uint64_t v = b; v < e; ++v) {
                  counts[v].store(0, std::memory_order_relaxed);
                }
              });
  ParallelFor(0, m, grain, [&](uint64_t, uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) {
      emit(edges[i], [&](VertexId from, VertexId to) {
        uint64_t slot =
            counts[from].fetch_add(1, std::memory_order_relaxed);
        (*targets)[(*offsets)[from] + slot] = to;
      });
    }
  });
  // Sorted neighbor lists make lookups and tests deterministic (and erase
  // the nondeterministic placement order above).
  ParallelFor(0, n, ChunkedGrain(n, 256, 256),
              [&](uint64_t, uint64_t b, uint64_t e) {
                for (uint64_t v = b; v < e; ++v) {
                  std::sort(
                      targets->begin() + static_cast<int64_t>((*offsets)[v]),
                      targets->begin() +
                          static_cast<int64_t>((*offsets)[v + 1]));
                }
              });
}

}  // namespace

Csr Csr::Build(const Graph& graph, bool out) {
  Csr csr;
  if (!graph.directed()) {
    return BuildUndirected(graph.num_vertices(), graph.edges());
  }
  BuildCsrArcs(
      graph.num_vertices(), graph.edges(),
      [out](const Edge& e, auto&& arc) {
        if (out) {
          arc(e.src, e.dst);
        } else {
          arc(e.dst, e.src);
        }
      },
      &csr.offsets_, &csr.targets_);
  return csr;
}

Csr Csr::BuildUndirected(uint64_t num_vertices, std::span<const Edge> edges) {
  Csr csr;
  BuildCsrArcs(
      num_vertices, edges,
      [](const Edge& e, auto&& arc) {
        arc(e.src, e.dst);
        arc(e.dst, e.src);
      },
      &csr.offsets_, &csr.targets_);
  return csr;
}

namespace {

uint64_t DecimalDigits(uint64_t v) {
  uint64_t digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

}  // namespace

uint64_t EdgeListFileBytes(const Graph& graph) {
  uint64_t bytes = 0;
  for (const Edge& e : graph.edges()) {
    bytes += DecimalDigits(e.src) + DecimalDigits(e.dst) + 2;  // ' ' and '\n'
  }
  return bytes;
}

uint64_t VertexListFileBytes(const Graph& graph) {
  uint64_t bytes = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    bytes += DecimalDigits(v) + 1;  // '\n'
  }
  return bytes;
}

}  // namespace granula::graph
