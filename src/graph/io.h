#ifndef GRANULA_GRAPH_IO_H_
#define GRANULA_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace granula::graph {

// Real-filesystem graph I/O in the whitespace-separated decimal edge-list
// format the simulated platforms model ("src dst\n" per line; '#' comments
// and blank lines ignored on read). Lets users run the pipeline on their
// own datasets (e.g. SNAP exports) instead of synthetic graphs.

// Writes `graph` as an edge-list text file. The byte count written equals
// EdgeListFileBytes(graph) (no comments are emitted), keeping simulated
// I/O costs consistent with real files.
Status WriteEdgeListFile(const Graph& graph, const std::string& path);

// Reads an edge-list text file. Vertex ids may be arbitrary (sparse)
// uint64 values; they are densified to [0, n) in first-appearance order.
// `directed` tags the result; duplicate edges and self-loops are kept.
Result<Graph> ReadEdgeListFile(const std::string& path, bool directed);

// Writes per-vertex values as "vertex value\n" lines (the simulated
// platforms' OffloadGraph output, materialized for real use).
Status WriteValuesFile(const std::vector<double>& values,
                       const std::string& path);

// Materializes a graph from the textual spec grammar shared by
// `granula run --graph=` and sweep-config "graphs" entries:
//   datagen:N[,DEG]   Datagen-like social graph (default 100000,15)
//   rmat:SCALE[,EF]   R-MAT, 2^SCALE vertices  (default 16,16)
//   uniform:N,M       Erdős–Rényi G(n, m)
//   file:PATH         edge-list text file
// Numeric fields are parsed strictly; "uniform:abc,10" is an error, not
// a zero-vertex graph.
Result<Graph> GraphFromSpec(const std::string& spec);

}  // namespace granula::graph

#endif  // GRANULA_GRAPH_IO_H_
