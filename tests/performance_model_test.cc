#include "granula/model/performance_model.h"

#include <gtest/gtest.h>

#include "granula/models/models.h"

namespace granula::core {
namespace {

PerformanceModel TwoLevelModel() {
  PerformanceModel model("test");
  EXPECT_TRUE(model.AddRoot("Job", "Root").ok());
  EXPECT_TRUE(model.AddOperation("Job", "PhaseA", "Job", "Root").ok());
  EXPECT_TRUE(model.AddOperation("Job", "PhaseB", "Job", "Root").ok());
  EXPECT_TRUE(model.AddOperation("Worker", "Step", "Job", "PhaseA").ok());
  return model;
}

TEST(PerformanceModelTest, RootAndLookup) {
  PerformanceModel model = TwoLevelModel();
  ASSERT_NE(model.root(), nullptr);
  EXPECT_EQ(model.root()->mission_type, "Root");
  EXPECT_EQ(model.root()->level, kDomainLevel);
  EXPECT_TRUE(model.Contains("Job", "PhaseA"));
  EXPECT_FALSE(model.Contains("Job", "PhaseC"));
  const OperationModel* step = model.Find("Worker", "Step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->level, 3);
  EXPECT_EQ(step->parent_key, "Job@PhaseA");
}

TEST(PerformanceModelTest, SecondRootRejected) {
  PerformanceModel model = TwoLevelModel();
  EXPECT_EQ(model.AddRoot("X", "Y").code(), StatusCode::kAlreadyExists);
}

TEST(PerformanceModelTest, DuplicateOperationRejected) {
  PerformanceModel model = TwoLevelModel();
  EXPECT_EQ(model.AddOperation("Job", "PhaseA", "Job", "Root").code(),
            StatusCode::kAlreadyExists);
}

TEST(PerformanceModelTest, UnknownParentRejected) {
  PerformanceModel model = TwoLevelModel();
  EXPECT_EQ(model.AddOperation("X", "Y", "No", "Such").code(),
            StatusCode::kNotFound);
}

TEST(PerformanceModelTest, EveryOperationGetsDurationRule) {
  PerformanceModel model = TwoLevelModel();
  for (const auto& [key, op] : model.operations()) {
    bool has_duration = false;
    for (const auto& rule : op.rules) {
      if (rule->info_name() == "Duration") has_duration = true;
    }
    EXPECT_TRUE(has_duration) << key;
  }
}

TEST(PerformanceModelTest, AddRuleToUnknownOperationFails) {
  PerformanceModel model = TwoLevelModel();
  EXPECT_FALSE(model.AddRule("No", "Such", MakeDurationRule()).ok());
  EXPECT_TRUE(model.AddRule("Worker", "Step", MakeDurationRule()).ok());
}

TEST(PerformanceModelTest, ValidatePassesForWellFormed) {
  EXPECT_TRUE(TwoLevelModel().Validate().ok());
}

TEST(PerformanceModelTest, ValidateFailsWithoutRoot) {
  PerformanceModel model("empty");
  EXPECT_EQ(model.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(PerformanceModelTest, MaxLevel) {
  EXPECT_EQ(TwoLevelModel().max_level(), 3);
}

TEST(PerformanceModelTest, WithMaxLevelTrims) {
  PerformanceModel trimmed = TwoLevelModel().WithMaxLevel(2);
  EXPECT_TRUE(trimmed.Contains("Job", "PhaseA"));
  EXPECT_FALSE(trimmed.Contains("Worker", "Step"));
  EXPECT_EQ(trimmed.max_level(), 2);
  EXPECT_TRUE(trimmed.Validate().ok());
}

TEST(PerformanceModelTest, ExplicitLevelsWithGapsTrimCascades) {
  PerformanceModel model("gaps");
  ASSERT_TRUE(model.AddRoot("J", "R").ok());
  ASSERT_TRUE(model.AddOperation("J", "Mid", "J", "R", 4).ok());
  ASSERT_TRUE(model.AddOperation("J", "Leaf", "J", "Mid").ok());
  EXPECT_EQ(model.Find("J", "Leaf")->level, 5);
  PerformanceModel trimmed = model.WithMaxLevel(3);
  // Mid (level 4) goes, and Leaf must cascade out with it.
  EXPECT_FALSE(trimmed.Contains("J", "Mid"));
  EXPECT_FALSE(trimmed.Contains("J", "Leaf"));
  EXPECT_TRUE(trimmed.Contains("J", "R"));
}

TEST(PerformanceModelTest, LevelMustExceedParent) {
  PerformanceModel model("bad");
  ASSERT_TRUE(model.AddRoot("J", "R").ok());
  ASSERT_TRUE(model.AddOperation("J", "Child", "J", "R", 1).ok());
  EXPECT_EQ(model.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(BuiltinModelsTest, AllValidate) {
  EXPECT_TRUE(MakeGraphProcessingDomainModel().Validate().ok());
  EXPECT_TRUE(MakeGiraphModel().Validate().ok());
  EXPECT_TRUE(MakePowerGraphModel().Validate().ok());
}

TEST(BuiltinModelsTest, DomainVocabularySharedAcrossPlatforms) {
  PerformanceModel giraph = MakeGiraphModel();
  PerformanceModel powergraph = MakePowerGraphModel();
  for (const char* phase : {ops::kStartup, ops::kLoadGraph,
                            ops::kProcessGraph, ops::kOffloadGraph,
                            ops::kCleanup}) {
    EXPECT_TRUE(giraph.Contains(ops::kJobActor, phase)) << phase;
    EXPECT_TRUE(powergraph.Contains(ops::kJobActor, phase)) << phase;
  }
}

TEST(BuiltinModelsTest, GiraphModelDepth) {
  PerformanceModel model = MakeGiraphModel();
  EXPECT_EQ(model.max_level(), 5);  // superstep stages
  EXPECT_TRUE(model.Contains("Worker", "Compute"));
  EXPECT_TRUE(model.Contains("Worker", "PreStep"));
  EXPECT_TRUE(model.Contains("Master", "SyncZookeeper"));
  // Domain view drops them.
  PerformanceModel domain = model.WithMaxLevel(2);
  EXPECT_FALSE(domain.Contains("Worker", "Compute"));
  EXPECT_TRUE(domain.Contains(ops::kJobActor, ops::kProcessGraph));
}

TEST(BuiltinModelsTest, PowerGraphHasGasStages) {
  PerformanceModel model = MakePowerGraphModel();
  for (const char* stage : {"Gather", "Apply", "Scatter"}) {
    EXPECT_TRUE(model.Contains("Rank", stage)) << stage;
  }
  EXPECT_TRUE(model.Contains("Coordinator", "ReadInput"));
}

}  // namespace
}  // namespace granula::core
