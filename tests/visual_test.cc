#include "granula/visual/svg.h"
#include "granula/visual/text.h"

#include <fstream>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

PerformanceArchive MakeArchive() {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root");
  OpId setup = logger.StartOperation(root, "Job", "job", "Setup", "Setup");
  now = SimTime::Seconds(2);
  logger.EndOperation(setup);
  OpId process =
      logger.StartOperation(root, "Job", "job", "Process", "Process");
  for (int w = 1; w <= 2; ++w) {
    OpId step = logger.StartOperation(
        process, "Worker", "Worker-" + std::to_string(w), "LocalStep",
        "LocalStep-" + std::to_string(w));
    OpId compute = logger.StartOperation(
        step, "Worker", "Worker-" + std::to_string(w), "Compute", "Compute");
    now = SimTime::Seconds(2.0 + 3 * w);
    logger.EndOperation(compute);
    logger.EndOperation(step);
  }
  now = SimTime::Seconds(10);
  logger.EndOperation(process);
  logger.EndOperation(root);

  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "Setup", "Job", "Root");
  (void)model.AddOperation("Job", "Process", "Job", "Root");
  (void)model.AddOperation("Worker", "LocalStep", "Job", "Process");
  (void)model.AddOperation("Worker", "Compute", "Worker", "LocalStep");

  std::vector<EnvironmentRecord> env;
  for (int t = 1; t <= 10; ++t) {
    for (uint32_t node = 0; node < 2; ++node) {
      EnvironmentRecord r;
      r.node = node;
      r.hostname = "node" + std::to_string(339 + node);
      r.time_seconds = t;
      r.cpu_seconds_per_second = (t > 2 && t <= 8) ? 4.0 : 0.5;
      env.push_back(r);
    }
  }
  auto archive =
      Archiver().Build(model, logger.records(), std::move(env), {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

TEST(TextVisualTest, BreakdownBarShowsPhasesAndPercents) {
  PerformanceArchive archive = MakeArchive();
  std::string bar = RenderBreakdownBar(archive, 50);
  EXPECT_NE(bar.find("Setup"), std::string::npos);
  EXPECT_NE(bar.find("Process"), std::string::npos);
  EXPECT_NE(bar.find("20.0%"), std::string::npos);
  EXPECT_NE(bar.find("80.0%"), std::string::npos);
  EXPECT_NE(bar.find("10.00s"), std::string::npos);
  // Bar body sums to the requested width.
  size_t bar_line = bar.find("|");
  ASSERT_NE(bar_line, std::string::npos);
  size_t close = bar.find("|", bar_line + 1);
  EXPECT_EQ(close - bar_line - 1, 50u);
}

TEST(TextVisualTest, BreakdownBarEmptyArchive) {
  PerformanceArchive empty;
  EXPECT_EQ(RenderBreakdownBar(empty), "(empty archive)\n");
}

TEST(TextVisualTest, OperationTreeDepthLimit) {
  PerformanceArchive archive = MakeArchive();
  std::string full = RenderOperationTree(archive);
  EXPECT_NE(full.find("Compute"), std::string::npos);
  std::string shallow = RenderOperationTree(archive, 2);
  EXPECT_EQ(shallow.find("Compute"), std::string::npos);
  EXPECT_NE(shallow.find("Process"), std::string::npos);
}

TEST(TextVisualTest, UtilizationChartAnnotatesPhases) {
  PerformanceArchive archive = MakeArchive();
  std::string chart = RenderUtilizationChart(archive, 30);
  EXPECT_NE(chart.find("Process"), std::string::npos);
  EXPECT_NE(chart.find("Setup"), std::string::npos);
  EXPECT_NE(chart.find("peak 8.00"), std::string::npos);
}

TEST(TextVisualTest, UtilizationChartNoEnvironment) {
  PerformanceArchive archive = MakeArchive();
  archive.environment.clear();
  EXPECT_EQ(RenderUtilizationChart(archive), "(no environment log)\n");
}

TEST(TextVisualTest, ActorTimelineListsWorkers) {
  PerformanceArchive archive = MakeArchive();
  std::string timeline =
      RenderActorTimeline(archive, "Worker", "LocalStep", 40);
  EXPECT_NE(timeline.find("Worker-1"), std::string::npos);
  EXPECT_NE(timeline.find("Worker-2"), std::string::npos);
  EXPECT_NE(timeline.find("'#' Compute"), std::string::npos);
}

TEST(TextVisualTest, ActorTimelineNoMatches) {
  PerformanceArchive archive = MakeArchive();
  EXPECT_EQ(RenderActorTimeline(archive, "Nobody", "Nothing"),
            "(no matching operations)\n");
}

void ExpectWellFormedSvg(const std::string& svg) {
  EXPECT_EQ(svg.find("<svg"), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Balanced rect/text elements are hard to check; at least no raw '&'.
  for (size_t i = 0; i < svg.size(); ++i) {
    if (svg[i] == '&') {
      EXPECT_TRUE(svg.compare(i, 5, "&amp;") == 0 ||
                  svg.compare(i, 4, "&lt;") == 0 ||
                  svg.compare(i, 4, "&gt;") == 0)
          << "unescaped & at " << i;
    }
  }
}

TEST(SvgVisualTest, BreakdownSvg) {
  PerformanceArchive archive = MakeArchive();
  std::string svg = RenderBreakdownSvg(archive);
  ExpectWellFormedSvg(svg);
  EXPECT_NE(svg.find("Setup"), std::string::npos);
  EXPECT_NE(svg.find("20.0%"), std::string::npos);
}

TEST(SvgVisualTest, UtilizationSvg) {
  PerformanceArchive archive = MakeArchive();
  std::string svg = RenderUtilizationSvg(archive);
  ExpectWellFormedSvg(svg);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("node339"), std::string::npos);
  EXPECT_NE(svg.find("CPU time / second"), std::string::npos);
}

TEST(SvgVisualTest, TimelineSvg) {
  PerformanceArchive archive = MakeArchive();
  std::string svg = RenderTimelineSvg(archive, "Worker", "LocalStep");
  ExpectWellFormedSvg(svg);
  EXPECT_NE(svg.find("Worker-1"), std::string::npos);
  EXPECT_NE(svg.find("Compute"), std::string::npos);
}

TEST(SvgVisualTest, EmptyInputsDegradeGracefully) {
  PerformanceArchive empty;
  ExpectWellFormedSvg(RenderBreakdownSvg(empty));
  ExpectWellFormedSvg(RenderUtilizationSvg(empty));
  ExpectWellFormedSvg(RenderTimelineSvg(empty, "W", "M"));
}

TEST(SvgVisualTest, WriteSvgFile) {
  PerformanceArchive archive = MakeArchive();
  std::string path = testing::TempDir() + "/granula_test.svg";
  ASSERT_TRUE(WriteSvgFile(path, RenderBreakdownSvg(archive)).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  ExpectWellFormedSvg(contents);
  EXPECT_FALSE(WriteSvgFile("/nonexistent-dir/x.svg", "<svg/>").ok());
}


TEST(SvgVisualTest, ComparisonSvg) {
  PerformanceArchive baseline = MakeArchive();
  PerformanceArchive candidate = MakeArchive();
  // Stretch the candidate's Process phase by editing its infos.
  ArchivedOperation* process =
      const_cast<ArchivedOperation*>(candidate.FindByPath("Root/Process"));
  ASSERT_NE(process, nullptr);
  process->SetInfo("EndTime", Json(SimTime::Seconds(14).nanos()), "t");
  const_cast<ArchivedOperation*>(candidate.FindByPath("Root"))
      ->SetInfo("EndTime", Json(SimTime::Seconds(14).nanos()), "t");

  std::string svg = RenderComparisonSvg(baseline, candidate);
  ExpectWellFormedSvg(svg);
  EXPECT_NE(svg.find("baseline"), std::string::npos);
  EXPECT_NE(svg.find("candidate"), std::string::npos);
  EXPECT_NE(svg.find("+50.0%"), std::string::npos);  // 8s -> 12s Process
  EXPECT_NE(svg.find("14.00s"), std::string::npos);

  PerformanceArchive empty;
  ExpectWellFormedSvg(RenderComparisonSvg(empty, baseline));
}

}  // namespace
}  // namespace granula::core
