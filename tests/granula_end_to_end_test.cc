// End-to-end tests of the full Granula pipeline on real platform runs:
// model (P1) -> monitor (P2, during a simulated job) -> archive (P3) ->
// visualize (P4). These assert the *shapes* the paper reports, not exact
// numbers: who dominates, which node idles, which superstep explodes.

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

// A scaled-down version of the paper workload (kept small for test speed;
// the full-size run lives in bench/).
graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 8000;
  config.avg_degree = 10.0;
  config.seed = 1000;
  auto g = graph::GenerateDatagen(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

algo::AlgorithmSpec BfsSpec() {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  return spec;
}

core::PerformanceArchive GiraphArchive(int max_level = 0) {
  GiraphPlatform giraph;
  auto result = giraph.Run(TestGraph(), BfsSpec(), cluster::ClusterConfig{},
                           JobConfig{});
  EXPECT_TRUE(result.ok()) << result.status();
  core::Archiver::Options options;
  options.max_level = max_level;
  auto archive = core::Archiver(options).Build(
      core::MakeGiraphModel(), result->records,
      std::move(result->environment), {{"platform", "Giraph"}});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

core::PerformanceArchive PowerGraphArchive() {
  PowerGraphPlatform powergraph;
  auto result = powergraph.Run(TestGraph(), BfsSpec(),
                               cluster::ClusterConfig{}, JobConfig{});
  EXPECT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(
      core::MakePowerGraphModel(), result->records,
      std::move(result->environment), {{"platform", "PowerGraph"}});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

TEST(GiraphEndToEndTest, DomainPhasesCoverTheJob) {
  core::PerformanceArchive archive = GiraphArchive();
  ASSERT_NE(archive.root, nullptr);
  EXPECT_EQ(archive.root->mission_id, "GiraphJob");
  ASSERT_EQ(archive.root->children.size(), 5u);

  // Phases appear in order and tile the job (no gaps at domain level).
  const char* expected[] = {core::ops::kStartup, core::ops::kLoadGraph,
                            core::ops::kProcessGraph,
                            core::ops::kOffloadGraph, core::ops::kCleanup};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(archive.root->children[i]->mission_type, expected[i]);
  }
  double phase_sum = 0;
  for (const auto& child : archive.root->children) {
    phase_sum += child->Duration().seconds();
  }
  EXPECT_NEAR(phase_sum, archive.root->Duration().seconds(),
              0.05 * archive.root->Duration().seconds());
}

TEST(GiraphEndToEndTest, DomainMetricsDerived) {
  core::PerformanceArchive archive = GiraphArchive();
  const core::ArchivedOperation& root = *archive.root;
  double total = root.Duration().seconds();
  double ts = root.InfoNumber("SetupTime") * 1e-9;
  double td = root.InfoNumber("IoTime") * 1e-9;
  double tp = root.InfoNumber("ProcessingTime") * 1e-9;
  EXPECT_GT(ts, 0);
  EXPECT_GT(td, 0);
  EXPECT_GT(tp, 0);
  EXPECT_NEAR(ts + td + tp, total, 0.05 * total);
  EXPECT_NEAR(root.InfoNumber("SetupTimeFraction") +
                  root.InfoNumber("IoTimeFraction") +
                  root.InfoNumber("ProcessingTimeFraction"),
              1.0, 0.05);
}

TEST(GiraphEndToEndTest, SuperstepHierarchyPresent) {
  core::PerformanceArchive archive = GiraphArchive();
  const core::ArchivedOperation* process =
      archive.FindByPath("GiraphJob/ProcessGraph");
  ASSERT_NE(process, nullptr);
  EXPECT_GT(process->InfoNumber("SuperstepCount"), 2.0);

  auto supersteps = archive.FindOperations("Master", "Superstep");
  ASSERT_FALSE(supersteps.empty());
  for (const core::ArchivedOperation* step : supersteps) {
    EXPECT_EQ(step->children.size(), 8u);  // one LocalSuperstep per worker
    EXPECT_GE(step->InfoNumber("WorkerImbalance"), 1.0);
    for (const auto& local : step->children) {
      // PreStep, Compute, Message, PostStep per worker.
      EXPECT_EQ(local->children.size(), 4u);
      // Children tile the LocalSuperstep (within rounding).
      EXPECT_LE(local->children.front()->StartTime(), local->StartTime());
    }
  }
}

TEST(GiraphEndToEndTest, WorkerComputeInfosRecorded) {
  core::PerformanceArchive archive = GiraphArchive();
  uint64_t total_vertices_computed = 0;
  for (const core::ArchivedOperation* compute :
       archive.FindOperations("Worker", "Compute")) {
    total_vertices_computed +=
        static_cast<uint64_t>(compute->InfoNumber("VerticesComputed"));
  }
  // Every vertex in the giant component computes at least once.
  EXPECT_GT(total_vertices_computed, 8000u / 2);
}

TEST(GiraphEndToEndTest, EnvironmentLogCoversTheRun) {
  core::PerformanceArchive archive = GiraphArchive();
  ASSERT_FALSE(archive.environment.empty());
  double last = archive.environment.back().time_seconds;
  EXPECT_NEAR(last, archive.root->EndTime().seconds(), 1.5);
  // Startup is CPU-idle; LoadGraph is CPU-heavy (paper Fig. 6).
  const core::ArchivedOperation* startup =
      archive.FindByPath("GiraphJob/Startup");
  const core::ArchivedOperation* load =
      archive.FindByPath("GiraphJob/LoadGraph");
  ASSERT_NE(startup, nullptr);
  ASSERT_NE(load, nullptr);
  auto mean_cpu = [&](const core::ArchivedOperation& op) {
    double sum = 0;
    int count = 0;
    for (const core::EnvironmentRecord& r : archive.environment) {
      if (r.time_seconds > op.StartTime().seconds() &&
          r.time_seconds <= op.EndTime().seconds()) {
        sum += r.cpu_seconds_per_second;
        ++count;
      }
    }
    return count > 0 ? sum / count : 0.0;
  };
  EXPECT_GT(mean_cpu(*load), 5.0 * std::max(0.2, mean_cpu(*startup)));
}

TEST(GiraphEndToEndTest, DomainLevelArchiveIsSmaller) {
  core::PerformanceArchive fine = GiraphArchive();
  core::PerformanceArchive coarse = GiraphArchive(/*max_level=*/2);
  EXPECT_EQ(coarse.OperationCount(), 6u);  // job + 5 phases
  EXPECT_GT(fine.OperationCount(), 10 * coarse.OperationCount());
  // Same domain-level timings from either granularity.
  EXPECT_EQ(fine.FindByPath("GiraphJob/LoadGraph")->Duration(),
            coarse.FindByPath("GiraphJob/LoadGraph")->Duration());
}

TEST(GiraphEndToEndTest, ArchiveRoundtripsThroughJson) {
  core::PerformanceArchive archive = GiraphArchive(/*max_level=*/3);
  std::string json = archive.ToJsonString();
  auto restored = core::PerformanceArchive::FromJsonString(json);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ToJsonString(), json);
}

TEST(GiraphEndToEndTest, VisualsRenderFromRealArchive) {
  core::PerformanceArchive archive = GiraphArchive();
  EXPECT_NE(core::RenderBreakdownBar(archive).find("LoadGraph"),
            std::string::npos);
  EXPECT_NE(core::RenderUtilizationChart(archive).find("ProcessGraph"),
            std::string::npos);
  std::string svg =
      core::RenderTimelineSvg(archive, "Worker", "LocalSuperstep");
  EXPECT_NE(svg.find("Compute"), std::string::npos);
}

TEST(PowerGraphEndToEndTest, LoadDominatedByOneSequentialReader) {
  core::PerformanceArchive archive = PowerGraphArchive();
  const core::ArchivedOperation& root = *archive.root;
  // The paper's headline: I/O dwarfs processing on PowerGraph.
  EXPECT_GT(root.InfoNumber("IoTimeFraction"), 0.5);
  EXPECT_LT(root.InfoNumber("ProcessingTimeFraction"), 0.2);

  const core::ArchivedOperation* load =
      archive.FindByPath("PowerGraphJob/LoadGraph");
  ASSERT_NE(load, nullptr);
  EXPECT_GT(load->InfoNumber("SequentialReadFraction"), 0.5);

  // During ReadInput, the coordinator node owns (almost) all CPU time.
  const core::ArchivedOperation* read =
      archive.FindByPath("PowerGraphJob/LoadGraph/ReadInput");
  ASSERT_NE(read, nullptr);
  double coordinator = 0, others = 0;
  for (const core::EnvironmentRecord& r : archive.environment) {
    if (r.time_seconds > read->StartTime().seconds() &&
        r.time_seconds <= read->EndTime().seconds()) {
      (r.node == 0 ? coordinator : others) += r.cpu_seconds_per_second;
    }
  }
  EXPECT_GT(coordinator, 10.0 * std::max(0.1, others));
}

TEST(PowerGraphEndToEndTest, GasStagesPresentPerIteration) {
  core::PerformanceArchive archive = PowerGraphArchive();
  auto iterations = archive.FindOperations("Engine", "Iteration");
  ASSERT_GT(iterations.size(), 2u);
  for (const core::ArchivedOperation* iter : iterations) {
    // 4 stage ops per rank per iteration.
    EXPECT_EQ(iter->children.size(), 8u * 4u);
  }
  const core::ArchivedOperation* process =
      archive.FindByPath("PowerGraphJob/ProcessGraph");
  ASSERT_NE(process, nullptr);
  EXPECT_DOUBLE_EQ(process->InfoNumber("IterationCount"),
                   static_cast<double>(iterations.size()));
}

TEST(CrossPlatformTest, DomainModelComparesBothPlatforms) {
  // The paper's Section 4.2 workflow: archive both platforms under the
  // *same* domain model and compare Ts/Td/Tp directly.
  GiraphPlatform giraph;
  PowerGraphPlatform powergraph;
  graph::Graph g = TestGraph();
  auto gr = giraph.Run(g, BfsSpec(), cluster::ClusterConfig{}, JobConfig{});
  auto pr =
      powergraph.Run(g, BfsSpec(), cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(gr.ok());
  ASSERT_TRUE(pr.ok());

  core::PerformanceModel domain = core::MakeGraphProcessingDomainModel();
  auto ga = core::Archiver().Build(domain, gr->records, {}, {});
  auto pa = core::Archiver().Build(domain, pr->records, {}, {});
  ASSERT_TRUE(ga.ok()) << ga.status();
  ASSERT_TRUE(pa.ok()) << pa.status();

  // Both reduce to exactly job + 5 phases under the domain model.
  EXPECT_EQ(ga->OperationCount(), 6u);
  EXPECT_EQ(pa->OperationCount(), 6u);

  // The paper's cross-platform findings (which survive scaling):
  // PowerGraph processes faster but spends far more of its runtime on I/O.
  double giraph_tp = ga->root->InfoNumber("ProcessingTime");
  double powergraph_tp = pa->root->InfoNumber("ProcessingTime");
  EXPECT_LT(powergraph_tp, giraph_tp);
  EXPECT_GT(pa->root->InfoNumber("IoTimeFraction"),
            ga->root->InfoNumber("IoTimeFraction"));
  // And both engines computed the same BFS answer.
  EXPECT_EQ(gr->vertex_values, pr->vertex_values);
}

TEST(CrossPlatformTest, DominantSuperstepIsMidRun) {
  // Fig. 8's shape: the heaviest compute superstep is neither the first
  // nor the last (the BFS frontier peaks mid-run on a small-world graph).
  core::PerformanceArchive archive = GiraphArchive();
  auto computes = archive.FindOperations("Worker", "Compute");
  ASSERT_FALSE(computes.empty());
  std::map<std::string, double> by_step;
  for (const core::ArchivedOperation* op : computes) {
    by_step[op->mission_id] =
        std::max(by_step[op->mission_id], op->Duration().seconds());
  }
  std::string heaviest;
  double heaviest_time = -1;
  for (const auto& [step, t] : by_step) {
    if (t > heaviest_time) {
      heaviest_time = t;
      heaviest = step;
    }
  }
  EXPECT_NE(heaviest, "Compute-0");
  auto last_step = by_step.rbegin()->first;
  EXPECT_NE(heaviest, last_step);
}

}  // namespace
}  // namespace granula::platform
