#include "granula/archive/repository.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

namespace fs = std::filesystem;

PerformanceArchive MakeArchive(const std::string& platform, double seconds) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  for (int i = 0; i < 32; ++i) {
    OpId step = logger.StartOperation(root, "Worker", "w", "Step");
    logger.AddInfo(step, "Items", Json(int64_t{i}));
    logger.EndOperation(step);
  }
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Worker", "Step", "Job", "Root");
  auto archive = Archiver().Build(
      model, logger.records(), {},
      {{"platform", platform}, {"algorithm", "BFS"}});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/repo_conc_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

TEST(RepositoryConcurrencyTest, SaveAllMatchesSequentialNaming) {
  ArchiveRepository repo(FreshDir("batch"));
  std::vector<PerformanceArchive> archives;
  for (int i = 0; i < 12; ++i) {
    archives.push_back(MakeArchive(i % 2 == 0 ? "Giraph" : "PowerGraph",
                                   10 + i));
  }
  std::vector<const PerformanceArchive*> pointers;
  for (const auto& a : archives) pointers.push_back(&a);

  auto names = repo.SaveAll(pointers, /*num_threads=*/4);
  ASSERT_TRUE(names.ok()) << names.status();
  ASSERT_EQ(names->size(), 12u);
  EXPECT_EQ((*names)[0], "Giraph-BFS-001");
  EXPECT_EQ((*names)[1], "PowerGraph-BFS-001");
  EXPECT_EQ((*names)[2], "Giraph-BFS-002");

  // Every name is unique and every file loads back intact.
  std::set<std::string> unique(names->begin(), names->end());
  EXPECT_EQ(unique.size(), 12u);
  for (size_t i = 0; i < names->size(); ++i) {
    auto loaded = repo.Load((*names)[i]);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->ToJsonString(), archives[i].ToJsonString());
  }
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 12u);
}

TEST(RepositoryConcurrencyTest, SaveAllAppendsAfterExistingRuns) {
  ArchiveRepository repo(FreshDir("append"));
  PerformanceArchive first = MakeArchive("Giraph", 1);
  ASSERT_TRUE(repo.Save(first).ok());  // Giraph-BFS-001
  std::vector<PerformanceArchive> archives;
  archives.push_back(MakeArchive("Giraph", 2));
  archives.push_back(MakeArchive("Giraph", 3));
  std::vector<const PerformanceArchive*> pointers{&archives[0],
                                                  &archives[1]};
  auto names = repo.SaveAll(pointers, 2);
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ((*names)[0], "Giraph-BFS-002");
  EXPECT_EQ((*names)[1], "Giraph-BFS-003");
}

TEST(RepositoryConcurrencyTest, SaveAllRejectsNull) {
  ArchiveRepository repo(FreshDir("null"));
  std::vector<const PerformanceArchive*> pointers{nullptr};
  EXPECT_EQ(repo.SaveAll(pointers).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RepositoryConcurrencyTest, AutoNamesNeverReusedAfterRemove) {
  // Max-index naming: deleting an archive must not recycle its name, so
  // analysts can cite "Giraph-BFS-002" forever.
  ArchiveRepository repo(FreshDir("reuse"));
  PerformanceArchive a = MakeArchive("Giraph", 1);
  ASSERT_TRUE(repo.Save(a).ok());                    // 001
  auto second = repo.Save(a);                        // 002
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(repo.Remove(*second).ok());
  auto third = repo.Save(a);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, "Giraph-BFS-003");  // not 002 again
}

TEST(RepositoryConcurrencyTest, InterruptedWriteInvisibleToList) {
  // A crash mid-save leaves only <name>.json.tmp behind; List() and Load()
  // must not see it, and a later save of the same name must succeed.
  std::string dir = FreshDir("interrupted");
  ArchiveRepository repo(dir);
  ASSERT_TRUE(repo.Init().ok());
  {
    std::ofstream tmp(dir + "/crashed.json.tmp");
    tmp << "{\"job\": {\"platform\": \"Giraph\"";  // truncated JSON
  }
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_TRUE(entries->empty());
  EXPECT_EQ(repo.Load("crashed").status().code(), StatusCode::kNotFound);

  PerformanceArchive archive = MakeArchive("Giraph", 2);
  ASSERT_TRUE(repo.Save(archive, "crashed").ok());
  auto loaded = repo.Load("crashed");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToJsonString(), archive.ToJsonString());
}

TEST(RepositoryConcurrencyTest, SaveLeavesNoTempFilesBehind) {
  std::string dir = FreshDir("clean");
  ArchiveRepository repo(dir);
  PerformanceArchive archive = MakeArchive("Giraph", 2);
  ASSERT_TRUE(repo.Save(archive, "a").ok());
  std::vector<const PerformanceArchive*> pointers{&archive, &archive};
  ASSERT_TRUE(repo.SaveAll(pointers, 2).ok());
  for (const auto& file : fs::directory_iterator(dir)) {
    EXPECT_NE(file.path().extension(), ".tmp") << file.path();
  }
}

TEST(RepositoryConcurrencyTest, FetchSubtreeHammer) {
  // The serve daemon's workers all call FetchSubtree on one shared
  // repository. 8 threads x 200 fetches over 6 keys against a capacity-2
  // cache: constant hit/miss/evict churn on every path. Run under TSan
  // (the thread-sanitize CI lane builds this test) to prove the cache is
  // data-race free; the assertions prove LRU bookkeeping stays coherent.
  ArchiveRepository repo(FreshDir("hammer"));
  repo.set_write_format(ArchiveFormat::kGba);
  std::vector<std::string> names;
  for (int i = 0; i < 3; ++i) {
    auto name = repo.Save(MakeArchive("Giraph", 10 + i));
    ASSERT_TRUE(name.ok()) << name.status();
    names.push_back(*name);
  }
  repo.set_cache_capacity(2);

  constexpr int kThreads = 8;
  constexpr int kFetches = 200;
  const std::string paths[] = {"Root", "Root/Step"};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetches; ++i) {
        const std::string& name = names[(t + i) % names.size()];
        const std::string& path = paths[(t + i) % 2];
        auto subtree = repo.FetchSubtree(name, path);
        if (!subtree.ok()) {
          ++failures;
          continue;
        }
        // The pointer stays valid after eviction (shared ownership), so
        // inspecting it here races with nothing.
        if (path == "Root") {
          if ((*subtree)->SubtreeSize() != 33) ++failures;
        } else {
          if ((*subtree)->mission_type != "Step" ||
              !(*subtree)->HasInfo("Items")) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const ArchiveRepository::CacheStats stats = repo.cache_stats();
  // Every fetch counts exactly one hit or one miss, even when two threads
  // race to decode the same key.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kFetches);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);  // capacity 2 over 6 keys must evict
}

TEST(RepositoryConcurrencyTest, SaveIntoUnwritableDirectoryFails) {
  // Point the repository at a path that exists as a *file*: Init() must
  // propagate the error instead of leaving a partial archive around.
  std::string dir = FreshDir("notadir");
  { std::ofstream file(dir); file << "x"; }
  ArchiveRepository repo(dir);
  PerformanceArchive archive = MakeArchive("Giraph", 2);
  EXPECT_FALSE(repo.Save(archive, "a").ok());
}

}  // namespace
}  // namespace granula::core
