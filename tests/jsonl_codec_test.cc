// The JSONL fast-path codec contract (DESIGN.md "Serialization fast
// paths"): AppendJsonl is byte-identical to ToJson().Dump(0) for every
// record all five platforms emit, ParseJsonl agrees with the DOM path on
// canonical and non-canonical lines alike (values and errors), and the
// parallel ReadLogRecords returns byte-identical sequences at 1, 2, and 8
// host threads.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "granula/monitor/job_logger.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::core {
namespace {

using platform::JobConfig;
using platform::JobResult;

std::string FreshPath(const std::string& name) {
  std::string path = testing::TempDir() + "/jsonl_codec_" + name + ".jsonl";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

class PoolSizeGuard {
 public:
  PoolSizeGuard() : original_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::Global().Resize(original_); }

 private:
  int original_;
};

std::vector<LogRecord> RunPlatform(const std::string& name,
                                   algo::AlgorithmId id) {
  graph::DatagenConfig config;
  config.num_vertices = 1200;
  config.avg_degree = 6.0;
  config.seed = 23;
  auto graph = graph::GenerateDatagen(config);
  EXPECT_TRUE(graph.ok()) << graph.status();

  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 1;
  spec.max_iterations = 3;

  cluster::ClusterConfig cluster;
  JobConfig job;
  Result<JobResult> result = Status::Internal("unset");
  if (name == "giraph") {
    result = platform::GiraphPlatform().Run(*graph, spec, cluster, job);
  } else if (name == "powergraph") {
    result = platform::PowerGraphPlatform().Run(*graph, spec, cluster, job);
  } else if (name == "hadoop") {
    result = platform::HadoopPlatform().Run(*graph, spec, cluster, job);
  } else if (name == "pgxd") {
    result = platform::PgxdPlatform().Run(*graph, spec, cluster, job);
  } else {
    result = platform::GraphMatPlatform().Run(*graph, spec, cluster, job);
  }
  EXPECT_TRUE(result.ok()) << name << ": " << result.status();
  return std::move(result->records);
}

std::string FastLine(const LogRecord& r) {
  std::string line;
  r.AppendJsonl(line);
  return line;
}

// Serialized-byte equality is full-field equality: every LogRecord field
// participates in the line format.
void ExpectSameRecord(const LogRecord& a, const LogRecord& b,
                      const std::string& context) {
  EXPECT_EQ(FastLine(a), FastLine(b)) << context;
}

// The legacy DOM path, verbatim — the reference ParseJsonl must match.
Result<LogRecord> DomParse(std::string_view line) {
  auto parsed = Json::Parse(line);
  if (!parsed.ok()) return parsed.status();
  return LogRecord::FromJson(*parsed);
}

// ----------------------------------------------- writer byte-identity ----

TEST(JsonlCodecTest, AppendJsonlMatchesDomDumpOverFullPlatformRuns) {
  const char* kPlatforms[] = {"giraph", "powergraph", "hadoop", "pgxd",
                              "graphmat"};
  for (const char* name : kPlatforms) {
    for (algo::AlgorithmId id :
         {algo::AlgorithmId::kBfs, algo::AlgorithmId::kPageRank}) {
      std::vector<LogRecord> records = RunPlatform(name, id);
      ASSERT_FALSE(records.empty()) << name;
      for (const LogRecord& r : records) {
        ASSERT_EQ(FastLine(r), r.ToJson().Dump(0))
            << name << " seq=" << r.seq;
      }
    }
  }
}

TEST(JsonlCodecTest, AppendJsonlMatchesDomDumpOnEdgeRecords) {
  std::vector<LogRecord> records;

  LogRecord start;
  start.kind = LogRecord::Kind::kStartOp;
  start.seq = 3;
  start.time = SimTime::Nanos(-17);  // negative virtual time survives
  start.op_id = 7;
  start.parent_id = 0;
  start.actor_type = "Worker \"3\"\\path";
  start.actor_id = "";  // omitted key
  start.mission_type = "Mission\nwith\tcontrol\x01bytes";
  start.mission_id = "unicode-\xf0\x9f\x98\x80";
  records.push_back(start);

  LogRecord end;
  end.kind = LogRecord::Kind::kEndOp;
  end.seq = UINT64_MAX;  // stored as a double by Json(uint64_t), by design
  end.time = SimTime::Max();
  end.op_id = static_cast<uint64_t>(INT64_MAX);
  records.push_back(end);

  LogRecord info;
  info.kind = LogRecord::Kind::kInfo;
  info.seq = 5;
  info.time = SimTime::Nanos(INT64_MIN);
  info.op_id = 7;
  info.info_name = "Payload";
  Json value;
  value["nested"] = Json::Array{Json(int64_t{1}), Json(2.5), Json("x\"y")};
  value["flag"] = true;
  value["none"] = nullptr;
  info.info_value = std::move(value);
  records.push_back(info);

  LogRecord empty_info;
  empty_info.kind = LogRecord::Kind::kInfo;
  empty_info.info_name = "";
  records.push_back(empty_info);  // info_value stays null

  for (const LogRecord& r : records) {
    EXPECT_EQ(FastLine(r), r.ToJson().Dump(0)) << "seq=" << r.seq;
  }
}

// ------------------------------------------------------ reader parity ----

TEST(JsonlCodecTest, ParseJsonlRoundtripsCanonicalLines) {
  std::vector<LogRecord> records = RunPlatform("giraph", algo::AlgorithmId::kBfs);
  ASSERT_FALSE(records.empty());
  for (const LogRecord& r : records) {
    const std::string line = FastLine(r);
    auto parsed = LogRecord::ParseJsonl(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.status();
    ExpectSameRecord(*parsed, r, line);
  }
}

TEST(JsonlCodecTest, ParseJsonlMatchesDomPathOnNonCanonicalLines) {
  const char* kLines[] = {
      // Canonical shapes, for the fast path proper.
      R"({"kind":"end","op":1,"seq":2,"t":3})",
      R"({"actor_type":"Job","kind":"start","mission_type":"Root","op":1,"parent":0,"seq":0,"t":0})",
      R"({"kind":"info","name":"M","op":4,"seq":9,"t":12,"value":{"a":[1,2.5],"b":"x"}})",
      R"({"kind":"info","name":"M","op":4,"seq":9,"t":12,"value":null})",
      // Whitespace and reordered keys → DOM fallback, same record.
      R"( {"kind":"end","op":1,"seq":2,"t":3} )",
      R"({"t":3,"seq":2,"op":1,"kind":"end"})",
      R"({"kind": "end", "op": 1, "seq": 2, "t": 3})",
      // Escapes in strings → DOM fallback.
      R"({"actor_type":"Job\n\"x\"","kind":"start","mission_type":"Ré","op":1,"parent":0,"seq":0,"t":0})",
      // Exotic numbers: doubles where integers are expected.
      R"({"kind":"end","op":1.5,"seq":2e2,"t":-3.25})",
      R"({"kind":"end","op":1,"seq":99999999999999999999999,"t":3})",
      R"({"kind":"end","op":-4,"seq":2,"t":3})",
      // Unknown and duplicate keys (last wins, both paths).
      R"({"extra":42,"kind":"end","op":1,"seq":2,"t":3})",
      R"({"kind":"end","op":1,"op":7,"seq":2,"t":3})",
      // Missing keys fall back to defaults in both paths.
      R"({"kind":"start"})",
      R"({"kind":"info","op":4})",
      // Error cases: both paths must report the identical status.
      R"({})",
      R"({"kind":"weird","op":1,"seq":2,"t":3})",
      R"([1,2,3])",
      R"("just a string")",
      R"({"kind":"end","op":1,"seq":2,"t":3)",
      R"({oops})",
      R"(not json at all)",
      R"({"kind":"info","name":"M","op":4,"seq":9,"t":12,"value":{"a":[1}})",
  };
  for (const char* line : kLines) {
    auto fast = LogRecord::ParseJsonl(line);
    auto dom = DomParse(line);
    ASSERT_EQ(fast.ok(), dom.ok()) << line;
    if (fast.ok()) {
      ExpectSameRecord(*fast, *dom, line);
    } else {
      EXPECT_EQ(fast.status().ToString(), dom.status().ToString()) << line;
    }
  }
}

// ------------------------------------------------------ parallel read ----

std::vector<LogRecord> MakeMixedLog(size_t supersteps) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  for (size_t s = 0; s < supersteps; ++s) {
    OpId step = logger.StartOperation(root, "Master", "", "Superstep",
                                      "Superstep-" + std::to_string(s));
    for (int w = 0; w < 4; ++w) {
      OpId work = logger.StartOperation(
          step, "Worker", "Worker-" + std::to_string(w), "Compute");
      logger.AddInfo(work, "MessagesSent", Json(int64_t{1000 + w}));
      if (w == 0) {
        Json payload;
        payload["escape"] = "line\nbreak \"quoted\"";
        payload["ratio"] = 0.125;
        payload["unicode"] = "\xe4\xb8\xad";
        logger.AddInfo(work, "Payload", std::move(payload));
      }
      now += SimTime::Micros(250);
      logger.EndOperation(work);
    }
    logger.EndOperation(step);
  }
  logger.EndOperation(root);
  return logger.TakeRecords();
}

std::string SerializeAll(const std::vector<LogRecord>& records) {
  std::string out;
  for (const LogRecord& r : records) {
    r.AppendJsonl(out);
    out += '\n';
  }
  return out;
}

TEST(JsonlCodecTest, ParallelReadIsByteIdenticalAcrossHostThreadCounts) {
  // ~4200 records: comfortably more than one ChunkedGrain chunk.
  std::vector<LogRecord> records = MakeMixedLog(300);
  ASSERT_GT(records.size(), 4000u);
  const std::string path = FreshPath("parallel");
  ASSERT_TRUE(WriteLogRecords(path, records).ok());

  const std::string expected = SerializeAll(records);
  PoolSizeGuard guard;
  for (int threads : {1, 2, 8}) {
    ThreadPool::Global().Resize(threads);
    auto read = ReadLogRecords(path);
    ASSERT_TRUE(read.ok()) << read.status();
    ASSERT_EQ(read->size(), records.size()) << threads << " threads";
    EXPECT_TRUE(SerializeAll(*read) == expected)
        << "parallel read diverges at " << threads << " host threads";
  }
}

TEST(JsonlCodecTest, ParallelReadSkipsBlankLinesAndFinalUnterminatedLine) {
  const std::string path = FreshPath("blanks");
  std::vector<LogRecord> records = MakeMixedLog(2);
  std::ofstream out(path, std::ios::binary);
  out << "\n   \n\t\r\n";
  std::string body;
  for (const LogRecord& r : records) {
    r.AppendJsonl(body);
    body += '\n';
  }
  out << body << "\n";
  // Final line with no trailing newline must still be read.
  std::string last;
  records.front().AppendJsonl(last);
  out << last;
  out.close();

  auto read = ReadLogRecords(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->size(), records.size() + 1);
  ExpectSameRecord(read->back(), records.front(), "unterminated last line");
}

TEST(JsonlCodecTest, CorruptLineErrorIsIdenticalAcrossThreadCounts) {
  const std::string path = FreshPath("corrupt");
  std::vector<LogRecord> records = MakeMixedLog(60);
  std::string body;
  size_t line = 0;
  const size_t kFirstBad = 351, kSecondBad = 713;  // 1-based line numbers
  for (const LogRecord& r : records) {
    ++line;
    if (line == kFirstBad || line == kSecondBad) {
      body += "{this is not json\n";
      ++line;
    }
    r.AppendJsonl(body);
    body += '\n';
  }
  std::ofstream(path, std::ios::binary) << body;

  PoolSizeGuard guard;
  ThreadPool::Global().Resize(1);
  auto serial = ReadLogRecords(path);
  ASSERT_FALSE(serial.ok());
  // The earliest bad line wins, with the path:line prefix.
  EXPECT_NE(serial.status().ToString().find(":351:"), std::string::npos)
      << serial.status();
  for (int threads : {2, 8}) {
    ThreadPool::Global().Resize(threads);
    auto parallel = ReadLogRecords(path);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString())
        << threads << " threads";
  }
}

TEST(JsonlCodecTest, ReadAcceptsNonCanonicalLinesViaFallback) {
  const std::string path = FreshPath("fallback");
  std::ofstream(path, std::ios::binary)
      << R"({"t":3,"seq":2,"op":1,"kind":"end"})" << "\n"
      << R"({"kind": "info", "name": "X", "op": 1, "seq": 5, "t": 9, "value": [1, 2]})"
      << "\n";
  auto read = ReadLogRecords(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0].kind, LogRecord::Kind::kEndOp);
  EXPECT_EQ((*read)[0].seq, 2u);
  EXPECT_EQ((*read)[1].info_value.size(), 2u);
}

TEST(JsonlCodecTest, MissingFileIsNotFound) {
  auto read = ReadLogRecords(FreshPath("missing"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound) << read.status();
}

}  // namespace
}  // namespace granula::core
