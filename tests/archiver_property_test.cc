// Property-based tests of the archiver over randomly generated operation
// trees and randomly mutated log streams. For any valid log, the archiver
// must reconstruct exactly the logged tree; under record loss and
// reordering it must degrade predictably (repair, never crash, never
// corrupt structure).

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// Random operation-tree generator. The model registers the generic types
// "Op0".."Op<depth>" per level, so every generated node is modeled.
struct RandomTree {
  std::vector<LogRecord> records;
  uint64_t node_count = 0;
  PerformanceModel model{"random"};
};

void EmitSubtree(JobLogger& logger, Rng& rng, SimTime& now, OpId parent,
                 int level, int max_level, uint64_t* counter,
                 uint64_t* node_count) {
  int children = level >= max_level
                     ? 0
                     : static_cast<int>(rng.NextBounded(4));
  OpId op = logger.StartOperation(
      parent, "Actor" + std::to_string(level), "",
      "Op" + std::to_string(level),
      "Op" + std::to_string(level) + "-" + std::to_string((*counter)++));
  ++*node_count;
  if (rng.NextBool(0.5)) {
    logger.AddInfo(op, "Payload", Json(static_cast<int64_t>(rng.Next() % 1000)));
  }
  for (int i = 0; i < children; ++i) {
    now += SimTime::Millis(static_cast<int64_t>(rng.NextBounded(50)));
    EmitSubtree(logger, rng, now, op, level + 1, max_level, counter,
                node_count);
  }
  now += SimTime::Millis(static_cast<int64_t>(rng.NextBounded(50)) + 1);
  logger.EndOperation(op);
}

RandomTree MakeRandomTree(uint64_t seed, int max_level = 4) {
  RandomTree tree;
  Rng rng(seed);
  SimTime now;
  JobLogger logger([&now] { return now; });
  uint64_t counter = 0;
  EmitSubtree(logger, rng, now, kNoOp, 0, max_level, &counter,
              &tree.node_count);
  tree.records = logger.TakeRecords();

  (void)tree.model.AddRoot("Actor0", "Op0");
  for (int level = 1; level <= max_level; ++level) {
    (void)tree.model.AddOperation("Actor" + std::to_string(level),
                                  "Op" + std::to_string(level),
                                  "Actor" + std::to_string(level - 1),
                                  "Op" + std::to_string(level - 1));
  }
  return tree;
}

class ArchiverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArchiverPropertyTest, ReconstructsEveryLoggedOperation) {
  RandomTree tree = MakeRandomTree(GetParam());
  auto archive = Archiver().Build(tree.model, tree.records, {}, {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_EQ(archive->OperationCount(), tree.node_count);

  // Structural invariants: children start no earlier than parents and
  // parents end no earlier than children (EndOp is emitted after the
  // whole subtree).
  archive->root->Visit([](const ArchivedOperation& op) {
    for (const auto& child : op.children) {
      EXPECT_GE(child->StartTime(), op.StartTime());
      EXPECT_LE(child->EndTime(), op.EndTime());
    }
  });
}

TEST_P(ArchiverPropertyTest, ShuffleInvariant) {
  RandomTree tree = MakeRandomTree(GetParam());
  auto ordered = Archiver().Build(tree.model, tree.records, {}, {});
  ASSERT_TRUE(ordered.ok());
  Rng rng(GetParam() * 31 + 7);
  std::vector<LogRecord> shuffled = tree.records;
  rng.Shuffle(shuffled);
  auto from_shuffled = Archiver().Build(tree.model, shuffled, {}, {});
  ASSERT_TRUE(from_shuffled.ok());
  EXPECT_EQ(from_shuffled->ToJsonString(), ordered->ToJsonString());
}

TEST_P(ArchiverPropertyTest, SurvivesDroppedEndRecords) {
  RandomTree tree = MakeRandomTree(GetParam());
  Rng rng(GetParam() + 99);
  std::vector<LogRecord> damaged;
  for (const LogRecord& r : tree.records) {
    // Drop ~30% of EndOp records (but never StartOps).
    if (r.kind == LogRecord::Kind::kEndOp && r.op_id != 1 &&
        rng.NextBool(0.3)) {
      continue;
    }
    damaged.push_back(r);
  }
  auto archive = Archiver().Build(tree.model, damaged, {}, {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_EQ(archive->OperationCount(), tree.node_count);
  // Every operation still has an EndTime (logged or repaired), and
  // durations are non-negative.
  archive->root->Visit([](const ArchivedOperation& op) {
    EXPECT_TRUE(op.HasInfo("EndTime"));
    EXPECT_GE(op.Duration().nanos(), 0);
  });
}

TEST_P(ArchiverPropertyTest, JsonRoundtripIsExact) {
  RandomTree tree = MakeRandomTree(GetParam());
  auto archive = Archiver().Build(tree.model, tree.records, {},
                                  {{"seed", std::to_string(GetParam())}});
  ASSERT_TRUE(archive.ok());
  std::string json = archive->ToJsonString();
  auto restored = PerformanceArchive::FromJsonString(json);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->ToJsonString(), json);
}

TEST_P(ArchiverPropertyTest, LevelTrimmingNeverGrowsTheArchive) {
  RandomTree tree = MakeRandomTree(GetParam());
  uint64_t previous = UINT64_MAX;
  for (int level = tree.model.max_level(); level >= 1; --level) {
    Archiver::Options options;
    options.max_level = level;
    auto archive = Archiver(options).Build(tree.model, tree.records, {}, {});
    ASSERT_TRUE(archive.ok());
    EXPECT_LE(archive->OperationCount(), previous);
    previous = archive->OperationCount();
  }
  EXPECT_EQ(previous, 1u);  // level 1 = the root alone
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiverPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(ArchiverFuzzTest, GarbageParentIdsNeverCrash) {
  // Parent ids pointing at nonexistent ops must yield a clean error (more
  // than one root) or a valid archive — never UB.
  Rng rng(4242);
  for (int round = 0; round < 50; ++round) {
    RandomTree tree = MakeRandomTree(1000 + static_cast<uint64_t>(round), 3);
    std::vector<LogRecord> mutated = tree.records;
    for (LogRecord& r : mutated) {
      if (r.kind == LogRecord::Kind::kStartOp && r.parent_id != kNoOp &&
          rng.NextBool(0.2)) {
        r.parent_id = rng.Next() % 100;  // possibly dangling
      }
    }
    auto archive = Archiver().Build(tree.model, mutated, {}, {});
    if (archive.ok()) {
      EXPECT_GE(archive->OperationCount(), 1u);
    } else {
      EXPECT_EQ(archive.status().code(), StatusCode::kCorruption);
    }
  }
}

}  // namespace
}  // namespace granula::core
