#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace granula::graph {
namespace {

TEST(DeterministicShapesTest, Path) {
  Graph g = MakePath(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(CountConnectedComponents(g), 1u);
  EXPECT_EQ(Eccentricity(g, 0), 4u);
  EXPECT_EQ(Eccentricity(g, 2), 2u);
}

TEST(DeterministicShapesTest, Cycle) {
  Graph g = MakeCycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(Eccentricity(g, 0), 3u);
}

TEST(DeterministicShapesTest, Star) {
  Graph g = MakeStar(10);
  EXPECT_EQ(g.num_edges(), 9u);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max, 9u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(Eccentricity(g, 0), 1u);
  EXPECT_EQ(Eccentricity(g, 1), 2u);
}

TEST(DeterministicShapesTest, Complete) {
  Graph g = MakeComplete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(Eccentricity(g, 3), 1u);
}

TEST(DeterministicShapesTest, BinaryTree) {
  Graph g = MakeBinaryTree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(CountConnectedComponents(g), 1u);
  EXPECT_EQ(Eccentricity(g, 0), 2u);
}

TEST(DeterministicShapesTest, Grid) {
  Graph g = MakeGrid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_EQ(Eccentricity(g, 0), 5u);          // manhattan corner-to-corner
}

TEST(DatagenTest, RespectsSizeParameters) {
  DatagenConfig config;
  config.num_vertices = 2000;
  config.avg_degree = 10.0;
  config.seed = 7;
  auto g = GenerateDatagen(config);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_vertices(), 2000u);
  // m = n * avg_degree / 2, give or take rejected self-loops.
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 10000.0, 500.0);
  EXPECT_FALSE(g->directed());
}

TEST(DatagenTest, DeterministicForSeed) {
  DatagenConfig config;
  config.num_vertices = 500;
  config.seed = 3;
  auto a = GenerateDatagen(config);
  auto b = GenerateDatagen(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edges(), b->edges());

  config.seed = 4;
  auto c = GenerateDatagen(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->edges(), c->edges());
}

TEST(DatagenTest, PowerLawSkew) {
  DatagenConfig config;
  config.num_vertices = 5000;
  config.avg_degree = 12.0;
  config.seed = 11;
  auto g = GenerateDatagen(config);
  ASSERT_TRUE(g.ok());
  DegreeStats stats = ComputeDegreeStats(*g);
  // A power-law graph has hubs far above the mean and a high Gini.
  EXPECT_GT(static_cast<double>(stats.max), 10.0 * stats.mean);
  EXPECT_GT(stats.gini, 0.4);
}

TEST(DatagenTest, SmallWorldDiameter) {
  DatagenConfig config;
  config.num_vertices = 5000;
  config.avg_degree = 12.0;
  config.seed = 13;
  auto g = GenerateDatagen(config);
  ASSERT_TRUE(g.ok());
  // BFS from vertex 0 must reach the bulk of the graph within a few hops —
  // the structure behind the paper's handful of supersteps.
  EXPECT_LE(Eccentricity(*g, 0), 10u);
}

TEST(DatagenTest, RejectsBadConfig) {
  DatagenConfig config;
  config.num_vertices = 0;
  EXPECT_FALSE(GenerateDatagen(config).ok());
  config.num_vertices = 10;
  config.avg_degree = -1;
  EXPECT_FALSE(GenerateDatagen(config).ok());
  config.avg_degree = 5;
  config.community_edge_fraction = 1.5;
  EXPECT_FALSE(GenerateDatagen(config).ok());
}

TEST(RmatTest, SizeAndDeterminism) {
  RmatConfig config;
  config.scale = 10;
  config.edge_factor = 8.0;
  auto g = GenerateRmat(config);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 1024u);
  EXPECT_EQ(g->num_edges(), 8192u);
  auto g2 = GenerateRmat(config);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g->edges(), g2->edges());
}

TEST(RmatTest, SkewTowardLowIds) {
  RmatConfig config;
  config.scale = 12;
  config.edge_factor = 8.0;
  auto g = GenerateRmat(config);
  ASSERT_TRUE(g.ok());
  uint64_t low = 0;
  for (const Edge& e : g->edges()) {
    if (e.src < g->num_vertices() / 2) ++low;
  }
  // With a=0.57, b=0.19: P(src in low half) ≈ 0.76 per bit.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(g->num_edges()),
            0.65);
}

TEST(RmatTest, RejectsBadConfig) {
  RmatConfig config;
  config.scale = 0;
  EXPECT_FALSE(GenerateRmat(config).ok());
  config.scale = 8;
  config.a = 0.9;
  config.b = 0.9;
  EXPECT_FALSE(GenerateRmat(config).ok());
}

TEST(UniformTest, SizeAndNoSelfLoops) {
  auto g = GenerateUniform(100, 1000, 5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1000u);
  for (const Edge& e : g->edges()) EXPECT_NE(e.src, e.dst);
}

TEST(UniformTest, RejectsTinyVertexCount) {
  EXPECT_FALSE(GenerateUniform(1, 10, 0).ok());
}

}  // namespace
}  // namespace granula::graph
