#include "granula/analysis/attribution.h"

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// Root(0..10) with PhaseA(0..4) and PhaseB(4..10); node339 burns 2 CPU-s/s
// during PhaseA, node340 burns 5 CPU-s/s during PhaseB.
PerformanceArchive MakeArchive(double interval = 1.0) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  OpId a = logger.StartOperation(root, "Job", "job", "PhaseA", "PhaseA");
  OpId sub =
      logger.StartOperation(a, "Worker", "Worker-1", "Sub", "Sub-1");
  now = SimTime::Seconds(4);
  logger.EndOperation(sub);
  logger.EndOperation(a);
  OpId b = logger.StartOperation(root, "Job", "job", "PhaseB", "PhaseB");
  now = SimTime::Seconds(10);
  logger.EndOperation(b);
  logger.EndOperation(root);

  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "PhaseA", "Job", "Root");
  (void)model.AddOperation("Job", "PhaseB", "Job", "Root");
  (void)model.AddOperation("Worker", "Sub", "Job", "PhaseA");

  std::vector<EnvironmentRecord> env;
  for (double t = interval; t <= 10.0 + 1e-9; t += interval) {
    for (uint32_t node = 0; node < 2; ++node) {
      EnvironmentRecord r;
      r.node = node;
      r.hostname = node == 0 ? "node339" : "node340";
      r.time_seconds = t;
      if (node == 0) {
        r.cpu_seconds_per_second = t <= 4.0 ? 2.0 : 0.0;
      } else {
        r.cpu_seconds_per_second = t > 4.0 ? 5.0 : 0.0;
      }
      env.push_back(r);
    }
  }
  auto archive =
      Archiver().Build(model, logger.records(), std::move(env), {});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

TEST(AttributionTest, PhaseCpuSecondsIntegratesWindows) {
  auto phase_cpu = PhaseCpuSeconds(MakeArchive());
  ASSERT_EQ(phase_cpu.size(), 2u);
  EXPECT_DOUBLE_EQ(phase_cpu.at("PhaseA"), 8.0);   // 2 CPU-s/s x 4s
  EXPECT_DOUBLE_EQ(phase_cpu.at("PhaseB"), 30.0);  // 5 CPU-s/s x 6s
}

TEST(AttributionTest, PerNodeBreakdownAndMean) {
  auto usages = AttributeCpu(MakeArchive(), AttributionOptions{});
  ASSERT_EQ(usages.size(), 2u);
  const OperationResourceUsage& a = usages[0];
  EXPECT_EQ(a.path, "Root/PhaseA");
  EXPECT_DOUBLE_EQ(a.duration_seconds, 4.0);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 8.0);
  EXPECT_DOUBLE_EQ(a.mean_cpu, 2.0);
  EXPECT_DOUBLE_EQ(a.per_node_cpu.at("node339"), 8.0);
  EXPECT_EQ(a.per_node_cpu.count("node340"), 1u);
  EXPECT_DOUBLE_EQ(a.per_node_cpu.at("node340"), 0.0);
}

TEST(AttributionTest, DepthTwoIncludesNestedOperations) {
  AttributionOptions options;
  options.max_depth = 2;
  auto usages = AttributeCpu(MakeArchive(), options);
  ASSERT_EQ(usages.size(), 3u);
  bool found = false;
  for (const auto& usage : usages) {
    if (usage.path == "Root/PhaseA/Sub-1") {
      found = true;
      EXPECT_DOUBLE_EQ(usage.cpu_seconds, 8.0);  // same window as PhaseA
    }
  }
  EXPECT_TRUE(found);
}

TEST(AttributionTest, RespectsSamplingInterval) {
  // 0.5s sampling: twice the samples, same integrated CPU-seconds.
  auto phase_cpu = PhaseCpuSeconds(MakeArchive(0.5));
  EXPECT_DOUBLE_EQ(phase_cpu.at("PhaseA"), 8.0);
  EXPECT_DOUBLE_EQ(phase_cpu.at("PhaseB"), 30.0);
}

TEST(AttributionTest, EmptyInputs) {
  PerformanceArchive empty;
  EXPECT_TRUE(AttributeCpu(empty, AttributionOptions{}).empty());
  PerformanceArchive archive = MakeArchive();
  archive.environment.clear();
  auto usages = AttributeCpu(archive, AttributionOptions{});
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_DOUBLE_EQ(usages[0].cpu_seconds, 0.0);
}

}  // namespace
}  // namespace granula::core
