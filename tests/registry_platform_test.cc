#include "platforms/platform.h"
#include "platforms/registry.h"

#include <gtest/gtest.h>

#include "sim/resources.h"

namespace granula::platform {
namespace {

TEST(RegistryTest, SevenPlatformsInPaperOrder) {
  const auto& registry = PlatformRegistry();
  ASSERT_EQ(registry.size(), 7u);
  EXPECT_EQ(registry[0].name, "Giraph");
  EXPECT_EQ(registry[1].name, "PowerGraph");
  EXPECT_EQ(registry[6].name, "Hadoop");
}

TEST(RegistryTest, CharacteristicsMatchTable1) {
  const auto& registry = PlatformRegistry();
  EXPECT_EQ(registry[0].programming_model, "Pregel");
  EXPECT_EQ(registry[0].provisioning, "Yarn");
  EXPECT_EQ(registry[0].file_system, "HDFS");
  EXPECT_EQ(registry[1].programming_model, "GAS");
  EXPECT_EQ(registry[1].language, "C++");
  EXPECT_FALSE(registry[4].distributed);  // OpenG
  EXPECT_FALSE(registry[5].distributed);  // TOTEM
}

TEST(RegistryTest, FiveEnginesImplemented) {
  int implemented = 0;
  for (const auto& p : PlatformRegistry()) {
    if (p.implemented_here) ++implemented;
  }
  EXPECT_EQ(implemented, 5);  // Giraph, PowerGraph, GraphMat, PGX.D, Hadoop
}

TEST(RegistryTest, TableRendersEveryRow) {
  std::string table = RenderPlatformTable();
  for (const auto& p : PlatformRegistry()) {
    EXPECT_NE(table.find(p.name), std::string::npos) << p.name;
  }
  EXPECT_NE(table.find("Provisioning"), std::string::npos);
}

TEST(RunOnThreadsTest, SplitsWorkAcrossCores) {
  sim::Simulator sim;
  sim::Cpu cpu(&sim, 8);
  sim.Spawn([](sim::Simulator& s, sim::Cpu& c) -> sim::Task<> {
    co_await RunOnThreads(&s, &c, SimTime::Seconds(8), 4);
  }(sim, cpu));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);  // 8s over 4 threads
  EXPECT_DOUBLE_EQ(cpu.BusySeconds(), 8.0);
}

TEST(RunOnThreadsTest, ClampsToCoreCount) {
  sim::Simulator sim;
  sim::Cpu cpu(&sim, 2);
  sim.Spawn([](sim::Simulator& s, sim::Cpu& c) -> sim::Task<> {
    co_await RunOnThreads(&s, &c, SimTime::Seconds(8), 16);
  }(sim, cpu));
  sim.Run();
  // Clamped to 2 threads of 4s each.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 4.0);
}

TEST(RunOnThreadsTest, ZeroWorkReturnsImmediately) {
  sim::Simulator sim;
  sim::Cpu cpu(&sim, 2);
  sim.Spawn([](sim::Simulator& s, sim::Cpu& c) -> sim::Task<> {
    co_await RunOnThreads(&s, &c, SimTime(), 4);
  }(sim, cpu));
  sim.Run();
  EXPECT_EQ(sim.Now(), SimTime());
}

TEST(CpuSpeedFactorTest, SlowCpuTakesLonger) {
  sim::Simulator sim;
  sim::Cpu fast(&sim, 1, 1.0);
  sim::Cpu slow(&sim, 1, 0.5);
  double fast_done = 0, slow_done = 0;
  sim.Spawn([](sim::Simulator& s, sim::Cpu& c, double& done) -> sim::Task<> {
    co_await c.Run(SimTime::Seconds(2));
    done = s.Now().seconds();
  }(sim, fast, fast_done));
  sim.Spawn([](sim::Simulator& s, sim::Cpu& c, double& done) -> sim::Task<> {
    co_await c.Run(SimTime::Seconds(2));
    done = s.Now().seconds();
  }(sim, slow, slow_done));
  sim.Run();
  EXPECT_DOUBLE_EQ(fast_done, 2.0);
  EXPECT_DOUBLE_EQ(slow_done, 4.0);
  // The slow node is busy longer: the monitor sees exactly that.
  EXPECT_DOUBLE_EQ(slow.BusySeconds(), 4.0);
}

TEST(ToEnvironmentRecordsTest, ConvertsAllFields) {
  std::vector<cluster::UtilizationSample> samples(1);
  samples[0].node = 3;
  samples[0].hostname = "node342";
  samples[0].time_seconds = 7.5;
  samples[0].cpu_seconds_per_second = 12.0;
  samples[0].net_bytes_per_second = 1000.0;
  samples[0].disk_bytes_per_second = 2000.0;
  auto records = ToEnvironmentRecords(samples);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].node, 3u);
  EXPECT_EQ(records[0].hostname, "node342");
  EXPECT_DOUBLE_EQ(records[0].time_seconds, 7.5);
  EXPECT_DOUBLE_EQ(records[0].cpu_seconds_per_second, 12.0);
  EXPECT_DOUBLE_EQ(records[0].net_bytes_per_second, 1000.0);
  EXPECT_DOUBLE_EQ(records[0].disk_bytes_per_second, 2000.0);
}

}  // namespace
}  // namespace granula::platform
