#include "granula/archive/archive.h"

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// Builds a realistic archive through the archiver so queries and JSON
// roundtrips exercise production shapes.
PerformanceArchive MakeArchive() {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "giraph", "Root");
  OpId load = logger.StartOperation(root, "Job", "giraph", "Load", "Load");
  for (int w = 1; w <= 3; ++w) {
    OpId step = logger.StartOperation(
        load, "Worker", "Worker-" + std::to_string(w), "Read",
        "Read-" + std::to_string(w));
    logger.AddInfo(step, "Bytes", Json(int64_t{1000 * w}));
    now = SimTime::Seconds(w);
    logger.EndOperation(step);
  }
  now = SimTime::Seconds(3);
  logger.EndOperation(load);
  OpId process =
      logger.StartOperation(root, "Job", "giraph", "Process", "Process");
  now = SimTime::Seconds(9);
  logger.EndOperation(process);
  logger.EndOperation(root);

  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "Load", "Job", "Root");
  (void)model.AddOperation("Job", "Process", "Job", "Root");
  (void)model.AddOperation("Worker", "Read", "Job", "Load");
  (void)model.AddRule("Job", "Load",
                      MakeChildAggregateRule("TotalBytes", Aggregate::kSum,
                                             "Bytes", "Read"));

  EnvironmentRecord env;
  env.node = 0;
  env.hostname = "node339";
  env.time_seconds = 1.0;
  env.cpu_seconds_per_second = 4.0;

  auto archive = Archiver().Build(model, logger.records(), {env},
                                  {{"platform", "Giraph"}, {"algo", "BFS"}});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

TEST(ArchiveQueryTest, FindByPath) {
  PerformanceArchive archive = MakeArchive();
  EXPECT_NE(archive.FindByPath("Root"), nullptr);
  EXPECT_NE(archive.FindByPath("Root/Load"), nullptr);
  const ArchivedOperation* read = archive.FindByPath("Root/Load/Read-2");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->actor_id, "Worker-2");
  EXPECT_EQ(archive.FindByPath("Root/Nope"), nullptr);
  EXPECT_EQ(archive.FindByPath("Wrong"), nullptr);
}

TEST(ArchiveQueryTest, FindOperationsWithWildcards) {
  PerformanceArchive archive = MakeArchive();
  EXPECT_EQ(archive.FindOperations("Worker", "Read").size(), 3u);
  EXPECT_EQ(archive.FindOperations("Worker", "").size(), 3u);
  EXPECT_EQ(archive.FindOperations("", "").size(), 6u);
  EXPECT_EQ(archive.FindOperations("Nobody", "").size(), 0u);
}

TEST(ArchiveQueryTest, AggregateRuleRan) {
  PerformanceArchive archive = MakeArchive();
  const ArchivedOperation* load = archive.FindByPath("Root/Load");
  ASSERT_NE(load, nullptr);
  EXPECT_DOUBLE_EQ(load->InfoNumber("TotalBytes"), 6000.0);
}

TEST(ArchiveQueryTest, TopLevelBreakdown) {
  PerformanceArchive archive = MakeArchive();
  auto breakdown = archive.TopLevelBreakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_NEAR(breakdown.at("Load"), 3.0 / 9.0, 1e-12);
  EXPECT_NEAR(breakdown.at("Process"), 6.0 / 9.0, 1e-12);
}

TEST(ArchiveJsonTest, RoundtripPreservesEverything) {
  PerformanceArchive archive = MakeArchive();
  std::string json = archive.ToJsonString();
  auto restored = PerformanceArchive::FromJsonString(json);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->ToJsonString(), json);
  EXPECT_EQ(restored->job_metadata.at("platform"), "Giraph");
  EXPECT_EQ(restored->OperationCount(), archive.OperationCount());
  ASSERT_EQ(restored->environment.size(), 1u);
  EXPECT_DOUBLE_EQ(restored->environment[0].cpu_seconds_per_second, 4.0);
  const ArchivedOperation* read = restored->FindByPath("Root/Load/Read-3");
  ASSERT_NE(read, nullptr);
  EXPECT_DOUBLE_EQ(read->InfoNumber("Bytes"), 3000.0);
  EXPECT_EQ(read->FindInfo("Bytes")->source, "platform log");
}

TEST(ArchiveJsonTest, CompactAndPrettyAgree) {
  PerformanceArchive archive = MakeArchive();
  auto compact = PerformanceArchive::FromJsonString(archive.ToJsonString(0));
  auto pretty = PerformanceArchive::FromJsonString(archive.ToJsonString(4));
  ASSERT_TRUE(compact.ok());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(compact->ToJsonString(), pretty->ToJsonString());
}

TEST(ArchiveJsonTest, RejectsGarbage) {
  EXPECT_FALSE(PerformanceArchive::FromJsonString("not json").ok());
  EXPECT_FALSE(PerformanceArchive::FromJsonString("{\"root\": 7}").ok());
}

TEST(ArchivedOperationTest, DisplayNameFallsBackToTypes) {
  ArchivedOperation op;
  op.actor_type = "Worker";
  op.mission_type = "Step";
  EXPECT_EQ(op.DisplayName(), "Worker @ Step");
  op.actor_id = "Worker-7";
  op.mission_id = "Step-3";
  EXPECT_EQ(op.DisplayName(), "Worker-7 @ Step-3");
  EXPECT_EQ(op.TypeKey(), "Worker@Step");
}

TEST(ArchivedOperationTest, InfoNumberFallbacks) {
  ArchivedOperation op;
  op.SetInfo("str", Json("hello"), "x");
  op.SetInfo("num", Json(2.5), "x");
  EXPECT_DOUBLE_EQ(op.InfoNumber("num"), 2.5);
  EXPECT_DOUBLE_EQ(op.InfoNumber("str", -1), -1.0);
  EXPECT_DOUBLE_EQ(op.InfoNumber("missing", -2), -2.0);
  EXPECT_TRUE(op.HasInfo("str"));
  EXPECT_FALSE(op.HasInfo("missing"));
}

TEST(ArchivedOperationTest, DurationZeroWhenTimesMissing) {
  ArchivedOperation op;
  EXPECT_EQ(op.Duration(), SimTime());
}

TEST(ArchivedOperationTest, VisitIsPreOrder) {
  PerformanceArchive archive = MakeArchive();
  std::vector<std::string> order;
  archive.root->Visit([&](const ArchivedOperation& op) {
    order.push_back(op.mission_id.empty() ? op.mission_type : op.mission_id);
  });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], "Root");
  EXPECT_EQ(order[1], "Load");
  EXPECT_EQ(order[2], "Read-1");
  EXPECT_EQ(order[5], "Process");
}

}  // namespace
}  // namespace granula::core
