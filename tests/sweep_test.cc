// The sweep driver behind `granula bench`: declarative config parsing,
// matrix expansion with deterministic run names, and the end-to-end
// contract that one sweep lands in one repository with byte-identical
// archives regardless of GRANULA_HOST_THREADS.

#include "granula/bench/sweep.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/thread_pool.h"
#include "granula/analysis/comparative.h"
#include "granula/archive/repository.h"

namespace granula::bench {
namespace {

Json ParseJson(const std::string& text) {
  Result<Json> json = Json::Parse(text);
  EXPECT_TRUE(json.ok()) << json.status();
  return json.ok() ? *json : Json();
}

std::string TempDir(const std::string& name) {
  std::string path = testing::TempDir() + "/sweep_" + name;
  std::filesystem::remove_all(path);
  return path;
}

constexpr const char* kSmallConfig = R"({
  "platforms": ["giraph", "pgxd"],
  "algorithms": ["BFS", "PageRank"],
  "graphs": ["uniform:300,1200"],
  "nodes": [4],
  "iterations": 5
})";

// ------------------------------------------------------- config parsing ----

TEST(SweepSpecTest, ParsesTheFullConfigForm) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(R"({
    "platforms": ["giraph", "PGX.D"],
    "algorithms": "wcc",
    "graphs": ["uniform:300,1200", "uniform:600,2400"],
    "nodes": [2, 4],
    "faults": [{"name": "crash1", "spec": "crash:1:1"}],
    "iterations": 7,
    "source": 3,
    "max_attempts": 5,
    "checkpoint_interval": 1,
    "model_level": 2
  })"));
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->platforms, (std::vector<std::string>{"giraph", "PGX.D"}));
  EXPECT_EQ(spec->algorithms, std::vector<std::string>{"wcc"});
  EXPECT_EQ(spec->graphs.size(), 2u);
  EXPECT_EQ(spec->node_counts, (std::vector<uint32_t>{2, 4}));
  ASSERT_EQ(spec->faults.size(), 1u);
  EXPECT_EQ(spec->faults[0].name, "crash1");
  EXPECT_EQ(spec->faults[0].spec, "crash:1:1");
  EXPECT_EQ(spec->iterations, 7u);
  EXPECT_EQ(spec->source, 3);
  EXPECT_EQ(spec->max_attempts, 5u);
  EXPECT_EQ(spec->checkpoint_interval, 1u);
  EXPECT_EQ(spec->model_level, 2);
}

TEST(SweepSpecTest, UnknownKeyIsRejected) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(
      R"({"platforms": ["pgxd"], "algorithms": ["BFS"],
          "graphs": ["uniform:300,1200"], "platfroms": ["giraph"]})"));
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("platfroms"), std::string::npos);
}

TEST(SweepSpecTest, MissingRequiredAxisIsRejected) {
  Result<SweepSpec> spec = SweepSpec::FromJson(
      ParseJson(R"({"platforms": ["pgxd"], "algorithms": ["BFS"]})"));
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("graphs"), std::string::npos);
}

TEST(SweepSpecTest, NonPositiveNodeCountIsRejected) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(
      R"({"platforms": ["pgxd"], "algorithms": ["BFS"],
          "graphs": ["uniform:300,1200"], "nodes": [4, 0]})"));
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("nodes"), std::string::npos);
}

TEST(SweepSpecTest, FaultEntryWithoutNameIsRejected) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(
      R"({"platforms": ["pgxd"], "algorithms": ["BFS"],
          "graphs": ["uniform:300,1200"],
          "faults": [{"spec": "crash:1:1"}]})"));
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("name"), std::string::npos);
}

TEST(SweepSpecTest, FromJsonFileReportsParseErrorsWithThePath) {
  std::string path = testing::TempDir() + "/sweep_bad_config.json";
  std::ofstream(path) << "{not json";
  Result<SweepSpec> spec = SweepSpec::FromJsonFile(path);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find(path), std::string::npos);
}

// ----------------------------------------------------------- expansion ----

TEST(ExpandSweepTest, NamesAreDeterministicAndPlatformMajor) {
  SweepSpec spec;
  spec.platforms = {"giraph", "PGX.D"};  // any spelling resolves
  spec.algorithms = {"BFS", "pagerank"};
  spec.graphs = {"uniform:300,1200"};
  spec.node_counts = {4};
  Result<std::vector<SweepJob>> jobs = ExpandSweep(spec);
  ASSERT_TRUE(jobs.ok()) << jobs.status();
  ASSERT_EQ(jobs->size(), 4u);
  EXPECT_EQ((*jobs)[0].name, "giraph-bfs-uniform-300-1200-n4");
  EXPECT_EQ((*jobs)[1].name, "giraph-pagerank-uniform-300-1200-n4");
  EXPECT_EQ((*jobs)[2].name, "pgxd-bfs-uniform-300-1200-n4");
  EXPECT_EQ((*jobs)[3].name, "pgxd-pagerank-uniform-300-1200-n4");
  EXPECT_EQ((*jobs)[3].algorithm, "PageRank");
}

TEST(ExpandSweepTest, FaultAxisAppendsSuffixAndRetryPolicy) {
  SweepSpec spec;
  spec.platforms = {"giraph"};
  spec.algorithms = {"BFS"};
  spec.graphs = {"uniform:300,1200"};
  spec.node_counts = {4};
  spec.faults = {{"clean", ""}, {"crash1", "crash:1:1"}};
  spec.max_attempts = 6;
  Result<std::vector<SweepJob>> jobs = ExpandSweep(spec);
  ASSERT_TRUE(jobs.ok()) << jobs.status();
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ((*jobs)[0].name, "giraph-bfs-uniform-300-1200-n4-clean");
  EXPECT_EQ((*jobs)[1].name, "giraph-bfs-uniform-300-1200-n4-crash1");
  EXPECT_TRUE((*jobs)[0].faults.empty());
  EXPECT_EQ((*jobs)[1].faults.specs().size(), 1u);
  EXPECT_EQ((*jobs)[1].faults.retry.max_attempts, 6u);
}

TEST(ExpandSweepTest, BadAxisValuesFailBeforeAnythingRuns) {
  SweepSpec spec;
  spec.platforms = {"giraph"};
  spec.algorithms = {"BFS"};
  spec.graphs = {"uniform:300,1200"};

  SweepSpec bad_platform = spec;
  bad_platform.platforms = {"spark"};
  EXPECT_FALSE(ExpandSweep(bad_platform).ok());

  SweepSpec bad_algorithm = spec;
  bad_algorithm.algorithms = {"BFSS"};
  EXPECT_FALSE(ExpandSweep(bad_algorithm).ok());

  SweepSpec bad_fault = spec;
  bad_fault.faults = {{"boom", "crash:x:1"}};
  EXPECT_FALSE(ExpandSweep(bad_fault).ok());

  SweepSpec duplicate = spec;
  duplicate.platforms = {"giraph", "GIRAPH"};
  Result<std::vector<SweepJob>> jobs = ExpandSweep(duplicate);
  ASSERT_FALSE(jobs.ok());
  EXPECT_NE(jobs.status().message().find("duplicate"), std::string::npos);
}

// ---------------------------------------------------------- end to end ----

std::map<std::string, std::string> RepoFiles(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    // The repository index carries wall-clock save times; the determinism
    // contract is about the archive bodies.
    if (entry.path().filename() == "index.json") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    files[entry.path().filename().string()] = buffer.str();
  }
  return files;
}

TEST(RunSweepTest, SweepLandsInOneRepositoryWithMetadata) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(kSmallConfig));
  ASSERT_TRUE(spec.ok()) << spec.status();
  SweepOptions options;
  options.repo_dir = TempDir("e2e");
  Result<SweepResult> sweep = RunSweep(*spec, options);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  ASSERT_EQ(sweep->jobs.size(), 4u);
  EXPECT_TRUE(sweep->all_completed);
  EXPECT_EQ(sweep->archive_names,
            (std::vector<std::string>{"giraph-bfs-uniform-300-1200-n4",
                                      "giraph-pagerank-uniform-300-1200-n4",
                                      "pgxd-bfs-uniform-300-1200-n4",
                                      "pgxd-pagerank-uniform-300-1200-n4"}));
  for (const SweepJobSummary& job : sweep->jobs) {
    EXPECT_GT(job.total_seconds, 0) << job.name;
    EXPECT_GT(job.operations, 0u) << job.name;
  }

  core::ArchiveRepository repo(options.repo_dir);
  Result<std::vector<core::SweepEntry>> entries =
      core::LoadSweepEntries(repo);
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 4u);
  // List() sorts by name; bfs < pagerank, giraph < pgxd.
  EXPECT_EQ((*entries)[0].platform, "giraph");
  EXPECT_EQ((*entries)[0].algorithm, "BFS");
  EXPECT_EQ((*entries)[0].graph, "uniform:300,1200");
  EXPECT_EQ((*entries)[0].nodes, 4u);
  EXPECT_EQ((*entries)[0].graph_vertices, 300u);
  EXPECT_EQ((*entries)[3].platform, "pgxd");
  EXPECT_EQ((*entries)[3].algorithm, "PageRank");
}

TEST(RunSweepTest, RepositoryBytesAreIdenticalAcrossHostThreadCounts) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(kSmallConfig));
  ASSERT_TRUE(spec.ok()) << spec.status();

  int original_threads = ThreadPool::Global().num_threads();
  std::map<std::string, std::string> reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool::Global().Resize(threads);
    SweepOptions options;
    options.repo_dir = TempDir("threads_" + std::to_string(threads));
    Result<SweepResult> sweep = RunSweep(*spec, options);
    ASSERT_TRUE(sweep.ok()) << sweep.status();
    std::map<std::string, std::string> files = RepoFiles(options.repo_dir);
    EXPECT_EQ(files.size(), 4u);
    if (reference.empty()) {
      reference = std::move(files);
    } else {
      EXPECT_EQ(files, reference) << "archives differ at " << threads
                                  << " host threads";
    }
  }
  ThreadPool::Global().Resize(original_threads);
}

TEST(RunSweepTest, SequentialAndParallelProduceTheSameBytes) {
  Result<SweepSpec> spec = SweepSpec::FromJson(ParseJson(kSmallConfig));
  ASSERT_TRUE(spec.ok()) << spec.status();
  SweepOptions parallel;
  parallel.repo_dir = TempDir("par");
  SweepOptions sequential;
  sequential.repo_dir = TempDir("seq");
  sequential.parallel = false;
  ASSERT_TRUE(RunSweep(*spec, parallel).ok());
  ASSERT_TRUE(RunSweep(*spec, sequential).ok());
  EXPECT_EQ(RepoFiles(parallel.repo_dir), RepoFiles(sequential.repo_dir));
}

TEST(RunSweepTest, BadGraphSpecNamesTheGraph) {
  SweepSpec spec;
  spec.platforms = {"pgxd"};
  spec.algorithms = {"BFS"};
  spec.graphs = {"uniform:nope"};
  SweepOptions options;
  options.repo_dir = TempDir("badgraph");
  Result<SweepResult> sweep = RunSweep(spec, options);
  ASSERT_FALSE(sweep.ok());
  EXPECT_NE(sweep.status().message().find("uniform:nope"), std::string::npos);
}

}  // namespace
}  // namespace granula::bench
