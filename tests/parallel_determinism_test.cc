// The hard requirement behind host parallelism: GRANULA_HOST_THREADS must be
// a pure performance knob. For every engine, running the same job with 1, 2,
// and 8 host threads must produce byte-identical serialized archives and
// bit-identical vertex values. These tests sweep the global pool size inside
// one process and byte-compare the outputs.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

// Restores the process-wide pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : original_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::Global().Resize(original_); }

 private:
  int original_;
};

struct RunOutput {
  std::string archive_json;
  std::vector<double> vertex_values;
};

constexpr const char* kPlatformNames[] = {"Giraph", "PowerGraph", "GraphMat",
                                          "Pgxd"};

Result<JobResult> RunPlatform(int which, const graph::Graph& g,
                              const algo::AlgorithmSpec& spec) {
  cluster::ClusterConfig cluster;
  JobConfig job;
  switch (which) {
    case 0:
      return GiraphPlatform().Run(g, spec, cluster, job);
    case 1:
      return PowerGraphPlatform().Run(g, spec, cluster, job);
    case 2:
      return GraphMatPlatform().Run(g, spec, cluster, job);
    default:
      return PgxdPlatform().Run(g, spec, cluster, job);
  }
}

core::PerformanceModel ModelFor(int which) {
  switch (which) {
    case 0:
      return core::MakeGiraphModel();
    case 1:
      return core::MakePowerGraphModel();
    case 2:
      return core::MakeGraphMatModel();
    default:
      return core::MakePgxdModel();
  }
}

RunOutput CaptureRun(int which, algo::AlgorithmId id) {
  graph::DatagenConfig config;
  config.num_vertices = 2000;
  config.avg_degree = 8.0;
  config.seed = 11;
  auto g = graph::GenerateDatagen(config);
  EXPECT_TRUE(g.ok());

  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 1;
  if (id == algo::AlgorithmId::kPageRank) spec.max_iterations = 6;

  auto result = RunPlatform(which, *g, spec);
  EXPECT_TRUE(result.ok()) << result.status();

  auto archive =
      core::Archiver().Build(ModelFor(which), result->records,
                             std::move(result->environment), {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return RunOutput{archive->ToJsonString(), result->vertex_values};
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelDeterminism, ByteIdenticalAcrossHostThreadCounts) {
  auto [platform_index, algo_index] = GetParam();
  algo::AlgorithmId id = algo_index == 0 ? algo::AlgorithmId::kBfs
                                         : algo::AlgorithmId::kPageRank;
  PoolSizeGuard guard;
  ThreadPool::Global().Resize(1);
  RunOutput baseline = CaptureRun(platform_index, id);
  ASSERT_FALSE(baseline.archive_json.empty());
  ASSERT_FALSE(baseline.vertex_values.empty());

  for (int threads : {2, 8}) {
    ThreadPool::Global().Resize(threads);
    RunOutput out = CaptureRun(platform_index, id);
    // Byte-compare without dumping megabytes of JSON on mismatch.
    EXPECT_TRUE(out.archive_json == baseline.archive_json)
        << kPlatformNames[platform_index] << " archive diverges at "
        << threads << " host threads (sizes " << out.archive_json.size()
        << " vs " << baseline.archive_json.size() << ")";
    EXPECT_TRUE(out.vertex_values == baseline.vertex_values)
        << kPlatformNames[platform_index]
        << " vertex values diverge at " << threads << " host threads";
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kAlgoNames[] = {"Bfs", "PageRank"};
  return std::string(kPlatformNames[std::get<0>(info.param)]) + "_" +
         kAlgoNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, ParallelDeterminism,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 2)),
                         CaseName);

// Same property for repeated runs at a fixed, oversubscribed thread count —
// guards against accidental dependence on thread scheduling (as opposed to
// thread count).
TEST(ParallelDeterminismTest, RepeatedRunsIdenticalWhenOversubscribed) {
  PoolSizeGuard guard;
  ThreadPool::Global().Resize(8);
  RunOutput a = CaptureRun(/*which=*/0, algo::AlgorithmId::kBfs);
  RunOutput b = CaptureRun(/*which=*/0, algo::AlgorithmId::kBfs);
  EXPECT_TRUE(a.archive_json == b.archive_json);
  EXPECT_TRUE(a.vertex_values == b.vertex_values);
}

}  // namespace
}  // namespace granula::platform
