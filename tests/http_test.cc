#include "granula/serve/http.h"

#include <gtest/gtest.h>

#include <string>

namespace granula::serve {
namespace {

Result<bool> Parse(std::string_view buffer, HttpRequest* request) {
  size_t consumed = 0;
  return ParseHttpRequest(buffer, request, &consumed);
}

TEST(HttpParseTest, SimpleGet) {
  HttpRequest request;
  size_t consumed = 0;
  const std::string wire = "GET /archives HTTP/1.1\r\nHost: localhost\r\n\r\n";
  auto parsed = ParseHttpRequest(wire, &request, &consumed);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(*parsed);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/archives");
  ASSERT_EQ(request.segments.size(), 1u);
  EXPECT_EQ(request.segments[0], "archives");
  EXPECT_TRUE(request.query.empty());
  EXPECT_EQ(request.Header("Host"), "localhost");
  EXPECT_EQ(consumed, wire.size());
}

TEST(HttpParseTest, QueryStringDecoding) {
  HttpRequest request;
  auto parsed = Parse(
      "GET /archives?platform=giraph&since=100&label=a%20b+c HTTP/1.1\r\n"
      "\r\n",
      &request);
  ASSERT_TRUE(parsed.ok() && *parsed);
  EXPECT_EQ(request.path, "/archives");
  EXPECT_EQ(request.query.at("platform"), "giraph");
  EXPECT_EQ(request.query.at("since"), "100");
  EXPECT_EQ(request.query.at("label"), "a b c");
}

TEST(HttpParseTest, PathSegmentsPercentDecoded) {
  HttpRequest request;
  auto parsed = Parse(
      "GET /archives/run-1/subtree/GiraphJob/Process%20Graph HTTP/1.1\r\n"
      "\r\n",
      &request);
  ASSERT_TRUE(parsed.ok() && *parsed);
  ASSERT_EQ(request.segments.size(), 5u);
  EXPECT_EQ(request.segments[1], "run-1");
  EXPECT_EQ(request.segments[4], "Process Graph");
}

TEST(HttpParseTest, HeaderNamesCaseInsensitive) {
  HttpRequest request;
  auto parsed = Parse(
      "GET / HTTP/1.1\r\nIf-None-Match: \"abc\"\r\nACCEPT: text/json\r\n\r\n",
      &request);
  ASSERT_TRUE(parsed.ok() && *parsed);
  EXPECT_EQ(request.Header("if-none-match"), "\"abc\"");
  EXPECT_EQ(request.Header("If-None-Match"), "\"abc\"");
  EXPECT_EQ(request.Header("Accept"), "text/json");
  EXPECT_EQ(request.Header("absent", "fallback"), "fallback");
}

TEST(HttpParseTest, IncompleteRequestNeedsMoreBytes) {
  HttpRequest request;
  auto parsed = Parse("GET /archives HTTP/1.1\r\nHost: lo", &request);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(*parsed);
}

TEST(HttpParseTest, BodyFraming) {
  HttpRequest request;
  size_t consumed = 0;
  const std::string full =
      "GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello<next>";
  // Header complete but body short: not ready yet.
  auto partial = ParseHttpRequest(full.substr(0, full.size() - 9), &request,
                                  &consumed);
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(*partial);
  auto parsed = ParseHttpRequest(full, &request, &consumed);
  ASSERT_TRUE(parsed.ok() && *parsed);
  EXPECT_EQ(request.body, "hello");
  EXPECT_EQ(full.substr(consumed), "<next>");
}

TEST(HttpParseTest, PipelinedRequestsConsumeExactly) {
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  HttpRequest request;
  size_t consumed = 0;
  auto first = ParseHttpRequest(two, &request, &consumed);
  ASSERT_TRUE(first.ok() && *first);
  EXPECT_EQ(request.path, "/a");
  auto second = ParseHttpRequest(std::string_view(two).substr(consumed),
                                 &request, &consumed);
  ASSERT_TRUE(second.ok() && *second);
  EXPECT_EQ(request.path, "/b");
}

TEST(HttpParseTest, MalformedRequests) {
  HttpRequest request;
  EXPECT_FALSE(Parse("NONSENSE\r\n\r\n", &request).ok());
  EXPECT_FALSE(Parse("GET /x HTTP/2\r\n\r\n", &request).ok());
  EXPECT_FALSE(Parse("GET noslash HTTP/1.1\r\n\r\n", &request).ok());
  EXPECT_FALSE(Parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n", &request).ok());
  EXPECT_FALSE(
      Parse("GET /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n", &request).ok());
  EXPECT_FALSE(
      Parse("GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &request)
          .ok());
}

TEST(HttpParseTest, OversizedHeaderBlockRejected) {
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(kMaxHeaderBytes + 10, 'a');
  HttpRequest request;
  // Even without the terminator the parser bails instead of buffering
  // forever.
  EXPECT_FALSE(Parse(huge, &request).ok());
  huge += "\r\n\r\n";
  EXPECT_FALSE(Parse(huge, &request).ok());
}

TEST(HttpParseTest, OversizedBodyRejected) {
  HttpRequest request;
  auto parsed = Parse(
      "GET /x HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n", &request);
  EXPECT_FALSE(parsed.ok());
}

TEST(HttpSerializeTest, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  response.headers.emplace_back("ETag", "\"g1\"");
  const std::string wire = SerializeHttpResponse(response, true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("ETag: \"g1\"\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_TRUE(wire.size() >= 11 &&
              wire.compare(wire.size() - 11, 11, response.body) == 0);
}

TEST(HttpSerializeTest, HeadKeepsContentLengthDropsBody) {
  HttpResponse response;
  response.body = "0123456789";
  const std::string wire =
      SerializeHttpResponse(response, false, /*head_only=*/true);
  EXPECT_NE(wire.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");
}

TEST(HttpSerializeTest, ReasonPhrases) {
  EXPECT_EQ(HttpStatusReason(304), "Not Modified");
  EXPECT_EQ(HttpStatusReason(404), "Not Found");
  EXPECT_EQ(HttpStatusReason(408), "Request Timeout");
  EXPECT_EQ(HttpStatusReason(503), "Service Unavailable");
}

TEST(HttpUrlDecodeTest, MalformedEscapesKeptLiterally) {
  EXPECT_EQ(UrlDecode("a%2Fb"), "a/b");
  EXPECT_EQ(UrlDecode("a%2"), "a%2");
  EXPECT_EQ(UrlDecode("a%zz"), "a%zz");
  EXPECT_EQ(UrlDecode("%41+%42"), "A B");
}

}  // namespace
}  // namespace granula::serve
