#include "graph/io.h"

#include <algorithm>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace granula::graph {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, WriteReadRoundtripExactOnPath) {
  // A path visits vertices in id order, so first-appearance densification
  // reproduces the original ids exactly.
  Graph original = MakePath(30);
  std::string path = TempPath("path.e");
  ASSERT_TRUE(WriteEdgeListFile(original, path).ok());
  auto read = ReadEdgeListFile(path, /*directed=*/false);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->num_vertices(), original.num_vertices());
  EXPECT_EQ(read->edges(), original.edges());
  EXPECT_FALSE(read->directed());
}

TEST(GraphIoTest, RoundtripPreservesStructure) {
  // Densification may relabel, but the structure must survive: same
  // counts, same degree multiset, same component count.
  Graph original = MakeGrid(5, 5);
  std::string path = TempPath("grid.e");
  ASSERT_TRUE(WriteEdgeListFile(original, path).ok());
  auto read = ReadEdgeListFile(path, false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices(), original.num_vertices());
  EXPECT_EQ(read->num_edges(), original.num_edges());
  auto degree_multiset = [](const Graph& g) {
    std::vector<uint64_t> degree(g.num_vertices(), 0);
    for (const Edge& e : g.edges()) {
      ++degree[e.src];
      ++degree[e.dst];
    }
    std::sort(degree.begin(), degree.end());
    return degree;
  };
  EXPECT_EQ(degree_multiset(*read), degree_multiset(original));
}

TEST(GraphIoTest, WrittenBytesMatchSimulatedSize) {
  auto g = GenerateUniform(200, 800, 3);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("uniform.e");
  ASSERT_TRUE(WriteEdgeListFile(*g, path).ok());
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(file.good());
  EXPECT_EQ(static_cast<uint64_t>(file.tellg()), EdgeListFileBytes(*g));
}

TEST(GraphIoTest, ReadDensifiesSparseIds) {
  std::string path = TempPath("sparse.e");
  {
    std::ofstream file(path);
    file << "# a comment\n\n1000000 42\n42 7\n7 1000000\n";
  }
  auto g = ReadEdgeListFile(path, /*directed=*/true);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_vertices(), 3u);  // 1000000, 42, 7 densified
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->edges()[0], (Edge{0, 1}));
  EXPECT_EQ(g->edges()[1], (Edge{1, 2}));
  EXPECT_EQ(g->edges()[2], (Edge{2, 0}));
  EXPECT_TRUE(g->directed());
}

TEST(GraphIoTest, ReadRejectsMalformedLines) {
  std::string path = TempPath("bad.e");
  {
    std::ofstream file(path);
    file << "1 2\nnot numbers\n";
  }
  auto g = ReadEdgeListFile(path, false);
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
  EXPECT_NE(g.status().message().find(":2:"), std::string::npos);
}

TEST(GraphIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadEdgeListFile("/no/such/file.e", false).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(WriteEdgeListFile(MakePath(3), "/no/such/dir/x.e").code(),
            StatusCode::kIoError);
}

TEST(GraphIoTest, EmptyFileIsEmptyGraph) {
  std::string path = TempPath("empty.e");
  { std::ofstream file(path); }
  auto g = ReadEdgeListFile(path, false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(GraphIoTest, ValuesFileFormat) {
  std::string path = TempPath("values.txt");
  ASSERT_TRUE(WriteValuesFile({0.0, 2.5, 1e300}, path).ok());
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "0 0");
  std::getline(file, line);
  EXPECT_EQ(line, "1 2.5");
  std::getline(file, line);
  EXPECT_EQ(line.substr(0, 2), "2 ");
}

TEST(GraphIoTest, LargeRoundtripPreservesEverything) {
  auto g = GenerateDatagen([] {
    DatagenConfig config;
    config.num_vertices = 3000;
    config.avg_degree = 6.0;
    config.seed = 13;
    return config;
  }());
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("datagen.e");
  ASSERT_TRUE(WriteEdgeListFile(*g, path).ok());
  auto read = ReadEdgeListFile(path, false);
  ASSERT_TRUE(read.ok());
  // Vertex ids are already dense and appear in order, so the roundtrip is
  // exact (isolated vertices are the one lossy case, checked below).
  EXPECT_EQ(read->num_edges(), g->num_edges());
}

TEST(GraphIoTest, IsolatedVerticesAreDroppedOnRead) {
  // The text format cannot express vertices with no edges; document it.
  auto g = Graph::Create(5, {{0, 1}}, false);
  std::string path = TempPath("isolated.e");
  ASSERT_TRUE(WriteEdgeListFile(*g, path).ok());
  auto read = ReadEdgeListFile(path, false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices(), 2u);
}

}  // namespace
}  // namespace granula::graph
