#include "sim/resources.h"

#include <vector>

#include <gtest/gtest.h>

namespace granula::sim {
namespace {

Task<> Compute(Cpu& cpu, SimTime d) { co_await cpu.Run(d); }

TEST(CpuTest, SingleTaskBusyTime) {
  Simulator sim;
  Cpu cpu(&sim, 4);
  sim.Spawn(Compute(cpu, SimTime::Seconds(2)));
  sim.Run();
  EXPECT_DOUBLE_EQ(cpu.BusySeconds(), 2.0);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
}

TEST(CpuTest, ParallelismUpToCoreCount) {
  Simulator sim;
  Cpu cpu(&sim, 4);
  for (int i = 0; i < 4; ++i) sim.Spawn(Compute(cpu, SimTime::Seconds(1)));
  sim.Run();
  // All four run in parallel: 4 busy-seconds over 1 wall second.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.0);
  EXPECT_DOUBLE_EQ(cpu.BusySeconds(), 4.0);
}

TEST(CpuTest, QueueingBeyondCores) {
  Simulator sim;
  Cpu cpu(&sim, 2);
  for (int i = 0; i < 4; ++i) sim.Spawn(Compute(cpu, SimTime::Seconds(1)));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
  EXPECT_DOUBLE_EQ(cpu.BusySeconds(), 4.0);
}

TEST(CpuTest, BusySecondsIncludesInFlightWork) {
  Simulator sim;
  Cpu cpu(&sim, 1);
  sim.Spawn(Compute(cpu, SimTime::Seconds(10)));
  sim.RunUntil(SimTime::Seconds(4));
  EXPECT_DOUBLE_EQ(cpu.BusySeconds(), 4.0);
  EXPECT_EQ(cpu.running(), 1);
  sim.Run();
  EXPECT_DOUBLE_EQ(cpu.BusySeconds(), 10.0);
  EXPECT_EQ(cpu.running(), 0);
}

Task<> DoTransfer(Channel& ch, uint64_t bytes) {
  co_await ch.Transfer(bytes);
}

TEST(ChannelTest, TransferTimeFromBandwidth) {
  Simulator sim;
  Channel ch(&sim, /*bytes_per_second=*/1000.0, /*latency=*/SimTime());
  sim.Spawn(DoTransfer(ch, 2500));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.5);
  EXPECT_EQ(ch.bytes_transferred(), 2500u);
}

TEST(ChannelTest, LatencyAddsAfterSerialization) {
  Simulator sim;
  Channel ch(&sim, 1000.0, SimTime::Millis(100));
  sim.Spawn(DoTransfer(ch, 1000));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.1);
}

TEST(ChannelTest, TransfersSerializeOnOneChannel) {
  Simulator sim;
  Channel ch(&sim, 1000.0, SimTime());
  sim.Spawn(DoTransfer(ch, 1000));
  sim.Spawn(DoTransfer(ch, 1000));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
  EXPECT_EQ(ch.bytes_transferred(), 2000u);
}

TEST(ChannelTest, MultipleChannelsShareLoad) {
  Simulator sim;
  Channel ch(&sim, 1000.0, SimTime(), /*channels=*/2);
  for (int i = 0; i < 4; ++i) sim.Spawn(DoTransfer(ch, 1000));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
}

TEST(ChannelTest, LatencyDoesNotHoldTheChannel) {
  Simulator sim;
  // With 1s serialization + 10s latency, two transfers should pipeline:
  // finish at 11s and 12s, not 22s.
  Channel ch(&sim, 1000.0, SimTime::Seconds(10));
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    sim.Spawn([](Simulator& s, Channel& c, std::vector<double>& d) -> Task<> {
      co_await c.Transfer(1000);
      d.push_back(s.Now().seconds());
    }(sim, ch, done));
  }
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 11.0);
  EXPECT_DOUBLE_EQ(done[1], 12.0);
}

TEST(BusyMeterTest, TracksConcurrentIntervals) {
  Simulator sim;
  BusyMeter meter(&sim, 8);
  sim.ScheduleAt(SimTime::Seconds(0), [&] { meter.OnStart(); });
  sim.ScheduleAt(SimTime::Seconds(1), [&] { meter.OnStart(); });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { meter.OnStop(); });
  sim.ScheduleAt(SimTime::Seconds(3), [&] { meter.OnStop(); });
  sim.Run();
  // 1s single + 1s double + 1s single = 4 busy-seconds.
  EXPECT_DOUBLE_EQ(meter.BusySeconds(), 4.0);
  EXPECT_EQ(meter.running(), 0);
}

}  // namespace
}  // namespace granula::sim
