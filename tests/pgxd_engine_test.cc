// Correctness and behavior tests for the PGX.D-like push-pull engine. The
// central property: every direction policy (auto, push-only, pull-only)
// computes exactly the reference values — direction is a performance
// decision, never a semantic one.

#include <tuple>

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

cluster::ClusterConfig FastCluster() {
  cluster::ClusterConfig config;
  config.num_nodes = 4;
  return config;
}

JobConfig FastJob() {
  JobConfig config;
  config.num_workers = 4;
  return config;
}

constexpr algo::AlgorithmId kAlgorithms[] = {
    algo::AlgorithmId::kBfs, algo::AlgorithmId::kSssp,
    algo::AlgorithmId::kWcc, algo::AlgorithmId::kPageRank};
constexpr PgxdDirection kDirections[] = {
    PgxdDirection::kAuto, PgxdDirection::kPushOnly,
    PgxdDirection::kPullOnly};

class PgxdVsReference
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PgxdVsReference, EveryDirectionMatchesReference) {
  auto [algo_index, dir_index] = GetParam();
  algo::AlgorithmId id = kAlgorithms[algo_index];
  PgxdDirection direction = kDirections[dir_index];

  graph::DatagenConfig config;
  config.num_vertices = 600;
  config.avg_degree = 8.0;
  config.seed = 55;
  auto g = graph::GenerateDatagen(config);
  ASSERT_TRUE(g.ok());

  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 0;
  spec.max_iterations = 5;
  auto expected = algo::RunReference(*g, spec);
  ASSERT_TRUE(expected.ok());

  PgxdPlatform pgxd(PgxdCostModel{}, direction);
  auto result = pgxd.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->vertex_values.size(), expected->size());
  for (size_t v = 0; v < expected->size(); ++v) {
    if (id == algo::AlgorithmId::kPageRank) {
      EXPECT_NEAR(result->vertex_values[v], (*expected)[v], 1e-9) << v;
    } else {
      EXPECT_DOUBLE_EQ(result->vertex_values[v], (*expected)[v]) << v;
    }
  }
}

std::string PgxdCaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kAlgoNames[] = {"Bfs", "Sssp", "Wcc", "PageRank"};
  static const char* kDirNames[] = {"Auto", "PushOnly", "PullOnly"};
  return std::string(kAlgoNames[std::get<0>(info.param)]) + "_" +
         kDirNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AlgorithmsByDirection, PgxdVsReference,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 3)),
                         PgxdCaseName);

core::PerformanceArchive ArchiveBfsRun(PgxdDirection direction) {
  graph::DatagenConfig config;
  config.num_vertices = 8000;
  config.avg_degree = 10.0;
  config.seed = 3;
  auto g = graph::GenerateDatagen(config);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  PgxdPlatform pgxd(PgxdCostModel{}, direction);
  auto result =
      pgxd.Run(*g, spec, cluster::ClusterConfig{}, JobConfig{});
  EXPECT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(core::MakePgxdModel(),
                                        result->records,
                                        std::move(result->environment), {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

TEST(PgxdEngineTest, AutoModeSwitchesDirectionMidBfs) {
  core::PerformanceArchive archive = ArchiveBfsRun(PgxdDirection::kAuto);
  const core::ArchivedOperation* process =
      archive.FindByPath("PgxdJob/ProcessGraph");
  ASSERT_NE(process, nullptr);
  double iterations = process->InfoNumber("IterationCount");
  double pushes = process->InfoNumber("PushIterations", -1);
  ASSERT_GE(pushes, 0);
  // Direction-optimizing BFS on a small-world graph: starts pushing (tiny
  // frontier), pulls through the explosive middle, pushes again at the
  // tail — so both directions must appear.
  EXPECT_GT(pushes, 0);
  EXPECT_LT(pushes, iterations);
  // The first iteration (frontier = one vertex) must be a push.
  const core::ArchivedOperation* first =
      archive.FindByPath("PgxdJob/ProcessGraph/Iteration-0");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->FindInfo("Direction")->value.AsString(), "push");
}

TEST(PgxdEngineTest, AutoIsNoSlowerThanEitherFixedDirection) {
  double auto_seconds =
      ArchiveBfsRun(PgxdDirection::kAuto).root->Duration().seconds();
  double push_seconds =
      ArchiveBfsRun(PgxdDirection::kPushOnly).root->Duration().seconds();
  double pull_seconds =
      ArchiveBfsRun(PgxdDirection::kPullOnly).root->Duration().seconds();
  EXPECT_LE(auto_seconds, push_seconds * 1.01);
  EXPECT_LE(auto_seconds, pull_seconds * 1.01);
}

TEST(PgxdEngineTest, FastestTotalOfTheSpecializedPlatforms) {
  // PGX.D's Table-1 design point: powerful resources, fast native
  // provisioning, parallel local loading. Its end-to-end time should beat
  // both Giraph (YARN + HDFS overheads) and PowerGraph (sequential load).
  graph::DatagenConfig config;
  config.num_vertices = 8000;
  config.avg_degree = 10.0;
  config.seed = 3;
  auto g = graph::GenerateDatagen(config);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  auto pgxd = PgxdPlatform().Run(*g, spec, cluster::ClusterConfig{},
                                 JobConfig{});
  auto giraph = GiraphPlatform().Run(*g, spec, cluster::ClusterConfig{},
                                     JobConfig{});
  auto powergraph = PowerGraphPlatform().Run(
      *g, spec, cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(pgxd.ok());
  ASSERT_TRUE(giraph.ok());
  ASSERT_TRUE(powergraph.ok());
  EXPECT_LT(pgxd->total_seconds, giraph->total_seconds);
  EXPECT_LT(pgxd->total_seconds, powergraph->total_seconds);
  // And the answers agree.
  EXPECT_EQ(pgxd->vertex_values, giraph->vertex_values);
}

TEST(PgxdEngineTest, ModelValidatesAndCoversLoggedOps) {
  EXPECT_TRUE(core::MakePgxdModel().Validate().ok());
  core::PerformanceArchive archive = ArchiveBfsRun(PgxdDirection::kAuto);
  // Strict mode over the same records: the model must cover everything
  // the engine logs.
  EXPECT_GT(archive.OperationCount(), 10u);
  EXPECT_FALSE(archive.FindOperations("Node", "Apply").empty());
}

TEST(PgxdEngineTest, RejectsBadConfigs) {
  graph::Graph g = graph::MakePath(10);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  JobConfig zero;
  zero.num_workers = 0;
  EXPECT_FALSE(PgxdPlatform().Run(g, spec, FastCluster(), zero).ok());
  spec.id = algo::AlgorithmId::kCdlp;  // no GAS formulation
  EXPECT_EQ(
      PgxdPlatform().Run(g, spec, FastCluster(), FastJob()).status().code(),
      StatusCode::kUnimplemented);
}

TEST(PgxdEngineTest, Deterministic) {
  auto g = graph::GenerateUniform(300, 900, 9);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kWcc;
  auto a = PgxdPlatform().Run(*g, spec, FastCluster(), FastJob());
  auto b = PgxdPlatform().Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_seconds, b->total_seconds);
  EXPECT_EQ(a->records.size(), b->records.size());
}

}  // namespace
}  // namespace granula::platform
