#include "common/random.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(RandomTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RandomTest, NextBoundedCoversAllResidues) {
  Rng rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 13000; ++i) counts[rng.NextBounded(13)]++;
  EXPECT_EQ(counts.size(), 13u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 700) << "value " << value << " under-represented";
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, NextBoolProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RandomTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RandomTest, ZipfInRangeAndSkewed) {
  Rng rng(23);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t k = rng.NextZipf(1000, 1.2);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
    counts[k]++;
  }
  // Rank 1 must dominate rank 10 roughly by 10^1.2 ≈ 15.8.
  ASSERT_GT(counts[1], 0);
  ASSERT_GT(counts[10], 0);
  double ratio = static_cast<double>(counts[1]) / counts[10];
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 32.0);
}

TEST(RandomTest, ZipfHandlesSEqualOne) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = rng.NextZipf(100, 1.0);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RandomTest, SplitMix64AdvancesState) {
  uint64_t s = 0;
  uint64_t a = SplitMix64(s);
  uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace granula
