#include "granula/model/info_rule.h"

#include <gtest/gtest.h>

namespace granula::core {
namespace {

std::unique_ptr<ArchivedOperation> OpWithTimes(int64_t start_ns,
                                               int64_t end_ns) {
  auto op = std::make_unique<ArchivedOperation>();
  op->SetInfo("StartTime", Json(start_ns), "t");
  op->SetInfo("EndTime", Json(end_ns), "t");
  return op;
}

TEST(DurationRuleTest, Computes) {
  auto op = OpWithTimes(1000, 4500);
  auto rule = MakeDurationRule();
  EXPECT_EQ(rule->info_name(), "Duration");
  auto v = rule->Derive(*op);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 3500);
}

TEST(DurationRuleTest, MissingTimesNotFound) {
  ArchivedOperation op;
  EXPECT_EQ(MakeDurationRule()->Derive(op).status().code(),
            StatusCode::kNotFound);
}

ArchivedOperation ParentWithChildren() {
  ArchivedOperation parent;
  parent.SetInfo("StartTime", Json(int64_t{0}), "t");
  parent.SetInfo("EndTime", Json(int64_t{10000000000}), "t");  // 10s
  for (int i = 1; i <= 3; ++i) {
    auto child = std::make_unique<ArchivedOperation>();
    child->mission_type = "Compute";
    child->SetInfo("Duration", Json(int64_t{i * 100}), "t");
    parent.children.push_back(std::move(child));
  }
  auto other = std::make_unique<ArchivedOperation>();
  other->mission_type = "Wait";
  other->SetInfo("Duration", Json(int64_t{9999}), "t");
  parent.children.push_back(std::move(other));
  return parent;
}

TEST(ChildAggregateRuleTest, SumFiltersByMission) {
  ArchivedOperation parent = ParentWithChildren();
  auto rule = MakeChildAggregateRule("ComputeTotal", Aggregate::kSum,
                                     "Duration", "Compute");
  auto v = rule->Derive(parent);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 600.0);
}

TEST(ChildAggregateRuleTest, SumOverAllChildren) {
  ArchivedOperation parent = ParentWithChildren();
  auto rule =
      MakeChildAggregateRule("Total", Aggregate::kSum, "Duration", "");
  auto v = rule->Derive(parent);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 600.0 + 9999.0);
}

TEST(ChildAggregateRuleTest, MaxMinMeanCount) {
  ArchivedOperation parent = ParentWithChildren();
  EXPECT_DOUBLE_EQ(MakeChildAggregateRule("x", Aggregate::kMax, "Duration",
                                          "Compute")
                       ->Derive(parent)
                       ->AsDouble(),
                   300.0);
  EXPECT_DOUBLE_EQ(MakeChildAggregateRule("x", Aggregate::kMin, "Duration",
                                          "Compute")
                       ->Derive(parent)
                       ->AsDouble(),
                   100.0);
  EXPECT_DOUBLE_EQ(MakeChildAggregateRule("x", Aggregate::kMean, "Duration",
                                          "Compute")
                       ->Derive(parent)
                       ->AsDouble(),
                   200.0);
  EXPECT_EQ(MakeChildAggregateRule("x", Aggregate::kCount, "Duration",
                                   "Compute")
                ->Derive(parent)
                ->AsInt(),
            3);
}

TEST(ChildAggregateRuleTest, NoMatchingChildren) {
  ArchivedOperation parent = ParentWithChildren();
  auto rule = MakeChildAggregateRule("x", Aggregate::kSum, "Duration",
                                     "Nothing");
  EXPECT_EQ(rule->Derive(parent).status().code(), StatusCode::kNotFound);
  // Count of zero matches is a valid answer.
  auto count = MakeChildAggregateRule("x", Aggregate::kCount, "Duration",
                                      "Nothing")
                   ->Derive(parent);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->AsInt(), 0);
}

TEST(ChildAggregateRuleTest, IgnoresNonNumericInfos) {
  ArchivedOperation parent = ParentWithChildren();
  auto child = std::make_unique<ArchivedOperation>();
  child->mission_type = "Compute";
  child->SetInfo("Duration", Json("not a number"), "t");
  parent.children.push_back(std::move(child));
  auto v = MakeChildAggregateRule("x", Aggregate::kSum, "Duration",
                                  "Compute")
               ->Derive(parent);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 600.0);
}

TEST(RateRuleTest, DividesByDuration) {
  auto op = OpWithTimes(0, 2000000000);  // 2s
  op->SetInfo("Items", Json(int64_t{500}), "t");
  auto v = MakeRateRule("ItemsPerSecond", "Items")->Derive(*op);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 250.0);
}

TEST(RateRuleTest, ZeroDurationNotFound) {
  auto op = OpWithTimes(5, 5);
  op->SetInfo("Items", Json(int64_t{500}), "t");
  EXPECT_EQ(MakeRateRule("r", "Items")->Derive(*op).status().code(),
            StatusCode::kNotFound);
}

TEST(CustomRuleTest, RunsLambdaAndDescribes) {
  auto rule = MakeCustomRule("Answer", "always 42",
                             [](const ArchivedOperation&) -> Result<Json> {
                               return Json(int64_t{42});
                             });
  EXPECT_EQ(rule->info_name(), "Answer");
  EXPECT_EQ(rule->Describe(), "always 42");
  ArchivedOperation op;
  EXPECT_EQ(rule->Derive(op)->AsInt(), 42);
}

}  // namespace
}  // namespace granula::core
