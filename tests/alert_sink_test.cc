// The pluggable alert-sink layer behind `granula watch`: JSON rendering,
// the terminal and JSONL sinks, external (watch-synthesized) alerts, and
// the end-to-end satellite case — an injected stall must land in the
// JSONL sink with machine-readable fields.

#include "granula/live/alert_sink.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "granula/live/watch.h"
#include "granula/models/models.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

std::string FreshPath(const std::string& name) {
  std::string path = testing::TempDir() + "/sink_" + name + ".jsonl";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

LiveAlert StallAlert() {
  LiveAlert alert;
  alert.finding.kind = FindingKind::kStalledJob;
  alert.finding.severity = Severity::kCritical;
  alert.finding.operation = "run.jsonl";
  alert.finding.description = "no new log records for 2.0s";
  alert.finding.metric = 2.0;
  alert.in_flight = true;
  alert.snapshot_index = 3;
  return alert;
}

TEST(AlertSinkTest, AlertToJsonCarriesEveryField) {
  Json j = AlertToJson(StallAlert());
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.GetString("kind"), "stalled_job");
  EXPECT_EQ(j.GetString("severity"), "critical");
  EXPECT_EQ(j.GetString("operation"), "run.jsonl");
  EXPECT_EQ(j.GetString("description"), "no new log records for 2.0s");
  EXPECT_EQ(j.GetDouble("metric"), 2.0);
  EXPECT_EQ(j.GetBool("in_flight"), true);
  EXPECT_EQ(j.GetDouble("snapshot"), 3.0);

  // The rendered line reparses: the sink's output is machine-readable.
  auto reparsed = Json::Parse(j.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->GetString("kind"), "stalled_job");
}

TEST(AlertSinkTest, JsonlSinkAppendsOneLinePerAlert) {
  std::string path = FreshPath("jsonl");
  {
    auto sink = JsonlAlertSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    (*sink)->OnAlert(StallAlert());
    LiveAlert second = StallAlert();
    second.finding.kind = FindingKind::kDominantPhase;
    second.finding.severity = Severity::kWarning;
    (*sink)->OnAlert(second);
    (*sink)->Flush();
  }
  std::istringstream lines(ReadFile(path));
  std::vector<std::string> parsed;
  for (std::string line; std::getline(lines, line);) parsed.push_back(line);
  ASSERT_EQ(parsed.size(), 2u);
  auto first = Json::Parse(parsed[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->GetString("kind"), "stalled_job");
  auto second = Json::Parse(parsed[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->GetString("kind"), "dominant_phase");

  // Reopening appends instead of clobbering the history.
  auto again = JsonlAlertSink::Open(path);
  ASSERT_TRUE(again.ok());
  (*again)->OnAlert(StallAlert());
  (*again)->Flush();
  std::istringstream more(ReadFile(path));
  int count = 0;
  for (std::string line; std::getline(more, line);) ++count;
  EXPECT_EQ(count, 3);
}

TEST(AlertSinkTest, TerminalSinkPrintsTheClassicAlertLine) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  TerminalAlertSink sink(tmp);
  sink.OnAlert(StallAlert());
  sink.Flush();
  std::rewind(tmp);
  char buffer[256] = {};
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), tmp), nullptr);
  std::string line(buffer);
  std::fclose(tmp);
  EXPECT_NE(line.find("ALERT [critical] stalled_job"), std::string::npos)
      << line;
  EXPECT_NE(line.find("no new log records"), std::string::npos);
}

TEST(AlertTrackerTest, RaiseExternalDeduplicatesByKindAndOperation) {
  AlertTracker tracker;
  Finding finding{FindingKind::kStalledJob, Severity::kCritical, "log",
                  "stall", 1.0};
  auto first = tracker.RaiseExternal(finding, /*in_flight=*/true);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->in_flight);
  // Same (kind, operation): already reported.
  EXPECT_FALSE(tracker.RaiseExternal(finding, true).has_value());
  // Different operation: a new alert.
  finding.operation = "other";
  EXPECT_TRUE(tracker.RaiseExternal(finding, true).has_value());
  EXPECT_EQ(tracker.alerts().size(), 2u);
}

// The satellite acceptance case: a stalled live log watched with a stall
// timeout and a JSONL sink must produce a stalled_job alert in the file.
TEST(AlertSinkTest, WatchWritesInjectedStallToTheJsonlSink) {
  std::string log = FreshPath("stalled_log");
  std::string alert_log = FreshPath("stalled_alerts");
  // A root that opens and never closes: the job is wedged from the
  // watcher's point of view.
  SimTime now;
  JobLogger logger([&now] { return now; });
  ASSERT_TRUE(logger.StreamTo(log).ok());
  logger.StartOperation(kNoOp, "Job", "job", "GraphProcessingJob",
                        "PowerGraphJob");
  logger.StopStreaming();

  WatchOptions options;
  options.log_path = log;
  options.poll_interval_ms = 5;
  options.timeout_s = 2.0;
  options.stall_timeout_s = 0.1;
  options.alert_jsonl_path = alert_log;
  options.quiet = true;
  Result<WatchSummary> watched =
      WatchLog(MakePowerGraphModel(), options, nullptr);
  ASSERT_TRUE(watched.ok()) << watched.status();
  EXPECT_FALSE(watched->completed);
  EXPECT_GE(watched->stall_alerts, 1u);

  bool saw_stall = false;
  std::istringstream lines(ReadFile(alert_log));
  for (std::string line; std::getline(lines, line);) {
    auto j = Json::Parse(line);
    ASSERT_TRUE(j.ok()) << line;
    if (j->GetString("kind") == "stalled_job") {
      saw_stall = true;
      EXPECT_EQ(j->GetString("severity"), "critical");
      EXPECT_EQ(j->GetBool("in_flight"), true);
      EXPECT_GE(j->GetDouble("metric"), 0.1);
    }
  }
  EXPECT_TRUE(saw_stall) << ReadFile(alert_log);
}

}  // namespace
}  // namespace granula::core
