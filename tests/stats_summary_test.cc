#include "common/stats.h"

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(SummaryTest, EmptyIsAllZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Stdev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stdev(), 2.13809, 1e-5);  // sample stdev
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.Cv(), 2.13809 / 5.0, 1e-5);
}

TEST(SummaryTest, SingleSample) {
  Summary s({42.0});
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Stdev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Median(), 42.0);
}

TEST(SummaryTest, Percentiles) {
  Summary s({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.Median(), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(12.5), 15.0);  // interpolated
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(200), 50.0);
}

TEST(SummaryTest, AddInvalidatesCache) {
  Summary s({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Max(), 10.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
}

TEST(SummaryTest, ZeroMeanCv) {
  Summary s({-1.0, 1.0});
  EXPECT_DOUBLE_EQ(s.Cv(), 0.0);
}

}  // namespace
}  // namespace granula
