#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace granula::graph {
namespace {

TEST(DegreeStatsTest, UndirectedStar) {
  DegreeStats s = ComputeDegreeStats(MakeStar(5));
  EXPECT_EQ(s.max, 4u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
  EXPECT_EQ(s.histogram.at(1), 4u);
  EXPECT_EQ(s.histogram.at(4), 1u);
}

TEST(DegreeStatsTest, RegularGraphGiniZero) {
  DegreeStats s = ComputeDegreeStats(MakeCycle(10));
  EXPECT_EQ(s.min, 2u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
}

TEST(DegreeStatsTest, DirectedCountsOutDegree) {
  auto g = Graph::Create(3, {{0, 1}, {0, 2}}, true);
  DegreeStats s = ComputeDegreeStats(*g);
  EXPECT_EQ(s.max, 2u);
  EXPECT_EQ(s.histogram.at(0), 2u);
}

TEST(DegreeStatsTest, EmptyGraph) {
  auto g = Graph::Create(0, {}, false);
  DegreeStats s = ComputeDegreeStats(*g);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.histogram.size(), 0u);
}

TEST(ConnectedComponentsTest, CountsComponents) {
  EXPECT_EQ(CountConnectedComponents(MakePath(10)), 1u);
  auto g = Graph::Create(6, {{0, 1}, {2, 3}}, false);
  EXPECT_EQ(CountConnectedComponents(*g), 4u);  // {0,1},{2,3},{4},{5}
  auto empty = Graph::Create(5, {}, false);
  EXPECT_EQ(CountConnectedComponents(*empty), 5u);
}

TEST(EccentricityTest, DisconnectedIgnoresUnreachable) {
  auto g = Graph::Create(5, {{0, 1}, {1, 2}}, false);
  EXPECT_EQ(Eccentricity(*g, 0), 2u);
}

TEST(EccentricityTest, DirectedTraversesBothWays) {
  auto g = Graph::Create(3, {{1, 0}, {1, 2}}, true);
  // From 0: up the reverse edge to 1, then to 2.
  EXPECT_EQ(Eccentricity(*g, 0), 2u);
}

}  // namespace
}  // namespace granula::graph
