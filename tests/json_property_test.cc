// Property-style roundtrip coverage for the compact Json value: seeded
// random nested documents must survive Parse(Dump(v)) == v at every
// indent, and canonical compact dumps must be fixpoints of Dump ∘ Parse.
// The codec and archive byte-equality contracts all bottom out here.

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/random.h"

namespace granula {
namespace {

std::string RandomString(Rng& rng) {
  const size_t len = rng.NextBounded(16);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    switch (rng.NextBounded(8)) {
      case 0:  // control byte → \uXXXX escape on dump
        s += static_cast<char>(rng.NextBounded(0x20));
        break;
      case 1:  // the two single-char escapes
        s += rng.NextBool(0.5) ? '"' : '\\';
        break;
      case 2:  // high bytes (UTF-8 continuation range) pass through raw
        s += static_cast<char>(0x80 + rng.NextBounded(0x80));
        break;
      default:  // printable ASCII
        s += static_cast<char>(0x20 + rng.NextBounded(0x5f));
        break;
    }
  }
  return s;
}

double RandomDouble(Rng& rng) {
  // Spread across magnitudes; NaN/Inf are excluded because Dump degrades
  // them by design (null / 1e999) and they cannot roundtrip.
  const double mantissa = rng.NextDouble() * 2.0 - 1.0;
  const int exponent = static_cast<int>(rng.NextInt(-300, 300));
  return mantissa * std::pow(10.0, exponent);
}

Json RandomValue(Rng& rng, int depth) {
  const uint64_t pick = rng.NextBounded(depth >= 4 ? 5 : 7);
  switch (pick) {
    case 0:
      return Json();
    case 1:
      return Json(rng.NextBool(0.5));
    case 2:
      return Json(rng.NextInt(-1000000000000000000, 1000000000000000000));
    case 3:
      return Json(RandomDouble(rng));
    case 4:
      return Json(RandomString(rng));
    case 5: {
      Json arr = Json::MakeArray();
      const uint64_t n = rng.NextBounded(5);
      for (uint64_t i = 0; i < n; ++i) {
        arr.Append(RandomValue(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      const uint64_t n = rng.NextBounded(5);
      for (uint64_t i = 0; i < n; ++i) {
        obj[RandomString(rng)] = RandomValue(rng, depth + 1);
      }
      return obj;
    }
  }
}

TEST(JsonPropertyTest, ParseDumpRoundtripsRandomDocuments) {
  Rng rng(20260807);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const Json doc = RandomValue(rng, 0);
    for (int indent : {0, 2}) {
      auto parsed = Json::Parse(doc.Dump(indent));
      ASSERT_TRUE(parsed.ok())
          << "iteration " << iteration << ": " << parsed.status() << "\n"
          << doc.Dump(indent);
      EXPECT_EQ(*parsed, doc) << "iteration " << iteration;
    }
  }
}

TEST(JsonPropertyTest, CompactDumpIsCanonicalFixpoint) {
  // For canonical s (the compact dump of any value), Dump(Parse(s)) == s.
  Rng rng(7);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const std::string canonical = RandomValue(rng, 0).Dump(0);
    auto parsed = Json::Parse(canonical);
    ASSERT_TRUE(parsed.ok()) << canonical;
    EXPECT_EQ(parsed->Dump(0), canonical) << "iteration " << iteration;
  }
}

TEST(JsonPropertyTest, CanonicalEdgeCaseStringsAreFixpoints) {
  const char* kCases[] = {
      "null",
      "true",
      "false",
      "0",
      "-1",
      "9223372036854775807",
      "-9223372036854775808",
      "0.5",
      "2.0",
      "1e-300",
      "1.7976931348623157e+308",
      "\"\"",
      "\"a\\\"b\\\\c\"",
      "\"\\u0000\\u0001\\u001f\"",
      "\"\\n\\r\\t\\b\\f\"",
      "\"\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80\"",  // raw UTF-8 passes through
      "[]",
      "{}",
      "[1,\"two\",{\"a\":[true,null]}]",
      "{\"a\":[1,2.5,\"x\"],\"b\":{}}",
  };
  for (const char* s : kCases) {
    auto parsed = Json::Parse(s);
    ASSERT_TRUE(parsed.ok()) << s << ": " << parsed.status();
    EXPECT_EQ(parsed->Dump(0), s);
  }
}

TEST(JsonPropertyTest, UnicodeEscapesRoundtripAsValues) {
  // \u escapes decode to UTF-8 bytes; the dump re-emits the bytes raw, so
  // these are value (not string) fixpoints.
  const char* kCases[] = {
      R"("é")",
      R"("中")",
      R"("😀")",  // surrogate pair
      R"("a\ud800b")",      // lone surrogate → U+FFFD
  };
  for (const char* s : kCases) {
    auto parsed = Json::Parse(s);
    ASSERT_TRUE(parsed.ok()) << s;
    auto reparsed = Json::Parse(parsed->Dump(0));
    ASSERT_TRUE(reparsed.ok()) << parsed->Dump(0);
    EXPECT_EQ(*reparsed, *parsed) << s;
  }
}

TEST(JsonPropertyTest, NumberEdgeCasesRoundtrip) {
  Json doc = Json::MakeArray();
  doc.Append(int64_t{INT64_MAX});
  doc.Append(int64_t{INT64_MIN});
  doc.Append(uint64_t{UINT64_MAX});  // stored as double by design
  doc.Append(0.0);
  doc.Append(-0.0);
  doc.Append(5e-324);  // smallest subnormal
  doc.Append(std::numeric_limits<double>::max());
  doc.Append(1.0 / 3.0);
  for (int indent : {0, 2}) {
    auto parsed = Json::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, doc);
  }
}

}  // namespace
}  // namespace granula
