#include "common/status.h"

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "io_error");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "corruption");
}

Status FailsThenPropagates(bool fail) {
  GRANULA_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::IoError("disk gone");
  EXPECT_EQ(os.str(), "io_error: disk gone");
}

}  // namespace
}  // namespace granula
