// End-to-end fault injection across every platform: a seeded crash plan
// must complete via retry/restart, produce a lint-clean archive with real
// FailedAttempt/Restart operations and a nonzero LostTime metric, leave
// vertex values identical to the no-fault run, and stay byte-identical
// across host thread counts. Unrecoverable plans must end as incomplete
// archives, never as crashes or hangs.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "granula/analysis/chokepoint.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

class PoolSizeGuard {
 public:
  PoolSizeGuard() : original_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::Global().Resize(original_); }

 private:
  int original_;
};

constexpr const char* kPlatformNames[] = {"Giraph", "PowerGraph", "GraphMat",
                                          "Pgxd", "Hadoop"};

graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 1500;
  config.avg_degree = 6.0;
  config.seed = 7;
  auto g = graph::GenerateDatagen(config);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

algo::AlgorithmSpec PageRankSpec() {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kPageRank;
  spec.max_iterations = 5;
  return spec;
}

Result<JobResult> RunPlatform(int which, const graph::Graph& g,
                              const algo::AlgorithmSpec& spec,
                              const JobConfig& job) {
  cluster::ClusterConfig cluster;
  switch (which) {
    case 0:
      return GiraphPlatform().Run(g, spec, cluster, job);
    case 1:
      return PowerGraphPlatform().Run(g, spec, cluster, job);
    case 2:
      return GraphMatPlatform().Run(g, spec, cluster, job);
    case 3:
      return PgxdPlatform().Run(g, spec, cluster, job);
    default:
      return HadoopPlatform().Run(g, spec, cluster, job);
  }
}

core::PerformanceModel ModelFor(int which) {
  switch (which) {
    case 0:
      return core::MakeGiraphModel();
    case 1:
      return core::MakePowerGraphModel();
    case 2:
      return core::MakeGraphMatModel();
    case 3:
      return core::MakePgxdModel();
    default:
      return core::MakeHadoopModel();
  }
}

sim::FaultPlan CrashPlan() {
  sim::FaultPlan plan;
  sim::FaultSpec crash;
  crash.kind = sim::FaultKind::kWorkerCrash;
  crash.worker = 2;
  crash.step = 1;
  plan.Add(crash);
  return plan;
}

uint64_t CountOps(const core::ArchivedOperation& root,
                  const char* mission_type) {
  uint64_t count = 0;
  root.Visit([&](const core::ArchivedOperation& op) {
    if (op.mission_type == mission_type) ++count;
  });
  return count;
}

class FaultInjection : public ::testing::TestWithParam<int> {};

TEST_P(FaultInjection, CrashPlanCompletesViaRetryWithFailureOpsInArchive) {
  const int which = GetParam();
  const graph::Graph g = TestGraph();
  const algo::AlgorithmSpec spec = PageRankSpec();

  JobConfig clean_job;
  auto clean = RunPlatform(which, g, spec, clean_job);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->completed);
  EXPECT_EQ(clean->failed_attempts, 0u);
  EXPECT_EQ(clean->lost_seconds, 0.0);

  JobConfig faulted_job;
  faulted_job.faults = CrashPlan();
  auto faulted = RunPlatform(which, g, spec, faulted_job);
  ASSERT_TRUE(faulted.ok()) << faulted.status();

  // The crash costs an attempt but the job still finishes — and computes
  // exactly the same answer as the clean run.
  EXPECT_TRUE(faulted->completed) << kPlatformNames[which];
  EXPECT_GE(faulted->failed_attempts, 1u);
  EXPECT_GE(faulted->restarts, 1u);
  EXPECT_GT(faulted->lost_seconds, 0.0);
  EXPECT_TRUE(faulted->vertex_values == clean->vertex_values)
      << kPlatformNames[which] << ": fault recovery changed the answer";

  auto archive = core::Archiver().Build(ModelFor(which), faulted->records,
                                        std::move(faulted->environment), {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_TRUE(archive->lint.clean()) << archive->lint.Summary();
  EXPECT_EQ(archive->status, core::ArchiveStatus::kComplete);
  ASSERT_NE(archive->root, nullptr);

  // Every failed attempt is a real operation in the tree, and the model's
  // wasted-time rules fire on the root.
  EXPECT_GE(CountOps(*archive->root, "FailedAttempt"), 1u)
      << kPlatformNames[which];
  if (which != 4) {  // Hadoop reschedules tasks instead of restarting jobs
    EXPECT_GE(CountOps(*archive->root, "Restart"), 1u)
        << kPlatformNames[which];
  }
  EXPECT_TRUE(archive->root->HasInfo("LostTime")) << kPlatformNames[which];
  EXPECT_GT(archive->root->InfoNumber("LostTime"), 0.0);
  EXPECT_TRUE(archive->root->HasInfo("FailedAttemptCount"));

  // Chokepoint analysis reports the recovery cost as a finding.
  core::ChokepointOptions options;
  std::vector<core::Finding> findings =
      core::AnalyzeChokepoints(*archive, options);
  bool saw_failure_finding = false;
  for (const core::Finding& finding : findings) {
    if (finding.kind == core::FindingKind::kFailureRecovery) {
      saw_failure_finding = true;
      EXPECT_GT(finding.metric, 0.0);
    }
    EXPECT_NE(finding.kind, core::FindingKind::kStalledJob)
        << "completed run must not look stalled";
  }
  EXPECT_TRUE(saw_failure_finding) << kPlatformNames[which];
}

TEST_P(FaultInjection, FaultedArchiveByteIdenticalAcrossHostThreadCounts) {
  const int which = GetParam();
  const graph::Graph g = TestGraph();
  const algo::AlgorithmSpec spec = PageRankSpec();

  PoolSizeGuard guard;
  auto capture = [&]() -> std::string {
    JobConfig job;
    job.faults = CrashPlan();
    auto result = RunPlatform(which, g, spec, job);
    EXPECT_TRUE(result.ok()) << result.status();
    if (!result.ok()) return {};
    auto archive = core::Archiver().Build(ModelFor(which), result->records,
                                          std::move(result->environment), {});
    EXPECT_TRUE(archive.ok()) << archive.status();
    if (!archive.ok()) return {};
    return archive->ToJsonString();
  };

  ThreadPool::Global().Resize(1);
  const std::string baseline = capture();
  ASSERT_FALSE(baseline.empty());
  for (int threads : {2, 8}) {
    ThreadPool::Global().Resize(threads);
    const std::string out = capture();
    EXPECT_TRUE(out == baseline)
        << kPlatformNames[which] << " faulted archive diverges at "
        << threads << " host threads (sizes " << out.size() << " vs "
        << baseline.size() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, FaultInjection, ::testing::Range(0, 5),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(kPlatformNames[info.param]);
    });

TEST(FaultInjectionTest, UnrecoverablePlanYieldsIncompleteArchive) {
  const graph::Graph g = TestGraph();
  const algo::AlgorithmSpec spec = PageRankSpec();

  JobConfig job;
  sim::FaultSpec crash;
  crash.kind = sim::FaultKind::kWorkerCrash;
  crash.worker = 1;
  crash.step = 0;
  crash.failures = 99;  // more failures than any retry budget
  job.faults.Add(crash);
  job.faults.retry.max_attempts = 3;

  auto result = PowerGraphPlatform().Run(g, spec, cluster::ClusterConfig{},
                                         job);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->completed);
  EXPECT_EQ(result->failed_attempts, 3u);

  // The root never closed; the archive must say so explicitly instead of
  // pretending the job finished at the last logged instant.
  auto archive =
      core::Archiver().Build(core::MakePowerGraphModel(), result->records,
                             std::move(result->environment), {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_EQ(archive->status, core::ArchiveStatus::kIncomplete);

  // Analysis flags the aborted run as a critical stalled-job finding.
  std::vector<core::Finding> findings =
      core::AnalyzeChokepoints(*archive, core::ChokepointOptions{});
  bool saw_stalled = false;
  for (const core::Finding& finding : findings) {
    if (finding.kind == core::FindingKind::kStalledJob) saw_stalled = true;
  }
  EXPECT_TRUE(saw_stalled);

  // Round trip: the status survives serialization.
  auto reloaded = core::PerformanceArchive::FromJsonString(
      archive->ToJsonString());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->status, core::ArchiveStatus::kIncomplete);
}

TEST(FaultInjectionTest, StorageErrorRetriesInPlace) {
  const graph::Graph g = TestGraph();
  const algo::AlgorithmSpec spec = PageRankSpec();

  JobConfig job;
  sim::FaultSpec storage;
  storage.kind = sim::FaultKind::kStorageError;
  storage.worker = 1;
  storage.failures = 2;
  job.faults.Add(storage);

  auto result = PgxdPlatform().Run(g, spec, cluster::ClusterConfig{}, job);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->failed_attempts, 2u);
  EXPECT_EQ(result->restarts, 0u) << "in-place retries are not restarts";

  auto archive =
      core::Archiver().Build(core::MakePgxdModel(), result->records,
                             std::move(result->environment), {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_TRUE(archive->lint.clean());
  EXPECT_EQ(CountOps(*archive->root, "FailedAttempt"), 2u);
}

TEST(FaultInjectionTest, LogWriteFaultsQuarantineUnderRepair) {
  const graph::Graph g = TestGraph();
  const algo::AlgorithmSpec spec = PageRankSpec();

  JobConfig job;
  sim::FaultSpec drop;
  drop.kind = sim::FaultKind::kLogWrite;
  drop.log_seq = 40;
  drop.log_effect = sim::LogWriteFault::kDrop;
  job.faults.Add(drop);

  auto result = GiraphPlatform().Run(g, spec, cluster::ClusterConfig{}, job);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->completed) << "log faults must not affect the job";

  // Strict mode rejects the torn log; repair mode quarantines the damage
  // and still builds an archive.
  core::Archiver strict;
  auto rejected = strict.Build(core::MakeGiraphModel(), result->records,
                               {}, {});
  EXPECT_FALSE(rejected.ok());

  core::Archiver::Options options;
  options.tolerance = core::Archiver::Tolerance::kRepair;
  core::Archiver repair(options);
  auto archive = repair.Build(core::MakeGiraphModel(), result->records,
                              std::move(result->environment), {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_FALSE(archive->lint.clean());
}

}  // namespace
}  // namespace granula::platform
