#include "cluster/storage.h"

#include <gtest/gtest.h>

namespace granula::cluster {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.cores_per_node = 2;
  config.disk_bytes_per_sec = 1000.0;
  config.net_bytes_per_sec = 4000.0;
  config.net_latency = SimTime();
  return config;
}

TEST(LocalFsTest, StatAndMissing) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  LocalFs fs(&cluster);
  ASSERT_TRUE(fs.CreateFile(1, "/data/g.e", 5000).ok());
  auto info = fs.Stat(1, "/data/g.e");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size_bytes, 5000u);
  EXPECT_FALSE(fs.Stat(0, "/data/g.e").ok());  // other node: not there
  EXPECT_FALSE(fs.Stat(1, "/nope").ok());
  EXPECT_FALSE(fs.CreateFile(9, "/x", 1).ok());  // bad node
}

TEST(LocalFsTest, ReadTimeIsSizeOverDiskBandwidth) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  LocalFs fs(&cluster);
  ASSERT_TRUE(fs.CreateFile(0, "/f", 3000).ok());
  sim.Spawn([](LocalFs& f) -> sim::Task<> {
    co_await f.Read(0, "/f");
  }(fs));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 3.0);
}

TEST(LocalFsTest, WriteCreatesFile) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  LocalFs fs(&cluster);
  sim.Spawn([](LocalFs& f) -> sim::Task<> {
    co_await f.Write(2, "/out", 1000);
  }(fs));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.0);
  EXPECT_TRUE(fs.Stat(2, "/out").ok());
}

TEST(SharedFsTest, RemoteReadGoesThroughServerDiskAndNetwork) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  SharedFs fs(&cluster, /*server_node=*/0);
  ASSERT_TRUE(fs.CreateFile("/g.e", 2000).ok());
  sim.Spawn([](SharedFs& f) -> sim::Task<> {
    co_await f.ReadAll(3, "/g.e");
  }(fs));
  sim.Run();
  // 2s server disk + 0.5s network.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.5);
}

TEST(SharedFsTest, ServerLocalReadSkipsNetwork) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  SharedFs fs(&cluster, 0);
  ASSERT_TRUE(fs.CreateFile("/g.e", 2000).ok());
  sim.Spawn([](SharedFs& f) -> sim::Task<> {
    co_await f.ReadAll(0, "/g.e");
  }(fs));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
}

TEST(SharedFsTest, ConcurrentReadersSerializeAtServer) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  SharedFs fs(&cluster, 0);
  ASSERT_TRUE(fs.CreateFile("/g.e", 1000).ok());
  for (uint32_t reader = 1; reader <= 3; ++reader) {
    sim.Spawn([](SharedFs& f, uint32_t r) -> sim::Task<> {
      co_await f.ReadAll(r, "/g.e");
    }(fs, reader));
  }
  sim.Run();
  // Three 1s disk reads serialize; last finishes at 3s + 0.25s net.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 3.25);
}

TEST(HdfsTest, BlockPlacementAndStat) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  Hdfs::Options opts;
  opts.block_size = 1000;
  opts.replication = 2;
  Hdfs hdfs(&cluster, opts);
  ASSERT_TRUE(hdfs.CreateFile("/g.e", 3500).ok());
  auto info = hdfs.Stat("/g.e");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size_bytes, 3500u);
  auto blocks = hdfs.GetBlocks("/g.e");
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 4u);
  EXPECT_EQ((*blocks)[0].bytes, 1000u);
  EXPECT_EQ((*blocks)[3].bytes, 500u);
  for (const auto& b : *blocks) {
    EXPECT_EQ(b.replicas.size(), 2u);
    for (uint32_t r : b.replicas) EXPECT_LT(r, 4u);
  }
  // Round-robin start rotates between blocks.
  EXPECT_NE((*blocks)[0].replicas[0], (*blocks)[1].replicas[0]);
}

TEST(HdfsTest, RejectsBadReplication) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  Hdfs::Options opts;
  opts.replication = 9;  // > num_nodes
  Hdfs hdfs(&cluster, opts);
  EXPECT_FALSE(hdfs.CreateFile("/g.e", 100).ok());
}

TEST(HdfsTest, LocalBlockReadUsesOwnDisk) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  Hdfs::Options opts;
  opts.block_size = 1000;
  opts.replication = 1;
  Hdfs hdfs(&cluster, opts);
  ASSERT_TRUE(hdfs.CreateFile("/g.e", 1000).ok());
  auto blocks = hdfs.GetBlocks("/g.e");
  ASSERT_TRUE(blocks.ok());
  uint32_t holder = (*blocks)[0].replicas[0];
  sim.Spawn([](Hdfs& h, uint32_t reader, Hdfs::Block b) -> sim::Task<> {
    co_await h.ReadBlock(reader, b);
  }(hdfs, holder, (*blocks)[0]));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.0);  // disk only, no network
  EXPECT_EQ(cluster.network_bytes_sent(), 0u);
}

TEST(HdfsTest, RemoteBlockReadAddsNetwork) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  Hdfs::Options opts;
  opts.block_size = 1000;
  opts.replication = 1;
  Hdfs hdfs(&cluster, opts);
  ASSERT_TRUE(hdfs.CreateFile("/g.e", 1000).ok());
  auto blocks = hdfs.GetBlocks("/g.e");
  uint32_t holder = (*blocks)[0].replicas[0];
  uint32_t reader = (holder + 1) % 4;
  sim.Spawn([](Hdfs& h, uint32_t r, Hdfs::Block b) -> sim::Task<> {
    co_await h.ReadBlock(r, b);
  }(hdfs, reader, (*blocks)[0]));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.25);  // 1s disk + 0.25s network
  EXPECT_EQ(cluster.network_bytes_sent(), 1000u);
}

TEST(HdfsTest, ParallelBlockReadsOverlapAcrossNodes) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  Hdfs::Options opts;
  opts.block_size = 1000;
  opts.replication = 1;
  Hdfs hdfs(&cluster, opts);
  // 4 blocks, one per node (round-robin with replication 1).
  ASSERT_TRUE(hdfs.CreateFile("/g.e", 4000).ok());
  auto blocks = hdfs.GetBlocks("/g.e");
  for (const auto& b : *blocks) {
    uint32_t holder = b.replicas[0];
    sim.Spawn([](Hdfs& h, uint32_t r, Hdfs::Block blk) -> sim::Task<> {
      co_await h.ReadBlock(r, blk);
    }(hdfs, holder, b));
  }
  sim.Run();
  // All four blocks read in parallel on their own disks.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.0);
}

TEST(HdfsTest, WriteReplicatesOverNetwork) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  Hdfs::Options opts;
  opts.block_size = 100000;
  opts.replication = 3;
  Hdfs hdfs(&cluster, opts);
  sim.Spawn([](Hdfs& h) -> sim::Task<> {
    co_await h.WriteFromNode(1, "/out", 1000);
  }(hdfs));
  sim.Run();
  EXPECT_TRUE(hdfs.Stat("/out").ok());
  EXPECT_EQ(cluster.network_bytes_sent(), 2000u);  // two replica pushes
}

}  // namespace
}  // namespace granula::cluster
