#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace granula::graph {
namespace {

TEST(GraphTest, CreateValidatesEndpoints) {
  auto ok = Graph::Create(3, {{0, 1}, {1, 2}}, true);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_vertices(), 3u);
  EXPECT_EQ(ok->num_edges(), 2u);
  EXPECT_TRUE(ok->directed());
  EXPECT_EQ(ok->scale(), 5u);

  auto bad = Graph::Create(3, {{0, 3}}, true);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, EmptyGraph) {
  auto g = Graph::Create(0, {}, false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(CsrTest, DirectedOutNeighbors) {
  auto g = Graph::Create(4, {{0, 1}, {0, 2}, {2, 3}, {3, 0}}, true);
  Csr csr = Csr::Build(*g, /*out=*/true);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_arcs(), 4u);
  ASSERT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.neighbors(0)[0], 1u);
  EXPECT_EQ(csr.neighbors(0)[1], 2u);
  EXPECT_EQ(csr.degree(1), 0u);
  EXPECT_EQ(csr.neighbors(3)[0], 0u);
}

TEST(CsrTest, DirectedInNeighbors) {
  auto g = Graph::Create(4, {{0, 1}, {0, 2}, {2, 3}, {3, 0}}, true);
  Csr csr = Csr::Build(*g, /*out=*/false);
  ASSERT_EQ(csr.degree(0), 1u);
  EXPECT_EQ(csr.neighbors(0)[0], 3u);
  ASSERT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.neighbors(1)[0], 0u);
}

TEST(CsrTest, UndirectedSymmetric) {
  auto g = Graph::Create(3, {{0, 1}, {1, 2}}, false);
  Csr csr = Csr::Build(*g);
  EXPECT_EQ(csr.num_arcs(), 4u);
  EXPECT_EQ(csr.degree(1), 2u);
  EXPECT_EQ(csr.neighbors(1)[0], 0u);
  EXPECT_EQ(csr.neighbors(1)[1], 2u);
}

TEST(CsrTest, ParallelEdgesKept) {
  auto g = Graph::Create(2, {{0, 1}, {0, 1}}, false);
  Csr csr = Csr::Build(*g);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 2u);
}

TEST(FileBytesTest, EdgeListBytesExact) {
  // "0 1\n" (4) + "10 100\n" (7).
  auto g = Graph::Create(101, {{0, 1}, {10, 100}}, true);
  EXPECT_EQ(EdgeListFileBytes(*g), 11u);
}

TEST(FileBytesTest, VertexListBytesExact) {
  // "0\n".."9\n" = 20, "10\n".."11\n" = 6.
  auto g = Graph::Create(12, {}, true);
  EXPECT_EQ(VertexListFileBytes(*g), 26u);
}

TEST(FileBytesTest, ScalesWithGraph) {
  auto small = GenerateUniform(100, 500, 1);
  auto large = GenerateUniform(100, 5000, 1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(EdgeListFileBytes(*large), 5 * EdgeListFileBytes(*small));
}

}  // namespace
}  // namespace granula::graph
