#include "cluster/monitor.h"

#include <gtest/gtest.h>

namespace granula::cluster {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.cores_per_node = 4;
  config.net_latency = SimTime();
  config.disk_bytes_per_sec = 1000.0;
  return config;
}

TEST(MonitorTest, SamplesIdleClusterAsZero) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  EnvironmentMonitor monitor(&cluster, SimTime::Seconds(1));
  monitor.Start();
  sim.RunUntil(SimTime::Seconds(3));
  monitor.Stop();
  ASSERT_GE(monitor.samples().size(), 4u);  // 2 nodes x >= 2 windows
  for (const auto& s : monitor.samples()) {
    EXPECT_DOUBLE_EQ(s.cpu_seconds_per_second, 0.0);
    EXPECT_DOUBLE_EQ(s.disk_bytes_per_second, 0.0);
  }
  EXPECT_DOUBLE_EQ(monitor.PeakClusterCpu(), 0.0);
}

TEST(MonitorTest, CapturesCpuBurst) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  EnvironmentMonitor monitor(&cluster, SimTime::Seconds(1));
  monitor.Start();
  // 2 cores busy on node 0 from t=0 to t=2.
  for (int i = 0; i < 2; ++i) {
    sim.Spawn([](Cluster& c) -> sim::Task<> {
      co_await c.node(0).cpu().Run(SimTime::Seconds(2));
    }(cluster));
  }
  sim.RunUntil(SimTime::Seconds(4));
  monitor.Stop();

  double node0_window0 = -1, node1_window0 = -1, node0_window3 = -1;
  for (const auto& s : monitor.samples()) {
    if (s.node == 0 && s.time_seconds == 1.0) node0_window0 = s.cpu_seconds_per_second;
    if (s.node == 1 && s.time_seconds == 1.0) node1_window0 = s.cpu_seconds_per_second;
    if (s.node == 0 && s.time_seconds == 4.0) node0_window3 = s.cpu_seconds_per_second;
  }
  EXPECT_DOUBLE_EQ(node0_window0, 2.0);  // two busy cores
  EXPECT_DOUBLE_EQ(node1_window0, 0.0);
  EXPECT_DOUBLE_EQ(node0_window3, 0.0);  // burst over
  EXPECT_DOUBLE_EQ(monitor.PeakClusterCpu(), 2.0);
}

TEST(MonitorTest, HostnamesAttached) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  EnvironmentMonitor monitor(&cluster, SimTime::Seconds(1));
  monitor.Start();
  sim.RunUntil(SimTime::Seconds(1));
  monitor.Stop();
  ASSERT_FALSE(monitor.samples().empty());
  EXPECT_EQ(monitor.samples()[0].hostname, "node339");
}

TEST(MonitorTest, StopTakesPartialWindow) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  EnvironmentMonitor monitor(&cluster, SimTime::Seconds(10));
  monitor.Start();
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.node(1).cpu().Run(SimTime::Seconds(2));
  }(cluster));
  sim.RunUntil(SimTime::Seconds(2));
  monitor.Stop();
  // One partial 2s window: node 1 had 1 core busy the whole time.
  ASSERT_EQ(monitor.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(monitor.samples()[1].cpu_seconds_per_second, 1.0);
}

TEST(MonitorTest, DiskTrafficReported) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  EnvironmentMonitor monitor(&cluster, SimTime::Seconds(1));
  monitor.Start();
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.node(0).disk().Transfer(1000);  // 1s at 1000 B/s
  }(cluster));
  sim.RunUntil(SimTime::Seconds(3));
  monitor.Stop();
  ASSERT_GE(monitor.samples().size(), 6u);
  // The byte counter commits when the transfer completes; integrate the
  // rate over all 1s windows to recover the total.
  double node0_total = 0.0;
  for (const auto& s : monitor.samples()) {
    if (s.node == 0) node0_total += s.disk_bytes_per_second;
  }
  EXPECT_DOUBLE_EQ(node0_total, 1000.0);
}

TEST(MonitorTest, RestartResetsBaseline) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  EnvironmentMonitor monitor(&cluster, SimTime::Seconds(1));
  monitor.Start();
  sim.RunUntil(SimTime::Seconds(1));
  monitor.Stop();
  size_t first_count = monitor.samples().size();
  sim.RunUntil(SimTime::Seconds(5));
  monitor.Start();
  sim.RunUntil(SimTime::Seconds(6));
  monitor.Stop();
  EXPECT_GT(monitor.samples().size(), first_count);
  // No sample should have been taken while stopped (t in (1, 5]).
  for (const auto& s : monitor.samples()) {
    EXPECT_TRUE(s.time_seconds <= 1.0 + 1e-9 || s.time_seconds >= 5.0);
  }
}

}  // namespace
}  // namespace granula::cluster
