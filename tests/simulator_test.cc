#include "sim/simulator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/task.h"

namespace granula::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime());
  EXPECT_EQ(sim.processed_events(), 0u);
}

TEST(SimulatorTest, ScheduleAtAdvancesClock) {
  Simulator sim;
  std::vector<double> times;
  sim.ScheduleAt(SimTime::Seconds(2.0),
                 [&] { times.push_back(sim.Now().seconds()); });
  sim.ScheduleAt(SimTime::Seconds(1.0),
                 [&] { times.push_back(sim.Now().seconds()); });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
  EXPECT_EQ(sim.processed_events(), 2u);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(SimTime::Seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

Task<> DelayTwice(Simulator& sim, std::vector<double>& marks) {
  marks.push_back(sim.Now().seconds());
  co_await sim.Delay(SimTime::Seconds(1.0));
  marks.push_back(sim.Now().seconds());
  co_await sim.Delay(SimTime::Seconds(2.0));
  marks.push_back(sim.Now().seconds());
}

TEST(SimulatorTest, CoroutineDelays) {
  Simulator sim;
  std::vector<double> marks;
  ProcessHandle h = sim.Spawn(DelayTwice(sim, marks));
  EXPECT_FALSE(h.done());
  sim.Run();
  EXPECT_TRUE(h.done());
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_DOUBLE_EQ(marks[0], 0.0);
  EXPECT_DOUBLE_EQ(marks[1], 1.0);
  EXPECT_DOUBLE_EQ(marks[2], 3.0);
}

Task<int> Answer(Simulator& sim) {
  co_await sim.Delay(SimTime::Millis(5));
  co_return 42;
}

Task<> AwaitsValue(Simulator& sim, int& out) {
  out = co_await Answer(sim);
}

TEST(SimulatorTest, TaskReturnsValue) {
  Simulator sim;
  int out = 0;
  sim.Spawn(AwaitsValue(sim, out));
  sim.Run();
  EXPECT_EQ(out, 42);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 0.005);
}

Task<> Child(Simulator& sim, std::string& log, const char* name,
             SimTime delay) {
  co_await sim.Delay(delay);
  log += name;
}

Task<> Parent(Simulator& sim, std::string& log) {
  ProcessHandle a = sim.Spawn(Child(sim, log, "a", SimTime::Seconds(2)));
  ProcessHandle b = sim.Spawn(Child(sim, log, "b", SimTime::Seconds(1)));
  co_await a.Join();
  co_await b.Join();
  log += "p";
}

TEST(SimulatorTest, SpawnAndJoinChildren) {
  Simulator sim;
  std::string log;
  sim.Spawn(Parent(sim, log));
  sim.Run();
  EXPECT_EQ(log, "bap");
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.0);
}

TEST(SimulatorTest, JoinCompletedProcessReturnsImmediately) {
  Simulator sim;
  std::string log;
  ProcessHandle h = sim.Spawn(Child(sim, log, "x", SimTime()));
  sim.Run();
  ASSERT_TRUE(h.done());
  bool joined = false;
  sim.Spawn([](ProcessHandle ph, bool& j) -> Task<> {
    co_await ph.Join();
    j = true;
  }(h, joined));
  sim.Run();
  EXPECT_TRUE(joined);
}

Task<> ManyJoiners(ProcessHandle target, int& counter) {
  co_await target.Join();
  ++counter;
}

TEST(SimulatorTest, MultipleJoinersAllWake) {
  Simulator sim;
  std::string log;
  ProcessHandle target =
      sim.Spawn(Child(sim, log, "t", SimTime::Seconds(1)));
  int counter = 0;
  for (int i = 0; i < 5; ++i) sim.Spawn(ManyJoiners(target, counter));
  sim.Run();
  EXPECT_EQ(counter, 5);
}

TEST(SimulatorTest, JoinAllHelper) {
  Simulator sim;
  std::string log;
  std::vector<ProcessHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(
        sim.Spawn(Child(sim, log, "c", SimTime::Seconds(i + 1))));
  }
  bool all_done = false;
  sim.Spawn([](std::vector<ProcessHandle> hs, bool& done) -> Task<> {
    co_await JoinAll(std::move(hs));
    done = true;
  }(handles, all_done));
  sim.Run();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(log, "cccc");
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 4.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(SimTime::Seconds(5), [&] { ++fired; });
  bool more = sim.RunUntil(SimTime::Seconds(3));
  EXPECT_TRUE(more);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 3.0);
  more = sim.RunUntil(SimTime::Seconds(10));
  EXPECT_FALSE(more);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 10.0);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = []() {
    Simulator sim;
    std::string log;
    sim.Spawn(Parent(sim, log));
    sim.Spawn(Child(sim, log, "z", SimTime::Seconds(1)));
    sim.Run();
    return log + "/" + std::to_string(sim.processed_events());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, AbandonedRunDestroysSuspendedProcesses) {
  // A simulation stopped mid-flight must free every suspended coroutine
  // frame when the Simulator is destroyed (verified by the LeakSanitizer
  // build). The processes here are nested three frames deep and parked on
  // a Delay that never fires.
  auto nested = [](Simulator& s) -> Task<> {
    auto inner = [](Simulator& s2) -> Task<> {
      co_await s2.Delay(SimTime::Seconds(1000));
    };
    co_await inner(s);
  };
  {
    Simulator sim;
    for (int i = 0; i < 10; ++i) sim.Spawn(nested(sim));
    sim.RunUntil(SimTime::Seconds(1));
    // Destructor runs with 10 processes still suspended.
  }
  // Also: abandoning before the first event ever runs.
  {
    Simulator sim;
    sim.Spawn(nested(sim));
  }
  SUCCEED();
}

Task<> DeepChain(Simulator& sim, int depth, int& leaf_count) {
  if (depth == 0) {
    ++leaf_count;
    co_return;
  }
  co_await sim.Delay(SimTime::Nanos(1));
  co_await DeepChain(sim, depth - 1, leaf_count);
}

TEST(SimulatorTest, DeepTaskChain) {
  Simulator sim;
  int leaves = 0;
  sim.Spawn(DeepChain(sim, 500, leaves));
  sim.Run();
  EXPECT_EQ(leaves, 1);
  EXPECT_EQ(sim.Now().nanos(), 500);
}

}  // namespace
}  // namespace granula::sim
