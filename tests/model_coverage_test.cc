// Model-coverage consistency: every operation each engine logs must be
// covered by that platform's performance model (archiver strict mode).
// This pins engines and models together — adding an operation to an engine
// without modeling it fails here, not silently in a bench.

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 2000;
  config.avg_degree = 8.0;
  config.seed = 12;
  return std::move(graph::GenerateDatagen(config)).value();
}

algo::AlgorithmSpec BfsSpec() {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  return spec;
}

void ExpectStrictCoverage(const JobResult& result,
                          const core::PerformanceModel& model) {
  core::Archiver::Options options;
  options.strict = true;
  auto archive = core::Archiver(options).Build(model, result.records, {},
                                               {});
  EXPECT_TRUE(archive.ok())
      << "model '" << model.name()
      << "' does not cover every logged operation: "
      << archive.status();
}

TEST(ModelCoverageTest, Giraph) {
  auto result = GiraphPlatform().Run(TestGraph(), BfsSpec(),
                                     cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  ExpectStrictCoverage(*result, core::MakeGiraphModel());
}

TEST(ModelCoverageTest, PowerGraph) {
  auto result = PowerGraphPlatform().Run(
      TestGraph(), BfsSpec(), cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  ExpectStrictCoverage(*result, core::MakePowerGraphModel());
}

TEST(ModelCoverageTest, Hadoop) {
  auto result = HadoopPlatform().Run(TestGraph(), BfsSpec(),
                                     cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  ExpectStrictCoverage(*result, core::MakeHadoopModel());
}

TEST(ModelCoverageTest, Pgxd) {
  auto result = PgxdPlatform().Run(TestGraph(), BfsSpec(),
                                   cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  ExpectStrictCoverage(*result, core::MakePgxdModel());
}

TEST(ModelCoverageTest, GraphMat) {
  auto result = GraphMatPlatform().Run(
      TestGraph(), BfsSpec(), cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  ExpectStrictCoverage(*result, core::MakeGraphMatModel());
}

TEST(ModelCoverageTest, DomainModelNeverCoversSystemOps) {
  // The inverse property: the domain model alone must trigger strict-mode
  // failure on a full log (it intentionally filters system operations).
  auto result = GiraphPlatform().Run(TestGraph(), BfsSpec(),
                                     cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  core::Archiver::Options options;
  options.strict = true;
  auto archive =
      core::Archiver(options).Build(core::MakeGraphProcessingDomainModel(),
                                    result->records, {}, {});
  EXPECT_EQ(archive.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace granula::platform
