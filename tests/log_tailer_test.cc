#include "granula/live/log_tailer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

std::string FreshPath(const std::string& name) {
  std::string path = testing::TempDir() + "/tailer_" + name + ".jsonl";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

std::string RecordLine(uint64_t seq, uint64_t op) {
  LogRecord r;
  r.kind = LogRecord::Kind::kStartOp;
  r.seq = seq;
  r.time = SimTime::Seconds(static_cast<double>(seq));
  r.op_id = op;
  r.actor_type = "Job";
  r.actor_id = "job";
  r.mission_type = "M";
  r.mission_id = "M";
  return r.ToJson().Dump(0) + "\n";
}

void AppendRaw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out << text;
}

TEST(LogTailerTest, MissingFileYieldsNothing) {
  LogTailer tailer(FreshPath("missing"));
  LogTailer::Poll poll = tailer.PollOnce();
  EXPECT_TRUE(poll.records.empty());
  EXPECT_EQ(poll.malformed_lines, 0u);
  EXPECT_FALSE(poll.rotated);
  EXPECT_EQ(tailer.bytes_consumed(), 0u);
}

TEST(LogTailerTest, PicksUpAppendsAcrossPolls) {
  std::string path = FreshPath("appends");
  LogTailer tailer(path);
  AppendRaw(path, RecordLine(0, 1));
  LogTailer::Poll first = tailer.PollOnce();
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_EQ(first.records[0].seq, 0u);

  // Nothing new: the second poll is empty, not a re-read.
  EXPECT_TRUE(tailer.PollOnce().records.empty());

  AppendRaw(path, RecordLine(1, 2) + RecordLine(2, 3));
  LogTailer::Poll second = tailer.PollOnce();
  ASSERT_EQ(second.records.size(), 2u);
  EXPECT_EQ(second.records[0].seq, 1u);
  EXPECT_EQ(second.records[1].seq, 2u);
}

TEST(LogTailerTest, BuffersPartialLinesUntilTheNewlineArrives) {
  std::string path = FreshPath("partial");
  LogTailer tailer(path);
  std::string line = RecordLine(7, 9);
  AppendRaw(path, line.substr(0, line.size() / 2));
  EXPECT_TRUE(tailer.PollOnce().records.empty());
  AppendRaw(path, line.substr(line.size() / 2));
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 7u);
  EXPECT_EQ(poll.records[0].op_id, 9u);
  EXPECT_EQ(poll.malformed_lines, 0u);
}

TEST(LogTailerTest, CountsMalformedLinesAndKeepsGoing) {
  std::string path = FreshPath("malformed");
  LogTailer tailer(path);
  AppendRaw(path, "this is not json\n" + RecordLine(3, 4) +
                      "{\"kind\":\"start\"\n");
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 3u);
  EXPECT_EQ(poll.malformed_lines, 2u);
  EXPECT_EQ(tailer.total_malformed_lines(), 2u);
}

TEST(LogTailerTest, SkipsBlankLinesAndCarriageReturns) {
  std::string path = FreshPath("blank");
  LogTailer tailer(path);
  std::string line = RecordLine(5, 6);
  line.insert(line.size() - 1, "\r");  // CRLF line ending
  AppendRaw(path, "\n" + line + "\n");
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 5u);
  EXPECT_EQ(poll.malformed_lines, 0u);
}

TEST(LogTailerTest, DetectsTruncationAndRereadsFromTheStart) {
  std::string path = FreshPath("rotate");
  LogTailer tailer(path);
  AppendRaw(path, RecordLine(0, 1) + RecordLine(1, 2));
  EXPECT_EQ(tailer.PollOnce().records.size(), 2u);

  // Rotate: the file is replaced by a shorter one (a fresh job's log).
  std::ofstream(path, std::ios::trunc | std::ios::binary) << RecordLine(0, 9);
  LogTailer::Poll poll = tailer.PollOnce();
  EXPECT_TRUE(poll.rotated);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].op_id, 9u);
}

TEST(LogTailerTest, TailsAJobLoggerStream) {
  // End-to-end with the producer side: JobLogger::StreamTo writes each
  // record as it happens; the tailer reconstructs the exact record list.
  std::string path = FreshPath("logger");
  SimTime now;
  JobLogger logger([&now] { return now; });
  ASSERT_TRUE(logger.StreamTo(path).ok());

  LogTailer tailer(path);
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  logger.AddInfo(root, "Vertices", Json(static_cast<int64_t>(42)));
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 2u);
  EXPECT_EQ(poll.records[0].kind, LogRecord::Kind::kStartOp);
  EXPECT_EQ(poll.records[1].info_name, "Vertices");

  now = SimTime::Seconds(3);
  logger.EndOperation(root);
  logger.StopStreaming();
  poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].kind, LogRecord::Kind::kEndOp);
  EXPECT_EQ(poll.records[0].time.seconds(), 3.0);
  EXPECT_EQ(tailer.total_malformed_lines(), 0u);
}

}  // namespace
}  // namespace granula::core
